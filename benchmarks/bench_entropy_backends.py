"""Ablation: entropy back-ends on DBGC's actual coordinate streams.

The paper chooses Deflate for the azimuthal streams (Step 6) and arithmetic
coding for the polar/radial streams (Steps 7/8).  This bench re-codes the
real delta streams of one frame with every back-end we implement —
adaptive arithmetic, our Deflate, canonical Huffman, Rice, bit packing,
Sprintz-style prediction, and the vectorized rANS backend — quantifying
the codec choices, and checks the rANS contract on the hot streams: at
least 2x faster than adaptive arithmetic at a size within 2%.
"""

import time

import numpy as np

from benchmarks.common import frame, write_result
from repro.core import DBGCParams
from repro.core.clustering import cluster_approx
from repro.core.grouping import split_into_groups
from repro.core.polyline import organize_polylines
from repro.datasets import SensorModel
from repro.entropy.arithmetic import encode_int_sequence
from repro.entropy.backend import get_backend
from repro.entropy.bitpacking import bitpack_encode
from repro.entropy.deflate import deflate_compress
from repro.entropy.golomb import rice_encode
from repro.entropy.huffman import huffman_compress
from repro.entropy.predictive import sprintz_encode
from repro.entropy.varint import encode_varints
from repro.eval import render_table
from repro.geometry.spherical import cartesian_to_spherical, spherical_error_bounds
from repro.octree.codec import OctreeCodec, build_octree_structure

BACKENDS = {
    "arithmetic": encode_int_sequence,
    "deflate": lambda v: deflate_compress(encode_varints(v)),
    "huffman": lambda v: huffman_compress(encode_varints(v)),
    "rice": rice_encode,
    "bitpack": bitpack_encode,
    "sprintz": sprintz_encode,
    "rans": lambda v: get_backend("rans").encode_ints(v),
}


def _main_group_streams():
    """The within-line delta streams of the biggest radial group."""
    params = DBGCParams()
    sensor = SensorModel.benchmark_default()
    cloud = frame("kitti-city")
    min_pts = params.min_pts_for_sensor(sensor.u_theta, sensor.u_phi)
    sparse = cloud.xyz[~cluster_approx(cloud.xyz, params.eps, min_pts)]
    groups = split_into_groups(np.linalg.norm(sparse, axis=1), 3)
    biggest = max(groups, key=len)
    xyz = sparse[biggest]
    tpr = cartesian_to_spherical(xyz)
    lines = [
        l
        for l in organize_polylines(
            tpr[:, 0], tpr[:, 1], xyz, sensor.u_theta, sensor.u_phi
        )
        if len(l) >= 2
    ]
    r_max = max(float(tpr[l, 2].max()) for l in lines)
    q_theta, q_phi, q_r = spherical_error_bounds(params.q_xyz, r_max)
    tq = np.round(tpr[:, 0] / (2 * q_theta)).astype(np.int64)
    pq = np.round(tpr[:, 1] / (2 * q_phi)).astype(np.int64)
    rq = np.round(tpr[:, 2] / (2 * q_r)).astype(np.int64)
    return {
        "d_theta": np.concatenate([np.diff(tq[l]) for l in lines]),
        "d_phi": np.concatenate([np.diff(pq[l]) for l in lines]),
        "d_r": np.concatenate([np.diff(rq[l]) for l in lines]),
    }


def test_entropy_backend_ablation(benchmark):
    streams = _main_group_streams()
    rows = []
    winners = {}
    for name, values in streams.items():
        row = [name]
        sizes = {}
        for backend, encode in BACKENDS.items():
            size = len(encode(values))
            sizes[backend] = size
            row.append(8.0 * size / len(values))
        winners[name] = min(sizes, key=sizes.get)
        rows.append(row)
    text = render_table(
        ["stream"] + list(BACKENDS),
        rows,
        title="Entropy back-ends on DBGC delta streams (bits/point, kitti-city)",
    )
    text += "\nwinners: " + ", ".join(f"{k}: {v}" for k, v in winners.items())
    text += (
        "\n(the codec picks the better of deflate/arithmetic per stream; "
        "this ablation justifies that choice)"
    )
    write_result("ablation_entropy_backends", text)
    # The shipped choice (best of arithmetic/deflate) must win or tie
    # everywhere up to Rice's occasional sliver on near-geometric data.
    for name, values in streams.items():
        shipped = min(
            len(BACKENDS["arithmetic"](values)), len(BACKENDS["deflate"](values))
        )
        best = min(len(encode(values)) for encode in BACKENDS.values())
        assert shipped <= best * 1.15
    benchmark.pedantic(
        BACKENDS["arithmetic"], args=(streams["d_r"],), rounds=1, iterations=1
    )


def _best_of(fn, repeats=3):
    """(result, best wall-clock seconds) — min-of-N suppresses runner noise."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_rans_vs_adaptive_hot_streams(benchmark):
    """The rANS acceptance contract on the two hottest streams.

    Occupancy (the full-cloud octree byte stream) and Δφ dominate the
    entropy-coding wall-clock; the vectorized backend must be at least 2x
    faster end-to-end (encode + decode) while staying within 2% of the
    adaptive coder's size.
    """
    cloud = frame("kitti-city")
    codec = OctreeCodec(DBGCParams().q_xyz)
    codes, _, depth = codec._quantize(cloud.xyz)
    occupancy = build_octree_structure(codes, depth).occupancy_stream().astype(
        np.int64
    )
    d_phi = _main_group_streams()["d_phi"]

    adaptive = get_backend("adaptive-arith")
    rans = get_backend("rans")
    rows = []
    for name, run in (
        (
            "occupancy",
            lambda b: b.decode(b.encode(occupancy, 256), occupancy.size, 256),
        ),
        ("d_phi", lambda b: b.decode_ints(b.encode_ints(d_phi))),
    ):
        reference = occupancy if name == "occupancy" else d_phi
        decoded_a, t_adaptive = _best_of(lambda: run(adaptive))
        decoded_r, t_rans = _best_of(lambda: run(rans))
        assert np.array_equal(decoded_a, reference)
        assert np.array_equal(decoded_r, reference)
        size_a = len(
            adaptive.encode(occupancy, 256)
            if name == "occupancy"
            else adaptive.encode_ints(d_phi)
        )
        size_r = len(
            rans.encode(occupancy, 256)
            if name == "occupancy"
            else rans.encode_ints(d_phi)
        )
        speedup = t_adaptive / t_rans
        ratio = size_r / size_a
        rows.append(
            [name, size_a, size_r, f"{ratio:.3f}", f"{speedup:.1f}x"]
        )
        assert speedup >= 2.0, f"{name}: rANS only {speedup:.2f}x faster"
        assert ratio <= 1.02, f"{name}: rANS {ratio:.3f}x the adaptive size"
    write_result(
        "rans_vs_adaptive",
        render_table(
            ["stream", "adaptive B", "rans B", "size ratio", "speedup"],
            rows,
            title="rANS vs adaptive arithmetic, encode+decode (kitti-city)",
        ),
    )
    benchmark.pedantic(
        lambda: rans.decode(rans.encode(occupancy, 256), occupancy.size, 256),
        rounds=1,
        iterations=1,
    )
