"""Figure 12: compression and decompression time vs error bound.

Wall-clock per method on the city scene.  Absolute numbers are pure-Python
and thus far from the paper's C++ prototype (DESIGN.md §4); the reported
shape is the method ordering and the mild decrease of DBGC's times as the
bound grows.  With ``--json`` the measured times land in
``BENCH_fig12.json`` for the regression harness.
"""

from benchmarks.common import bench_sensor, frame, record_bench, write_result
from repro.eval import render_series, run_timing_sweep

Q_SWEEP = [0.002, 0.005, 0.01, 0.02]


def test_fig12_timings(benchmark):
    results = run_timing_sweep("kitti-city", Q_SWEEP, sensor=bench_sensor())
    compress: dict[str, list[float]] = {}
    decompress: dict[str, list[float]] = {}
    for r in results:
        compress.setdefault(r.method, []).append(r.compress_seconds)
        decompress.setdefault(r.method, []).append(r.decompress_seconds)
    text = render_series(
        "q (cm)",
        [q * 100 for q in Q_SWEEP],
        compress,
        title="Figure 12a: compression time (s), kitti-city",
    )
    text += "\n\n" + render_series(
        "q (cm)",
        [q * 100 for q in Q_SWEEP],
        decompress,
        title="Figure 12b: decompression time (s), kitti-city",
    )
    write_result("fig12_time", text)
    record_bench(
        "fig12",
        wall_times_s={
            f"{phase}.{r.method}.q{r.q_xyz:g}": seconds
            for r in results
            for phase, seconds in (
                ("compress", r.compress_seconds),
                ("decompress", r.decompress_seconds),
            )
        },
        point_counts={"kitti-city": results[0].n_points},
    )
    for times in list(compress.values()) + list(decompress.values()):
        assert all(t > 0 for t in times)
    # Time a single DBGC decompression for the benchmark table.
    from repro.eval import DbgcGeometryCompressor

    codec = DbgcGeometryCompressor(0.02, sensor=bench_sensor())
    payload = codec.compress(frame("kitti-city"))
    record_bench("fig12", wall_times_s={}, sizes_bytes={"dbgc.q0.02": len(payload)})
    benchmark.pedantic(codec.decompress, args=(payload,), rounds=1, iterations=1)
