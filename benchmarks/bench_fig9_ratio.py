"""Figure 9: compression ratio vs error bound, all scenes and methods.

One benchmark per scene; each sweeps the paper's error-bound range over
DBGC and the four baselines and renders the ratio series (the paper's
Figures 9a-9f).  Expected shape: DBGC leads at every q; Octree_i does not
beat Octree; the kd coder trails.
"""

import pytest

from benchmarks.common import ALL_SCENES, frame, write_result
from repro.eval.experiments import fig9_ratio
from repro.eval.harness import make_compressors

_FIGURE_IDS = dict(zip(ALL_SCENES, ["9a", "9b", "9c", "9d", "9e", "9f"]))


@pytest.mark.parametrize("scene", ALL_SCENES)
def test_fig9_ratio_sweep(benchmark, scene):
    result = fig9_ratio(scene=scene)
    text = result.text.replace("Figure 9:", f"Figure {_FIGURE_IDS[scene]}:")
    write_result(f"fig09_{scene}", text)
    series = result.data["series"]
    # Paper shape: DBGC leads every baseline at the headline bound (2 cm).
    final = {name: values[-1] for name, values in series.items()}
    dbgc = final.pop("DBGC")
    assert dbgc > max(final.values())
    # Ratios grow monotonically with the error bound for every method.
    for values in series.values():
        assert all(a <= b * 1.05 for a, b in zip(values, values[1:]))
    # Benchmark DBGC at the headline error bound.
    dbgc_codec = make_compressors(0.02)[0]
    benchmark.pedantic(
        dbgc_codec.compress, args=(frame(scene),), rounds=1, iterations=1
    )
