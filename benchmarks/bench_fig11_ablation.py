"""Figure 11: the DBGC ablations -Radial, -Group, -Conversion.

The paper disables one technique at a time and reports each variant's
compression ratio relative to full DBGC on the campus scene across error
bounds (-Radial ~88%, -Group ~85%, -Conversion ~29% of DBGC on average).
See EXPERIMENTS.md for the measured-vs-paper magnitude analysis.
"""

from benchmarks.common import frame, write_result
from repro.core import DBGCParams
from repro.eval.experiments import fig11_ablation
from repro.eval.harness import DbgcGeometryCompressor


def test_fig11_ablations(benchmark):
    result = fig11_ablation()
    write_result("fig11_ablation", result.text)
    relative = result.data["relative"]
    # Paper shape: every ablation loses (or at worst ties within noise);
    # -Conversion loses by far the most.
    for name, rel in relative.items():
        assert rel < 1.02, name
    assert relative["-Conversion"] == min(relative.values())
    assert relative["-Group"] < 0.98
    codec = DbgcGeometryCompressor(0.02, params=DBGCParams(radial_reference=False))
    benchmark.pedantic(
        codec.compress, args=(frame("kitti-campus"),), rounds=1, iterations=1
    )
