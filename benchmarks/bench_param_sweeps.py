"""Design-choice sweeps: k, TH_r, and the number of radial groups.

The paper fixes ``k = 10`` (swept 2..100), ``TH_r = 2 m`` and 3 groups
after its own calibration; these benches regenerate the trade-off curves
on a synthetic frame so the defaults can be sanity-checked per dataset.
"""

from benchmarks.common import frame, write_result
from repro.core import DBGCParams
from repro.eval import DbgcGeometryCompressor, render_series

Q = 0.02


def _ratio(params: DBGCParams) -> float:
    cloud = frame("kitti-city")
    codec = DbgcGeometryCompressor(Q, params=params)
    return cloud.nbytes_raw() / len(codec.compress(cloud))


def test_sweep_k(benchmark):
    """eps = k * q: too small misses structure, too large is all-dense."""
    ks = [2, 5, 10, 20, 50]
    ratios = [_ratio(DBGCParams(k=k)) for k in ks]
    text = render_series(
        "k",
        ks,
        {"ratio": ratios},
        title=f"Sweep of clustering radius factor k (eps = k*q), q = {Q} m",
    )
    text += "\n(paper: k = 10 chosen after sweeping 2..100)"
    write_result("sweep_k", text)
    # The paper's default must be within 10% of the sweep's best.
    assert ratios[ks.index(10)] > 0.9 * max(ratios)
    benchmark.pedantic(_ratio, args=(DBGCParams(k=10),), rounds=1, iterations=1)


def test_sweep_th_r(benchmark):
    """TH_r gates the reference recording: entropy-vs-L_ref trade-off."""
    ths = [0.25, 0.5, 1.0, 2.0, 4.0]
    ratios = [_ratio(DBGCParams(th_r=th)) for th in ths]
    text = render_series(
        "TH_r (m)",
        ths,
        {"ratio": ratios},
        title=f"Sweep of the radial threshold TH_r, q = {Q} m",
    )
    text += "\n(paper: TH_r = 2 m, 'a radial jump beyond 2 m is an object boundary')"
    write_result("sweep_th_r", text)
    assert ratios[ths.index(2.0)] > 0.95 * max(ratios)
    benchmark.pedantic(_ratio, args=(DBGCParams(th_r=2.0),), rounds=1, iterations=1)


def test_sweep_n_groups(benchmark):
    """Radial groups: quantizer slack vs per-group header overhead."""
    ns = [1, 2, 3, 5, 8]
    ratios = [_ratio(DBGCParams(n_groups=n)) for n in ns]
    text = render_series(
        "groups",
        ns,
        {"ratio": ratios},
        title=f"Sweep of the number of radial groups, q = {Q} m",
    )
    text += "\n(paper: 'a small number of groups already achieves a high performance'; 3 used)"
    write_result("sweep_n_groups", text)
    # Grouping must beat the single group, and 3 must be near the best.
    assert max(ratios[1:]) > ratios[0]
    assert ratios[ns.index(3)] > 0.93 * max(ratios)
    benchmark.pedantic(_ratio, args=(DBGCParams(n_groups=3),), rounds=1, iterations=1)
