"""Section 4.3 / 3.2: clustering methods compared.

Three methods: classic point-based DBSCAN [15] (the paper's stated
baseline), the cell-based method of Section 3.2 (prunes neighbor checks via
dense cells), and the approximate O(n) grid method of Section 4.3.  The
paper reports the cell-based method faster than DBSCAN, and the approximate
method ~2x faster again with nearly the same dense set.
"""

import time

import numpy as np

from benchmarks.common import frame, write_result
from repro.core import DBGCParams, cluster_approx, cluster_dbscan, cluster_exact
from repro.eval import render_table


def test_clustering_exact_vs_approx(benchmark):
    from repro.datasets import SensorModel

    params = DBGCParams()
    sensor = SensorModel.benchmark_default()
    min_pts = params.min_pts_for_sensor(sensor.u_theta, sensor.u_phi)
    cloud = frame("kitti-campus")
    xyz = cloud.xyz

    start = time.perf_counter()
    dbscan = cluster_dbscan(xyz, params.eps, min_pts)
    dbscan_seconds = time.perf_counter() - start

    start = time.perf_counter()
    exact = cluster_exact(xyz, params.eps, min_pts, params.leaf_side)
    exact_seconds = time.perf_counter() - start

    start = time.perf_counter()
    approx = cluster_approx(xyz, params.eps, min_pts)
    approx_seconds = time.perf_counter() - start

    agreement = float((exact == approx).mean())
    speedup = exact_seconds / approx_seconds
    text = render_table(
        ["method", "seconds", "dense fraction"],
        [
            ["DBSCAN (point-based)", f"{dbscan_seconds:.3f}", f"{dbscan.mean():.1%}"],
            ["exact (cell-based)", f"{exact_seconds:.3f}", f"{exact.mean():.1%}"],
            ["approximate (grid)", f"{approx_seconds:.3f}", f"{approx.mean():.1%}"],
        ],
        title="Section 4.3: clustering methods on kitti-campus",
    )
    text += f"\nlabel agreement: {agreement:.1%}; speedup: {speedup:.1f}x"
    text += "\n(paper: nearly identical dense sets, ~2x clustering speedup)"
    write_result("sec43_clustering", text)
    assert agreement > 0.8
    assert abs(exact.mean() - approx.mean()) < 0.1
    assert speedup > 1.5
    # Paper ordering: cell-based prunes checks and beats DBSCAN.
    assert exact_seconds < dbscan_seconds * 1.05
    benchmark.pedantic(
        cluster_approx, args=(xyz, params.eps, min_pts), rounds=1, iterations=1
    )
