"""Figure 10: ratio vs the percentage of points compressed by the octree.

The paper manually varies the fraction of nearest points handed to the
octree from 0% (everything coordinate-coded) to 100% (pure octree) and
shows a mixture beats both extremes, with the density-based clustering
choice near the top.  The Section 4.3 point split (dense/sparse/outlier
percentages) is reported alongside.
"""

from benchmarks.common import frame, write_result
from repro.eval.experiments import fig10_split
from repro.eval.harness import DbgcGeometryCompressor


def test_fig10_split_sweep(benchmark):
    result = fig10_split()
    write_result("fig10_split", result.text)
    ratios = result.data["ratios"]
    # Paper shape: a mixture beats both extremes.
    best_interior = max(ratios[1:-1])
    assert best_interior > ratios[0]
    assert best_interior > ratios[-1]
    # The clustered configuration is competitive with the best manual split.
    assert result.data["clustered_ratio"] > 0.85 * best_interior
    # The Section 4.3 split: sizable dense share, ~1% outliers.
    assert 0.1 < result.data["dense_fraction"] < 0.6
    assert result.data["outlier_fraction"] < 0.05
    bench_codec = DbgcGeometryCompressor(0.02)
    benchmark.pedantic(
        bench_codec.compress, args=(frame("kitti-city"),), rounds=1, iterations=1
    )
