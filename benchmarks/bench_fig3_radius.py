"""Figure 3: octree compression ratio and point density vs subset radius.

The paper selects concentric spheres of the city cloud around the sensor
and shows that (a) the octree's ratio collapses as radius grows and (b) the
point density falls with radius cubed — the observation motivating the
dense/sparse split.
"""

from benchmarks.common import frame, write_result
from repro.baselines import OctreeCompressor
from repro.eval.experiments import fig3_radius


def test_fig3_radius_sweep(benchmark):
    result = fig3_radius()
    write_result("fig03_radius", result.text)
    ratios = result.data["ratios"]
    densities = result.data["densities"]
    # Paper shape: both fall monotonically with radius.
    assert all(a > b for a, b in zip(ratios, ratios[1:]))
    assert all(a > b for a, b in zip(densities, densities[1:]))
    # Benchmark the full-cloud compression that anchors the sweep.
    codec = OctreeCompressor(0.02)
    benchmark.pedantic(
        codec.compress, args=(frame("kitti-city"),), rounds=1, iterations=1
    )
