"""Section 4.4: end-to-end throughput, bandwidth, latency and memory.

Streams frames through the client -> shaped 4G uplink -> server pipeline
and checks the paper's headline system claims: the raw sensor stream does
not fit a 4G uplink, the compressed stream does, and the pipeline stores
frames online.
"""

from benchmarks.common import frame, write_result
from repro import observability as obs
from repro.core import DBGCParams
from repro.datasets import SensorModel
from repro.eval import peak_rss_bytes, render_table
from repro.system import (
    BandwidthShaper,
    DbgcClient,
    DbgcServer,
    FaultSpec,
    FaultyChannel,
    SqliteFrameStore,
)

N_FRAMES = 3
Q = 0.02


def test_e2e_system(benchmark):
    sensor = SensorModel.benchmark_default()
    frames = [frame("kitti-city", i) for i in range(N_FRAMES)]
    uplink = BandwidthShaper.mobile_4g()

    def run_pipeline():
        # One observability recording spans compression, transport, and
        # the server: its counters must reconcile with the PipelineReport.
        with obs.recording() as recorder:
            store = SqliteFrameStore()
            server = DbgcServer(store, mode="decompress").start()
            client = DbgcClient(
                server.address, params=DBGCParams(q_xyz=Q), channel=uplink
            )
            for index, cloud in enumerate(frames):
                client.send_frame(index, cloud)
            client.close()
            server.join()
            client.merge_receipts(server.receipts)
            assert len(store) == N_FRAMES
        metrics = obs.report_dict(recorder)
        obs.validate_report(metrics)
        assert metrics["counters"]["compress.frames"] == N_FRAMES
        assert metrics["counters"]["transport.stored"] == client.report.n_stored
        assert metrics["counters"]["server.stored"] == N_FRAMES
        return client.report

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    fps = sensor.frames_per_second
    raw_mbps = 8 * frames[0].nbytes_raw() * fps / 1e6
    compressed_mbps = report.bandwidth_mbps(fps)
    full_scale_raw_mbps = SensorModel.velodyne_hdl64e().raw_frame_bits() * fps / 1e6
    rows = [
        ["raw stream (this sensor)", f"{raw_mbps:.1f} Mbps",
         "no" if raw_mbps > uplink.bandwidth_mbps else "yes"],
        ["raw stream (full HDL-64E)", f"{full_scale_raw_mbps:.1f} Mbps", "no"],
        ["compressed stream", f"{compressed_mbps:.2f} Mbps",
         "yes" if compressed_mbps <= uplink.bandwidth_mbps else "no"],
        ["mean compress latency", f"{report.mean_compress_latency:.2f} s", ""],
        ["mean transfer latency", f"{report.mean_transfer_latency:.2f} s", ""],
        ["mean total latency", f"{report.mean_total_latency:.2f} s", ""],
        ["pipeline throughput", f"{report.throughput_fps():.2f} fps", ""],
        ["peak RSS", f"{peak_rss_bytes() / 1e6:.0f} MB", ""],
    ]
    text = render_table(
        ["quantity", "value", "fits 4G (8.2 Mbps)?"],
        rows,
        title=f"Section 4.4: end-to-end system, q = {Q} m, {N_FRAMES} frames",
    )
    text += (
        "\n(paper, C++ at 10 fps full HDL-64E: raw 96 Mbps does not fit; "
        "B ~= 6 Mbps fits; ~0.7 s capture-to-storage)"
    )
    write_result("sec44_e2e_system", text)
    # Paper's headline claims, scaled: raw exceeds 4G, compressed fits.
    assert raw_mbps > uplink.bandwidth_mbps or full_scale_raw_mbps > uplink.bandwidth_mbps
    assert compressed_mbps <= uplink.bandwidth_mbps
    assert report.mean_total_latency > 0


#: Fault sweep: seeded link pathologies the transport must absorb.
FAULT_SCENARIOS = [
    ("clean link", FaultSpec()),
    ("5% corruption", FaultSpec(corrupt_rate=0.05)),
    ("20% corruption", FaultSpec(corrupt_rate=0.20)),
    ("mid-frame disconnect", FaultSpec(force_disconnect_frames=frozenset({1}))),
    ("ACK loss 30%", FaultSpec(ack_drop_rate=0.30)),
    ("corrupt + disconnect", FaultSpec(
        corrupt_rate=0.10, force_disconnect_frames=frozenset({0, 2}))),
]


def test_e2e_fault_sweep(benchmark):
    """The pipeline under injected faults: no thread deaths, full accounting."""
    frames = [frame("kitti-city", i) for i in range(N_FRAMES)]

    def run_scenario(label, spec, seed=3):
        channel = FaultyChannel(BandwidthShaper.mobile_4g(), seed=seed, spec=spec)
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store", channel=channel) as server:
            with DbgcClient(
                server.address, params=DBGCParams(q_xyz=Q), channel=channel,
                ack_timeout=1.0, backoff_base=0.01,
            ) as client:
                for index, cloud in enumerate(frames):
                    client.send_frame(index, cloud)
            server.join()  # raises if the serve thread died
        report = client.report
        stored = store.frame_indices()
        quarantined = sorted(q.frame_index for q in server.quarantine)
        # Every frame accounted for exactly once; no silent losses.
        assert sorted(stored + quarantined) == list(range(N_FRAMES))
        assert report.n_stored == len(stored)
        assert report.n_quarantined == len(quarantined)
        assert report.n_dropped == 0
        return [
            label,
            f"{len(stored)}/{N_FRAMES}",
            str(len(quarantined)),
            str(report.total_retries),
            str(server.connections),
        ]

    def run_sweep():
        return [run_scenario(label, spec) for label, spec in FAULT_SCENARIOS]

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Determinism: a second pass over the nastiest scenario matches.
    label, spec = FAULT_SCENARIOS[-1]
    assert run_scenario(label, spec) == rows[-1]
    text = render_table(
        ["scenario", "stored", "quarantined", "retries", "connections"],
        rows,
        title=f"Transport fault sweep, q = {Q} m, {N_FRAMES} frames, seed 3",
    )
    write_result("sec44_fault_sweep", text)
    # The forced-disconnect scenarios must have recovered via retransmit.
    by_label = {row[0]: row for row in rows}
    assert int(by_label["mid-frame disconnect"][3]) >= 1
    assert int(by_label["20% corruption"][2]) >= 1
    assert by_label["clean link"][1] == f"{N_FRAMES}/{N_FRAMES}"
