"""Section 4.4: end-to-end throughput, bandwidth, latency and memory.

Streams frames through the client -> shaped 4G uplink -> server pipeline
and checks the paper's headline system claims: the raw sensor stream does
not fit a 4G uplink, the compressed stream does, and the pipeline stores
frames online.
"""

import pytest

from benchmarks.common import frame, write_result
from repro.core import DBGCParams
from repro.datasets import SensorModel
from repro.eval import peak_rss_bytes, render_table
from repro.system import BandwidthShaper, DbgcClient, DbgcServer, SqliteFrameStore

N_FRAMES = 3
Q = 0.02


def test_e2e_system(benchmark):
    sensor = SensorModel.benchmark_default()
    frames = [frame("kitti-city", i) for i in range(N_FRAMES)]
    uplink = BandwidthShaper.mobile_4g()

    def run_pipeline():
        store = SqliteFrameStore()
        server = DbgcServer(store, mode="decompress").start()
        client = DbgcClient(
            server.address, params=DBGCParams(q_xyz=Q), channel=uplink
        )
        for index, cloud in enumerate(frames):
            client.send_frame(index, cloud)
        client.close()
        server.join()
        client.merge_receipts(server.receipts)
        assert len(store) == N_FRAMES
        return client.report

    report = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    fps = sensor.frames_per_second
    raw_mbps = 8 * frames[0].nbytes_raw() * fps / 1e6
    compressed_mbps = report.bandwidth_mbps(fps)
    full_scale_raw_mbps = SensorModel.velodyne_hdl64e().raw_frame_bits() * fps / 1e6
    rows = [
        ["raw stream (this sensor)", f"{raw_mbps:.1f} Mbps",
         "no" if raw_mbps > uplink.bandwidth_mbps else "yes"],
        ["raw stream (full HDL-64E)", f"{full_scale_raw_mbps:.1f} Mbps", "no"],
        ["compressed stream", f"{compressed_mbps:.2f} Mbps",
         "yes" if compressed_mbps <= uplink.bandwidth_mbps else "no"],
        ["mean compress latency", f"{report.mean_compress_latency:.2f} s", ""],
        ["mean transfer latency", f"{report.mean_transfer_latency:.2f} s", ""],
        ["mean total latency", f"{report.mean_total_latency:.2f} s", ""],
        ["pipeline throughput", f"{report.throughput_fps():.2f} fps", ""],
        ["peak RSS", f"{peak_rss_bytes() / 1e6:.0f} MB", ""],
    ]
    text = render_table(
        ["quantity", "value", "fits 4G (8.2 Mbps)?"],
        rows,
        title=f"Section 4.4: end-to-end system, q = {Q} m, {N_FRAMES} frames",
    )
    text += (
        "\n(paper, C++ at 10 fps full HDL-64E: raw 96 Mbps does not fit; "
        "B ~= 6 Mbps fits; ~0.7 s capture-to-storage)"
    )
    write_result("sec44_e2e_system", text)
    # Paper's headline claims, scaled: raw exceeds 4G, compressed fits.
    assert raw_mbps > uplink.bandwidth_mbps or full_scale_raw_mbps > uplink.bandwidth_mbps
    assert compressed_mbps <= uplink.bandwidth_mbps
    assert report.mean_total_latency > 0
