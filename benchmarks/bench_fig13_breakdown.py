"""Figure 13: DBGC time breakdown at q = 2 cm, plus memory usage.

Compression splits into DEN (clustering), OCT (octree), COR (conversion),
ORG (organization), SPA (stream coding), OUT (outliers); decompression
into OCT / SPA / OUT.  The paper reports DEN/ORG/SPA dominating compression
(31% / 22% / 44%) and SPA dominating decompression, with ~45 MB / ~12 MB
peak memory.  With ``--json`` the stage seconds land in
``BENCH_fig13.json`` for the regression harness.
"""

import pytest

from benchmarks.common import bench_sensor, frame, record_bench, write_result
from repro.eval.experiments import fig13_breakdown
from repro.eval.harness import DbgcGeometryCompressor
from repro.observability import stage_totals, validate_report


def test_fig13_breakdown(benchmark):
    result = fig13_breakdown(sensor=bench_sensor())
    text = result.text + (
        "\n(paper: DEN 31% / ORG 22% / SPA 44% of compression; "
        "SPA dominates decompression)"
    )
    write_result("fig13_breakdown", text)
    timings = result.data["compress_timings"]
    total = sum(timings.values())
    # Paper shape: DEN + ORG + SPA together are the biggest compression
    # cost; SPA dominates decompression.  The vectorized ORG/radial
    # kernels shifted relative weight toward OCT compared with the paper's
    # pure-loop numbers, so the bound is a majority check, not 31/22/44.
    assert (timings["den"] + timings["org"] + timings["spa"]) / total > 0.5
    dec = result.data["decompress_timings"]
    # The vectorized radial decode roughly halved SPA, so OCT and SPA now
    # trade places run to run; the stable paper shape is that the two of
    # them are the decompression cost and the outlier stage is noise.
    assert dec["spa"] > dec["out"]
    assert (dec["spa"] + dec["oct"]) / sum(dec.values()) > 0.8
    # The figure now rides on the observability report: the attached
    # report must be schema-valid and agree with the published timings.
    report = result.data["report"]
    validate_report(report)
    compress_spans = stage_totals(report, "dbgc.compress")
    assert compress_spans["dbgc.den"] == pytest.approx(timings["den"])
    assert compress_spans["sparse.spa"] == pytest.approx(timings["spa"])
    assert report["counters"]["compress.frames"] == 1
    assert report["counters"]["decompress.frames"] == 1
    record_bench(
        "fig13",
        wall_times_s={
            **{f"compress.{stage}": s for stage, s in timings.items()},
            **{f"decompress.{stage}": s for stage, s in dec.items()},
        },
        point_counts={
            "kitti-city": int(report["counters"]["compress.points_in"]),
        },
    )
    fresh = DbgcGeometryCompressor(0.02, sensor=bench_sensor())
    cloud = frame("kitti-city")
    payload = fresh.compress(cloud)
    record_bench("fig13", wall_times_s={}, sizes_bytes={"dbgc.q0.02": len(payload)})
    benchmark.pedantic(fresh.compress, args=(cloud,), rounds=1, iterations=1)
