"""Figure 13: DBGC time breakdown at q = 2 cm, plus memory usage.

Compression splits into DEN (clustering), OCT (octree), COR (conversion),
ORG (organization), SPA (stream coding), OUT (outliers); decompression
into OCT / SPA / OUT.  The paper reports DEN/ORG/SPA dominating compression
(31% / 22% / 44%) and SPA dominating decompression, with ~45 MB / ~12 MB
peak memory.
"""

import pytest

from benchmarks.common import frame, write_result
from repro.eval.experiments import fig13_breakdown
from repro.eval.harness import DbgcGeometryCompressor
from repro.observability import stage_totals, validate_report


def test_fig13_breakdown(benchmark):
    result = fig13_breakdown()
    text = result.text + (
        "\n(paper: DEN 31% / ORG 22% / SPA 44% of compression; "
        "SPA dominates decompression)"
    )
    write_result("fig13_breakdown", text)
    timings = result.data["compress_timings"]
    total = sum(timings.values())
    # Paper shape: DEN + ORG + SPA dominate compression; SPA dominates
    # decompression.
    assert (timings["den"] + timings["org"] + timings["spa"]) / total > 0.6
    dec = result.data["decompress_timings"]
    assert dec["spa"] == max(dec.values())
    # The figure now rides on the observability report: the attached
    # report must be schema-valid and agree with the published timings.
    report = result.data["report"]
    validate_report(report)
    compress_spans = stage_totals(report, "dbgc.compress")
    assert compress_spans["dbgc.den"] == pytest.approx(timings["den"])
    assert compress_spans["sparse.spa"] == pytest.approx(timings["spa"])
    assert report["counters"]["compress.frames"] == 1
    assert report["counters"]["decompress.frames"] == 1
    fresh = DbgcGeometryCompressor(0.02)
    benchmark.pedantic(
        fresh.compress, args=(frame("kitti-city"),), rounds=1, iterations=1
    )
