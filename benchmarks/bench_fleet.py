"""Fleet-scale ingest: aggregate throughput vs concurrent client count.

Each client is paced to a slow per-client uplink, so one client cannot
saturate the server and aggregate frames/sec should scale close to
linearly with the fleet size — the multi-client tier's headline claim.
The scaling table lands in ``benchmarks/results/`` and the perf record in
``BENCH_fleet.json`` (see ``benchmarks/compare.py``).

A durability row quantifies the receipt journal's tax: the same frames
over an *unpaced* loopback (so store cost, not the wire, dominates)
against the default write-ahead store, with and without a
:class:`~repro.system.durability.ReceiptJournal`.  Both sides use the
durable store — that is the production default and what every scaling
row above runs — so the ratio isolates exactly what journaling adds.
The row replays the fleet serially (``concurrent=False``): with
concurrent clients every per-frame syscall is a GIL hand-off
opportunity, and that scheduler noise — identical work, different
interleaving — swamps the journal cost being measured.  Walls are
median-of-rounds with alternating run order, which cancels slow machine
drift that best-of-N is defenseless against.  The journaled run must
keep >= 80% of the plain aggregate fps.

A decode-offload section times the same decompress-mode fleet against
``decode_workers=1`` and ``decode_workers=4``: real temporal payloads
(format-v3 delta chains) decoded server-side, walls median-of-rounds
with alternating order like the durability row.  The >= 2x speedup gate
only applies where it physically can hold — at least 4 usable cores
(``os.sched_getaffinity``); on smaller machines the rows are still
recorded and a weak sanity floor guards against pathological slowdowns.
Byte-identity against the inline serial oracle is asserted at every
scale for both intra and temporal payloads.

A sliding-window section (protocol v2.2) measures what pipelining the
transport buys.  Two rows, each window=1 vs window=8, median-of-rounds
with alternating order: a **latency-paced** store-mode stream over a
20 ms one-way link, where stop-and-wait pays a full RTT per frame and
the window overlaps them (gate: >= 4x aggregate fps); and a
**pipelined-decode** decompress stream (real intra payloads,
``decode_workers=4``) where the window keeps the server's decode pool
fed (gate: >= 2x, again only on machines with >= 4 usable cores, with
the same weak floor elsewhere).  Byte-identity between the windowed run
and the window=1 serial replay is asserted on both rows — the window
must change *when* frames fly, never *what* lands in the store.

CI runs a reduced sweep via ``DBGC_FLEET_CLIENTS=1,2`` (and can trim
``DBGC_FLEET_WINDOW`` / ``DBGC_FLEET_DECODE_WORKERS`` the same way);
the committed baseline covers 1,2,4,8 and the comparison intersects
shared keys.
"""

import os
import statistics
import tempfile
from pathlib import Path

from benchmarks.common import BENCH_SENSOR_SCALE, record_bench, write_result
from repro.eval import render_table
from repro.system import (
    FleetSpec,
    ShardedFrameStore,
    cloud_contents,
    compressed_fleet_payloads,
    run_fleet,
)
from repro.system.loadgen import payload_contents

CLIENT_COUNTS = [
    int(x) for x in os.environ.get("DBGC_FLEET_CLIENTS", "1,2,4,8").split(",")
]
FRAMES = 25
#: Per-client uplink pacing (Mbps).  Slow enough that the wire, not the
#: server, is each client's bottleneck: the scaling headroom is real.
PER_CLIENT_MBPS = 0.1
N_SHARDS = 4

#: Durability-overhead row: fleet size, frames per client (heavier than
#: the scaling rows so per-frame cost dwarfs setup noise), and
#: median-of-N rounds to tame machine jitter.
DURABILITY_CLIENTS = 4
DURABILITY_FRAMES = 100
DURABILITY_ROUNDS = 7
#: Realistic compressed-frame sizes so the per-frame store cost (the
#: thing journaling taxes) dominates fixed protocol overhead.
DURABILITY_PAYLOAD = (18_000, 30_000)
#: The acceptance bar: journaling may cost at most 20% aggregate fps.
DURABILITY_MAX_COST = 0.20

#: Decode-offload rows: worker counts to sweep (CI and the committed
#: baseline use 1 vs 4), fleet shape, and median-of-N rounds.
DECODE_WORKER_COUNTS = [
    int(x) for x in os.environ.get("DBGC_FLEET_DECODE_WORKERS", "1,4").split(",")
]
DECODE_CLIENTS = 4
DECODE_FRAMES = 12
DECODE_KEYFRAME_INTERVAL = 4
DECODE_ROUNDS = 3
#: The acceptance bar where >= 4 cores exist: 4 decode workers must beat
#: 1 by at least 2x on aggregate decompress-mode fps.
DECODE_MIN_SPEEDUP = 2.0
DECODE_SPEC = FleetSpec(
    n_clients=DECODE_CLIENTS, frames_per_client=DECODE_FRAMES, seed=17
)

#: Sliding-window rows: window sizes to sweep (the committed baseline
#: and CI both use 1 vs 8), stream shape, and median-of-N rounds.
WINDOW_SIZES = [
    int(x) for x in os.environ.get("DBGC_FLEET_WINDOW", "1,8").split(",")
]
WINDOW_FRAMES = 30
#: One-way link latency for the latency-paced row: stop-and-wait pays
#: ~2 * latency per frame, the window amortizes it.
WINDOW_LATENCY_S = 0.02
WINDOW_ROUNDS = 3
#: The acceptance bar: window=8 must beat stop-and-wait by >= 4x on the
#: latency-paced stream (8 overlapped RTTs should approach 8x).
WINDOW_MIN_SPEEDUP = 4.0
#: Pipelined-decode row: one stream feeding a 4-worker decode pool.
WINDOW_DECODE_WORKERS = 4
WINDOW_DECODE_FRAMES = 16
#: Bar on >= 4-core machines: the window keeping the pool fed must at
#: least double single-stream decompress throughput.
WINDOW_DECODE_MIN_SPEEDUP = 2.0
WINDOW_DECODE_SPEC = FleetSpec(
    n_clients=1, frames_per_client=WINDOW_DECODE_FRAMES, seed=23
)


def _durability_run(journal: "Path | None") -> tuple[float, int]:
    """One unpaced serial-replay fleet run; returns (wall s, stored bytes)."""
    spec = FleetSpec(
        n_clients=DURABILITY_CLIENTS,
        frames_per_client=DURABILITY_FRAMES,
        seed=13,
        payload_bytes=DURABILITY_PAYLOAD,
    )
    with ShardedFrameStore.sqlite(N_SHARDS) as store:
        result = run_fleet(spec, store, concurrent=False, receipt_journal=journal)
        stored_bytes = store.total_payload_bytes()
    assert result.n_stored == DURABILITY_CLIENTS * DURABILITY_FRAMES, result.n_stored
    assert result.n_dropped == 0 and result.n_quarantined == 0
    return result.wall_s, stored_bytes


def _durability_walls(tmp: Path) -> tuple[float, float, int]:
    """Median-of-N walls for the plain and journaled ingest paths.

    Each round runs both paths back to back, alternating which goes
    first, so slow load drift hits both sides symmetrically.
    """
    plain_walls, journal_walls = [], []
    stored_bytes = 0
    for round_no in range(DURABILITY_ROUNDS):
        # A fresh journal per round: replaying a previous round's receipts
        # would mark every frame as already stored.
        journal_path = tmp / f"receipts_{round_no}.jsonl"
        runs = [(plain_walls, None), (journal_walls, journal_path)]
        if round_no % 2:
            runs.reverse()
        for walls, journal in runs:
            wall, stored_bytes = _durability_run(journal)
            walls.append(wall)
    return (
        statistics.median(plain_walls),
        statistics.median(journal_walls),
        stored_bytes,
    )


def _decode_run(payloads, workers: int) -> tuple[float, dict[int, bytes]]:
    """One concurrent decompress-mode fleet; returns (wall s, decoded xyz)."""
    with ShardedFrameStore.sqlite(N_SHARDS) as store:
        result = run_fleet(
            DECODE_SPEC,
            store,
            mode="decompress",
            decode_workers=workers,
            payloads=payloads,
        )
        contents = cloud_contents(store)
    assert result.n_stored == DECODE_CLIENTS * DECODE_FRAMES, result.n_stored
    assert result.n_dropped == 0 and result.n_quarantined == 0
    return result.wall_s, contents


def _decode_walls(payloads) -> dict[int, float]:
    """Median-of-N walls per worker count, alternating the run order."""
    walls: dict[int, list[float]] = {n: [] for n in DECODE_WORKER_COUNTS}
    for round_no in range(DECODE_ROUNDS):
        order = list(DECODE_WORKER_COUNTS)
        if round_no % 2:
            order.reverse()
        for n in order:
            wall, _ = _decode_run(payloads, n)
            walls[n].append(wall)
    return {n: statistics.median(w) for n, w in walls.items()}


def _window_latency_run(window: int) -> tuple[float, dict[int, bytes]]:
    """One latency-paced store-mode stream; returns (wall s, stored bytes)."""
    spec = FleetSpec(
        n_clients=1,
        frames_per_client=WINDOW_FRAMES,
        seed=3,
        latency_s=WINDOW_LATENCY_S,
        window=window,
        payload_bytes=(200, 300),
        ack_timeout=5.0,
    )
    with ShardedFrameStore.sqlite(N_SHARDS) as store:
        result = run_fleet(spec, store)
        contents = payload_contents(store)
    assert result.n_stored == WINDOW_FRAMES, (window, result.n_stored)
    assert result.n_dropped == 0 and result.n_quarantined == 0
    return result.wall_s, contents


def _window_decode_run(payloads, window: int) -> tuple[float, dict[int, bytes]]:
    """One single-stream pipelined-decode run; returns (wall s, decoded xyz)."""
    spec = FleetSpec(
        n_clients=1,
        frames_per_client=WINDOW_DECODE_FRAMES,
        seed=WINDOW_DECODE_SPEC.seed,
        window=window,
    )
    with ShardedFrameStore.sqlite(N_SHARDS) as store:
        result = run_fleet(
            spec,
            store,
            mode="decompress",
            decode_workers=WINDOW_DECODE_WORKERS,
            payloads=payloads,
        )
        contents = cloud_contents(store)
    assert result.n_stored == WINDOW_DECODE_FRAMES, (window, result.n_stored)
    assert result.n_dropped == 0 and result.n_quarantined == 0
    return result.wall_s, contents


def _window_walls(run) -> dict[int, float]:
    """Median-of-N walls per window size, alternating the run order."""
    walls: dict[int, list[float]] = {w: [] for w in WINDOW_SIZES}
    for round_no in range(WINDOW_ROUNDS):
        order = list(WINDOW_SIZES)
        if round_no % 2:
            order.reverse()
        for w in order:
            wall, _ = run(w)
            walls[w].append(wall)
    return {w: statistics.median(v) for w, v in walls.items()}


def test_fleet_scaling(benchmark):
    results = {}

    def run_all():
        out = {}
        for n in CLIENT_COUNTS:
            spec = FleetSpec(
                n_clients=n,
                frames_per_client=FRAMES,
                seed=11,
                bandwidth_mbps=PER_CLIENT_MBPS,
            )
            with ShardedFrameStore.sqlite(N_SHARDS) as store:
                result = run_fleet(spec, store)
                stored_bytes = store.total_payload_bytes()
            assert result.n_stored == n * FRAMES, (n, result.n_stored)
            assert result.n_dropped == 0 and result.n_quarantined == 0
            out[n] = (result.wall_s, result.frames_per_second, stored_bytes)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # The scaling rows use in-memory stores; give the journal the same
    # "no disk hardware in the measurement" footing when tmpfs exists.
    shm = "/dev/shm" if os.path.isdir("/dev/shm") else None
    with tempfile.TemporaryDirectory(dir=shm) as tmp:
        plain_wall, journal_wall, durability_bytes = _durability_walls(Path(tmp))
    n_durability = DURABILITY_CLIENTS * DURABILITY_FRAMES
    plain_fps = n_durability / plain_wall
    journal_fps = n_durability / journal_wall
    # The durability acceptance gate: <20% aggregate-fps cost.
    assert journal_fps >= (1.0 - DURABILITY_MAX_COST) * plain_fps, (
        f"journal overhead too high: {plain_fps:.1f} -> {journal_fps:.1f} fps"
    )

    # -- decode offload rows ------------------------------------------------
    temporal_payloads = compressed_fleet_payloads(
        DECODE_SPEC,
        sensor_scale=BENCH_SENSOR_SCALE,
        temporal=True,
        keyframe_interval=DECODE_KEYFRAME_INTERVAL,
    )
    with ShardedFrameStore.sqlite(N_SHARDS) as oracle_store:
        oracle = run_fleet(
            DECODE_SPEC,
            oracle_store,
            mode="decompress",
            payloads=temporal_payloads,
            concurrent=False,
        )
        oracle_contents = cloud_contents(oracle_store)
    assert oracle.n_quarantined == 0
    # Byte-identity, temporal: the offloaded concurrent fleet must store
    # exactly what the inline serial oracle decodes.
    _, offloaded_contents = _decode_run(temporal_payloads, DECODE_WORKER_COUNTS[-1])
    assert offloaded_contents == oracle_contents
    # Byte-identity, intra: same contract for standalone frames.
    intra_spec = FleetSpec(n_clients=2, frames_per_client=4, seed=19)
    intra_payloads = compressed_fleet_payloads(
        intra_spec, sensor_scale=BENCH_SENSOR_SCALE
    )
    with ShardedFrameStore.sqlite(N_SHARDS) as intra_inline:
        run_fleet(
            intra_spec, intra_inline, mode="decompress",
            payloads=intra_payloads, concurrent=False,
        )
        with ShardedFrameStore.sqlite(N_SHARDS) as intra_offloaded:
            run_fleet(
                intra_spec, intra_offloaded, mode="decompress",
                decode_workers=DECODE_WORKER_COUNTS[-1], payloads=intra_payloads,
            )
            assert cloud_contents(intra_offloaded) == cloud_contents(intra_inline)

    # -- sliding-window rows (protocol v2.2) --------------------------------
    w_low, w_high = WINDOW_SIZES[0], WINDOW_SIZES[-1]
    # Byte-identity first: the windowed stream must store exactly what
    # the stop-and-wait stream does, on both the raw and decoded paths.
    _, window_low_contents = _window_latency_run(w_low)
    _, window_high_contents = _window_latency_run(w_high)
    assert window_high_contents == window_low_contents
    window_decode_payloads = compressed_fleet_payloads(
        WINDOW_DECODE_SPEC, sensor_scale=BENCH_SENSOR_SCALE
    )
    _, window_decode_low = _window_decode_run(window_decode_payloads, w_low)
    _, window_decode_high = _window_decode_run(window_decode_payloads, w_high)
    assert window_decode_high == window_decode_low

    window_walls = _window_walls(_window_latency_run)
    window_fps = {w: WINDOW_FRAMES / wall for w, wall in window_walls.items()}
    if w_high > w_low:
        # The latency-paced acceptance gate: pipelining must overlap the
        # simulated RTTs, not just tie with stop-and-wait.
        assert window_fps[w_high] >= WINDOW_MIN_SPEEDUP * window_fps[w_low], (
            f"window pipelining too slow: {window_fps[w_low]:.1f} -> "
            f"{window_fps[w_high]:.1f} fps at window={w_high}"
        )
    window_decode_walls = _window_walls(
        lambda w: _window_decode_run(window_decode_payloads, w)
    )
    window_decode_fps = {
        w: WINDOW_DECODE_FRAMES / wall for w, wall in window_decode_walls.items()
    }
    if w_high > w_low:
        if len(os.sched_getaffinity(0)) >= 4:
            # With >= 4 cores the window must keep the decode pool fed.
            assert (
                window_decode_fps[w_high]
                >= WINDOW_DECODE_MIN_SPEEDUP * window_decode_fps[w_low]
            ), (
                f"windowed decode too slow: {window_decode_fps[w_low]:.1f} -> "
                f"{window_decode_fps[w_high]:.1f} fps at window={w_high}"
            )
        else:
            # Fewer cores: no overlap to demand, but the pipeline must
            # not collapse throughput either.
            assert (
                window_decode_fps[w_high] >= 0.3 * window_decode_fps[w_low]
            ), window_decode_fps

    decode_walls = _decode_walls(temporal_payloads)
    n_decode = DECODE_CLIENTS * DECODE_FRAMES
    decode_fps = {n: n_decode / wall for n, wall in decode_walls.items()}
    low, high = DECODE_WORKER_COUNTS[0], DECODE_WORKER_COUNTS[-1]
    if len(os.sched_getaffinity(0)) >= 4 and high >= 4:
        # The offload acceptance gate — only where 4 workers can
        # actually run in parallel.
        assert decode_fps[high] >= DECODE_MIN_SPEEDUP * decode_fps[low], (
            f"decode offload too slow: {decode_fps[low]:.1f} -> "
            f"{decode_fps[high]:.1f} fps with {high} workers"
        )
    else:
        # Fewer cores than workers: no speedup to demand, but more
        # workers must not collapse throughput either.
        assert decode_fps[high] >= 0.3 * decode_fps[low], decode_fps

    fps = {n: v[1] for n, v in results.items()}
    rows = [
        [str(n), f"{results[n][0]:.2f} s", f"{fps[n]:.1f}",
         f"{fps[n] / fps[CLIENT_COUNTS[0]]:.2f}x"]
        for n in CLIENT_COUNTS
    ]
    rows.append([
        f"{DURABILITY_CLIENTS} (journaled)", f"{journal_wall:.2f} s",
        f"{journal_fps:.1f}", f"{journal_fps / plain_fps:.2f}x of plain",
    ])
    for n in DECODE_WORKER_COUNTS:
        rows.append([
            f"{DECODE_CLIENTS} (decode w={n})", f"{decode_walls[n]:.2f} s",
            f"{decode_fps[n]:.1f}", f"{decode_fps[n] / decode_fps[low]:.2f}x of w={low}",
        ])
    for w in WINDOW_SIZES:
        rows.append([
            f"1 (latency, window={w})", f"{window_walls[w]:.2f} s",
            f"{window_fps[w]:.1f}",
            f"{window_fps[w] / window_fps[w_low]:.2f}x of window={w_low}",
        ])
    for w in WINDOW_SIZES:
        rows.append([
            f"1 (decode window={w})", f"{window_decode_walls[w]:.2f} s",
            f"{window_decode_fps[w]:.1f}",
            f"{window_decode_fps[w] / window_decode_fps[w_low]:.2f}x of window={w_low}",
        ])
    text = render_table(
        ["clients", "wall", "frames/sec", "speedup"],
        rows,
        title=(
            f"Fleet ingest scaling: {FRAMES} frames/client at "
            f"{PER_CLIENT_MBPS:g} Mbps/client, {N_SHARDS} store shards"
        ),
    )
    write_result("fleet_scaling", text)
    wall_times = {f"clients{n}": results[n][0] for n in CLIENT_COUNTS}
    wall_times["durability_plain"] = plain_wall
    wall_times["durability_journal"] = journal_wall
    for n in DECODE_WORKER_COUNTS:
        wall_times[f"decode_workers{n}"] = decode_walls[n]
    for w in WINDOW_SIZES:
        wall_times[f"window{w}_latency"] = window_walls[w]
        wall_times[f"window{w}_decode"] = window_decode_walls[w]
    sizes = {f"clients{n}_stored_bytes": results[n][2] for n in CLIENT_COUNTS}
    sizes["durability_stored_bytes"] = durability_bytes
    decode_xyz_bytes = sum(len(blob) for blob in oracle_contents.values())
    sizes["decode_xyz_bytes"] = decode_xyz_bytes
    counts = {f"clients{n}_frames": n * FRAMES for n in CLIENT_COUNTS}
    counts["durability_frames"] = n_durability
    counts["decode_frames"] = n_decode
    counts["window_latency_frames"] = WINDOW_FRAMES
    counts["window_decode_frames"] = WINDOW_DECODE_FRAMES
    counts["decode_points"] = decode_xyz_bytes // 24  # 3 x float64 per point
    record_bench(
        "fleet", wall_times_s=wall_times, sizes_bytes=sizes, point_counts=counts
    )
    # The acceptance bar: 8 concurrent clients must beat one client's
    # aggregate ingest rate by at least 2x (it should be close to 8x).
    if 1 in fps and 8 in fps:
        assert fps[8] >= 2.0 * fps[1], fps
