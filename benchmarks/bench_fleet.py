"""Fleet-scale ingest: aggregate throughput vs concurrent client count.

Each client is paced to a slow per-client uplink, so one client cannot
saturate the server and aggregate frames/sec should scale close to
linearly with the fleet size — the multi-client tier's headline claim.
The scaling table lands in ``benchmarks/results/`` and the perf record in
``BENCH_fleet.json`` (see ``benchmarks/compare.py``).

CI runs a reduced sweep via ``DBGC_FLEET_CLIENTS=1,2``; the committed
baseline covers 1,2,4,8 and the comparison intersects shared keys.
"""

import os

from benchmarks.common import record_bench, write_result
from repro.eval import render_table
from repro.system import FleetSpec, ShardedFrameStore, run_fleet

CLIENT_COUNTS = [
    int(x) for x in os.environ.get("DBGC_FLEET_CLIENTS", "1,2,4,8").split(",")
]
FRAMES = 25
#: Per-client uplink pacing (Mbps).  Slow enough that the wire, not the
#: server, is each client's bottleneck: the scaling headroom is real.
PER_CLIENT_MBPS = 0.1
N_SHARDS = 4


def test_fleet_scaling(benchmark):
    results = {}

    def run_all():
        out = {}
        for n in CLIENT_COUNTS:
            spec = FleetSpec(
                n_clients=n,
                frames_per_client=FRAMES,
                seed=11,
                bandwidth_mbps=PER_CLIENT_MBPS,
            )
            with ShardedFrameStore.sqlite(N_SHARDS) as store:
                result = run_fleet(spec, store)
                stored_bytes = store.total_payload_bytes()
            assert result.n_stored == n * FRAMES, (n, result.n_stored)
            assert result.n_dropped == 0 and result.n_quarantined == 0
            out[n] = (result.wall_s, result.frames_per_second, stored_bytes)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    fps = {n: v[1] for n, v in results.items()}
    rows = [
        [str(n), f"{results[n][0]:.2f} s", f"{fps[n]:.1f}",
         f"{fps[n] / fps[CLIENT_COUNTS[0]]:.2f}x"]
        for n in CLIENT_COUNTS
    ]
    text = render_table(
        ["clients", "wall", "frames/sec", "speedup"],
        rows,
        title=(
            f"Fleet ingest scaling: {FRAMES} frames/client at "
            f"{PER_CLIENT_MBPS:g} Mbps/client, {N_SHARDS} store shards"
        ),
    )
    write_result("fleet_scaling", text)
    record_bench(
        "fleet",
        wall_times_s={f"clients{n}": results[n][0] for n in CLIENT_COUNTS},
        sizes_bytes={
            f"clients{n}_stored_bytes": results[n][2] for n in CLIENT_COUNTS
        },
        point_counts={f"clients{n}_frames": n * FRAMES for n in CLIENT_COUNTS},
    )
    # The acceptance bar: 8 concurrent clients must beat one client's
    # aggregate ingest rate by at least 2x (it should be close to 8x).
    if 1 in fps and 8 in fps:
        assert fps[8] >= 2.0 * fps[1], fps
