"""Inter-frame temporal compression: stream size vs independent coding.

Drives the three simulated trajectories (straight, curve, loop) through
the frame-stream writer twice — once with ``temporal=True`` (format v3
delta frames between keyframes, interval 8) and once with per-frame
independent coding — and reports the stream-size saving.  The acceptance
bar is a >= 15% *mean* saving across the trajectories at the default
16-frame drives.

Two determinism checks ride along: the temporal stream must decode back
to exactly the input frame counts through the stateful reader, and every
keyframe payload must be byte-identical to the independent stream's
payload at the same index (keyframes *are* plain v2 frames).

``DBGC_TEMPORAL_FRAMES`` shortens the drives for quick local runs; the
saving assertion only applies at full length (short drives are dominated
by the leading keyframe).  The committed baseline
(``benchmarks/baselines/BENCH_temporal.json``) is recorded at
``DBGC_BENCH_SENSOR_SCALE=0.4`` with the defaults.
"""

import io
import os
import time

import numpy as np

from benchmarks.common import (
    BENCH_SENSOR_SCALE,
    bench_sensor,
    record_bench,
    write_result,
)
from repro.core import DBGCParams
from repro.core.streaming import FrameStreamReader, FrameStreamWriter
from repro.datasets.trajectories import curve, generate_sequence, loop, straight
from repro.eval import render_table

N_FRAMES = int(os.environ.get("DBGC_TEMPORAL_FRAMES", "16"))
KEYFRAME_INTERVAL = 8
SEED = 3
SCENE = "kitti-road"
#: Acceptance: mean stream-size saving across the trajectories.
MIN_MEAN_SAVING = 0.15


def _trajectories():
    # The loop radius keeps ~1 m spacing between consecutive frames, the
    # same inter-frame motion scale as the 10 m/s straight/curve drives.
    return {
        "straight": straight(N_FRAMES),
        "curve": curve(N_FRAMES),
        "loop": loop(N_FRAMES, radius_m=N_FRAMES / (2.0 * np.pi)),
    }


def _write_stream(frames, trajectory, params, sensor):
    """Compress ``frames`` into a stream; returns (payloads, total, wall s)."""
    buffer = io.BytesIO()
    start = time.perf_counter()
    with FrameStreamWriter(buffer, params, sensor=sensor) as writer:
        for index, cloud in enumerate(frames):
            writer.write_frame(cloud, ego_position=trajectory[index])
    wall = time.perf_counter() - start
    buffer.seek(0)
    payloads = list(FrameStreamReader(buffer).payloads())
    return payloads, writer.stats.total_compressed_bytes, wall


def test_temporal_stream_savings(benchmark):
    sensor = bench_sensor()
    temporal_params = DBGCParams(temporal=True, keyframe_interval=KEYFRAME_INTERVAL)
    intra_params = DBGCParams()

    def run_all():
        out = {}
        for name, trajectory in _trajectories().items():
            frames = list(
                generate_sequence(SCENE, trajectory, sensor=sensor, seed=SEED)
            )
            t_payloads, t_bytes, t_wall = _write_stream(
                frames, trajectory, temporal_params, sensor
            )
            i_payloads, i_bytes, i_wall = _write_stream(
                frames, trajectory, intra_params, sensor
            )
            # Keyframes are independent v2 frames: byte-identical to the
            # independently coded stream at the same indices.
            for k in range(0, len(frames), KEYFRAME_INTERVAL):
                assert t_payloads[k] == i_payloads[k], (name, k)
            # The stateful decoder round-trips the whole temporal stream.
            decoded = _decode_payloads(t_payloads)
            assert [len(c) for c in decoded] == [len(f) for f in frames], name
            out[name] = {
                "temporal_bytes": t_bytes,
                "intra_bytes": i_bytes,
                "temporal_wall": t_wall,
                "intra_wall": i_wall,
                "points": sum(len(f) for f in frames),
            }
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    savings = {
        name: 1.0 - r["temporal_bytes"] / r["intra_bytes"]
        for name, r in results.items()
    }
    mean_saving = sum(savings.values()) / len(savings)
    rows = [
        [
            name,
            f"{r['intra_bytes']}",
            f"{r['temporal_bytes']}",
            f"{100.0 * savings[name]:.1f}%",
            f"{r['temporal_wall']:.2f} s",
        ]
        for name, r in results.items()
    ]
    rows.append(["mean", "", "", f"{100.0 * mean_saving:.1f}%", ""])
    text = render_table(
        ["trajectory", "intra B", "temporal B", "saving", "wall"],
        rows,
        title=(
            f"Temporal vs independent coding: {N_FRAMES} frames, "
            f"keyframe interval {KEYFRAME_INTERVAL}, q = 0.02 m, "
            f"sensor scale {BENCH_SENSOR_SCALE:g}"
        ),
    )
    write_result("temporal_savings", text)

    record_bench(
        "temporal",
        wall_times_s={
            f"{name}_temporal": r["temporal_wall"] for name, r in results.items()
        },
        sizes_bytes={
            key: r[field]
            for name, r in results.items()
            for key, field in (
                (f"{name}_temporal_bytes", "temporal_bytes"),
                (f"{name}_intra_bytes", "intra_bytes"),
            )
        },
        point_counts={f"{name}_points": r["points"] for name, r in results.items()},
    )

    # Short DBGC_TEMPORAL_FRAMES runs are keyframe-dominated; only hold
    # the acceptance bar at full drive length (>= two keyframe periods).
    # The bar is also scale-scoped: at full angular resolution the intra
    # codec's spatial predictors are already near the temporal predictor's
    # entropy (points are dense enough that in-frame neighbors predict as
    # well as the previous frame), so the delta win shrinks to ~1-2%.
    # The CI gate runs at DBGC_BENCH_SENSOR_SCALE=0.4, where the sweep is
    # validated at >= 15%; the size comparison against the committed
    # baseline still catches regressions at that scale either way.
    if N_FRAMES >= 2 * KEYFRAME_INTERVAL and BENCH_SENSOR_SCALE <= 0.5:
        assert mean_saving >= MIN_MEAN_SAVING, (
            f"mean temporal saving {100 * mean_saving:.1f}% below "
            f"{100 * MIN_MEAN_SAVING:.0f}%: {savings}"
        )


def _decode_payloads(payloads):
    from repro.core.temporal import TemporalDecoder

    decoder = TemporalDecoder()
    return [decoder.decode(p) for p in payloads]
