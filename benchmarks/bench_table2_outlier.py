"""Table 2: outlier compression schemes across the four KITTI scenes.

DBGC's optimized outlier coder (quadtree on x,y + delta-coded z) is
compared against compressing outliers with an octree and against leaving
them uncompressed, at q = 2 cm.  Paper shape: Outlier >= Octree >> None
(the first two within a fraction of a percent, as in the paper's table).
"""

from benchmarks.common import frame, write_result
from repro.core import DBGCParams
from repro.eval.experiments import table2_outliers
from repro.eval.harness import DbgcGeometryCompressor


def test_table2_outlier_modes(benchmark):
    result = table2_outliers()
    write_result("table2_outlier", result.text)
    ratios = result.data["ratios"]
    # Paper shape: quadtree ~ octree (near-tie), both clearly above none.
    for quad, octr, none in zip(ratios["Outlier"], ratios["Octree"], ratios["None"]):
        assert quad >= octr * 0.995
        assert octr > none
    codec = DbgcGeometryCompressor(0.02, params=DBGCParams(outlier_mode="quadtree"))
    benchmark.pedantic(
        codec.compress, args=(frame("kitti-campus"),), rounds=1, iterations=1
    )
