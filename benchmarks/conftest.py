"""Benchmark-suite conftest: echo reproduced tables, export perf records.

``pytest benchmarks/ --json DIR`` writes one schema-versioned
``BENCH_<name>.json`` per recorded bench into ``DIR`` (see
:func:`benchmarks.common.record_bench`); ``benchmarks/compare.py`` diffs
two such records and fails on wall-time regressions.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.common import RESULTS_DIR, bench_records


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        metavar="DIR",
        default=None,
        help="write BENCH_<name>.json perf records into DIR",
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print produced tables and write the --json perf records."""
    json_dir = config.getoption("--json")
    records = bench_records()
    if json_dir and records:
        out_dir = Path(json_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        terminalreporter.section("perf records")
        for name, record in sorted(records.items()):
            path = out_dir / f"BENCH_{name}.json"
            path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
            terminalreporter.write_line(f"wrote {path}")

    if not RESULTS_DIR.exists():
        return
    files = sorted(RESULTS_DIR.glob("*.txt"))
    if not files:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for path in files:
        terminalreporter.write_line(f"--- {path.stem} ---")
        for line in path.read_text().splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
