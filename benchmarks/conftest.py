"""Benchmark-suite conftest: echo reproduced tables after the run."""

from __future__ import annotations

from benchmarks.common import RESULTS_DIR


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every table the benchmarks produced this session."""
    if not RESULTS_DIR.exists():
        return
    files = sorted(RESULTS_DIR.glob("*.txt"))
    if not files:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for path in files:
        terminalreporter.write_line(f"--- {path.stem} ---")
        for line in path.read_text().splitlines():
            terminalreporter.write_line(line)
        terminalreporter.write_line("")
