"""Shared helpers for the benchmark harness.

Frames are cached per (scene, index) so the many benchmarks that reuse the
same input do not pay repeated simulation; rendered result tables are
written to ``benchmarks/results/`` and echoed into the terminal summary by
the local conftest, so ``pytest benchmarks/ --benchmark-only`` leaves a
readable record of every reproduced table and figure.
"""

from __future__ import annotations

import os
import subprocess
from functools import lru_cache
from pathlib import Path

from repro.datasets import SensorModel, generate_frame
from repro.geometry import PointCloud

RESULTS_DIR = Path(__file__).parent / "results"

#: Version of the ``BENCH_<name>.json`` perf-record schema.
BENCH_SCHEMA = "dbgc-bench/1"

#: Global sensor down-scale for the whole benchmark session; CI sets this
#: to run the fig12/fig13 benches on small synthetic scenes.
BENCH_SENSOR_SCALE = float(os.environ.get("DBGC_BENCH_SENSOR_SCALE", "1.0"))

#: The paper sweeps q from 0.06 cm to 2.0 cm.
Q_SWEEP = [0.0006, 0.002, 0.005, 0.01, 0.02]

#: All six evaluation scenes (four KITTI + Apollo + Ford).
ALL_SCENES = [
    "kitti-campus",
    "kitti-city",
    "kitti-residential",
    "kitti-road",
    "apollo-urban",
    "ford-campus",
]


def bench_sensor() -> SensorModel:
    """The session's benchmark sensor, honoring ``DBGC_BENCH_SENSOR_SCALE``."""
    sensor = SensorModel.benchmark_default()
    if BENCH_SENSOR_SCALE != 1.0:
        sensor = sensor.scaled(BENCH_SENSOR_SCALE)
    return sensor


@lru_cache(maxsize=32)
def frame(scene: str, index: int = 0) -> PointCloud:
    """A cached benchmark frame of the named scene."""
    return generate_frame(scene, index, sensor=bench_sensor())


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ (and echo later)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


# -- perf records (the --json option) ---------------------------------------

#: Perf records accumulated this session, keyed by bench name; the local
#: conftest writes each as ``BENCH_<name>.json`` when ``--json`` is given.
_BENCH_RECORDS: dict[str, dict] = {}


def _git_rev() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if proc.returncode == 0:
            return proc.stdout.strip()
    except OSError:
        pass
    return "unknown"


def record_bench(
    name: str,
    wall_times_s: dict[str, float],
    sizes_bytes: dict[str, int] | None = None,
    point_counts: dict[str, int] | None = None,
) -> dict:
    """Record one bench's perf numbers for the ``--json`` exporter.

    ``wall_times_s`` entries are compared with a relative tolerance by
    ``benchmarks/compare.py``; ``sizes_bytes`` and ``point_counts`` are
    deterministic for seeded scenes and compared exactly.  Calling twice
    with the same name merges the dicts (a bench file may record from
    several tests).
    """
    entry = _BENCH_RECORDS.setdefault(
        name,
        {
            "schema": BENCH_SCHEMA,
            "name": name,
            "git_rev": _git_rev(),
            "sensor_scale": BENCH_SENSOR_SCALE,
            "wall_times_s": {},
            "sizes_bytes": {},
            "point_counts": {},
        },
    )
    entry["wall_times_s"].update({k: float(v) for k, v in wall_times_s.items()})
    if sizes_bytes:
        entry["sizes_bytes"].update({k: int(v) for k, v in sizes_bytes.items()})
    if point_counts:
        entry["point_counts"].update({k: int(v) for k, v in point_counts.items()})
    return entry


def bench_records() -> dict[str, dict]:
    """All perf records of this session (name -> schema'd record)."""
    return _BENCH_RECORDS
