"""Shared helpers for the benchmark harness.

Frames are cached per (scene, index) so the many benchmarks that reuse the
same input do not pay repeated simulation; rendered result tables are
written to ``benchmarks/results/`` and echoed into the terminal summary by
the local conftest, so ``pytest benchmarks/ --benchmark-only`` leaves a
readable record of every reproduced table and figure.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.datasets import SensorModel, generate_frame
from repro.geometry import PointCloud

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper sweeps q from 0.06 cm to 2.0 cm.
Q_SWEEP = [0.0006, 0.002, 0.005, 0.01, 0.02]

#: All six evaluation scenes (four KITTI + Apollo + Ford).
ALL_SCENES = [
    "kitti-campus",
    "kitti-city",
    "kitti-residential",
    "kitti-road",
    "apollo-urban",
    "ford-campus",
]


@lru_cache(maxsize=32)
def frame(scene: str, index: int = 0) -> PointCloud:
    """A cached benchmark frame of the named scene."""
    return generate_frame(scene, index, sensor=SensorModel.benchmark_default())


def write_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ (and echo later)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
