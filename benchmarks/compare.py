"""Diff two BENCH_<name>.json perf records; fail on regressions.

Usage::

    python benchmarks/compare.py BASELINE.json CURRENT.json [--tolerance 0.20]

Wall times are compared with a relative tolerance (default: fail when the
current run is more than 20% slower); sizes and point counts are
deterministic for seeded scenes and must match exactly.  Exit codes:
0 = within tolerance, 1 = regression (or size/count mismatch), 2 = the
records are unusable (missing file, schema mismatch, different bench).

CI compares a fresh run against the committed baselines with a loose
``--tolerance`` (machines differ) — the exact-match size check is the
sharp edge there; the default tolerance is for same-machine A/B runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "dbgc-bench/1"


def load_record(path: str) -> dict:
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"compare: cannot read {path}: {exc}")
    if record.get("schema") != SCHEMA:
        print(
            f"compare: {path}: schema {record.get('schema')!r} != {SCHEMA!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return record


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = 0.20,
    ignore_wall: bool = False,
) -> list[str]:
    """Problems found comparing ``current`` against ``baseline`` (empty = ok)."""
    problems: list[str] = []
    if baseline["name"] != current["name"]:
        return [
            f"different benches: {baseline['name']!r} vs {current['name']!r}"
        ]
    if baseline.get("sensor_scale") != current.get("sensor_scale"):
        return [
            "different sensor scales: "
            f"{baseline.get('sensor_scale')} vs {current.get('sensor_scale')}"
        ]

    for section in ("sizes_bytes", "point_counts"):
        base = baseline.get(section, {})
        cur = current.get(section, {})
        for key in sorted(set(base) & set(cur)):
            if base[key] != cur[key]:
                problems.append(
                    f"{section}.{key}: {base[key]} -> {cur[key]} "
                    "(deterministic value changed)"
                )

    if not ignore_wall:
        base = baseline.get("wall_times_s", {})
        cur = current.get("wall_times_s", {})
        for key in sorted(set(base) & set(cur)):
            if base[key] <= 0.0:
                continue
            ratio = cur[key] / base[key]
            if ratio > 1.0 + tolerance:
                problems.append(
                    f"wall_times_s.{key}: {base[key]:.4f}s -> {cur[key]:.4f}s "
                    f"({ratio:.2f}x, tolerance {1.0 + tolerance:.2f}x)"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_<name>.json")
    parser.add_argument("current", help="current BENCH_<name>.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative wall-time slowdown (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--ignore-wall",
        action="store_true",
        help="only check the deterministic sizes and point counts",
    )
    args = parser.parse_args(argv)

    baseline = load_record(args.baseline)
    current = load_record(args.current)
    problems = compare(baseline, current, args.tolerance, args.ignore_wall)
    name = current["name"]
    if problems:
        print(f"compare: {name}: {len(problems)} regression(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    n_walls = len(
        set(baseline.get("wall_times_s", {})) & set(current.get("wall_times_s", {}))
    )
    print(
        f"compare: {name}: ok "
        f"({n_walls} timings within {1.0 + args.tolerance:.2f}x, "
        f"sizes/counts identical)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
