"""Perf-regression smoke: vectorized kernels vs their pure-Python oracles.

The PR 5 tentpole rewrote the sparse-pipeline hot loops (polyline
organization, radial reference coding, plain radial deltas) as batched
numpy kernels that must stay byte-identical to the original loop
implementations (kept as ``*_py`` oracles).  This bench asserts the two
properties CI cares about:

- identical outputs (and, for the stage-parallel compressor, identical
  payload bytes), and
- the vectorized kernels actually pay for themselves: >= 2x over the
  oracles on a real organized scene.

Timing loops are interleaved (fast/oracle alternating, min-of-N) so
CPU-frequency drift cancels instead of biasing one side.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.common import bench_sensor, frame, record_bench
from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.datasets import SensorModel, generate_frame
from repro.core.polyline import organize_polylines, organize_polylines_py
from repro.core.reference import (
    decode_radial,
    decode_radial_plain,
    decode_radial_plain_py,
    decode_radial_py,
    encode_radial,
    encode_radial_plain,
    encode_radial_plain_py,
    encode_radial_py,
)
from repro.geometry.spherical import (
    cartesian_to_spherical,
    spherical_error_bounds,
)

#: Required advantage of the vectorized kernels over the ``*_py`` oracles.
MIN_SPEEDUP = 2.0

_ROUNDS = 3


def _interleaved_best(fast, oracle):
    """(fast_best_s, oracle_best_s, fast_result, oracle_result)."""
    fast_best = oracle_best = float("inf")
    fast_result = oracle_result = None
    for _ in range(_ROUNDS):
        start = time.perf_counter()
        fast_result = fast()
        fast_best = min(fast_best, time.perf_counter() - start)
        start = time.perf_counter()
        oracle_result = oracle()
        oracle_best = min(oracle_best, time.perf_counter() - start)
    return fast_best, oracle_best, fast_result, oracle_result


def _sparse_group(scene: str = "kitti-city"):
    """The sparse-point input of the scene, as the encoder sees it.

    Always generated at the sensor's full benchmark resolution, whatever
    ``DBGC_BENCH_SENSOR_SCALE`` says: the vectorized kernels amortize
    per-call numpy overhead over realistic point counts, so a toy frame
    would measure overhead, not the kernels.
    """
    sensor = SensorModel.benchmark_default()
    cloud = generate_frame(scene, 0, sensor=sensor)
    params = DBGCParams()
    compressor = DBGCCompressor(params, sensor=sensor)
    dense_mask = compressor._classify(cloud.xyz)
    xyz = cloud.xyz[~dense_mask]
    tpr = cartesian_to_spherical(xyz)
    return (
        tpr[:, 0],
        tpr[:, 1],
        tpr[:, 2],
        xyz,
        params,
        compressor.u_theta,
        compressor.u_phi,
    )


def test_organize_polylines_speedup():
    theta, phi, _r, xyz, _params, u_theta, u_phi = _sparse_group()
    fast_s, py_s, fast_lines, py_lines = _interleaved_best(
        lambda: organize_polylines(theta, phi, xyz, u_theta, u_phi),
        lambda: organize_polylines_py(theta, phi, xyz, u_theta, u_phi),
    )
    assert len(fast_lines) == len(py_lines)
    for a, b in zip(fast_lines, py_lines):
        assert np.array_equal(a, b)
    speedup = py_s / fast_s
    record_bench(
        "kernels",
        wall_times_s={"organize.fast": fast_s, "organize.py": py_s},
        point_counts={"organize.points": len(xyz)},
    )
    assert speedup >= MIN_SPEEDUP, (
        f"organize_polylines only {speedup:.2f}x over the oracle "
        f"(needs >= {MIN_SPEEDUP}x on {len(xyz)} points)"
    )


def _radial_inputs():
    """Quantized sorted polylines, exactly as encode_sparse_group builds them."""
    theta, phi, radius, xyz, params, u_theta, u_phi = _sparse_group()
    lines = [
        line
        for line in organize_polylines(theta, phi, xyz, u_theta, u_phi)
        if len(line) >= 2
    ]
    r_max = max(float(max(radius[line].max() for line in lines)), 1e-9)
    q_theta, q_phi, q_r = spherical_error_bounds(params.q_xyz, r_max)
    d1_all = np.round(theta / (2.0 * q_theta)).astype(np.int64)
    d2_all = np.round(phi / (2.0 * q_phi)).astype(np.int64)
    d3_all = np.round(radius / (2.0 * q_r)).astype(np.int64)
    lines.sort(key=lambda line: (int(d2_all[line[0]]), int(d1_all[line[0]])))
    lines_d1 = [d1_all[line] for line in lines]
    lines_d3 = [d3_all[line] for line in lines]
    line_phis = [int(d2_all[line[0]]) for line in lines]
    th_phi_q = max(int(round(2.0 * u_phi / (2.0 * q_phi))), 0)
    th_r_q = max(int(round(params.th_r / (2.0 * q_r))), 1)
    return lines_d1, lines_d3, line_phis, th_phi_q, th_r_q


def test_radial_coding_speedup():
    lines_d1, lines_d3, line_phis, th_phi_q, th_r_q = _radial_inputs()

    enc_fast_s, enc_py_s, fast_enc, py_enc = _interleaved_best(
        lambda: encode_radial(lines_d1, lines_d3, line_phis, th_phi_q, th_r_q),
        lambda: encode_radial_py(lines_d1, lines_d3, line_phis, th_phi_q, th_r_q),
    )
    nabla, symbols = fast_enc
    assert np.array_equal(nabla, py_enc[0]) and list(symbols) == list(py_enc[1])

    symbols_arr = np.asarray(symbols, dtype=np.int64)
    dec_fast_s, dec_py_s, fast_dec, py_dec = _interleaved_best(
        lambda: decode_radial(
            lines_d1, line_phis, nabla, symbols_arr, th_phi_q, th_r_q
        ),
        lambda: decode_radial_py(
            lines_d1, line_phis, nabla, symbols_arr, th_phi_q, th_r_q
        ),
    )
    for a, b, original in zip(fast_dec, py_dec, lines_d3):
        assert np.array_equal(a, b) and np.array_equal(a, original)

    record_bench(
        "kernels",
        wall_times_s={
            "radial_encode.fast": enc_fast_s,
            "radial_encode.py": enc_py_s,
            "radial_decode.fast": dec_fast_s,
            "radial_decode.py": dec_py_s,
        },
    )
    enc_speedup = enc_py_s / enc_fast_s
    dec_speedup = dec_py_s / dec_fast_s
    assert enc_speedup >= MIN_SPEEDUP, f"encode_radial only {enc_speedup:.2f}x"
    assert dec_speedup >= MIN_SPEEDUP, f"decode_radial only {dec_speedup:.2f}x"


def test_radial_plain_round_trip_matches_oracle():
    _lines_d1, lines_d3, _phis, _thp, _thr = _radial_inputs()
    nabla = encode_radial_plain(lines_d3)
    assert np.array_equal(nabla, encode_radial_plain_py(lines_d3))
    lengths = [len(line) for line in lines_d3]
    decoded = decode_radial_plain(nabla, lengths)
    decoded_py = decode_radial_plain_py(nabla, lengths)
    for a, b, original in zip(decoded, decoded_py, lines_d3):
        assert np.array_equal(a, b) and np.array_equal(a, original)


def test_serial_parallel_byte_identity():
    """intra_frame_workers must never change a single payload byte."""
    cloud = frame("kitti-city")
    serial = DBGCCompressor(
        DBGCParams(), sensor=bench_sensor()
    ).compress_detailed(cloud)
    par = DBGCCompressor(
        DBGCParams(intra_frame_workers=4), sensor=bench_sensor()
    ).compress_detailed(cloud)
    assert serial.payload == par.payload
    assert np.array_equal(serial.mapping, par.mapping)
    assert serial.stream_sizes == par.stream_sizes
    record_bench(
        "kernels",
        wall_times_s={},
        sizes_bytes={"payload.q0.02": len(serial.payload)},
        point_counts={"frame.points": len(cloud)},
    )
