"""Unit tests for repro.entropy.bitio."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import BitReader, BitWriter


class TestBitWriter:
    def test_single_bits(self):
        w = BitWriter()
        for bit in [1, 0, 1, 0, 1, 0, 1, 0]:
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10101010])

    def test_partial_byte_padded(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == bytes([0b10000000])

    def test_write_bits_msb_first(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b11111, 5)
        assert w.getvalue() == bytes([0b10111111])

    def test_write_bits_across_bytes(self):
        w = BitWriter()
        w.write_bits(0xABCD, 16)
        assert w.getvalue() == bytes([0xAB, 0xCD])

    def test_zero_count(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.getvalue() == b""

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(0b100, 2)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_bit_length(self):
        w = BitWriter()
        w.write_bits(0, 13)
        assert w.bit_length == 13
        assert len(w) == 1  # one complete byte


class TestBitReader:
    def test_read_bits(self):
        r = BitReader(bytes([0xAB, 0xCD]))
        assert r.read_bits(16) == 0xABCD

    def test_read_bit_sequence(self):
        r = BitReader(bytes([0b10110000]))
        assert [r.read_bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_reads_zero_past_end(self):
        r = BitReader(b"")
        assert r.read_bit() == 0
        assert r.read_bits(32) == 0

    def test_partial_then_past_end(self):
        r = BitReader(bytes([0xFF]))
        assert r.read_bits(8) == 0xFF
        assert r.read_bits(4) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").read_bits(-1)

    def test_bits_consumed(self):
        r = BitReader(bytes([0xFF, 0xFF]))
        r.read_bits(5)
        assert r.bits_consumed == 5


class TestRoundtrip:
    @given(st.lists(st.integers(0, 1), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_bit_roundtrip(self, bits):
        w = BitWriter()
        for b in bits:
            w.write_bit(b)
        r = BitReader(w.getvalue())
        assert [r.read_bit() for _ in range(len(bits))] == bits

    @given(st.lists(st.tuples(st.integers(0, 2**30), st.integers(0, 31)), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_field_roundtrip(self, fields):
        fields = [(v & ((1 << c) - 1) if c else 0, c) for v, c in fields]
        w = BitWriter()
        for value, count in fields:
            w.write_bits(value, count)
        r = BitReader(w.getvalue())
        for value, count in fields:
            assert r.read_bits(count) == value
