"""Tests for per-point attribute compression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.core.attributes import decode_attributes, encode_attributes
from repro.datasets import generate_frame
from repro.geometry import PointCloud


class TestAttributeBlock:
    def test_empty(self):
        assert decode_attributes(b"") == {}
        data = encode_attributes({}, np.empty(0, dtype=np.int64))
        assert decode_attributes(data) == {}

    def test_roundtrip_identity_mapping(self):
        values = np.array([0.1, 0.5, 0.9, 0.3])
        mapping = np.arange(4)
        data = encode_attributes({"intensity": values}, mapping, steps=1 / 255)
        decoded = decode_attributes(data)["intensity"]
        assert np.abs(decoded - values).max() <= 0.5 / 255 + 1e-12

    def test_reorders_to_decoded_order(self):
        values = np.array([10.0, 20.0, 30.0])
        mapping = np.array([2, 0, 1])  # original i lands at decoded mapping[i]
        data = encode_attributes({"a": values}, mapping, steps=1.0)
        decoded = decode_attributes(data)["a"]
        assert np.allclose(decoded, [20.0, 30.0, 10.0])

    def test_multiple_attributes_sorted_names(self):
        mapping = np.arange(3)
        data = encode_attributes(
            {"b": np.ones(3), "a": np.zeros(3)}, mapping, steps=1.0
        )
        decoded = decode_attributes(data)
        assert list(decoded) == ["a", "b"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_attributes({"x": np.ones(2)}, np.arange(3))

    def test_bad_step_rejected(self):
        with pytest.raises(ValueError):
            encode_attributes({"x": np.ones(2)}, np.arange(2), steps=0.0)

    def test_per_attribute_steps(self):
        mapping = np.arange(2)
        data = encode_attributes(
            {"fine": np.array([1.23456, 2.34567]), "coarse": np.array([1.2, 2.3])},
            mapping,
            steps={"fine": 1e-4, "coarse": 0.1},
        )
        decoded = decode_attributes(data)
        assert np.abs(decoded["fine"] - [1.23456, 2.34567]).max() <= 5e-5 + 1e-12
        assert np.abs(decoded["coarse"] - [1.2, 2.3]).max() <= 0.05 + 1e-12

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, raw):
        values = np.array(raw)
        rng = np.random.default_rng(len(raw))
        mapping = rng.permutation(len(raw))
        data = encode_attributes({"i": values}, mapping, steps=1 / 255)
        decoded = decode_attributes(data)["i"]
        assert np.abs(decoded[mapping] - values).max() <= 0.5 / 255 + 1e-9


class TestPipelineAttributes:
    def test_end_to_end_intensity(self):
        pc = generate_frame("kitti-road", 0)
        cloud = PointCloud(pc.xyz[::6])
        rng = np.random.default_rng(0)
        # Intensity correlated with height: spatially coherent.
        intensity = np.clip(0.5 + 0.1 * cloud.z + rng.normal(0, 0.02, len(cloud)), 0, 1)
        compressor = DBGCCompressor(DBGCParams())
        result = compressor.compress_detailed(cloud, attributes={"intensity": intensity})
        assert "attributes" in result.stream_sizes
        restored, attrs = DBGCDecompressor().decompress_with_attributes(result.payload)
        assert len(restored) == len(cloud)
        decoded = attrs["intensity"]
        # decoded is in decoded order: compare through the mapping.
        assert np.abs(decoded[result.mapping] - intensity).max() <= 0.5 / 255 + 1e-9

    def test_stream_without_attributes_decodes_empty(self):
        cloud = PointCloud(generate_frame("kitti-road", 0).xyz[::20])
        payload = DBGCCompressor(DBGCParams()).compress(cloud)
        _, attrs = DBGCDecompressor().decompress_with_attributes(payload)
        assert attrs == {}

    def test_attribute_block_is_small_for_coherent_data(self):
        cloud = PointCloud(generate_frame("kitti-road", 0).xyz[::6])
        intensity = np.clip(0.5 + 0.1 * cloud.z, 0, 1)
        result = DBGCCompressor(DBGCParams()).compress_detailed(
            cloud, attributes={"intensity": intensity}
        )
        # Coherent intensity should cost well under 8 bits/point.
        assert result.stream_sizes["attributes"] < len(cloud)
