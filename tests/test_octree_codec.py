"""Unit and property tests for the octree structure and codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import OctreeCodec, build_octree_structure
from repro.octree.octree import expand_occupancy_level


def _random_cloud(n, scale=20.0, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-scale, scale, size=(n, 3))


class TestStructure:
    def test_single_point(self):
        s = build_octree_structure(np.array([0]), depth=0)
        assert s.n_points == 1
        assert s.n_leaves == 1
        assert s.occupancy_stream().size == 0

    def test_empty(self):
        s = build_octree_structure(np.array([], dtype=np.int64), depth=3)
        assert s.n_points == 0
        assert s.occupancy_stream().size == 0

    def test_two_points_one_level(self):
        # Cells 0 and 7 of a depth-1 tree -> root occupancy 0b10000001.
        s = build_octree_structure(np.array([0, 7]), depth=1)
        assert s.occupancy_stream().tolist() == [0b10000001]
        assert s.leaf_codes.tolist() == [0, 7]

    def test_duplicate_points_counted(self):
        s = build_octree_structure(np.array([3, 3, 3, 5]), depth=1)
        assert s.leaf_counts.tolist() == [3, 1]
        assert s.n_points == 4

    def test_code_out_of_depth_rejected(self):
        with pytest.raises(ValueError):
            build_octree_structure(np.array([8]), depth=1)

    def test_expand_inverts_build(self):
        rng = np.random.default_rng(2)
        codes = np.unique(rng.integers(0, 8**3, size=50))
        s = build_octree_structure(codes, depth=3)
        nodes = np.zeros(1, dtype=np.int64)
        for level in range(3):
            nodes = expand_occupancy_level(nodes, s.occupancy[level])
        assert np.array_equal(nodes, codes)

    def test_expand_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expand_occupancy_level(np.array([0, 1]), np.array([1], dtype=np.uint8))


class TestOctreeCodec:
    def test_rejects_bad_leaf(self):
        with pytest.raises(ValueError):
            OctreeCodec(0.0)

    def test_empty_cloud(self):
        codec = OctreeCodec(0.04)
        data = codec.encode(np.empty((0, 3)))
        assert codec.decode(data).shape == (0, 3)
        assert codec.mapping(np.empty((0, 3))).size == 0

    def test_single_point_error_bound(self):
        codec = OctreeCodec(0.04)
        xyz = np.array([[1.234, -5.678, 9.1011]])
        out = codec.decode(codec.encode(xyz))
        assert np.max(np.abs(out - xyz)) <= 0.02 + 1e-12

    def test_roundtrip_count_and_error_bound(self):
        q = 0.02
        codec = OctreeCodec(2 * q)
        xyz = _random_cloud(2000)
        decoded = codec.decode(codec.encode(xyz))
        assert decoded.shape == xyz.shape
        mapping = codec.mapping(xyz)
        err = np.abs(decoded[mapping] - xyz)
        assert err.max() <= q + 1e-9

    def test_mapping_is_permutation(self):
        codec = OctreeCodec(0.04)
        xyz = _random_cloud(500, seed=3)
        mapping = codec.mapping(xyz)
        assert sorted(mapping.tolist()) == list(range(500))

    def test_duplicate_points_preserved(self):
        codec = OctreeCodec(0.04)
        xyz = np.repeat(_random_cloud(10, seed=4), 5, axis=0)
        decoded = codec.decode(codec.encode(xyz))
        assert decoded.shape == (50, 3)

    def test_compresses_dense_clouds_well(self):
        # Dense object-like cloud: ratio should be high (paper Fig. 3 left end).
        rng = np.random.default_rng(5)
        xyz = rng.uniform(0, 1.0, size=(5000, 3))  # ~5k points in 1 m^3
        codec = OctreeCodec(0.04)
        data = codec.encode(xyz)
        ratio = (5000 * 12) / len(data)
        assert ratio > 15

    def test_sparse_cloud_ratio_degrades(self):
        # The paper's motivating observation: sparsity hurts the octree.
        rng = np.random.default_rng(6)
        dense = rng.uniform(0, 1.0, size=(3000, 3))
        sparse = rng.uniform(0, 40.0, size=(3000, 3))
        codec = OctreeCodec(0.04)
        ratio_dense = 3000 * 12 / len(codec.encode(dense))
        ratio_sparse = 3000 * 12 / len(codec.encode(sparse))
        assert ratio_dense > 2 * ratio_sparse

    def test_collinear_degenerate_cloud(self):
        xyz = np.column_stack([np.linspace(0, 10, 200), np.zeros(200), np.zeros(200)])
        codec = OctreeCodec(0.04)
        decoded = codec.decode(codec.encode(xyz))
        mapping = codec.mapping(xyz)
        assert np.max(np.abs(decoded[mapping] - xyz)) <= 0.02 + 1e-9

    @given(st.integers(0, 300), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, n, seed):
        rng = np.random.default_rng(seed)
        xyz = rng.uniform(-15, 15, size=(n, 3))
        q = 0.05
        codec = OctreeCodec(2 * q)
        decoded = codec.decode(codec.encode(xyz))
        assert decoded.shape == xyz.shape
        if n:
            mapping = codec.mapping(xyz)
            assert np.max(np.abs(decoded[mapping] - xyz)) <= q + 1e-9
