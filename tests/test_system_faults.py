"""Fault-tolerance tests: protocol v2, fault injection, retry, quarantine,
degradation policies, and the deterministic 50-frame acceptance run."""

import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.datasets import SensorModel, generate_frame
from repro.geometry import PointCloud
from repro.system import (
    BandwidthShaper,
    DbgcClient,
    DbgcServer,
    FaultSpec,
    FaultyChannel,
    SqliteFrameStore,
)
from repro.system.client import _SendQueue
from repro.system.protocol import (
    ACK_STORED,
    TYPE_ACK,
    TYPE_END,
    TYPE_FRAME,
    CorruptPayloadError,
    Record,
    encode_record,
    read_record,
)

pytestmark = pytest.mark.timeout(120)


def _loopback_pair():
    a, b = socket.socketpair()
    return a, b


@pytest.fixture
def tiny_cloud():
    pc = generate_frame("kitti-campus", 0)
    return PointCloud(pc.xyz[::50])


# ---------------------------------------------------------------------------
# Protocol v2 records
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        a, b = _loopback_pair()
        with a, b:
            a.sendall(encode_record(TYPE_FRAME, 17, b"hello payload", flags=1))
            record = read_record(b)
        assert record == Record(TYPE_FRAME, 17, 1, b"hello payload")
        assert record.resync_skipped == 0

    def test_end_and_ack_records(self):
        a, b = _loopback_pair()
        with a, b:
            a.sendall(encode_record(TYPE_END, 0))
            a.sendall(encode_record(TYPE_ACK, 5, flags=ACK_STORED))
            assert read_record(b).type == TYPE_END
            ack = read_record(b)
        assert (ack.type, ack.frame_index) == (TYPE_ACK, 5)

    def test_end_marker_index_collision_regression(self):
        # v1 treated frame_index == 0xFFFFFFFF as end-of-stream; v2's
        # explicit record type lets that index round-trip as a frame.
        a, b = _loopback_pair()
        with a, b:
            a.sendall(encode_record(TYPE_FRAME, 0xFFFFFFFF, b"last frame"))
            record = read_record(b)
        assert record.type == TYPE_FRAME
        assert record.frame_index == 0xFFFFFFFF
        assert record.payload == b"last frame"

    def test_corrupt_payload_detected_with_bytes_kept(self):
        wire = bytearray(encode_record(TYPE_FRAME, 3, b"sensitive-bits"))
        wire[-6] ^= 0x10  # flip one payload bit, CRC untouched
        a, b = _loopback_pair()
        with a, b:
            a.sendall(bytes(wire))
            with pytest.raises(CorruptPayloadError) as info:
                read_record(b)
        assert info.value.frame_index == 3
        assert len(info.value.payload) == len(b"sensitive-bits")

    def test_header_corruption_resyncs_to_next_record(self):
        good = encode_record(TYPE_FRAME, 9, b"ok")
        a, b = _loopback_pair()
        with a, b:
            a.sendall(b"\x00garbage\xff" + good)
            record = read_record(b)
        assert (record.frame_index, record.payload) == (9, b"ok")
        assert record.resync_skipped > 0

    def test_encode_validation(self):
        with pytest.raises(ValueError):
            encode_record(99, 0)
        with pytest.raises(ValueError):
            encode_record(TYPE_FRAME, -1)
        with pytest.raises(ValueError):
            encode_record(TYPE_FRAME, 2**32)


# ---------------------------------------------------------------------------
# FaultyChannel determinism
# ---------------------------------------------------------------------------


class TestFaultyChannel:
    def test_plans_are_deterministic(self):
        spec = FaultSpec(corrupt_rate=0.5, disconnect_rate=0.3, jitter=0.2)
        a = FaultyChannel(seed=42, spec=spec)
        b = FaultyChannel(seed=42, spec=spec)
        plans_a = [a.plan(i, t, 500) for i in range(30) for t in range(3)]
        plans_b = [b.plan(i, t, 500) for i in range(30) for t in range(3)]
        assert plans_a == plans_b
        assert a.log == b.log
        assert any(not p.clean for p in plans_a)

    def test_plans_independent_of_call_order(self):
        spec = FaultSpec(corrupt_rate=0.5)
        a = FaultyChannel(seed=1, spec=spec)
        b = FaultyChannel(seed=1, spec=spec)
        forward = [a.plan(i, 0, 300) for i in range(10)]
        backward = [b.plan(i, 0, 300) for i in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_different_seed_differs(self):
        spec = FaultSpec(corrupt_rate=0.5, disconnect_rate=0.5)
        a = FaultyChannel(seed=0, spec=spec)
        b = FaultyChannel(seed=1, spec=spec)
        assert [a.plan(i, 0, 400) for i in range(20)] != [
            b.plan(i, 0, 400) for i in range(20)
        ]

    def test_forced_disconnect_first_attempt_only(self):
        chan = FaultyChannel(seed=0, spec=FaultSpec(force_disconnect_frames={4}))
        assert chan.plan(4, 0, 100).cut_after is not None
        assert chan.plan(4, 1, 100).clean
        assert chan.plan(5, 0, 100).clean

    def test_jitter_factor_bounds(self):
        chan = FaultyChannel(seed=0, spec=FaultSpec(jitter=0.25))
        factors = [chan.plan(i, 0, 100).jitter_factor for i in range(50)]
        assert all(0.75 <= f <= 1.25 for f in factors)
        assert len(set(factors)) > 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(corrupt_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(jitter=1.0)

    def test_shaper_delegation(self):
        chan = FaultyChannel(BandwidthShaper(8.0), seed=0)
        assert chan.transfer_seconds(1_000_000) == pytest.approx(1.0)
        assert not chan.supports(1_000_000, 10.0)
        unshaped = FaultyChannel(seed=0)
        assert unshaped.transfer_seconds(10**9) == 0.0
        assert unshaped.supports(10**9, 1000.0)


# ---------------------------------------------------------------------------
# Client/server fault paths
# ---------------------------------------------------------------------------


class TestFaultPaths:
    def test_disconnect_triggers_reconnect_and_byte_identical_store(self, tiny_cloud):
        # Mid-frame disconnects on two frames: the client must reconnect,
        # retransmit, and the store must match the serial pipeline exactly.
        params = DBGCParams()
        frames = [tiny_cloud, PointCloud(tiny_cloud.xyz[1:]), PointCloud(tiny_cloud.xyz[2:])]
        expected = [DBGCCompressor(params).compress(f) for f in frames]
        chan = FaultyChannel(seed=5, spec=FaultSpec(force_disconnect_frames={0, 2}))
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(
                server.address, params=params, channel=chan,
                ack_timeout=2.0, backoff_base=0.01,
            ) as client:
                for i, frame in enumerate(frames):
                    client.send_frame(i, frame)
            server.join()
        assert store.frame_indices() == [0, 1, 2]
        for i, payload in enumerate(expected):
            assert store.get_payload(i) == payload
        assert client.report.total_retries == 2
        assert client.report.n_stored == 3
        assert server.connections == 3  # initial + one per forced disconnect
        assert not server.quarantine

    def test_corrupt_payload_quarantined_and_stream_continues(self, tiny_cloud):
        # A payload that passes the CRC but fails decoding lands in
        # quarantine with its exception; later frames still decode.
        store = SqliteFrameStore()
        with DbgcServer(store, mode="decompress") as server:
            with DbgcClient(server.address, ack_timeout=2.0) as client:
                client.send_payload(0, b"DBGC-shaped garbage that cannot decode")
                client.send_frame(1, tiny_cloud)
            server.join()
        assert store.frame_indices() == [1]
        assert len(store.get_cloud(1)) == len(tiny_cloud)
        assert len(server.quarantine) == 1
        bad = server.quarantine[0]
        assert bad.frame_index == 0
        assert bad.payload == b"DBGC-shaped garbage that cannot decode"
        assert bad.error  # exception text preserved
        traces = {t.frame_index: t for t in client.report.traces}
        assert traces[0].status == "quarantined"
        assert traces[1].status == "stored"

    def test_wire_corruption_quarantined_with_crc_error(self):
        # Bit flips in flight: the server's payload CRC catches them.
        spec = FaultSpec(corrupt_rate=1.0)
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(
                server.address, channel=FaultyChannel(seed=11, spec=spec),
                ack_timeout=2.0,
            ) as client:
                client.send_payload(7, os.urandom(256))
            server.join()
        assert len(store) == 0
        assert len(server.quarantine) == 1
        assert server.quarantine[0].frame_index == 7
        assert "CRC" in server.quarantine[0].error
        assert client.report.n_quarantined == 1

    def test_ack_loss_retransmit_dedupe_stores_once(self):
        spec = FaultSpec(ack_drop_rate=0.5)
        chan = FaultyChannel(seed=3, spec=spec)
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store", channel=chan) as server:
            with DbgcClient(
                server.address, ack_timeout=0.3, backoff_base=0.01
            ) as client:
                payloads = {i: os.urandom(100) for i in range(10)}
                for i, payload in payloads.items():
                    client.send_payload(i, payload)
            server.join()
        assert store.frame_indices() == list(range(10))
        for i, payload in payloads.items():
            assert store.get_payload(i) == payload
        assert client.report.total_retries > 0
        assert any(kind == "duplicate" for kind, _ in server.events)
        assert client.report.n_stored == 10

    def test_retries_exhausted_records_drop(self):
        # Every attempt of frame 0 dies mid-record -> the frame is
        # dropped after max_retries, and the stream keeps going.
        spec = FaultSpec(disconnect_rate=1.0)
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(
                server.address, channel=FaultyChannel(seed=2, spec=spec),
                max_retries=2, ack_timeout=0.5, backoff_base=0.01,
            ) as client:
                client.send_payload(0, os.urandom(64))
            server.join()
        trace = client.report.traces[0]
        assert trace.status == "dropped"
        assert trace.attempts == 3
        assert client.report.n_dropped == 1
        assert any(e.kind == "drop" for e in client.report.events)


# ---------------------------------------------------------------------------
# Graceful degradation policies
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_send_queue_policies(self):
        queue = _SendQueue(2)
        queue.put_block("a")
        queue.put_block("b")
        assert queue.full()
        evicted = queue.put_drop_oldest("c")
        assert evicted == "a"
        assert queue.get() == "b"
        assert queue.put_drop_oldest("d") is None
        queue.put_priority("e")  # sentinel path ignores capacity
        assert [queue.get(), queue.get(), queue.get()] == ["c", "d", "e"]
        with pytest.raises(ValueError):
            _SendQueue(0)

    def test_block_policy_applies_backpressure(self):
        queue = _SendQueue(1)
        queue.put_block("x")
        unblocked = []

        def producer():
            queue.put_block("y")
            unblocked.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not unblocked  # producer is waiting on the full queue
        assert queue.get() == "x"
        thread.join(timeout=2.0)
        assert unblocked

    def test_drop_oldest_under_congestion(self):
        # A link ~50x too slow for the offered load: the bounded queue
        # evicts stale frames instead of stalling the sensor.
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(
                server.address, channel=BandwidthShaper(0.02),
                queue_capacity=2, overflow_policy="drop-oldest",
                ack_timeout=5.0,
            ) as client:
                for i in range(8):
                    client.send_payload(i, os.urandom(64))
            server.join()
        report = client.report
        assert report.n_dropped > 0
        assert report.n_stored + report.n_dropped == 8
        assert len(store) == report.n_stored
        drop_events = [e for e in report.events if e.kind == "drop"]
        assert len(drop_events) == report.n_dropped
        # Delivered frames are the fresher ones, dropped ones the stalest.
        assert max(store.frame_indices()) == 7

    def test_coarsen_policy_degrades_quality_not_delivery(self, tiny_cloud):
        # Payloads at q=0.02 need ~120 kbps at 10 fps; offer 50 kbps so
        # supports() fails and the client recompresses at 4x the bound.
        sensor = SensorModel.benchmark_default()
        store = SqliteFrameStore()
        fine = DBGCCompressor(DBGCParams(), sensor=sensor).compress(tiny_cloud)
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(
                server.address, sensor=sensor,
                channel=BandwidthShaper(0.05),
                overflow_policy="coarsen", coarsen_factor=4.0,
                ack_timeout=10.0,
            ) as client:
                trace = client.send_frame(0, tiny_cloud)
            server.join()
        assert trace.degraded
        assert trace.status == "stored"
        assert trace.payload_bytes < len(fine)
        assert store.get_payload(0) != fine  # genuinely recompressed
        assert client.report.n_degraded == 1
        assert any(e.kind == "degrade" for e in client.report.events)

    def test_fast_link_never_degrades(self, tiny_cloud):
        sensor = SensorModel.benchmark_default()
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(
                server.address, sensor=sensor,
                channel=BandwidthShaper(100.0), overflow_policy="coarsen",
            ) as client:
                trace = client.send_frame(0, tiny_cloud)
            server.join()
        assert not trace.degraded
        assert client.report.n_degraded == 0


# ---------------------------------------------------------------------------
# Lifecycle: context managers, half-built clients, locking
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_client_connect_failure_is_clean(self):
        # Reserve a port with nothing listening on it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        before = threading.active_count()
        with pytest.raises(ConnectionError):
            DbgcClient(("127.0.0.1", port), connect_retries=1,
                       backoff_base=0.01, connect_timeout=0.5)
        assert threading.active_count() == before  # no sender thread leaked

    def test_client_initial_connect_retries_until_server_up(self):
        probe = socket.socket()
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        store = SqliteFrameStore()
        holder = {}

        def late_start():
            time.sleep(0.3)
            holder["server"] = DbgcServer(store, mode="store", port=port).start()

        thread = threading.Thread(target=late_start, daemon=True)
        thread.start()
        with DbgcClient(
            ("127.0.0.1", port), connect_retries=8,
            backoff_base=0.1, connect_timeout=0.5,
        ) as client:
            thread.join()
            client.send_payload(0, b"made it")
        holder["server"].join()
        assert store.get_payload(0) == b"made it"

    def test_context_managers_close_sockets(self):
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(server.address) as client:
                client.send_payload(0, b"x")
            server.join()
        assert len(store) == 1
        # Both ends are down: a fresh connect must fail.
        with pytest.raises(OSError):
            socket.create_connection(server.address, timeout=0.5)

    def test_server_close_without_end_record(self):
        # A client that vanishes without END must not wedge the server.
        store = SqliteFrameStore()
        server = DbgcServer(store, mode="store").start()
        raw = socket.create_connection(server.address, timeout=2.0)
        raw.sendall(encode_record(TYPE_FRAME, 0, b"abc"))
        read_record(raw)  # consume the ACK
        raw.close()  # disappear mid-stream
        time.sleep(0.05)
        server.close()  # must return promptly, not block in accept/recv
        assert len(store) == 1

    def test_receipts_guarded_by_lock(self, tiny_cloud):
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store") as server:
            assert server.lock is not None
            with DbgcClient(server.address) as client:
                client.send_frame(0, tiny_cloud)
                # Concurrent reads race the serve thread through snapshot().
                receipts, quarantine, events = server.snapshot()
                assert isinstance(receipts, list)
            server.join()
        receipts, quarantine, events = server.snapshot()
        assert [r[0] for r in receipts] == [0]
        assert quarantine == []
        assert any(kind == "accept" for kind, _ in events)
        assert any(kind == "end" for kind, _ in events)


# ---------------------------------------------------------------------------
# Acceptance: deterministic seeded fault run over a 50-frame stream
# ---------------------------------------------------------------------------


class TestAcceptanceRun:
    N_FRAMES = 50
    SEED = 7

    @classmethod
    def _payloads(cls):
        rng = np.random.default_rng(cls.SEED)
        return {i: rng.bytes(180 + int(rng.integers(0, 120))) for i in range(cls.N_FRAMES)}

    def _run(self, payloads):
        spec = FaultSpec(
            corrupt_rate=0.10,  # >= 5% frame corruption
            force_disconnect_frames=frozenset({10, 30}),  # 2 forced disconnects
        )
        store = SqliteFrameStore()
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(
                server.address, channel=FaultyChannel(seed=self.SEED, spec=spec),
                ack_timeout=2.0, backoff_base=0.01,
            ) as client:
                for i, payload in payloads.items():
                    client.send_payload(i, payload)
            server.join()  # raises if the serve thread died
        return store, server, client.report

    def test_seeded_fault_run_is_complete_and_deterministic(self):
        payloads = self._payloads()
        store, server, report = self._run(payloads)

        # Zero server-thread deaths despite corruption + disconnects.
        quarantined = sorted(q.frame_index for q in server.quarantine)
        stored = store.frame_indices()

        # Every frame is accounted for exactly once: stored or quarantined.
        assert sorted(stored + quarantined) == list(range(self.N_FRAMES))
        assert quarantined  # ~10% corruption must surface
        # Uncorrupted frames stored exactly once, byte-intact.
        for i in stored:
            assert store.get_payload(i) == payloads[i]
        # Quarantined frames kept their (damaged) bytes and exceptions.
        for q in server.quarantine:
            assert q.error and len(q.payload) == len(payloads[q.frame_index])
        # The two forced disconnects were retried and recovered.
        assert report.total_retries >= 2
        assert server.connections >= 3
        assert {10, 30}.issubset(set(stored + quarantined))
        # Report accounts for every frame and event.
        assert report.n_stored == len(stored)
        assert report.n_quarantined == len(quarantined)
        assert report.n_dropped == 0
        counts = report.event_counts()
        assert counts.get("retry", 0) == report.total_retries
        assert counts.get("quarantine", 0) == report.n_quarantined

        # Same seed -> identical accounting, bit for bit.
        store2, server2, report2 = self._run(payloads)
        assert report.accounting_key() == report2.accounting_key()
        assert store2.frame_indices() == stored
        assert sorted(q.frame_index for q in server2.quarantine) == quarantined
