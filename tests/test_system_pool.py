"""The shared process-pool machinery: sticky routing, zero-copy transfer.

:mod:`repro.system.pool` underlies both the client-side parallel
compressor (keyless round-robin) and the server's decode offload tier
(per-stream sticky affinity).  These tests pin the properties the decode
tier's correctness hangs on: a key's submissions land on one worker in
FIFO order, slots are assigned least-loaded-first, the in-flight window
bounds the queue, and a numpy array crosses the process boundary through
:func:`~repro.system.pool.pack_array` /
:func:`~repro.system.pool.unpack_array` without a copy on arrival.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.geometry import PointCloud
from repro.system import StickyWorkerPool, pack_array, unpack_array

pytestmark = pytest.mark.timeout(180)


def _worker_pid() -> int:
    return os.getpid()


def _echo(key: str, seq: int) -> tuple[str, int, int]:
    return key, seq, os.getpid()


def _slow_echo(value: int, delay_s: float) -> int:
    time.sleep(delay_s)
    return value


def _boom() -> None:
    raise RuntimeError("worker exploded")


# -- zero-copy array transfer ------------------------------------------------


def test_pack_unpack_roundtrip_is_zero_copy():
    arr = np.arange(30, dtype=np.float64).reshape(10, 3)
    meta, buffers = pack_array(arr)
    assert isinstance(meta, bytes) and all(isinstance(b, bytes) for b in buffers)
    rebuilt = unpack_array(meta, buffers)
    assert np.array_equal(rebuilt, arr)
    assert rebuilt.dtype == np.float64 and rebuilt.shape == (10, 3)
    # The rebuilt array is a view over the shipped bytes, not a copy.
    assert not rebuilt.flags["OWNDATA"]
    assert not rebuilt.flags["WRITEABLE"]


def test_pack_array_handles_non_contiguous_input():
    arr = np.arange(60, dtype=np.float64).reshape(10, 6)[:, ::2]
    assert not arr.flags["C_CONTIGUOUS"]
    meta, buffers = pack_array(arr)
    assert np.array_equal(unpack_array(meta, buffers), arr)


def test_point_cloud_adopt_skips_the_defensive_copy():
    arr = np.arange(12, dtype=np.float64).reshape(4, 3)
    adopted = PointCloud._adopt(arr)
    # The constructor copies; _adopt must wrap the same buffer.
    assert adopted.xyz is arr
    assert not arr.flags["WRITEABLE"]  # frozen in place
    assert PointCloud(arr).xyz is not arr
    with pytest.raises(ValueError, match="float64"):
        PointCloud._adopt(np.zeros((2, 3), dtype=np.float32))
    with pytest.raises(ValueError, match="C-contiguous"):
        PointCloud._adopt(np.zeros((4, 6))[:, ::2])


def test_adopted_cloud_survives_pool_roundtrip():
    arr = np.random.default_rng(3).uniform(-10, 10, size=(50, 3))
    cloud = PointCloud._adopt(unpack_array(*pack_array(arr)))
    assert np.array_equal(cloud.xyz, arr)
    assert len(cloud) == 50


# -- sticky routing ----------------------------------------------------------


def test_sticky_keys_balance_least_loaded_first():
    with StickyWorkerPool(2) as pool:
        slots = [pool.slot_for(f"stream-{k}") for k in range(4)]
        # First-seen assignment spreads keys evenly over the two slots...
        assert sorted(slots) == [0, 0, 1, 1]
        # ...and is stable on every later lookup.
        assert [pool.slot_for(f"stream-{k}") for k in range(4)] == slots


def test_same_key_same_worker_in_fifo_order():
    with StickyWorkerPool(2) as pool:
        futures = [
            pool.submit(_echo, f"s{k}", i, key=f"s{k}")
            for i in range(8)
            for k in range(3)
        ]
        results = [f.result() for f in futures]
    by_key: dict[str, list[tuple[int, int]]] = {}
    for key, seq, pid in results:
        by_key.setdefault(key, []).append((seq, pid))
    for key, entries in by_key.items():
        # One worker process per key, results in submission order.
        assert len({pid for _, pid in entries}) == 1, key
        assert [seq for seq, _ in entries] == sorted(seq for seq, _ in entries)
    # 3 keys over 2 slots: both slots hold at least one key.
    assert len({entries[0][1] for entries in by_key.values()}) == 2


def test_keyless_submissions_round_robin():
    with StickyWorkerPool(2) as pool:
        for _ in range(6):
            pool.submit(_worker_pid).result()
        assert pool.submitted_per_slot() == [3, 3]


# -- in-flight window + depth ------------------------------------------------


def test_depth_tracks_in_flight_and_drains_to_zero():
    with StickyWorkerPool(1, max_in_flight=4) as pool:
        futures = [pool.submit(_slow_echo, i, 0.05) for i in range(4)]
        assert pool.depth() > 0
        assert [f.result() for f in futures] == list(range(4))
        deadline = time.monotonic() + 5.0
        while pool.depth() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert pool.depth() == 0


def test_worker_exception_propagates_and_frees_the_window():
    with StickyWorkerPool(1, max_in_flight=1) as pool:
        with pytest.raises(RuntimeError, match="worker exploded"):
            pool.submit(_boom).result()
        # The window slot was released despite the failure.
        assert pool.submit(_slow_echo, 7, 0.0).result() == 7


def test_map_stream_preserves_order_and_pulls_lazily():
    pulled = 0

    def endless():
        nonlocal pulled
        while True:
            yield (pulled, 0.0)
            pulled += 1

    with StickyWorkerPool(2) as pool:
        stream = pool.map_stream(_slow_echo, endless())
        consumed = [next(stream) for _ in range(5)]
        stream.close()
    assert consumed == list(range(5))
    assert pulled <= 2 * 2 + len(consumed) + 1


# -- lifecycle + validation --------------------------------------------------


def test_shutdown_is_idempotent_and_blocks_new_submissions():
    pool = StickyWorkerPool(1)
    assert pool.submit(_worker_pid).result() > 0
    pool.shutdown()
    pool.shutdown()  # no-op
    with pytest.raises(RuntimeError, match="shut down"):
        pool.submit(_worker_pid)


def test_constructor_validation():
    with pytest.raises(ValueError, match="at least one worker"):
        StickyWorkerPool(0)
    with pytest.raises(ValueError, match="max_in_flight"):
        StickyWorkerPool(1, max_in_flight=0)
