"""Tests for DBGCParams."""

import math

import pytest

from repro.core import DBGCParams


class TestValidation:
    def test_defaults_are_paper_values(self):
        p = DBGCParams()
        assert p.q_xyz == 0.02
        assert p.k == 10
        assert p.n_groups == 3
        assert p.th_r == 2.0
        assert p.outlier_mode == "quadtree"

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            DBGCParams(q_xyz=0.0)

    def test_rejects_k_below_2(self):
        # Section 3.2: k must be at least 2 so the leaf diagonal fits in eps.
        with pytest.raises(ValueError):
            DBGCParams(k=1)

    def test_rejects_bad_modes(self):
        with pytest.raises(ValueError):
            DBGCParams(clustering="fancy")
        with pytest.raises(ValueError):
            DBGCParams(outlier_mode="zip")
        with pytest.raises(ValueError):
            DBGCParams(min_pts_mode="area")

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            DBGCParams(dense_fraction=1.5)

    def test_rejects_bad_groups_and_threshold(self):
        with pytest.raises(ValueError):
            DBGCParams(n_groups=0)
        with pytest.raises(ValueError):
            DBGCParams(th_r=0.0)
        with pytest.raises(ValueError):
            DBGCParams(min_pts=0)


class TestDerived:
    def test_leaf_side_is_twice_bound(self):
        assert DBGCParams(q_xyz=0.02).leaf_side == pytest.approx(0.04)

    def test_eps_formula(self):
        assert DBGCParams(q_xyz=0.02, k=10).eps == pytest.approx(0.2)

    def test_min_pts_volume_formula(self):
        # Paper: pi * k^3 / 6 leaf cells fit in the eps-sphere.
        p = DBGCParams(k=10, min_pts_mode="volume")
        assert p.effective_min_pts == int(math.pi * 1000 / 6)

    def test_min_pts_surface_formula(self):
        p = DBGCParams(k=10, min_pts_mode="surface")
        assert p.effective_min_pts == int(math.pi * 100 / 4)

    def test_min_pts_override_and_scale(self):
        assert DBGCParams(min_pts=42).effective_min_pts == 42
        scaled = DBGCParams(k=10, min_pts_mode="volume", min_pts_scale=0.5)
        assert scaled.effective_min_pts == int(math.pi * 1000 / 6 * 0.5)

    def test_group_ablation(self):
        assert DBGCParams(grouping=False).effective_n_groups == 1
        assert DBGCParams(grouping=True, n_groups=3).effective_n_groups == 3

    def test_with_updates(self):
        p = DBGCParams().with_updates(q_xyz=0.05, n_groups=2)
        assert p.q_xyz == 0.05
        assert p.n_groups == 2
        assert p.k == 10  # unchanged
