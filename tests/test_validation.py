"""Tests for stream validation (and its CLI verify command)."""

import numpy as np
import pytest

from repro.cli import main
from repro.core import DBGCCompressor, DBGCParams
from repro.core.validation import validate_stream
from repro.datasets import SensorModel, generate_frame, save_npz
from repro.geometry import PointCloud


@pytest.fixture(scope="module")
def sensor():
    return SensorModel.benchmark_default().scaled(0.4)


@pytest.fixture(scope="module")
def cloud(sensor):
    return PointCloud(generate_frame("kitti-road", 0, sensor=sensor).xyz)


@pytest.fixture(scope="module")
def payload(cloud, sensor):
    return DBGCCompressor(DBGCParams(), sensor=sensor).compress(cloud)


class TestValidate:
    def test_valid_stream_structural(self, payload, cloud):
        report = validate_stream(payload)
        assert report.ok
        assert report.n_points == len(cloud)
        assert report.q_xyz == 0.02
        assert report.issues == []

    def test_valid_stream_against_original(self, payload, cloud, sensor):
        report = validate_stream(payload, original=cloud, sensor=sensor)
        assert report.ok
        assert report.max_euclidean_error is not None
        assert report.max_euclidean_error <= np.sqrt(3) * 0.02 * (1 + 1e-6)

    def test_garbage_is_rejected(self):
        report = validate_stream(b"garbage bytes here")
        assert not report.ok
        assert any("container" in issue for issue in report.issues)

    def test_truncated_stream_flagged(self, payload):
        report = validate_stream(payload[: len(payload) // 2])
        assert not report.ok

    def test_wrong_original_flagged(self, payload, cloud, sensor):
        other = PointCloud(cloud.xyz[:-5])
        report = validate_stream(payload, original=other, sensor=sensor)
        assert not report.ok
        assert any("count" in issue for issue in report.issues)

    def test_mismatched_original_same_count(self, payload, cloud, sensor):
        shifted = PointCloud(cloud.xyz + 1.0)
        report = validate_stream(payload, original=shifted, sensor=sensor)
        assert not report.ok


class TestVerifyCommand:
    def test_cli_roundtrip(self, tmp_path, capsys):
        frame_path = tmp_path / "f.npz"
        main(["simulate", "kitti-road", str(frame_path), "--sensor-scale", "0.2"])
        dbgc_path = tmp_path / "f.dbgc"
        main(["compress", str(frame_path), str(dbgc_path), "--sensor-scale", "0.2"])
        capsys.readouterr()
        code = main(
            ["verify", str(dbgc_path), "--original", str(frame_path),
             "--sensor-scale", "0.2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("OK")

    def test_cli_detects_corruption(self, tmp_path, capsys):
        frame_path = tmp_path / "f.npz"
        main(["simulate", "kitti-road", str(frame_path), "--sensor-scale", "0.2"])
        dbgc_path = tmp_path / "f.dbgc"
        main(["compress", str(frame_path), str(dbgc_path), "--sensor-scale", "0.2"])
        data = bytearray(dbgc_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        bad_path = tmp_path / "bad.dbgc"
        bad_path.write_bytes(bytes(data))
        capsys.readouterr()
        code = main(
            ["verify", str(bad_path), "--original", str(frame_path),
             "--sensor-scale", "0.2"]
        )
        assert code == 1
