"""Tests for the evaluation harness and metrics."""

import numpy as np
import pytest

from repro.core import DBGCParams
from repro.datasets import generate_frame, SensorModel
from repro.eval import (
    DbgcGeometryCompressor,
    bandwidth_mbps,
    compression_ratio,
    make_compressors,
    peak_rss_bytes,
    reconstruction_errors,
    render_series,
    render_table,
    run_ratio_sweep,
    run_timing_sweep,
    verify_one_to_one,
)
from repro.geometry import PointCloud


class TestMetrics:
    def test_compression_ratio(self):
        cloud = PointCloud(np.zeros((100, 3)))
        assert compression_ratio(cloud, b"x" * 120) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            compression_ratio(cloud, b"")

    def test_bandwidth(self):
        # Section 4.4: 0.6 Mbit/frame at 10 fps -> 6 Mbps.
        assert bandwidth_mbps(75_000, 10.0) == pytest.approx(6.0)

    def test_error_report(self):
        a = PointCloud(np.zeros((2, 3)))
        b = PointCloud(np.array([[0.01, 0.0, 0.0], [0.0, 0.02, 0.0]]))
        report = reconstruction_errors(a, b, np.array([0, 1]))
        assert report.max_abs == pytest.approx(0.02)
        assert report.max_euclidean == pytest.approx(0.02)
        assert report.within_bound(0.02)
        assert not report.within_bound(0.005)

    def test_error_report_respects_mapping(self):
        a = PointCloud(np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]]))
        b = PointCloud(np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]]))
        report = reconstruction_errors(a, b, np.array([1, 0]))
        assert report.max_euclidean == 0.0

    def test_one_to_one(self):
        a = PointCloud(np.zeros((3, 3)))
        assert verify_one_to_one(a, a, np.array([2, 0, 1]))
        assert not verify_one_to_one(a, a, np.array([0, 0, 1]))

    def test_peak_rss_positive_on_linux(self):
        assert peak_rss_bytes() > 0


class TestReporting:
    def test_table(self):
        text = render_table(["a", "b"], [["x", 1.234], ["y", 5]], title="T")
        assert "T" in text
        assert "1.23" in text
        assert text.count("\n") == 4

    def test_series(self):
        text = render_series("q", [1, 2], {"m": [3.0, 4.0]})
        assert "3.00" in text and "4.00" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("q", [1, 2], {"m": [3.0]})


@pytest.fixture(scope="module")
def small_sensor():
    return SensorModel.benchmark_default().scaled(0.4)


class TestHarness:
    def test_make_compressors_names(self):
        names = [c.name for c in make_compressors(0.02)]
        assert names == ["DBGC", "G-PCC", "Octree", "Octree_i", "Draco(kd)"]

    def test_dbgc_adapter_caches_result(self, small_sensor):
        frame = generate_frame("kitti-road", 0, sensor=small_sensor)
        adapter = DbgcGeometryCompressor(0.02, sensor=small_sensor)
        payload = adapter.compress(frame)
        assert adapter.compress_detailed(frame).payload == payload
        mapping = adapter.mapping(frame)
        decoded = adapter.decompress(payload)
        report = reconstruction_errors(frame, decoded, mapping)
        assert report.within_bound(0.02)

    def test_ratio_sweep_structure(self, small_sensor):
        results = run_ratio_sweep(
            ["kitti-road"], [0.05], n_frames=1, sensor=small_sensor
        )
        assert len(results) == 5  # five methods
        for r in results:
            assert r.ratio > 1.0
            assert r.bandwidth_mbps(10.0) > 0
        dbgc = next(r for r in results if r.method == "DBGC")
        others = [r.ratio for r in results if r.method != "DBGC"]
        assert dbgc.ratio > 0.8 * max(others)  # in the right league

    def test_timing_sweep_structure(self, small_sensor):
        results = run_timing_sweep("kitti-road", [0.05], sensor=small_sensor)
        assert len(results) == 5
        for r in results:
            assert r.compress_seconds > 0
            assert r.decompress_seconds > 0
        dbgc = next(r for r in results if r.method == "DBGC")
        assert set(dbgc.stage_seconds) == {"den", "oct", "cor", "org", "spa", "out"}
