"""Tests for the programmatic experiment runners.

These run the real experiments on a reduced sensor so the suite stays
fast; the benchmark suite runs them at the full benchmark resolution.
"""

import pytest

from repro.datasets import SensorModel
from repro.eval.experiments import (
    EXPERIMENTS,
    fig3_radius,
    fig9_ratio,
    list_experiments,
    reproduce,
    table2_outliers,
)


@pytest.fixture(scope="module")
def small_sensor():
    return SensorModel.benchmark_default().scaled(0.3)


class TestRegistry:
    def test_list_matches_registry(self):
        assert list_experiments() == sorted(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            reproduce("fig99")

    def test_reproduce_dispatches(self, small_sensor):
        result = reproduce("fig3", sensor=small_sensor)
        assert result.experiment == "fig3"
        assert "Figure 3" in result.text


class TestRunners:
    def test_fig3_data_shape(self, small_sensor):
        result = fig3_radius(sensor=small_sensor)
        assert len(result.data["ratios"]) == len(result.data["radii"])
        assert result.data["ratios"][0] > result.data["ratios"][-1]

    def test_fig9_has_all_methods(self, small_sensor):
        result = fig9_ratio(scene="kitti-road", sensor=small_sensor)
        assert set(result.data["series"]) == {
            "DBGC",
            "G-PCC",
            "Octree",
            "Octree_i",
            "Draco(kd)",
        }
        for values in result.data["series"].values():
            assert len(values) == 5

    def test_table2_covers_scenes_and_modes(self, small_sensor):
        result = table2_outliers(sensor=small_sensor)
        assert set(result.data["ratios"]) == {"Outlier", "Octree", "None"}
        for values in result.data["ratios"].values():
            assert len(values) == 4
        assert "Table 2" in result.text
