"""Tests for trajectories and frame-stream compression."""

import io

import numpy as np
import pytest

from repro.core import DBGCParams
from repro.core.streaming import (
    FrameStreamReader,
    FrameStreamWriter,
    StreamStats,
    compress_stream,
)
from repro.datasets import SensorModel
from repro.datasets.trajectories import curve, generate_sequence, loop, straight
from repro.geometry import PointCloud


@pytest.fixture(scope="module")
def small_sensor():
    return SensorModel.benchmark_default().scaled(0.4)


class TestTrajectories:
    def test_straight_spacing(self):
        traj = straight(5, speed_mps=10.0, fps=10.0)
        assert len(traj) == 5
        assert traj[1][0] - traj[0][0] == pytest.approx(1.0)
        assert traj.total_distance() == pytest.approx(4.0)

    def test_straight_heading(self):
        traj = straight(3, heading_deg=90.0)
        assert traj[2][0] == pytest.approx(0.0, abs=1e-9)
        assert traj[2][1] == pytest.approx(2.0)

    def test_curve_keeps_speed(self):
        traj = curve(20, speed_mps=10.0, fps=10.0, turn_radius_m=30.0)
        steps = np.linalg.norm(np.diff(traj.positions, axis=0), axis=1)
        assert np.allclose(steps, 1.0, atol=0.01)

    def test_loop_closes(self):
        traj = loop(36, radius_m=40.0)
        start = np.array(traj[0])
        end = np.array(traj[35])
        assert np.linalg.norm(end - start) < 2 * np.pi * 40.0 / 36 * 1.1

    def test_sequence_generates_overlapping_frames(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        assert len(frames) == 2
        assert len(frames[0]) > 1000
        assert not np.array_equal(frames[0].xyz[:50], frames[1].xyz[:50])

    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            list(generate_sequence("nowhere", straight(1)))


class TestStreamStats:
    def test_accumulates(self):
        stats = StreamStats()
        stats.record(1000, 600)
        stats.record(1000, 400)
        assert stats.n_frames == 2
        assert stats.total_points == 2000
        assert stats.compression_ratio == pytest.approx(24000 / 1000)
        assert stats.bandwidth_mbps(10.0) == pytest.approx(8 * 10 * 500 / 1e6)

    def test_empty(self):
        stats = StreamStats()
        # Empty streams report finite zeros, not inf/NaN.
        assert stats.compression_ratio == 0.0
        assert stats.bandwidth_mbps(10.0) == 0.0

    def test_zero_size_payloads_stay_finite(self):
        stats = StreamStats()
        stats.record(0, 0)
        assert stats.n_frames == 1
        assert stats.compression_ratio == 0.0
        assert stats.bandwidth_mbps(10.0) == 0.0

    def test_desynced_frame_sizes_guarded(self):
        stats = StreamStats(frame_sizes=[100])
        assert stats.bandwidth_mbps(10.0) == 0.0


class TestFrameStream:
    def test_write_read_roundtrip(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(3), sensor=small_sensor)
        )
        buffer = io.BytesIO()
        writer = FrameStreamWriter(buffer, DBGCParams(), sensor=small_sensor)
        for frame in frames:
            writer.write_frame(frame)
        assert writer.stats.n_frames == 3

        buffer.seek(0)
        decoded = list(FrameStreamReader(buffer))
        assert [len(f) for f in decoded] == [len(f) for f in frames]

    def test_payloads_are_standalone(self, small_sensor):
        from repro.core import DBGCDecompressor

        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        blob, stats = compress_stream(frames, sensor=small_sensor)
        reader = FrameStreamReader(io.BytesIO(blob))
        payloads = list(reader.payloads())
        assert len(payloads) == 2
        # Any frame can be decoded in isolation (late join / seek).
        cloud = DBGCDecompressor().decompress(payloads[1])
        assert len(cloud) == len(frames[1])

    def test_stats_match_stream(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        blob, stats = compress_stream(frames, sensor=small_sensor)
        assert stats.n_frames == 2
        assert stats.total_compressed_bytes < len(blob)  # header overhead only
        assert stats.compression_ratio > 3.0

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            FrameStreamReader(io.BytesIO(b"NOPE" + bytes(10)))

    def test_truncated_payload_rejected(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(1), sensor=small_sensor)
        )
        blob, _ = compress_stream(frames, sensor=small_sensor)
        reader = FrameStreamReader(io.BytesIO(blob[:-10]))
        with pytest.raises(ValueError):
            list(reader.payloads())

    def test_overlong_frame_size_varint_rejected(self, small_sensor):
        # Regression: payloads() used its own varint loop without the
        # over-long guard, so a corrupt stream of continuation bytes spun
        # the shift unboundedly instead of raising.
        frames = list(
            generate_sequence("kitti-road", straight(1), sensor=small_sensor)
        )
        blob, _ = compress_stream(frames, sensor=small_sensor)
        # Replace the frame body with continuation bytes forever.
        header_end = blob.index(b"\x00") + 1  # end of the n_frames varint
        corrupt = blob[:header_end] + b"\xff" * 64
        reader = FrameStreamReader(io.BytesIO(corrupt))
        with pytest.raises(ValueError, match="varint too long"):
            list(reader.payloads())

    def test_compress_stream_accepts_attribute_pairs(self, small_sensor):
        from repro.core import DBGCDecompressor

        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        rng = np.random.default_rng(7)
        attrs = [
            {"intensity": rng.random(len(frame)).astype(np.float64)}
            for frame in frames
        ]
        # Regression: compress_stream dropped per-frame attributes; a
        # (cloud, attributes) item must be byte-identical to a writer call.
        blob, stats = compress_stream(
            zip(frames, attrs), sensor=small_sensor
        )
        buffer = io.BytesIO()
        writer = FrameStreamWriter(buffer, sensor=small_sensor)
        for frame, frame_attrs in zip(frames, attrs):
            writer.write_frame(frame, attributes=frame_attrs)
        assert blob == buffer.getvalue()
        assert stats.n_frames == 2
        # The attributes actually made it into the payloads.
        reader = FrameStreamReader(io.BytesIO(blob))
        for payload, frame_attrs in zip(reader.payloads(), attrs):
            _, decoded = DBGCDecompressor().decompress_with_attributes(payload)
            assert set(decoded) == {"intensity"}
            assert len(decoded["intensity"]) == len(frame_attrs["intensity"])

    def test_compress_stream_mixed_items_match_writer(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        # Bare clouds and (cloud, None) pairs are interchangeable.
        blob_mixed, _ = compress_stream(
            [frames[0], (frames[1], None)], sensor=small_sensor
        )
        blob_bare, _ = compress_stream(frames, sensor=small_sensor)
        assert blob_mixed == blob_bare
