"""Tests for trajectories and frame-stream compression."""

import io

import numpy as np
import pytest

from repro.core import DBGCParams
from repro.core.streaming import (
    FrameStreamReader,
    FrameStreamWriter,
    StreamStats,
    compress_stream,
)
from repro.datasets import SensorModel
from repro.datasets.trajectories import curve, generate_sequence, loop, straight


@pytest.fixture(scope="module")
def small_sensor():
    return SensorModel.benchmark_default().scaled(0.4)


class TestTrajectories:
    def test_straight_spacing(self):
        traj = straight(5, speed_mps=10.0, fps=10.0)
        assert len(traj) == 5
        assert traj[1][0] - traj[0][0] == pytest.approx(1.0)
        assert traj.total_distance() == pytest.approx(4.0)

    def test_straight_heading(self):
        traj = straight(3, heading_deg=90.0)
        assert traj[2][0] == pytest.approx(0.0, abs=1e-9)
        assert traj[2][1] == pytest.approx(2.0)

    def test_curve_keeps_speed(self):
        traj = curve(20, speed_mps=10.0, fps=10.0, turn_radius_m=30.0)
        steps = np.linalg.norm(np.diff(traj.positions, axis=0), axis=1)
        assert np.allclose(steps, 1.0, atol=0.01)

    def test_loop_closes(self):
        traj = loop(36, radius_m=40.0)
        start = np.array(traj[0])
        end = np.array(traj[35])
        assert np.linalg.norm(end - start) < 2 * np.pi * 40.0 / 36 * 1.1

    def test_sequence_generates_overlapping_frames(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        assert len(frames) == 2
        assert len(frames[0]) > 1000
        assert not np.array_equal(frames[0].xyz[:50], frames[1].xyz[:50])

    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            list(generate_sequence("nowhere", straight(1)))


class TestStreamStats:
    def test_accumulates(self):
        stats = StreamStats()
        stats.record(1000, 600)
        stats.record(1000, 400)
        assert stats.n_frames == 2
        assert stats.total_points == 2000
        assert stats.compression_ratio == pytest.approx(24000 / 1000)
        assert stats.bandwidth_mbps(10.0) == pytest.approx(8 * 10 * 500 / 1e6)

    def test_attribute_bytes_accounted(self):
        # Regression: the raw-size accounting ignored attribute channels,
        # overstating the compression ratio of attribute-carrying streams.
        stats = StreamStats()
        stats.record(1000, 600, n_attributes=2)
        assert stats.total_raw_bytes == 1000 * (12 + 4 * 2)
        assert stats.compression_ratio == pytest.approx(20000 / 600)

    def test_empty(self):
        stats = StreamStats()
        # Empty streams report finite zeros, not inf/NaN.
        assert stats.compression_ratio == 0.0
        assert stats.bandwidth_mbps(10.0) == 0.0

    def test_zero_size_payloads_stay_finite(self):
        stats = StreamStats()
        stats.record(0, 0)
        assert stats.n_frames == 1
        assert stats.compression_ratio == 0.0
        assert stats.bandwidth_mbps(10.0) == 0.0

    def test_desynced_frame_sizes_guarded(self):
        stats = StreamStats(frame_sizes=[100])
        assert stats.bandwidth_mbps(10.0) == 0.0


class TestFrameStream:
    def test_write_read_roundtrip(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(3), sensor=small_sensor)
        )
        buffer = io.BytesIO()
        writer = FrameStreamWriter(buffer, DBGCParams(), sensor=small_sensor)
        for frame in frames:
            writer.write_frame(frame)
        assert writer.stats.n_frames == 3

        buffer.seek(0)
        decoded = list(FrameStreamReader(buffer))
        assert [len(f) for f in decoded] == [len(f) for f in frames]

    def test_payloads_are_standalone(self, small_sensor):
        from repro.core import DBGCDecompressor

        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        blob, stats = compress_stream(frames, sensor=small_sensor)
        reader = FrameStreamReader(io.BytesIO(blob))
        payloads = list(reader.payloads())
        assert len(payloads) == 2
        # Any frame can be decoded in isolation (late join / seek).
        cloud = DBGCDecompressor().decompress(payloads[1])
        assert len(cloud) == len(frames[1])

    def test_stats_match_stream(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        blob, stats = compress_stream(frames, sensor=small_sensor)
        assert stats.n_frames == 2
        assert stats.total_compressed_bytes < len(blob)  # header overhead only
        assert stats.compression_ratio > 3.0

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            FrameStreamReader(io.BytesIO(b"NOPE" + bytes(10)))

    def test_truncated_payload_rejected(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(1), sensor=small_sensor)
        )
        blob, _ = compress_stream(frames, sensor=small_sensor)
        reader = FrameStreamReader(io.BytesIO(blob[:-10]))
        with pytest.raises(ValueError):
            list(reader.payloads())

    def test_overlong_frame_size_varint_rejected(self, small_sensor):
        # Regression: payloads() used its own varint loop without the
        # over-long guard, so a corrupt stream of continuation bytes spun
        # the shift unboundedly instead of raising.
        frames = list(
            generate_sequence("kitti-road", straight(1), sensor=small_sensor)
        )
        blob, _ = compress_stream(frames, sensor=small_sensor)
        # Replace the frame body with continuation bytes forever.
        header_end = blob.index(b"\x00") + 1  # end of the n_frames varint
        corrupt = blob[:header_end] + b"\xff" * 64
        reader = FrameStreamReader(io.BytesIO(corrupt))
        with pytest.raises(ValueError, match="varint too long"):
            list(reader.payloads())

    def test_compress_stream_accepts_attribute_pairs(self, small_sensor):
        from repro.core import DBGCDecompressor

        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        rng = np.random.default_rng(7)
        attrs = [
            {"intensity": rng.random(len(frame)).astype(np.float64)}
            for frame in frames
        ]
        # Regression: compress_stream dropped per-frame attributes; a
        # (cloud, attributes) item must be byte-identical to a writer call.
        blob, stats = compress_stream(
            zip(frames, attrs), sensor=small_sensor
        )
        buffer = io.BytesIO()
        with FrameStreamWriter(buffer, sensor=small_sensor) as writer:
            for frame, frame_attrs in zip(frames, attrs):
                writer.write_frame(frame, attributes=frame_attrs)
        assert blob == buffer.getvalue()
        assert stats.n_frames == 2
        # The attributes actually made it into the payloads.
        reader = FrameStreamReader(io.BytesIO(blob))
        for payload, frame_attrs in zip(reader.payloads(), attrs):
            _, decoded = DBGCDecompressor().decompress_with_attributes(payload)
            assert set(decoded) == {"intensity"}
            assert len(decoded["intensity"]) == len(frame_attrs["intensity"])

    def test_compress_stream_mixed_items_match_writer(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        # Bare clouds and (cloud, None) pairs are interchangeable.
        blob_mixed, _ = compress_stream(
            [frames[0], (frames[1], None)], sensor=small_sensor
        )
        blob_bare, _ = compress_stream(frames, sensor=small_sensor)
        assert blob_mixed == blob_bare


class _PipeSink:
    """A write-only sink that reports itself non-seekable, like a pipe."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk):
        self.data.extend(chunk)
        return len(chunk)

    def seekable(self):
        return False

    def seek(self, *args):  # pragma: no cover - must never be called
        raise OSError("pipe is not seekable")

    def tell(self):  # pragma: no cover - must never be called
        raise OSError("pipe is not seekable")


class TestFrameCountBackpatch:
    def test_seekable_sink_backpatches_count(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(3), sensor=small_sensor)
        )
        buffer = io.BytesIO()
        with FrameStreamWriter(buffer, sensor=small_sensor) as writer:
            for frame in frames:
                writer.write_frame(frame)
        blob = buffer.getvalue()
        # The reserved slot holds the count as a padded 3-byte LEB128.
        assert blob[5:8] == bytes([0x80 | 3, 0x80, 0x00])
        reader = FrameStreamReader(io.BytesIO(blob))
        assert reader.n_frames == 3
        assert len(list(reader.payloads())) == 3

    def test_non_seekable_sink_keeps_unknown_count(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        sink = _PipeSink()
        with FrameStreamWriter(sink, sensor=small_sensor) as writer:
            for frame in frames:
                writer.write_frame(frame)
        blob = bytes(sink.data)
        # Canonical single zero byte: the count stays "unknown" on pipes,
        # and close() never touches the sink again.
        assert blob[5] == 0x00
        reader = FrameStreamReader(io.BytesIO(blob))
        assert reader.n_frames == 0
        assert [len(c) for c in reader.frames()] == [len(f) for f in frames]

    def test_close_is_idempotent_and_keeps_sink_open(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(1), sensor=small_sensor)
        )
        buffer = io.BytesIO()
        writer = FrameStreamWriter(buffer, sensor=small_sensor)
        writer.write_frame(frames[0])
        writer.close()
        writer.close()
        assert not buffer.closed
        with pytest.raises(ValueError, match="closed"):
            writer.write_frame(frames[0])

    def test_sink_position_restored_after_close(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(1), sensor=small_sensor)
        )
        buffer = io.BytesIO()
        with FrameStreamWriter(buffer, sensor=small_sensor) as writer:
            writer.write_frame(frames[0])
        # close() seeks back to the end so callers can keep appending
        # (e.g. a second stream in the same file).
        assert buffer.tell() == len(buffer.getvalue())

    def test_compress_stream_header_carries_count(self, small_sensor):
        frames = list(
            generate_sequence("kitti-road", straight(2), sensor=small_sensor)
        )
        blob, _ = compress_stream(frames, sensor=small_sensor)
        assert FrameStreamReader(io.BytesIO(blob)).n_frames == 2


class TestTemporalStreaming:
    @pytest.fixture(scope="class")
    def drive(self, small_sensor):
        trajectory = straight(5)
        frames = list(
            generate_sequence(
                "kitti-road", trajectory, sensor=small_sensor, seed=2
            )
        )
        return frames, trajectory

    def _temporal_blob(self, drive, small_sensor, keyframe_interval=2):
        frames, trajectory = drive
        params = DBGCParams(temporal=True, keyframe_interval=keyframe_interval)
        buffer = io.BytesIO()
        with FrameStreamWriter(buffer, params, sensor=small_sensor) as writer:
            for index, frame in enumerate(frames):
                writer.write_frame(frame, ego_position=trajectory[index])
        return buffer.getvalue()

    def test_temporal_stream_roundtrip(self, drive, small_sensor):
        frames, _ = drive
        blob = self._temporal_blob(drive, small_sensor)
        decoded = list(FrameStreamReader(io.BytesIO(blob)))
        assert [len(c) for c in decoded] == [len(f) for f in frames]

    def test_temporal_stream_mixes_versions(self, drive, small_sensor):
        from repro.core.container import container_version

        blob = self._temporal_blob(drive, small_sensor)
        versions = [
            container_version(p)
            for p in FrameStreamReader(io.BytesIO(blob)).payloads()
        ]
        # Interval 2 over 5 frames: keyframes at 0, 2, 4.
        assert [v == 3 for v in versions] == [False, True, False, True, False]

    def test_keyframe_interval_one_matches_plain_stream(self, drive, small_sensor):
        frames, _ = drive
        all_key = self._temporal_blob(drive, small_sensor, keyframe_interval=1)
        plain, _ = compress_stream(frames, sensor=small_sensor)
        assert all_key == plain

    def test_recover_skips_leading_deltas(self, drive, small_sensor):
        frames, _ = drive
        blob = self._temporal_blob(drive, small_sensor)
        payloads = list(FrameStreamReader(io.BytesIO(blob)).payloads())
        # Rebuild a partial stream starting mid-GOP (at delta frame 1).
        partial = io.BytesIO()
        with FrameStreamWriter(partial, sensor=small_sensor):
            pass  # header only
        from repro.entropy.varint import encode_uvarint

        body = bytearray(partial.getvalue())
        for payload in payloads[1:]:
            encode_uvarint(len(payload), body)
            body.extend(payload)
        reader = FrameStreamReader(io.BytesIO(bytes(body)))
        recovered = list(reader.frames(recover=True))
        # The leading delta (frame 1) is skipped; decoding resumes at the
        # keyframe (frame 2) and runs statefully to the end.
        assert [len(c) for c in recovered] == [len(f) for f in frames[2:]]

    def test_mid_stream_delta_without_recover_raises(self, drive, small_sensor):
        blob = self._temporal_blob(drive, small_sensor)
        payloads = list(FrameStreamReader(io.BytesIO(blob)).payloads())
        from repro.core.temporal import TemporalDecoder

        decoder = TemporalDecoder()
        with pytest.raises(ValueError, match="predictor state"):
            decoder.decode(payloads[1])
