"""Tests for radial-distance-optimized delta encoding (Definition 3.3)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reference import (
    build_consensus,
    decode_radial,
    decode_radial_plain,
    encode_radial,
    encode_radial_plain,
)


def _lines(spec):
    """Build (theta_arrays, r_arrays) from [(thetas, rs), ...]."""
    thetas = [np.asarray(t, dtype=np.int64) for t, _ in spec]
    rs = [np.asarray(r, dtype=np.int64) for _, r in spec]
    return thetas, rs


class TestConsensus:
    def test_empty(self):
        assert build_consensus([]) == ([], [])

    def test_single_line_copied(self):
        t, r = build_consensus([(np.array([1, 2, 3]), np.array([10, 11, 12]))])
        assert t == [1, 2, 3]
        assert r == [10, 11, 12]

    def test_disjoint_lines_concatenated(self):
        t, r = build_consensus(
            [
                (np.array([1, 2]), np.array([10, 11])),
                (np.array([5, 6]), np.array([20, 21])),
            ]
        )
        assert t == [1, 2, 5, 6]
        assert r == [10, 11, 20, 21]

    def test_overlapping_line_replaces_span(self):
        t, r = build_consensus(
            [
                (np.array([1, 2, 3, 4, 5]), np.array([10, 11, 12, 13, 14])),
                (np.array([2, 3, 4]), np.array([20, 21, 22])),
            ]
        )
        # Points of the first line with theta in (1, 5) are replaced.
        assert t == [1, 2, 3, 4, 5]
        assert r == [10, 20, 21, 22, 14]

    def test_contained_line_inserted(self):
        t, r = build_consensus(
            [
                (np.array([1, 10]), np.array([10, 11])),
                (np.array([4, 5]), np.array([20, 21])),
            ]
        )
        assert t == [1, 4, 5, 10]
        assert r == [10, 20, 21, 11]


class TestRadialRoundtrip:
    def _roundtrip(self, spec, th_phi=2, th_r=50):
        lines_theta, lines_r = _lines(spec)
        line_phis = list(range(len(spec)))
        nabla, symbols = encode_radial(lines_theta, lines_r, line_phis, th_phi, th_r)
        decoded = decode_radial(lines_theta, line_phis, nabla, symbols, th_phi, th_r)
        for got, want in zip(decoded, lines_r):
            assert np.array_equal(got, want)
        return nabla, symbols

    def test_single_line(self):
        self._roundtrip([([1, 2, 3, 4], [100, 101, 99, 100])])

    def test_flat_scene_no_symbols(self):
        # All radial values near each other: situation (2a) everywhere.
        nabla, symbols = self._roundtrip(
            [
                ([1, 2, 3, 4], [100, 101, 100, 99]),
                ([1, 2, 3, 4], [101, 100, 99, 100]),
            ],
            th_r=50,
        )
        assert len(symbols) == 0

    def test_object_boundary_emits_symbols(self):
        # Second line jumps radially where the first did too: the upper
        # reference should win and symbols get recorded.
        nabla, symbols = self._roundtrip(
            [
                ([1, 2, 3, 4, 5], [100, 100, 500, 500, 500]),
                ([1, 2, 3, 4, 5], [100, 100, 500, 500, 500]),
            ],
            th_r=50,
        )
        assert len(symbols) > 0

    def test_reference_beats_plain_delta_on_aligned_jumps(self):
        """The motivating case: vertical object edges shared across lines."""
        spec = []
        for _ in range(10):
            spec.append((list(range(20)), [100] * 10 + [900] * 10))
        lines_theta, lines_r = _lines(spec)
        line_phis = list(range(10))
        nabla_opt, symbols = encode_radial(lines_theta, lines_r, line_phis, 2, 50)
        nabla_plain = encode_radial_plain(lines_r)
        # Optimized: each non-first line copies the jump from above ->
        # near-zero nablas; plain delta pays the 800 jump on every line.
        assert np.abs(nabla_opt[20:]).sum() < np.abs(nabla_plain[20:]).sum() / 10

    def test_empty_lines_list(self):
        nabla, symbols = encode_radial([], [], [], 2, 50)
        assert nabla.size == 0
        assert decode_radial([], [], nabla, symbols, 2, 50) == []

    def test_phi_window_limits_references(self):
        # Lines 0 and 1 are far apart in phi: no reference set, plain-ish.
        lines_theta, lines_r = _lines(
            [([1, 2], [10, 11]), ([1, 2], [500, 501])]
        )
        nabla, symbols = encode_radial(lines_theta, lines_r, [0, 100], th_phi=2, th_r=5)
        decoded = decode_radial(lines_theta, [0, 100], nabla, symbols, 2, 5)
        assert np.array_equal(decoded[1], lines_r[1])

    @given(
        st.lists(
            st.lists(st.integers(0, 3000), min_size=1, max_size=15),
            min_size=1,
            max_size=8,
        ),
        st.integers(1, 10),
        st.integers(1, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, raw_lines, th_phi, th_r):
        spec = []
        for rs in raw_lines:
            thetas = sorted(set(range(len(rs))))  # strictly increasing
            spec.append((thetas[: len(rs)], rs[: len(thetas)]))
        lines_theta, lines_r = _lines(spec)
        line_phis = sorted(
            np.random.default_rng(0).integers(0, 20, len(spec)).tolist()
        )
        nabla, symbols = encode_radial(lines_theta, lines_r, line_phis, th_phi, th_r)
        decoded = decode_radial(lines_theta, line_phis, nabla, symbols, th_phi, th_r)
        for got, want in zip(decoded, lines_r):
            assert np.array_equal(got, want)


class TestPlainRadial:
    def test_roundtrip(self):
        lines_r = [np.array([5, 7, 6]), np.array([100]), np.array([50, 40])]
        nabla = encode_radial_plain(lines_r)
        decoded = decode_radial_plain(nabla, [3, 1, 2])
        for got, want in zip(decoded, lines_r):
            assert np.array_equal(got, want)

    def test_first_head_raw(self):
        nabla = encode_radial_plain([np.array([42, 44])])
        assert nabla[0] == 42
        assert nabla[1] == 2

    def test_heads_delta_across_lines(self):
        nabla = encode_radial_plain([np.array([100]), np.array([103])])
        assert nabla.tolist() == [100, 3]
