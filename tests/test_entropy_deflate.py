"""Unit and property tests for repro.entropy.deflate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import deflate_compress, deflate_decompress


class TestDeflate:
    def test_empty(self):
        assert deflate_decompress(deflate_compress(b"")) == b""

    def test_small_input_stored(self):
        data = b"tiny"
        compressed = deflate_compress(data)
        assert compressed[0] == 0  # stored mode
        assert deflate_decompress(compressed) == data

    def test_repetitive_compresses_hard(self):
        data = b"0123456789abcdef" * 1000
        compressed = deflate_compress(data)
        assert deflate_decompress(compressed) == data
        assert len(compressed) < len(data) // 10

    def test_incompressible_falls_back_to_stored(self):
        import random

        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(4000))
        compressed = deflate_compress(data)
        assert deflate_decompress(compressed) == data
        # Never blows up beyond input + 1 mode byte.
        assert len(compressed) <= len(data) + 1

    def test_text_like_stream(self):
        data = ("theta=1.57 phi=0.78 r=12.3; " * 400).encode()
        compressed = deflate_compress(data)
        assert deflate_decompress(compressed) == data
        assert len(compressed) < len(data) // 3

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError):
            deflate_decompress(b"")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            deflate_decompress(bytes([9, 1, 2, 3]))

    def test_delta_like_varint_stream(self):
        """The actual workload: zigzag varints of near-constant deltas."""
        import numpy as np

        from repro.entropy import encode_varints

        rng = np.random.default_rng(3)
        deltas = 40 + rng.integers(-1, 2, size=8000)
        data = encode_varints(deltas)
        compressed = deflate_compress(data)
        assert deflate_decompress(compressed) == data
        assert len(compressed) < len(data) // 2

    @given(st.binary(max_size=4000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        assert deflate_decompress(deflate_compress(data)) == data

    @given(st.binary(min_size=1, max_size=64), st.integers(1, 200))
    @settings(max_examples=40, deadline=None)
    def test_periodic_roundtrip_property(self, unit, repeats):
        data = unit * repeats
        assert deflate_decompress(deflate_compress(data)) == data
