"""Unit and property tests for repro.geometry.grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import HashGrid


def _brute_force_ball(xyz, center, radius):
    d2 = np.sum((xyz - center) ** 2, axis=1)
    return set(np.flatnonzero(d2 <= radius * radius).tolist())


class TestConstruction:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            HashGrid(np.zeros((1, 3)), 0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            HashGrid(np.zeros((3, 2)), 1.0)

    def test_empty_grid(self):
        grid = HashGrid(np.empty((0, 3)), 1.0)
        assert len(grid) == 0
        assert grid.n_occupied_cells == 0
        assert len(grid.query_ball(np.zeros(3), 5.0)) == 0

    def test_occupied_cells(self):
        pts = np.array([[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [5.0, 5.0, 5.0]])
        grid = HashGrid(pts, 1.0)
        assert grid.n_occupied_cells == 2
        cells = {tuple(c) for c in grid.occupied_cells()}
        assert cells == {(0, 0, 0), (5, 5, 5)}

    def test_negative_coordinates(self):
        pts = np.array([[-0.5, -0.5, -0.5], [-1.5, 0.5, 0.5]])
        grid = HashGrid(pts, 1.0)
        assert grid.cell_of(0) == (-1, -1, -1)
        assert grid.cell_of(1) == (-2, 0, 0)


class TestQueries:
    def test_points_in_cell(self):
        pts = np.array([[0.1, 0.1, 0.1], [0.9, 0.9, 0.9], [1.5, 0.0, 0.0]])
        grid = HashGrid(pts, 1.0)
        assert set(grid.points_in_cell((0, 0, 0)).tolist()) == {0, 1}
        assert set(grid.points_in_cell((1, 0, 0)).tolist()) == {2}
        assert len(grid.points_in_cell((9, 9, 9))) == 0

    def test_query_ball_matches_brute_force(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(-3, 3, size=(300, 3))
        grid = HashGrid(pts, 0.7)
        for center in pts[:20]:
            expected = _brute_force_ball(pts, center, 0.7)
            got = set(grid.query_ball(center, 0.7).tolist())
            assert got == expected

    def test_query_ball_radius_larger_than_cell(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(-2, 2, size=(200, 3))
        grid = HashGrid(pts, 0.25)
        center = np.zeros(3)
        assert set(grid.query_ball(center, 1.3).tolist()) == _brute_force_ball(
            pts, center, 1.3
        )

    def test_neighbors_excludes_self(self):
        pts = np.array([[0.0, 0.0, 0.0], [0.1, 0.0, 0.0]])
        grid = HashGrid(pts, 1.0)
        assert grid.neighbors_within(0, 0.5).tolist() == [1]
        assert grid.count_within(0, 0.5) == 1
        assert grid.count_within(0, 0.05) == 0

    def test_negative_radius_rejected(self):
        grid = HashGrid(np.zeros((1, 3)), 1.0)
        with pytest.raises(ValueError):
            grid.query_ball(np.zeros(3), -1.0)

    def test_cell_point_counts(self):
        pts = np.array([[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [5.0, 5.0, 5.0]])
        counts = HashGrid(pts, 1.0).cell_point_counts()
        assert counts == {(0, 0, 0): 2, (5, 5, 5): 1}

    @given(
        st.lists(
            st.tuples(
                st.floats(-50, 50, allow_nan=False),
                st.floats(-50, 50, allow_nan=False),
                st.floats(-50, 50, allow_nan=False),
            ),
            min_size=2,
            max_size=60,
        ),
        st.floats(0.1, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_ball_query_property(self, points, radius):
        pts = np.array(points)
        grid = HashGrid(pts, cell_size=1.0)
        center = pts[0]
        assert set(grid.query_ball(center, radius).tolist()) == _brute_force_ball(
            pts, center, radius
        )


def _candidates_loop(grid: HashGrid, cell: np.ndarray, reach: int) -> np.ndarray:
    """The historical nested dx/dy/dz dict-probe implementation."""
    chunks = []
    for dx in range(-reach, reach + 1):
        for dy in range(-reach, reach + 1):
            for dz in range(-reach, reach + 1):
                key = grid._pack(
                    np.asarray(
                        [[cell[0] + dx, cell[1] + dy, cell[2] + dz]], dtype=np.int64
                    )
                )[0]
                bucket = grid._bucket.get(int(key))
                if bucket is not None:
                    chunks.append(bucket)
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


class TestCandidatesAroundRegression:
    """The vectorized block lookup must be order-identical to the loop."""

    def test_matches_loop_order_exactly(self):
        rng = np.random.default_rng(17)
        pts = rng.uniform(-4, 4, size=(500, 3))
        grid = HashGrid(pts, 0.6)
        for reach in (1, 2, 3):
            for center in pts[:25]:
                cell = np.floor(center / grid.cell_size).astype(np.int64)
                fast = grid._candidates_around(cell, reach)
                assert fast.tolist() == _candidates_loop(grid, cell, reach).tolist()

    def test_empty_block_and_empty_grid(self):
        grid = HashGrid(np.zeros((2, 3)), 1.0)
        far = np.asarray([500, 500, 500], dtype=np.int64)
        assert len(grid._candidates_around(far, 1)) == 0
        empty = HashGrid(np.empty((0, 3)), 1.0)
        assert len(empty._candidates_around(np.zeros(3, dtype=np.int64), 1)) == 0

    def test_out_of_range_cell_rejected(self):
        grid = HashGrid(np.zeros((1, 3)), 1.0)
        edge = np.asarray([(1 << 20) - 1, 0, 0], dtype=np.int64)
        with pytest.raises(ValueError):
            grid._candidates_around(edge, 1)

    @given(
        st.lists(
            st.tuples(
                st.floats(-30, 30, allow_nan=False),
                st.floats(-30, 30, allow_nan=False),
                st.floats(-30, 30, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        ),
        st.integers(0, 3),
        st.integers(0, 2),
    )
    @settings(max_examples=50, deadline=None)
    def test_candidates_property(self, points, point_index, reach):
        pts = np.array(points)
        grid = HashGrid(pts, cell_size=1.0)
        cell = grid._cells[point_index % len(pts)]
        fast = grid._candidates_around(cell, reach)
        assert fast.tolist() == _candidates_loop(grid, cell, reach).tolist()
