"""Tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro.datasets import generate_frame
from repro.eval.ascii_plot import density_map, theta_phi_scatter, xoy_web
from repro.geometry import PointCloud


class TestDensityMap:
    def test_dimensions(self):
        rng = np.random.default_rng(0)
        text = density_map(rng.normal(size=100), rng.normal(size=100), 40, 10)
        lines = text.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_empty_input(self):
        text = density_map(np.array([]), np.array([]), 20, 5)
        assert text.count("\n") == 4
        assert set(text) <= {" ", "\n"}

    def test_single_point(self):
        text = density_map(np.array([0.0]), np.array([0.0]), 10, 4)
        assert any(ch not in " \n" for ch in text)

    def test_denser_cell_darker(self):
        x = np.concatenate([np.zeros(100), np.ones(1)])
        y = np.zeros(101)
        text = density_map(x, y, 10, 3, x_range=(0, 1), y_range=(-1, 1))
        row = text.split("\n")[1]
        ramp = " .:-=+*#%@"
        assert ramp.index(row[0]) > ramp.index(row[-1])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            density_map(np.zeros(1), np.zeros(1), 1, 1)

    def test_y_grows_upward(self):
        text = density_map(
            np.array([0.0]), np.array([1.0]), 5, 5, x_range=(0, 1), y_range=(0, 1)
        )
        lines = text.split("\n")
        assert lines[0].strip() != ""  # top row holds the high-y point
        assert lines[-1].strip() == ""


class TestFramePlots:
    @pytest.fixture(scope="class")
    def frame(self):
        return PointCloud(generate_frame("kitti-city", 0).xyz[::4])

    def test_xoy_web_renders(self, frame):
        text = xoy_web(frame, width=40, height=16)
        assert len(text.split("\n")) == 16
        # The web has far more occupied cells near the center row/column.
        assert any(ch not in " \n" for ch in text)

    def test_theta_phi_banding(self, frame):
        text = theta_phi_scatter(frame, width=50, height=12)
        lines = text.split("\n")
        # Scan rings: most rows are mostly occupied, a few mostly empty.
        occupancy = [sum(c != " " for c in line) / len(line) for line in lines]
        assert max(occupancy) > 0.5
