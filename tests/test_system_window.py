"""Sliding-window transport tests (protocol v2.2).

The contract under test is *equivalence under pipelining*: with
``window > 1`` the client keeps several unACKed frames in flight,
matches ACKs out of order, retransmits selectively, and adapts its
window AIMD-style on server BUSY hints — and none of that may change
*what* ends up stored.  The acceptance runs replay the same seeded
faulty fleet at window=8 (concurrent) and window=1 (serial) and demand
identical per-frame outcomes and byte-identical stores; the latency
run demands the pipelining actually pays for itself.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import observability as obs
from repro.system import (
    DbgcClient,
    DbgcServer,
    FleetSpec,
    SqliteFrameStore,
    cloud_contents,
    compressed_fleet_payloads,
    run_fleet,
)
from repro.system.client import _InFlight, _QueuedFrame
from repro.system.faults import FaultSpec
from repro.system.loadgen import payload_contents
from repro.system.metrics import FrameTrace, PipelineReport
from repro.system.protocol import (
    ACK_FLAG_BUSY,
    ACK_STORED,
    END_ACK_INDEX,
    TYPE_ACK,
    TYPE_END,
    TYPE_FRAME,
    TYPE_HELLO,
    Record,
    encode_record,
    read_record,
)

pytestmark = pytest.mark.timeout(300)


def _trace(index: int) -> FrameTrace:
    return FrameTrace(
        frame_index=index, n_points=0, payload_bytes=0,
        captured_at=0.0, compressed_at=0.0, status="pending",
    )


def _outcome(report: PipelineReport) -> tuple:
    """Per-frame outcome sets: which indices stored/quarantined/dropped."""
    return (
        tuple(sorted(t.frame_index for t in report.stored_traces)),
        tuple(sorted(t.frame_index for t in report.traces
                     if t.status == "quarantined")),
        tuple(sorted(t.frame_index for t in report.traces
                     if t.status == "dropped")),
    )


class _ScriptedServer:
    """A raw acceptor that hands each test full control of the ACK stream."""

    def __init__(self, handler):
        self.handler = handler
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.address = self._listener.getsockname()
        self.errors: list[BaseException] = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            try:
                with conn:
                    if self.handler(conn) is False:
                        continue  # handler wants to serve the next connection
                    return
            except BaseException as exc:  # pragma: no cover - surfaced by test
                self.errors.append(exc)
                return

    def close(self) -> None:
        self._listener.close()
        self._thread.join(timeout=10.0)


# ---------------------------------------------------------------------------
# HELLO window advertisement
# ---------------------------------------------------------------------------


def test_hello_advertises_window_to_server():
    with SqliteFrameStore() as store:
        with DbgcServer(store, mode="store") as server:
            with DbgcClient(server.address, stream_id=6, window=8) as client:
                client.send_payload(0, b"windowed")
            server.join()
            assert server.stream_state(6).window == 8
        # The hello event carries the advertisement for forensics.
        assert any(
            kind == "hello" and "window 8" in detail
            for kind, detail in server.events
        )


def test_window_validation():
    with pytest.raises(ValueError, match="window"):
        DbgcClient(("127.0.0.1", 1), window=0)
    with pytest.raises(ValueError, match="window"):
        DbgcClient(("127.0.0.1", 1), window=256)
    with pytest.raises(ValueError, match="window"):
        FleetSpec(window=0)


# ---------------------------------------------------------------------------
# Out-of-order ACK matching
# ---------------------------------------------------------------------------


def test_out_of_order_acks_settle_without_retries():
    """The server ACKs frame 1 before frame 0: both must settle cleanly."""
    got_frames = []

    def handler(conn: socket.socket) -> None:
        assert read_record(conn).type == TYPE_HELLO
        for _ in range(2):
            record = read_record(conn)
            assert record.type == TYPE_FRAME
            got_frames.append(record.frame_index)
        # Acknowledge in reverse arrival order.
        for index in reversed(got_frames):
            conn.sendall(encode_record(TYPE_ACK, index, flags=ACK_STORED))
        assert read_record(conn).type == TYPE_END
        conn.sendall(encode_record(TYPE_ACK, END_ACK_INDEX, flags=ACK_STORED))

    server = _ScriptedServer(handler)
    try:
        with DbgcClient(server.address, window=2, ack_timeout=5.0) as client:
            client.send_payload(0, b"first")
            client.send_payload(1, b"second")
    finally:
        server.close()
    assert server.errors == []
    assert got_frames == [0, 1]  # both were in flight before any ACK
    assert all(t.status == "stored" for t in client.report.traces)
    assert client.report.total_retries == 0
    assert len(client.report.ack_latencies) == 2


# ---------------------------------------------------------------------------
# Overall ACK deadline (the _read_deadline bugfix)
# ---------------------------------------------------------------------------


def test_stale_ack_trickle_cannot_extend_frame_deadline():
    """Regression: each stale record used to *reset* the per-read timeout,
    so a trickle of unmatched ACKs arriving just under ``ack_timeout``
    apart postponed the retransmit forever.  The deadline is now overall
    per frame: the trickle shrinks the remaining wait instead."""
    stop = threading.Event()

    def handler(conn: socket.socket) -> None:
        assert read_record(conn).type == TYPE_HELLO
        record = read_record(conn)
        assert record.type == TYPE_FRAME

        def trickle() -> None:
            # Stale ACKs (wrong index) every 0.15s — under the 0.4s
            # timeout, so the buggy reset never expires.
            while not stop.is_set():
                try:
                    conn.sendall(
                        encode_record(TYPE_ACK, 999, flags=ACK_STORED)
                    )
                except OSError:
                    return
                stop.wait(0.15)

        threading.Thread(target=trickle, daemon=True).start()
        # Swallow retransmissions; answer only the END handshake.
        while True:
            record = read_record(conn)
            if record.type == TYPE_END:
                stop.set()
                conn.sendall(
                    encode_record(TYPE_ACK, END_ACK_INDEX, flags=ACK_STORED)
                )
                return

    server = _ScriptedServer(handler)
    started = time.perf_counter()
    try:
        with DbgcClient(
            server.address, window=4, ack_timeout=0.4, max_retries=1,
            backoff_base=0.01,
        ) as client:
            client.send_payload(0, b"never acked")
    finally:
        stop.set()
        server.close()
    wall = time.perf_counter() - started
    assert server.errors == []
    trace = client.report.traces[0]
    # Two attempts, each expiring on its own 0.4s deadline, then a drop:
    # with the timeout-reset bug this would hang until the test timeout.
    assert trace.status == "dropped"
    assert trace.attempts == 2
    retry_events = [e for e in client.report.events if e.kind == "retry"]
    assert len(retry_events) == 2
    assert all("no ACK within" in e.detail for e in retry_events)
    assert wall < 5.0, f"deadline did not hold: {wall:.1f}s"


# ---------------------------------------------------------------------------
# AIMD congestion window
# ---------------------------------------------------------------------------


class TestAimd:
    def _client(self, server) -> DbgcClient:
        return DbgcClient(server.address, window=8, busy_backoff_s=0.01)

    def _inflight(self, client: DbgcClient, index: int) -> None:
        client._inflight[index] = _InFlight(
            item=_QueuedFrame(_trace(index), b""), record=b"",
            attempt=1, sent_at=time.perf_counter(),
        )

    def test_busy_halves_and_clean_grows(self):
        with SqliteFrameStore() as store, DbgcServer(store) as server:
            client = self._client(server)
            try:
                assert client._cwnd == 8.0 and client._window_now() == 8
                self._inflight(client, 0)
                client._deliver_ack(
                    Record(TYPE_ACK, 0, flags=ACK_STORED | ACK_FLAG_BUSY)
                )
                assert client._cwnd == 4.0
                self._inflight(client, 1)
                client._deliver_ack(
                    Record(TYPE_ACK, 1, flags=ACK_STORED | ACK_FLAG_BUSY)
                )
                assert client._cwnd == 2.0
                for index in range(2, 12):
                    self._inflight(client, index)
                    client._deliver_ack(Record(TYPE_ACK, index, flags=ACK_STORED))
                # Additive increase, clamped at the configured window.
                assert client._cwnd == 8.0
                assert client.report.busy_hints == 2
            finally:
                client.close()

    def test_cwnd_floor_is_one(self):
        with SqliteFrameStore() as store, DbgcServer(store) as server:
            client = self._client(server)
            try:
                for index in range(8):
                    self._inflight(client, index)
                    client._deliver_ack(
                        Record(TYPE_ACK, index, flags=ACK_STORED | ACK_FLAG_BUSY)
                    )
                assert client._cwnd == 1.0
                assert client._window_now() == 1
            finally:
                client.close()

    def test_stale_busy_ack_hints_without_shrinking(self):
        with SqliteFrameStore() as store, DbgcServer(store) as server:
            client = self._client(server)
            try:
                # BUSY on an ACK that matches nothing: the hint is honored
                # (congestion signal) but the window is not charged twice.
                client._deliver_ack(
                    Record(TYPE_ACK, 777, flags=ACK_STORED | ACK_FLAG_BUSY)
                )
                assert client._cwnd == 8.0
                assert client.report.busy_hints == 1
            finally:
                client.close()


# ---------------------------------------------------------------------------
# Pipelining pays: latency-paced throughput
# ---------------------------------------------------------------------------


def test_windowed_stream_beats_stop_and_wait_over_latency():
    """On a 20ms one-way link, window=8 must overlap the RTTs.  The gate
    here is a lenient 2x (the bench enforces the full 4x) so the test
    stays robust on loaded CI machines."""

    def run(window: int) -> float:
        spec = FleetSpec(
            n_clients=1, frames_per_client=20, seed=3, latency_s=0.02,
            window=window, payload_bytes=(200, 300), ack_timeout=5.0,
        )
        with SqliteFrameStore() as store:
            started = time.perf_counter()
            result = run_fleet(spec, store, mode="store")
            wall = time.perf_counter() - started
            assert result.n_stored == 20
            assert result.n_dropped == 0
        return wall

    serial = run(1)
    windowed = run(8)
    assert serial / windowed >= 2.0, (
        f"window=8 only {serial / windowed:.2f}x faster "
        f"({windowed:.3f}s vs {serial:.3f}s)"
    )


# ---------------------------------------------------------------------------
# Acceptance: seeded faulty fleet, window=8 vs window=1 serial replay
# ---------------------------------------------------------------------------


FAULTY_BASE = dict(
    n_clients=2,
    frames_per_client=12,
    seed=7,
    fault_spec=FaultSpec(
        corrupt_rate=0.10, ack_drop_rate=0.15, disconnect_rate=0.05
    ),
    force_disconnect_local=frozenset({3}),
    ack_timeout=0.4,
    payload_bytes=(150, 250),
)


def test_faulty_window8_matches_serial_stop_and_wait_replay():
    """ACK drops, bit flips, and mid-frame disconnects at window=8: zero
    lost frames, exactly-once stores, and byte-identical contents vs the
    window=1 serial replay of the same seeded fault schedule."""
    total = FAULTY_BASE["n_clients"] * FAULTY_BASE["frames_per_client"]
    with SqliteFrameStore() as s8:
        r8 = run_fleet(FleetSpec(window=8, **FAULTY_BASE), s8, mode="store")
        contents8 = payload_contents(s8)
    with SqliteFrameStore() as s1:
        r1 = run_fleet(
            FleetSpec(window=1, **FAULTY_BASE), s1, mode="store",
            concurrent=False,
        )
        contents1 = payload_contents(s1)
    # Nothing lost: every frame stored or quarantined, never dropped.
    assert r8.n_dropped == 0
    assert r8.n_stored + r8.n_quarantined == total
    assert r8.merged.total_retries > 0  # the faults actually bit
    # Same per-frame outcomes per client.  (Full accounting keys are
    # *not* compared here: a disconnect at window=8 retransmits the
    # co-flying frames too, so attempt counts legitimately differ.)
    for cid in r8.reports:
        assert _outcome(r8.reports[cid]) == _outcome(r1.reports[cid]), cid
    # Exactly-once, byte-identical stores.
    assert contents8 == contents1
    # Quarantine forensics match frame for frame.
    assert sorted(q.frame_index for q in r8.server.quarantine) == sorted(
        q.frame_index for q in r1.server.quarantine
    )


def test_fault_free_window8_accounting_matches_serial_exactly():
    """Without faults the pipelined run must be *fully* indistinguishable:
    identical accounting keys (attempts, statuses, event counts) and
    byte-identical stores."""
    clean = dict(
        n_clients=2, frames_per_client=15, seed=9, payload_bytes=(150, 250)
    )
    with SqliteFrameStore() as s8:
        r8 = run_fleet(FleetSpec(window=8, **clean), s8, mode="store")
        contents8 = payload_contents(s8)
    with SqliteFrameStore() as s1:
        r1 = run_fleet(
            FleetSpec(window=1, **clean), s1, mode="store", concurrent=False
        )
        contents1 = payload_contents(s1)
    assert r8.accounting_keys() == r1.accounting_keys()
    assert contents8 == contents1
    assert r8.merged.total_retries == 0


# ---------------------------------------------------------------------------
# Windowed decompress: pipelined decode stays byte-identical
# ---------------------------------------------------------------------------


DECODE_SPEC = FleetSpec(n_clients=2, frames_per_client=6, seed=11)


@pytest.fixture(scope="module")
def temporal_payloads():
    return compressed_fleet_payloads(
        DECODE_SPEC, sensor_scale=0.2, temporal=True, keyframe_interval=2
    )


def test_windowed_decode_offload_matches_inline_oracle(temporal_payloads):
    with SqliteFrameStore() as oracle_store:
        oracle = run_fleet(
            DECODE_SPEC, oracle_store, mode="decompress",
            payloads=temporal_payloads, concurrent=False,
        )
        assert oracle.n_quarantined == 0
        oracle_clouds = cloud_contents(oracle_store)
    spec = FleetSpec(
        n_clients=DECODE_SPEC.n_clients,
        frames_per_client=DECODE_SPEC.frames_per_client,
        seed=DECODE_SPEC.seed, window=8,
    )
    with SqliteFrameStore() as store:
        result = run_fleet(
            spec, store, mode="decompress", decode_workers=2,
            payloads=temporal_payloads,
        )
        assert result.n_quarantined == 0 and result.n_dropped == 0
        assert cloud_contents(store) == oracle_clouds


def test_windowed_decode_kill_and_restart_drill(tmp_path, temporal_payloads):
    """Window=8 across a server kill: the drainer dies with the server,
    clients retransmit their whole window, and everything that stores is
    byte-identical to the uninterrupted oracle."""
    spec = FleetSpec(
        n_clients=DECODE_SPEC.n_clients,
        frames_per_client=DECODE_SPEC.frames_per_client,
        seed=DECODE_SPEC.seed, window=8,
    )
    total = spec.n_clients * spec.frames_per_client
    with SqliteFrameStore(tmp_path / "frames.sqlite") as store:
        result = run_fleet(
            spec, store, mode="decompress", decode_workers=2,
            payloads=temporal_payloads,
            receipt_journal=tmp_path / "receipts.jsonl",
            kill_after_frames=total // 2,
        )
        assert result.restarts >= 1
        for cid, report in result.reports.items():
            assert report.n_dropped == 0, cid
            assert (
                report.n_stored + report.n_quarantined
                == spec.frames_per_client
            ), cid
        stored = cloud_contents(store)
    with SqliteFrameStore() as oracle_store:
        run_fleet(
            DECODE_SPEC, oracle_store, mode="decompress",
            payloads=temporal_payloads, concurrent=False,
        )
        oracle_clouds = cloud_contents(oracle_store)
    for index, blob in stored.items():
        assert blob == oracle_clouds[index], index
    # Only mid-chain deltas may be missing (orphaned by the restart).
    for index in set(oracle_clouds) - set(stored):
        assert (index % spec.frames_per_client) % 2 != 0, index


# ---------------------------------------------------------------------------
# Observability: ACK latency histogram + server ACK queue depth
# ---------------------------------------------------------------------------


def test_ack_latency_and_queue_depth_metrics(temporal_payloads):
    spec = FleetSpec(
        n_clients=DECODE_SPEC.n_clients,
        frames_per_client=DECODE_SPEC.frames_per_client,
        seed=DECODE_SPEC.seed, window=8,
    )
    total = spec.n_clients * spec.frames_per_client
    with obs.recording() as recorder:
        with SqliteFrameStore() as store:
            result = run_fleet(
                spec, store, mode="decompress", decode_workers=2,
                payloads=temporal_payloads,
            )
    metrics = obs.report_dict(recorder)
    # One ACK latency observation per settled frame, mirrored into the
    # report for the fleet summary's percentiles.
    assert metrics["histograms"]["transport.ack_latency_s"]["count"] == total
    merged = result.merged
    assert len(merged.ack_latencies) == total
    p50 = merged.ack_latency_percentile(50)
    p99 = merged.ack_latency_percentile(99)
    assert 0.0 < p50 <= p99 <= max(merged.ack_latencies)
    # The drainer observed its backlog once per committed frame.
    assert metrics["histograms"]["server.ack_queue_depth"]["count"] == total


def test_ack_latency_percentile_edge_cases():
    report = PipelineReport()
    assert report.ack_latency_percentile(50) == 0.0
    report.ack_latencies.extend([0.3, 0.1, 0.2])
    assert report.ack_latency_percentile(0) == 0.1
    assert report.ack_latency_percentile(50) == 0.2
    assert report.ack_latency_percentile(100) == 0.3
