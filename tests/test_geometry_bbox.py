"""Unit tests for repro.geometry.bbox."""

import numpy as np
import pytest

from repro.geometry import BoundingBox, BoundingCube


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of_points(np.array([[0.0, -1.0, 2.0], [3.0, 1.0, 0.0]]))
        assert box.lo == (0.0, -1.0, 0.0)
        assert box.hi == (3.0, 1.0, 2.0)

    def test_of_empty(self):
        box = BoundingBox.of_points(np.empty((0, 3)))
        assert box.volume() == 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox((1.0, 0.0, 0.0), (0.0, 1.0, 1.0))

    def test_extents_center_volume(self):
        box = BoundingBox((0.0, 0.0, 0.0), (2.0, 4.0, 6.0))
        assert box.extents == (2.0, 4.0, 6.0)
        assert box.center == (1.0, 2.0, 3.0)
        assert box.volume() == 48.0

    def test_contains(self):
        box = BoundingBox((0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        pts = np.array([[0.5, 0.5, 0.5], [1.0, 1.0, 1.0], [1.1, 0.5, 0.5]])
        assert list(box.contains(pts)) == [True, True, False]


class TestBoundingCube:
    def test_child_octants_tile_parent(self):
        cube = BoundingCube((0.0, 0.0, 0.0), 2.0)
        children = [cube.child(i) for i in range(8)]
        assert all(c.side == 1.0 for c in children)
        origins = {c.origin for c in children}
        assert len(origins) == 8
        # Octant index bit 0 -> x, bit 1 -> y, bit 2 -> z.
        assert cube.child(1).origin == (1.0, 0.0, 0.0)
        assert cube.child(2).origin == (0.0, 1.0, 0.0)
        assert cube.child(4).origin == (0.0, 0.0, 1.0)
        assert cube.child(7).origin == (1.0, 1.0, 1.0)

    def test_child_index_bounds(self):
        cube = BoundingCube((0.0, 0.0, 0.0), 1.0)
        with pytest.raises(ValueError):
            cube.child(8)
        with pytest.raises(ValueError):
            cube.child(-1)

    def test_negative_side_rejected(self):
        with pytest.raises(ValueError):
            BoundingCube((0.0, 0.0, 0.0), -1.0)

    def test_of_points_is_cube_and_contains_all(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-5, 5, size=(100, 3))
        cube = BoundingCube.of_points(pts)
        assert np.all(cube.as_box().contains(pts))

    def test_for_leaf_size_side_is_power_of_two_multiple(self):
        pts = np.array([[0.0, 0.0, 0.0], [10.0, 3.0, 1.0]])
        cube, depth = BoundingCube.for_leaf_size(pts, leaf_side=0.04)
        assert cube.side == pytest.approx(0.04 * 2**depth)
        assert cube.side >= 10.0
        assert np.all(cube.as_box().contains(pts))

    def test_for_leaf_size_single_point(self):
        cube, depth = BoundingCube.for_leaf_size(np.array([[1.0, 1.0, 1.0]]), 0.04)
        assert depth == 0
        assert cube.side == pytest.approx(0.04)

    def test_for_leaf_size_rejects_bad_leaf(self):
        with pytest.raises(ValueError):
            BoundingCube.for_leaf_size(np.zeros((1, 3)), 0.0)

    def test_hi_and_center(self):
        cube = BoundingCube((1.0, 2.0, 3.0), 2.0)
        assert cube.hi == (3.0, 4.0, 5.0)
        assert cube.center == (2.0, 3.0, 4.0)


class TestPow2Cover:
    """The sizing rule shared by the octree cube and the outlier quadtree."""

    def test_exact_power_of_two_multiples(self):
        from repro.geometry.bbox import pow2_cover

        assert pow2_cover(0.0, 0.5) == (0.5, 0)
        # An exact-multiple extent still doubles: the boundary epsilon
        # keeps points on the max face inside the half-open cells.
        assert pow2_cover(0.5, 0.5) == (1.0, 1)
        assert pow2_cover(0.6, 0.5) == (1.0, 1)
        assert pow2_cover(7.9, 0.5) == (8.0, 4)

    def test_side_is_leaf_times_power_and_covers(self):
        from repro.geometry.bbox import pow2_cover

        rng = np.random.default_rng(3)
        for _ in range(200):
            extent = float(rng.uniform(0.0, 100.0))
            leaf = float(rng.uniform(1e-3, 2.0))
            side, depth = pow2_cover(extent, leaf)
            assert side == leaf * 2**depth
            assert side >= extent * (1.0 - 1e-12)
            assert depth == 0 or side / 2.0 < extent * (1.0 + 1e-12)

    def test_matches_for_leaf_size(self):
        rng = np.random.default_rng(4)
        xyz = rng.uniform(-20, 20, size=(50, 3))
        cube, depth = BoundingCube.for_leaf_size(xyz, 0.04)
        extent = float(np.max(xyz.max(axis=0) - xyz.min(axis=0)))
        from repro.geometry.bbox import pow2_cover

        assert (cube.side, depth) == pow2_cover(extent, 0.04)
