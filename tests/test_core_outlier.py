"""Tests for outlier compression, grouping and the container."""

import numpy as np
import pytest

from repro.core import DBGCParams, split_into_groups
from repro.core.container import pack_container, unpack_container
from repro.core.outlier import decode_outliers, encode_outliers


def _outlier_cloud(n=200, seed=0):
    """Far scattered points, flat-ish in z (the typical outlier shape).

    Outliers are mostly distant ground/facade returns: z varies smoothly
    with position (Section 3.6's motivation for treating z as an attribute).
    """
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0, 2 * np.pi, n)
    radii = rng.uniform(40, 90, n)
    x = radii * np.cos(angles)
    y = radii * np.sin(angles)
    z = -1.7 + 0.01 * x + 0.05 * np.sin(angles * 2) + rng.normal(0, 0.05, n)
    return np.column_stack([x, y, z])


class TestOutlierCodec:
    @pytest.mark.parametrize("mode", ["quadtree", "octree", "none"])
    def test_roundtrip_all_modes(self, mode):
        params = DBGCParams(outlier_mode=mode)
        xyz = _outlier_cloud()
        payload, mapping = encode_outliers(xyz, params)
        decoded = decode_outliers(payload, params)
        assert decoded.shape == xyz.shape
        err = np.abs(decoded[mapping] - xyz)
        assert err.max() <= params.q_xyz * (1 + 1e-6)

    @pytest.mark.parametrize("mode", ["quadtree", "octree", "none"])
    def test_empty(self, mode):
        params = DBGCParams(outlier_mode=mode)
        payload, mapping = encode_outliers(np.empty((0, 3)), params)
        assert decode_outliers(payload, params).shape == (0, 3)
        assert mapping.size == 0

    def test_quadtree_beats_octree_on_flat_outliers(self):
        """Table 2: the quadtree + z-attribute scheme wins on flat scenes."""
        xyz = _outlier_cloud(n=500)
        quad, _ = encode_outliers(xyz, DBGCParams(outlier_mode="quadtree"))
        octree, _ = encode_outliers(xyz, DBGCParams(outlier_mode="octree"))
        none, _ = encode_outliers(xyz, DBGCParams(outlier_mode="none"))
        assert len(quad) <= len(octree)
        assert len(octree) < len(none)

    def test_mapping_is_permutation(self):
        xyz = _outlier_cloud(100)
        _, mapping = encode_outliers(xyz, DBGCParams())
        assert sorted(mapping.tolist()) == list(range(100))

    def test_unknown_mode_byte_rejected(self):
        with pytest.raises(ValueError):
            decode_outliers(bytes([99, 0]), DBGCParams())

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_outliers(b"", DBGCParams())


class TestGrouping:
    def test_single_group(self):
        groups = split_into_groups(np.array([1.0, 5.0, 2.0]), 1)
        assert len(groups) == 1
        assert groups[0].tolist() == [0, 1, 2]

    def test_three_groups_equal_width(self):
        radii = np.linspace(1.0, 100.0, 99)
        groups = split_into_groups(radii, 3)
        assert len(groups) == 3
        # Equal radial intervals: each group spans ~33 m of range.
        spans = [radii[g].max() - radii[g].min() for g in groups]
        assert max(spans) - min(spans) < 5.0

    def test_groups_ordered_by_radius(self):
        radii = np.array([50.0, 1.0, 99.0, 2.0, 51.0, 98.0])
        groups = split_into_groups(radii, 3)
        maxes = [radii[g].max() for g in groups]
        assert maxes == sorted(maxes)

    def test_partition_is_complete(self):
        rng = np.random.default_rng(0)
        radii = rng.uniform(1, 100, 500)
        groups = split_into_groups(radii, 3)
        seen = np.concatenate(groups)
        assert sorted(seen.tolist()) == list(range(500))

    def test_empty_and_invalid(self):
        assert split_into_groups(np.array([]), 3) == []
        with pytest.raises(ValueError):
            split_into_groups(np.array([1.0]), 0)

    def test_degenerate_identical_radii(self):
        groups = split_into_groups(np.full(10, 5.0), 3)
        assert sum(len(g) for g in groups) == 10


class TestContainer:
    def test_roundtrip(self):
        params = DBGCParams(q_xyz=0.05, strict_cartesian=True)
        data = pack_container(
            params, 0.01, 0.005, b"DENSE", [b"G0", b"G111"], b"OUT", b"ATTRS"
        )
        header, dense, groups, outlier, attrs = unpack_container(data)
        assert header.q_xyz == 0.05
        assert header.u_theta == 0.01
        assert header.u_phi == 0.005
        assert header.strict_cartesian
        assert header.spherical_conversion
        assert dense == b"DENSE"
        assert groups == [b"G0", b"G111"]
        assert outlier == b"OUT"
        assert attrs == b"ATTRS"

    def test_flags_roundtrip(self):
        params = DBGCParams(spherical_conversion=False, radial_reference=False)
        data = pack_container(params, 0.01, 0.005, b"", [], b"")
        header, _, groups, _, attrs = unpack_container(data)
        assert attrs == b""
        assert not header.spherical_conversion
        assert not header.radial_reference
        assert groups == []

    def test_to_params_carries_decode_fields(self):
        params = DBGCParams(q_xyz=0.07, th_r=3.5, radial_reference=False)
        data = pack_container(params, 0.01, 0.005, b"", [], b"")
        header, _, _, _, _ = unpack_container(data)
        rebuilt = header.to_params()
        assert rebuilt.q_xyz == 0.07
        assert rebuilt.th_r == 3.5
        assert not rebuilt.radial_reference

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            unpack_container(b"XXXX" + bytes(40))

    def test_bad_version_rejected(self):
        data = bytearray(pack_container(DBGCParams(), 0.01, 0.005, b"", [], b""))
        data[4] = 99
        with pytest.raises(ValueError):
            unpack_container(bytes(data))
