"""Tests for the end-to-end system layer (channel, stores, client/server)."""

import numpy as np
import pytest

from repro.core import DBGCParams
from repro.datasets import generate_frame
from repro.geometry import PointCloud
from repro.system import (
    BandwidthShaper,
    DbgcClient,
    DbgcServer,
    FileFrameStore,
    SqliteFrameStore,
)
from repro.system.metrics import FrameTrace, PipelineReport


class TestChannel:
    def test_transfer_time(self):
        link = BandwidthShaper(8.0)  # 8 Mbps -> 1 MB takes 1 s
        assert link.transfer_seconds(1_000_000) == pytest.approx(1.0)

    def test_latency_added(self):
        link = BandwidthShaper(8.0, latency_s=0.05)
        assert link.transfer_seconds(0) == pytest.approx(0.05)

    def test_sustainable_fps(self):
        link = BandwidthShaper.mobile_4g()
        # Paper Section 4.4: a raw HDL-64E stream (9.6 Mbit/frame at
        # 10 fps) does NOT fit a 4G uplink; a 0.6 Mbit compressed frame does.
        assert not link.supports(1_200_000, 10.0)
        assert link.supports(75_000, 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthShaper(0.0)
        with pytest.raises(ValueError):
            BandwidthShaper(1.0, latency_s=-1.0)

    def test_pace_sleeps_to_deadline(self):
        import time

        link = BandwidthShaper(80.0)  # 10 KB -> 1 ms
        start = time.perf_counter()
        link.pace(10_000, start)
        assert time.perf_counter() - start >= 0.0009


class TestStores:
    def test_file_store_roundtrip(self, tmp_path):
        store = FileFrameStore(tmp_path / "frames")
        store.put_payload(3, b"abc")
        assert store.get_payload(3) == b"abc"
        cloud = PointCloud(np.random.default_rng(0).normal(size=(10, 3)))
        store.put_cloud(4, cloud)
        assert np.array_equal(store.get_cloud(4).xyz, cloud.xyz)
        assert len(store) == 2

    def test_sqlite_store_roundtrip(self):
        store = SqliteFrameStore()
        store.put_payload(1, b"xyz", n_points=5)
        assert store.get_payload(1) == b"xyz"
        cloud = PointCloud(np.random.default_rng(1).normal(size=(7, 3)))
        store.put_cloud(2, cloud)
        assert np.array_equal(store.get_cloud(2).xyz, cloud.xyz)
        assert len(store) == 2
        store.close()

    def test_sqlite_missing_frame(self):
        store = SqliteFrameStore()
        with pytest.raises(KeyError):
            store.get_payload(9)
        with pytest.raises(KeyError):
            store.get_cloud(9)


class TestMetrics:
    def _trace(self, i):
        # status is explicit: traces default to "pending" until an ACK.
        return FrameTrace(
            frame_index=i,
            n_points=100,
            payload_bytes=1000,
            captured_at=float(i),
            compressed_at=i + 0.2,
            sent_at=i + 0.3,
            received_at=i + 0.4,
            stored_at=i + 0.5,
            status="stored",
        )

    def test_trace_defaults_to_pending(self):
        # Regression: a freshly built trace must not count as stored; only
        # a server ACK flips it (see DbgcClient._transmit).
        trace = FrameTrace(
            frame_index=0, n_points=1, payload_bytes=1, captured_at=0.0
        )
        assert trace.status == "pending"
        report = PipelineReport()
        report.add(trace)
        assert report.n_stored == 0
        assert report.stored_traces == []

    def test_throughput_ignores_trace_order(self):
        # Regression: retries finish frames out of capture order; the fps
        # window must span earliest capture -> latest store regardless of
        # the order traces were recorded in.
        report = PipelineReport()
        for i in (3, 0, 4, 1, 2):  # frame 3 stored first, etc.
            report.add(self._trace(i))
        assert report.throughput_fps() == pytest.approx(5 / 4.5)

    def test_latency_breakdown(self):
        t = self._trace(0)
        assert t.compress_latency == pytest.approx(0.2)
        assert t.transfer_latency == pytest.approx(0.1)
        assert t.total_latency == pytest.approx(0.5)

    def test_report_aggregates(self):
        report = PipelineReport()
        for i in range(5):
            report.add(self._trace(i))
        assert report.n_frames == 5
        assert report.mean_total_latency == pytest.approx(0.5)
        # 5 frames from t=0 to t=4.5 -> ~1.11 fps
        assert report.throughput_fps() == pytest.approx(5 / 4.5)
        assert report.bandwidth_mbps(10.0) == pytest.approx(0.08)


class TestClientServer:
    @pytest.fixture
    def frames(self):
        pc = generate_frame("kitti-campus", 0)
        # Small frames keep the socket test quick.
        return [PointCloud(pc.xyz[::12]), PointCloud(pc.xyz[1::12])]

    def test_decompress_mode_end_to_end(self, frames):
        store = SqliteFrameStore()
        server = DbgcServer(store, mode="decompress").start()
        client = DbgcClient(server.address, params=DBGCParams())
        for i, frame in enumerate(frames):
            client.send_frame(i, frame)
        client.close()
        server.join()
        assert len(store) == 2
        for i, frame in enumerate(frames):
            assert len(store.get_cloud(i)) == len(frame)
        client.merge_receipts(server.receipts)
        assert client.report.mean_total_latency > 0
        assert client.report.throughput_fps() > 0

    def test_store_mode_keeps_payload(self, frames):
        store = SqliteFrameStore()
        server = DbgcServer(store, mode="store").start()
        client = DbgcClient(server.address)
        trace = client.send_frame(0, frames[0])
        client.close()
        server.join()
        payload = store.get_payload(0)
        assert len(payload) == trace.payload_bytes
        # The stored payload is still decodable.
        from repro.core import DBGCDecompressor

        assert len(DBGCDecompressor().decompress(payload)) == len(frames[0])

    def test_shaped_channel_delays_delivery(self, frames):
        store = SqliteFrameStore()
        server = DbgcServer(store, mode="store").start()
        # Slow link so pacing dominates the loopback time.
        client = DbgcClient(server.address, channel=BandwidthShaper(2.0))
        trace = client.send_frame(0, frames[0])
        client.close()
        server.join()
        client.merge_receipts(server.receipts)
        expected = 8 * trace.payload_bytes / 2e6
        assert trace.transfer_latency >= expected * 0.9

    def test_bad_server_mode_rejected(self):
        with pytest.raises(ValueError):
            DbgcServer(SqliteFrameStore(), mode="teleport")
