"""Failure injection: corrupt, truncated, and adversarial streams.

A decoder facing a damaged stream must raise a clean Python exception
(ValueError / struct.error / StopIteration wrapped variants) — never hang,
never return silently wrong geometry without complaint, never crash the
interpreter.  These tests flip bits, truncate, and shuffle real payloads.
"""

import struct

import numpy as np
import pytest

from repro.baselines import (
    GpccCompressor,
    KdTreeCompressor,
    OctreeCompressor,
    OctreeICompressor,
)
from repro.core import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.datasets import generate_frame
from repro.geometry import PointCloud

DECODE_ERRORS = (ValueError, IndexError, KeyError, StopIteration, struct.error, OverflowError)


@pytest.fixture(scope="module")
def cloud():
    return PointCloud(generate_frame("kitti-road", 0).xyz[::10])


@pytest.fixture(scope="module")
def payload(cloud):
    return DBGCCompressor(DBGCParams()).compress(cloud)


def _expect_failure_or_mismatch(decode, data, n_expected):
    """Decoding corrupt data must raise, or at least not lie silently.

    Entropy-coded streams cannot detect every flipped bit; what we require
    is: no hang, no interpreter crash, and when a value *is* returned it is
    a well-formed cloud object.
    """
    try:
        result = decode(data)
    except DECODE_ERRORS:
        return True
    assert result.xyz.shape[1] == 3
    return len(result) != n_expected


class TestDbgcStream:
    def test_truncations_never_hang(self, payload, cloud):
        decoder = DBGCDecompressor()
        for cut in (5, 20, len(payload) // 2, len(payload) - 3):
            _expect_failure_or_mismatch(decoder.decompress, payload[:cut], len(cloud))

    def test_header_bit_flips(self, payload, cloud):
        decoder = DBGCDecompressor()
        for position in range(0, 40, 3):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0xFF
            _expect_failure_or_mismatch(
                decoder.decompress, bytes(corrupted), len(cloud)
            )

    def test_random_bit_flips(self, payload, cloud):
        decoder = DBGCDecompressor()
        rng = np.random.default_rng(0)
        for _ in range(25):
            corrupted = bytearray(payload)
            corrupted[rng.integers(0, len(payload))] ^= 1 << rng.integers(0, 8)
            _expect_failure_or_mismatch(
                decoder.decompress, bytes(corrupted), len(cloud)
            )

    def test_empty_and_garbage(self):
        decoder = DBGCDecompressor()
        with pytest.raises(DECODE_ERRORS):
            decoder.decompress(b"")
        with pytest.raises(DECODE_ERRORS):
            decoder.decompress(b"\x00" * 64)
        with pytest.raises(DECODE_ERRORS):
            decoder.decompress(bytes(range(256)))

    def test_swapped_sections_detected_or_harmless(self, payload, cloud):
        # Duplicate the stream onto itself mid-way: sizes go inconsistent.
        data = payload[: len(payload) // 2] + payload[: len(payload) // 2]
        _expect_failure_or_mismatch(
            DBGCDecompressor().decompress, data, len(cloud)
        )


class TestBaselineStreams:
    @pytest.mark.parametrize(
        "cls", [OctreeCompressor, OctreeICompressor, KdTreeCompressor, GpccCompressor]
    )
    def test_truncation_and_flips(self, cls, cloud):
        codec = cls(0.05)
        payload = codec.compress(cloud)
        for cut in (3, len(payload) // 3, len(payload) - 2):
            _expect_failure_or_mismatch(codec.decompress, payload[:cut], len(cloud))
        rng = np.random.default_rng(1)
        for _ in range(10):
            corrupted = bytearray(payload)
            corrupted[rng.integers(0, len(payload))] ^= 0xFF
            _expect_failure_or_mismatch(
                codec.decompress, bytes(corrupted), len(cloud)
            )


class TestRoundTripUnderhandedInputs:
    """Valid but nasty inputs must round-trip, not just fail gracefully."""

    @pytest.mark.parametrize(
        "xyz",
        [
            np.full((40, 3), 1e-9),                    # everything at the origin
            np.array([[100.0, 100.0, 100.0]] * 17),    # far duplicates
            np.column_stack(                            # a single vertical pole
                [np.zeros(50), np.zeros(50) + 5.0, np.linspace(-2, 10, 50)]
            ),
        ],
        ids=["origin-cluster", "far-duplicates", "vertical-pole"],
    )
    def test_degenerate_geometry(self, xyz):
        params = DBGCParams()
        compressor = DBGCCompressor(params)
        result = compressor.compress_detailed(PointCloud(xyz))
        decoded = DBGCDecompressor().decompress(result.payload)
        assert len(decoded) == len(xyz)
        err = np.linalg.norm(decoded.xyz[result.mapping] - xyz, axis=1)
        assert err.max() <= np.sqrt(3) * params.q_xyz * (1 + 1e-6)

    def test_huge_coordinates(self):
        rng = np.random.default_rng(2)
        xyz = rng.uniform(9000.0, 9100.0, size=(100, 3))
        params = DBGCParams(q_xyz=0.05)
        result = DBGCCompressor(params).compress_detailed(PointCloud(xyz))
        decoded = DBGCDecompressor().decompress(result.payload)
        err = np.linalg.norm(decoded.xyz[result.mapping] - xyz, axis=1)
        assert err.max() <= np.sqrt(3) * params.q_xyz * (1 + 1e-6)
