"""Tests for the dbgc command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import load_kitti_bin, load_npz


@pytest.fixture
def frame_file(tmp_path):
    path = tmp_path / "frame.npz"
    code = main(
        ["simulate", "kitti-road", str(path), "--sensor-scale", "0.2", "--seed", "3"]
    )
    assert code == 0
    return path


class TestSimulate:
    def test_creates_cloud(self, frame_file):
        cloud = load_npz(frame_file)
        assert len(cloud) > 500

    def test_bin_output(self, tmp_path):
        path = tmp_path / "frame.bin"
        assert main(["simulate", "kitti-road", str(path), "--sensor-scale", "0.2"]) == 0
        cloud, _ = load_kitti_bin(path)
        assert len(cloud) > 500

    def test_unknown_scene_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["simulate", "mars", str(tmp_path / "x.npz")])


class TestCompressDecompress:
    def test_roundtrip(self, frame_file, tmp_path, capsys):
        dbgc_path = tmp_path / "frame.dbgc"
        out_path = tmp_path / "restored.npz"
        assert main(["compress", str(frame_file), str(dbgc_path), "--q", "0.02",
                     "--sensor-scale", "0.2"]) == 0
        assert dbgc_path.exists()
        captured = capsys.readouterr().out
        assert "points" in captured and "x)" in captured

        assert main(["decompress", str(dbgc_path), str(out_path)]) == 0
        original = load_npz(frame_file)
        restored = load_npz(out_path)
        assert len(restored) == len(original)

    def test_strict_flag(self, frame_file, tmp_path):
        dbgc_path = tmp_path / "strict.dbgc"
        assert main(["compress", str(frame_file), str(dbgc_path), "--strict",
                     "--sensor-scale", "0.2"]) == 0

    def test_unsupported_format_rejected(self, tmp_path):
        bad = tmp_path / "cloud.xyz"
        bad.write_text("1 2 3\n")
        with pytest.raises(SystemExit):
            main(["compress", str(bad), str(tmp_path / "o.dbgc")])


class TestInfo:
    def test_prints_layout(self, frame_file, tmp_path, capsys):
        dbgc_path = tmp_path / "frame.dbgc"
        main(["compress", str(frame_file), str(dbgc_path), "--sensor-scale", "0.2"])
        capsys.readouterr()
        assert main(["info", str(dbgc_path)]) == 0
        out = capsys.readouterr().out
        assert "error bound" in out
        assert "dense stream" in out
        assert "decoded points" in out


class TestBench:
    def test_synthetic_bench(self, capsys):
        assert main(["bench", "--scene", "kitti-road", "--sensor-scale", "0.15",
                     "--q", "0.05"]) == 0
        out = capsys.readouterr().out
        for name in ("DBGC", "G-PCC", "Octree", "Draco(kd)"):
            assert name in out

    def test_bench_on_file(self, frame_file, capsys):
        assert main(["bench", "--input", str(frame_file), "--sensor-scale", "0.2",
                     "--q", "0.05"]) == 0
        assert "DBGC" in capsys.readouterr().out


class TestStream:
    def test_clean_stream(self, capsys):
        assert main(["stream", "--scene", "kitti-road", "--frames", "2",
                     "--sensor-scale", "0.15", "--mode", "store",
                     "--bandwidth", "0"]) == 0
        out = capsys.readouterr().out
        assert "stored 2/2 frames" in out
        assert "retries     : 0" in out
        assert "quarantined : 0" in out

    def test_faulty_stream_accounts_for_every_frame(self, capsys):
        assert main(["stream", "--scene", "kitti-road", "--frames", "3",
                     "--sensor-scale", "0.15", "--mode", "store",
                     "--corrupt-rate", "0.5", "--disconnect-frames", "1",
                     "--fault-seed", "4", "--ack-timeout", "2"]) == 0
        out = capsys.readouterr().out
        assert "retries     : 1" in out  # the forced disconnect on frame 1
        assert "quarantine: frame" in out  # seeded corruption surfaced

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["stream", "--policy", "teleport"])


class TestSequenceCommand:
    def test_temporal_stream_writes_and_verifies(self, tmp_path, capsys):
        path = tmp_path / "drive.dbgcs"
        assert main(["sequence", "kitti-road", str(path),
                     "--frames", "3", "--temporal", "--keyframe-interval", "2",
                     "--sensor-scale", "0.15", "--verify"]) == 0
        out = capsys.readouterr().out
        # Interval 2 over 3 frames: key, delta, key.
        assert "frame 0" in out and "(key)" in out and "(delta)" in out
        assert "verified: 3 frames" in out
        # The stream header carries the backpatched frame count.
        from repro.core.streaming import FrameStreamReader

        with open(path, "rb") as source:
            assert FrameStreamReader(source).n_frames == 3

    def test_independent_stream_has_no_deltas(self, tmp_path, capsys):
        path = tmp_path / "drive.dbgcs"
        assert main(["sequence", "kitti-road", str(path),
                     "--frames", "2", "--sensor-scale", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "(delta)" not in out
