"""Tests for the re-implemented baseline compressors."""

import numpy as np
import pytest

from repro.baselines import (
    DeflateCompressor,
    GpccCompressor,
    KdTreeCompressor,
    OctreeCompressor,
    OctreeICompressor,
)
from repro.datasets import generate_frame
from repro.geometry import PointCloud

ALL_BASELINES = [
    OctreeCompressor,
    OctreeICompressor,
    KdTreeCompressor,
    GpccCompressor,
    DeflateCompressor,
]


@pytest.fixture(scope="module")
def frame():
    pc = generate_frame("kitti-campus", 0)
    return PointCloud(pc.xyz[::4])


def _random_cloud(n, scale=30.0, seed=0):
    rng = np.random.default_rng(seed)
    return PointCloud(rng.uniform(-scale, scale, size=(n, 3)))


class TestContracts:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_rejects_bad_bound(self, cls):
        with pytest.raises(ValueError):
            cls(0.0)

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_empty_cloud(self, cls):
        codec = cls(0.02)
        data = codec.compress(PointCloud.empty())
        assert len(codec.decompress(data)) == 0

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_single_point(self, cls):
        codec = cls(0.02)
        cloud = PointCloud(np.array([[3.21, -4.56, 7.89]]))
        decoded = codec.decompress(codec.compress(cloud))
        assert len(decoded) == 1
        assert np.abs(decoded.xyz - cloud.xyz).max() <= 0.02 + 1e-9

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_roundtrip_error_bound_random(self, cls):
        q = 0.02
        codec = cls(q)
        cloud = _random_cloud(800)
        decoded = codec.decompress(codec.compress(cloud))
        assert len(decoded) == len(cloud)
        mapping = codec.mapping(cloud)
        assert np.abs(decoded.xyz[mapping] - cloud.xyz).max() <= q + 1e-9

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_roundtrip_error_bound_frame(self, cls, frame):
        q = 0.05
        codec = cls(q)
        decoded = codec.decompress(codec.compress(frame))
        mapping = codec.mapping(frame)
        assert np.abs(decoded.xyz[mapping] - frame.xyz).max() <= q + 1e-9

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_mapping_is_permutation(self, cls, frame):
        mapping = cls(0.02).mapping(frame)
        assert sorted(mapping.tolist()) == list(range(len(frame)))

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_duplicates_preserved(self, cls):
        codec = cls(0.02)
        cloud = PointCloud(np.repeat([[1.0, 2.0, 3.0], [-5.0, 0.0, 2.0]], 9, axis=0))
        assert len(codec.decompress(codec.compress(cloud))) == 18

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_smaller_q_larger_stream(self, cls, frame):
        fine = len(cls(0.005).compress(frame))
        coarse = len(cls(0.08).compress(frame))
        assert coarse < fine


class TestRelativeBehaviour:
    """The qualitative relationships the paper's evaluation reports."""

    def test_all_beat_raw_on_frames(self, frame):
        for cls in ALL_BASELINES:
            ratio = cls(0.02).compression_ratio(frame)
            assert ratio > 3.0, cls.name

    def test_octree_i_close_to_octree(self, frame):
        """Octree_i trades group overhead for context gains: within 20%."""
        octree = OctreeCompressor(0.02).compression_ratio(frame)
        octree_i = OctreeICompressor(0.02).compression_ratio(frame)
        assert abs(octree - octree_i) / octree < 0.25

    def test_gpcc_beats_plain_octree_on_sparse(self):
        """G-PCC's IDCM pays off on very sparse clouds."""
        rng = np.random.default_rng(1)
        sparse = PointCloud(rng.uniform(-80, 80, size=(2000, 3)))
        gpcc = len(GpccCompressor(0.02).compress(sparse))
        octree = len(OctreeCompressor(0.02).compress(sparse))
        assert gpcc < octree

    def test_octree_ratio_decays_with_radius(self):
        """Figure 3a: concentric subsets compress worse as radius grows."""
        pc = generate_frame("kitti-city", 0)
        radii = pc.radii()
        codec = OctreeCompressor(0.02)
        ratios = []
        for radius in (5.0, 15.0, 60.0):
            subset = pc.select(radii <= radius)
            ratios.append(subset.nbytes_raw() / len(codec.compress(subset)))
        assert ratios[0] > ratios[1] > ratios[2]
