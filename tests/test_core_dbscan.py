"""Tests for the classic point-based DBSCAN reference implementation."""

import numpy as np

from repro.core import cluster_dbscan, cluster_exact


def _two_blobs(n_dense=300, n_sparse=40, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(0.0, 0.05, size=(n_dense, 3))
    sparse = rng.uniform(5.0, 30.0, size=(n_sparse, 3)) * rng.choice(
        [-1.0, 1.0], size=(n_sparse, 3)
    )
    xyz = np.vstack([dense, sparse])
    expected = np.zeros(len(xyz), dtype=bool)
    expected[:n_dense] = True
    return xyz, expected


class TestDbscan:
    def test_empty(self):
        assert cluster_dbscan(np.empty((0, 3)), 0.2, 5).size == 0

    def test_blob_vs_scatter(self):
        xyz, expected = _two_blobs()
        mask = cluster_dbscan(xyz, eps=0.2, min_pts=20)
        assert mask[expected].all()
        assert not mask[~expected].any()

    def test_border_points_included(self):
        # A point reachable from a core point but not core itself is dense.
        core_blob = np.zeros((30, 3)) + np.linspace(0, 0.01, 30)[:, None]
        border = np.array([[0.15, 0.0, 0.0]])
        xyz = np.vstack([core_blob, border])
        mask = cluster_dbscan(xyz, eps=0.2, min_pts=10)
        assert mask[-1]

    def test_noise_stays_out(self):
        xyz = np.diag([5.0, 10.0, 15.0])
        assert not cluster_dbscan(xyz, eps=0.2, min_pts=2).any()

    def test_two_separate_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 0.05, size=(100, 3))
        b = rng.normal(10.0, 0.05, size=(100, 3))
        mask = cluster_dbscan(np.vstack([a, b]), eps=0.2, min_pts=20)
        assert mask.all()

    def test_close_to_cell_based_on_frames(self):
        from repro.datasets import generate_frame

        xyz = generate_frame("kitti-road", 0).xyz[::4]
        dbscan = cluster_dbscan(xyz, 0.2, 8)
        exact = cluster_exact(xyz, 0.2, 8, 0.04)
        # Cell-based absorbs extra same-cell points; DBSCAN adds border
        # points: the sets differ slightly but must largely agree.
        assert (dbscan == exact).mean() > 0.85
