"""Bounds-check tests for the DBGC container parser.

Every length field in :func:`repro.core.container.unpack_container` must be
validated against the buffer: truncating a real payload at *any* byte has
to raise ``ValueError`` rather than hand short slices to the sub-decoders
(which would surface as confusing downstream errors, or worse, decode
garbage).  Both a v2 intra payload and a v3 delta payload are exercised so
the v3 extension header (predictor fingerprint + ego delta) is covered.
"""

import numpy as np
import pytest

from repro.core import DBGCParams
from repro.core.container import container_version, unpack_container
from repro.core.pipeline import DBGCCompressor
from repro.core.temporal import TemporalContext
from repro.geometry import PointCloud


def _small_cloud(shift: float = 0.0) -> PointCloud:
    """A compact analytic scene: a wall, a ground ring, a few outliers."""
    rng = np.random.default_rng(7)
    th = np.linspace(0.0, 2.0 * np.pi, 240, endpoint=False)
    ring = np.stack(
        [10.0 * np.cos(th) + shift, 10.0 * np.sin(th), np.full_like(th, -1.0)],
        axis=1,
    )
    wall = np.stack(
        [
            np.full(120, 5.0 + shift) + rng.normal(0.0, 0.003, 120),
            np.tile(np.linspace(-1.0, 1.0, 12), 10),
            np.repeat(np.linspace(-0.5, 0.5, 10), 12),
        ],
        axis=1,
    )
    outliers = rng.uniform(-40.0, 40.0, (12, 3))
    return PointCloud(np.vstack([ring, wall, outliers]))


@pytest.fixture(scope="module")
def v2_payload():
    compressor = DBGCCompressor(DBGCParams())
    payload = compressor.compress(
        _small_cloud(), attributes={"intensity": np.linspace(0, 1, 372)}
    )
    assert container_version(payload) == 2
    return payload


@pytest.fixture(scope="module")
def v3_payload():
    params = DBGCParams(temporal=True, keyframe_interval=8)
    compressor = DBGCCompressor(params)
    context = TemporalContext()
    compressor.compress_temporal(_small_cloud(), context)
    result = compressor.compress_temporal(
        _small_cloud(shift=0.5), context, ego_delta=(0.5, 0.0, 0.0)
    )
    assert container_version(result.payload) == 3
    return result.payload


class TestTruncation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            unpack_container(b"")

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            unpack_container(b"XXXX" + bytes(64))

    @pytest.mark.parametrize("fixture", ["v2_payload", "v3_payload"])
    def test_every_prefix_rejected(self, fixture, request):
        # Exhaustive: chopping the payload at any byte must raise — this
        # sweeps every section boundary (magic, fixed header, v3 extension,
        # each length varint, each section body) without enumerating them.
        payload = request.getfixturevalue(fixture)
        for cut in range(len(payload)):
            with pytest.raises(ValueError):
                unpack_container(payload[:cut])

    @pytest.mark.parametrize("fixture", ["v2_payload", "v3_payload"])
    def test_truncation_message_at_section_boundaries(self, fixture, request):
        payload = request.getfixturevalue(fixture)
        # Past the magic the error is the documented truncation message;
        # probe the fixed header, the section area, and the final byte.
        header_end = 7 + 32 + (28 if container_version(payload) == 3 else 0)
        for cut in (5, header_end - 1, header_end + 1, len(payload) - 1):
            with pytest.raises(ValueError, match="truncated DBGC container"):
                unpack_container(payload[:cut])

    @pytest.mark.parametrize("fixture", ["v2_payload", "v3_payload"])
    def test_runaway_length_varint_rejected(self, fixture, request):
        payload = request.getfixturevalue(fixture)
        header_end = 7 + 32 + (28 if container_version(payload) == 3 else 0)
        # Replace the dense-section length with continuation bytes running
        # off the end of the buffer.
        corrupt = payload[:header_end] + b"\xff" * 8
        with pytest.raises(ValueError, match="truncated DBGC container"):
            unpack_container(corrupt)

    def test_unsupported_version_rejected(self, v2_payload):
        corrupt = v2_payload[:4] + bytes([9]) + v2_payload[5:]
        with pytest.raises(ValueError, match="unsupported DBGC version"):
            unpack_container(corrupt)

    def test_full_payloads_parse(self, v2_payload, v3_payload):
        header, dense, groups, outlier, attributes = unpack_container(v2_payload)
        assert header.version == 2 and len(attributes) > 0
        header, _, _, _, _ = unpack_container(v3_payload)
        assert header.version == 3
        assert header.ego_delta == pytest.approx((0.5, 0.0, 0.0))
        assert header.predictor_fingerprint != 0
