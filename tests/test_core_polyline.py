"""Tests for polyline organization (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import organize_polylines
from repro.geometry.spherical import spherical_to_cartesian


def _ring(n, phi, r=10.0, theta_step=0.01, theta0=0.0):
    """Points along one scan ring (constant phi, stepping theta)."""
    theta = theta0 + np.arange(n) * theta_step
    tpr = np.column_stack([theta, np.full(n, phi), np.full(n, r)])
    return theta, np.full(n, phi), spherical_to_cartesian(tpr)


class TestOrganize:
    def test_empty(self):
        assert organize_polylines(np.array([]), np.array([]), np.empty((0, 3)), 0.01, 0.01) == []

    def test_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            organize_polylines(np.zeros(1), np.zeros(1), np.zeros((1, 3)), 0.0, 0.01)

    def test_single_ring_becomes_one_line(self):
        theta, phi, xyz = _ring(50, phi=1.6)
        lines = organize_polylines(theta, phi, xyz, u_theta=0.01, u_phi=0.005)
        assert len(lines) == 1
        assert len(lines[0]) == 50

    def test_line_ordered_left_to_right(self):
        theta, phi, xyz = _ring(30, phi=1.6)
        # Shuffle the input; the polyline must still come out theta-sorted.
        rng = np.random.default_rng(0)
        perm = rng.permutation(30)
        lines = organize_polylines(theta[perm], phi[perm], xyz[perm], 0.01, 0.005)
        assert len(lines) == 1
        assert np.all(np.diff(theta[perm][lines[0]]) > 0)

    def test_two_rings_two_lines(self):
        t1, p1, x1 = _ring(40, phi=1.55)
        t2, p2, x2 = _ring(40, phi=1.65)
        theta = np.concatenate([t1, t2])
        phi = np.concatenate([p1, p2])
        xyz = np.vstack([x1, x2])
        lines = organize_polylines(theta, phi, xyz, u_theta=0.01, u_phi=0.01)
        assert len(lines) == 2
        assert sorted(len(l) for l in lines) == [40, 40]

    def test_gap_splits_line(self):
        # A gap wider than 2*u_theta must break the polyline.
        t1, p1, x1 = _ring(20, phi=1.6, theta0=0.0)
        t2, p2, x2 = _ring(20, phi=1.6, theta0=0.2 + 0.05)  # gap of 5 steps
        theta = np.concatenate([t1, t2])
        phi = np.concatenate([p1, p2])
        xyz = np.vstack([x1, x2])
        lines = organize_polylines(theta, phi, xyz, u_theta=0.01, u_phi=0.005)
        assert len(lines) == 2

    def test_isolated_points_become_singletons(self):
        theta = np.array([0.0, 1.0, 2.0])
        phi = np.array([1.5, 1.6, 1.7])
        tpr = np.column_stack([theta, phi, np.full(3, 10.0)])
        lines = organize_polylines(
            theta, phi, spherical_to_cartesian(tpr), 0.01, 0.005
        )
        assert len(lines) == 3
        assert all(len(l) == 1 for l in lines)

    def test_every_point_in_exactly_one_line(self):
        rng = np.random.default_rng(1)
        theta = rng.uniform(0, 2 * np.pi, 500)
        phi = rng.uniform(1.5, 2.0, 500)
        tpr = np.column_stack([theta, phi, rng.uniform(5, 50, 500)])
        xyz = spherical_to_cartesian(tpr)
        lines = organize_polylines(theta, phi, xyz, 0.02, 0.01)
        seen = np.concatenate(lines)
        assert sorted(seen.tolist()) == list(range(500))

    def test_phi_window_fixed_by_seed(self):
        """The polar window follows the seed, not the walker (Algorithm 1)."""
        # A slowly drifting line: each step raises phi by 0.4*u_phi; after 3
        # steps the drift exceeds u_phi from the seed and the line must stop.
        u_phi = 0.01
        phi = 1.6 + np.arange(10) * 0.4 * u_phi
        theta = np.arange(10) * 0.01
        tpr = np.column_stack([theta, phi, np.full(10, 10.0)])
        lines = organize_polylines(
            theta, phi, spherical_to_cartesian(tpr), 0.01, u_phi
        )
        lengths = sorted(len(l) for l in lines)
        assert max(lengths) <= 4  # seed + points within +-u_phi of it

    def test_nearest_neighbor_preferred(self):
        # Two candidates in the window; the 3D-closer one must be chosen.
        theta = np.array([0.0, 0.015, 0.018])
        phi = np.array([1.60, 1.601, 1.609])
        r = np.array([10.0, 10.0, 10.0])
        xyz = spherical_to_cartesian(np.column_stack([theta, phi, r]))
        lines = organize_polylines(theta, phi, xyz, u_theta=0.01, u_phi=0.01)
        main = max(lines, key=len)
        assert main.tolist()[:2] == [0, 1]

    def test_realistic_frame_mostly_lines(self):
        from repro.datasets import generate_frame
        from repro.geometry.spherical import cartesian_to_spherical
        from repro.datasets.sensors import SensorModel

        pc = generate_frame("kitti-campus", 0)
        sensor = SensorModel.benchmark_default()
        sub = pc.xyz[::3]
        tpr = cartesian_to_spherical(sub)
        lines = organize_polylines(
            tpr[:, 0], tpr[:, 1], sub, 3 * sensor.u_theta, sensor.u_phi
        )
        on_lines = sum(len(l) for l in lines if len(l) >= 2)
        assert on_lines / len(sub) > 0.7
