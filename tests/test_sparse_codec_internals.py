"""Unit tests for sparse-codec internals (heads/tails split, stream tags)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sparse_codec import (
    _heads_tails,
    _pack_stream,
    _rebuild_lines,
    _unpack_stream,
)


def _lines_from(spec):
    return [np.asarray(line, dtype=np.int64) for line in spec]


class TestHeadsTails:
    def test_single_line(self):
        heads, tails = _heads_tails(_lines_from([[10, 12, 15]]))
        assert heads.tolist() == [10]  # first head raw (delta vs 0)
        assert tails.tolist() == [2, 3]

    def test_heads_delta_across_lines(self):
        heads, tails = _heads_tails(_lines_from([[100], [103], [101]]))
        assert heads.tolist() == [100, 3, -2]
        assert tails.size == 0

    def test_rebuild_inverts(self):
        spec = [[5, 7, 6], [100, 98], [42]]
        lines = _lines_from(spec)
        heads, tails = _heads_tails(lines)
        rebuilt = _rebuild_lines(heads, tails, [len(l) for l in spec])
        for got, want in zip(rebuilt, lines):
            assert np.array_equal(got, want)

    @given(
        st.lists(
            st.lists(st.integers(-10000, 10000), min_size=1, max_size=10),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, spec):
        lines = _lines_from(spec)
        heads, tails = _heads_tails(lines)
        rebuilt = _rebuild_lines(heads, tails, [len(l) for l in spec])
        for got, want in zip(rebuilt, lines):
            assert np.array_equal(got, want)


class TestTaggedStreams:
    def test_roundtrip_small(self):
        values = np.array([0, -1, 5, 5, 5, -100], dtype=np.int64)
        assert np.array_equal(_unpack_stream(_pack_stream(values), 6), values)

    def test_empty(self):
        data = _pack_stream(np.empty(0, dtype=np.int64))
        assert _unpack_stream(data, 0).size == 0

    def test_picks_smaller_encoding(self):
        # Long LZ-friendly repeats: whichever wins, the tag must say so and
        # the payload must be no larger than either candidate alone.
        from repro.entropy.arithmetic import encode_int_sequence
        from repro.entropy.deflate import deflate_compress
        from repro.entropy.varint import encode_varints

        values = np.tile(np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64), 200)
        packed = _pack_stream(values)
        deflated = deflate_compress(encode_varints(values))
        arithmetic = encode_int_sequence(values)
        assert len(packed) - 1 == min(len(deflated), len(arithmetic))

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            _unpack_stream(b"", 3)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            _unpack_stream(bytes([7, 1, 2, 3]), 1)

    def test_count_mismatch_rejected(self):
        values = np.array([1, 2, 3], dtype=np.int64)
        packed = _pack_stream(values)
        if packed[0] == 1:  # arithmetic mode validates the count
            with pytest.raises(ValueError):
                _unpack_stream(packed, 5)

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, raw):
        values = np.array(raw, dtype=np.int64)
        assert np.array_equal(_unpack_stream(_pack_stream(values), len(raw)), values)
