"""Unit and property tests for repro.entropy.lz77 and rle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import (
    lz77_compress_tokens,
    lz77_decompress_tokens,
    rle_decode,
    rle_encode,
)
from repro.entropy.lz77 import Lz77Tokens


class TestLz77:
    def test_empty(self):
        tokens = lz77_compress_tokens(b"")
        assert tokens.n_tokens == 0
        assert lz77_decompress_tokens(tokens) == b""

    def test_no_matches_all_literals(self):
        data = bytes(range(16))
        tokens = lz77_compress_tokens(data)
        assert tokens.literals == data
        assert lz77_decompress_tokens(tokens) == data

    def test_repeated_block_found(self):
        data = b"abcdefgh" * 50
        tokens = lz77_compress_tokens(data)
        assert len(tokens.literals) < len(data) // 4
        assert lz77_decompress_tokens(tokens) == data

    def test_overlapping_match_rle_style(self):
        data = b"a" * 500
        tokens = lz77_compress_tokens(data)
        assert lz77_decompress_tokens(tokens) == data
        assert tokens.n_tokens < 20

    def test_long_match_capped(self):
        data = b"x" * 5000
        tokens = lz77_compress_tokens(data)
        assert lz77_decompress_tokens(tokens) == data

    def test_match_at_window_boundary(self):
        head = b"UNIQ0123"
        filler = bytes((i * 7 + i // 251) % 256 for i in range(40000))
        data = head + filler + head
        tokens = lz77_compress_tokens(data)
        assert lz77_decompress_tokens(tokens) == data

    def test_corrupt_offset_rejected(self):
        from repro.entropy.bitio import BitWriter

        w = BitWriter()
        w.write_bit(1)
        bad = Lz77Tokens(1, w.getvalue(), b"", bytes([0, 10]))  # offset 10 > 0 output
        with pytest.raises(ValueError):
            lz77_decompress_tokens(bad)

    def test_missing_literal_rejected(self):
        from repro.entropy.bitio import BitWriter

        w = BitWriter()
        w.write_bit(0)
        bad = Lz77Tokens(1, w.getvalue(), b"", b"")
        with pytest.raises(ValueError):
            lz77_decompress_tokens(bad)

    @given(st.binary(max_size=3000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert lz77_decompress_tokens(lz77_compress_tokens(data)) == data

    @given(st.binary(min_size=1, max_size=40), st.integers(2, 80))
    @settings(max_examples=40, deadline=None)
    def test_periodic_roundtrip_property(self, unit, repeats):
        data = unit * repeats
        assert lz77_decompress_tokens(lz77_compress_tokens(data)) == data


class TestRle:
    def test_empty(self):
        assert rle_decode(rle_encode(b"")) == b""

    def test_runs(self):
        data = b"aaabbbbbc"
        encoded = rle_encode(data)
        assert rle_decode(encoded) == data
        assert len(encoded) == 6  # three (byte, len) pairs

    def test_long_run_compact(self):
        data = b"\x00" * 100000
        assert len(rle_encode(data)) <= 4

    @given(st.binary(max_size=1000))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, data):
        assert rle_decode(rle_encode(data)) == data
