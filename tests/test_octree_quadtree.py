"""Unit and property tests for the 2D quadtree codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import QuadtreeCodec


class TestQuadtreeCodec:
    def test_rejects_bad_leaf(self):
        with pytest.raises(ValueError):
            QuadtreeCodec(-1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            QuadtreeCodec(0.04).encode(np.zeros((3, 3)))

    def test_empty(self):
        codec = QuadtreeCodec(0.04)
        assert codec.decode(codec.encode(np.empty((0, 2)))).shape == (0, 2)

    def test_single_point(self):
        codec = QuadtreeCodec(0.04)
        xy = np.array([[12.34, -56.78]])
        out = codec.decode(codec.encode(xy))
        assert np.max(np.abs(out - xy)) <= 0.02 + 1e-12

    def test_roundtrip_error_bound(self):
        q = 0.02
        codec = QuadtreeCodec(2 * q)
        rng = np.random.default_rng(0)
        xy = rng.uniform(-60, 60, size=(1500, 2))
        decoded = codec.decode(codec.encode(xy))
        mapping = codec.mapping(xy)
        assert np.max(np.abs(decoded[mapping] - xy)) <= q + 1e-9

    def test_duplicates_preserved(self):
        codec = QuadtreeCodec(0.04)
        xy = np.repeat(np.array([[1.0, 2.0], [3.0, 4.0]]), 7, axis=0)
        assert codec.decode(codec.encode(xy)).shape == (14, 2)

    def test_mapping_is_permutation(self):
        codec = QuadtreeCodec(0.04)
        rng = np.random.default_rng(1)
        xy = rng.uniform(-10, 10, size=(300, 2))
        assert sorted(codec.mapping(xy).tolist()) == list(range(300))

    def test_beats_raw_on_far_outliers(self):
        # Typical outlier pattern: scattered far points on the xoy plane.
        rng = np.random.default_rng(2)
        angles = rng.uniform(0, 2 * np.pi, 800)
        radii = rng.uniform(50, 80, 800)
        xy = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        data = QuadtreeCodec(0.04).encode(xy)
        assert len(data) < 800 * 8  # under two float32 per point

    @given(st.integers(0, 200), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, n, seed):
        rng = np.random.default_rng(seed)
        xy = rng.uniform(-30, 30, size=(n, 2))
        q = 0.05
        codec = QuadtreeCodec(2 * q)
        decoded = codec.decode(codec.encode(xy))
        assert decoded.shape == xy.shape
        if n:
            mapping = codec.mapping(xy)
            assert np.max(np.abs(decoded[mapping] - xy)) <= q + 1e-9
