"""Tests for on-disk dataset archives."""

import json

import numpy as np
import pytest

from repro.datasets import SensorModel
from repro.datasets.archive import archive_info, read_archive, write_archive
from repro.datasets.frames import generate_frame


@pytest.fixture(scope="module")
def small_sensor():
    return SensorModel.benchmark_default().scaled(0.2)


class TestArchive:
    def test_write_and_read(self, tmp_path, small_sensor):
        root = write_archive(
            tmp_path / "ds", "kitti-road", 2, sensor=small_sensor, seed=1
        )
        frames = list(read_archive(root))
        assert len(frames) == 2
        # Frames match a direct regeneration (modulo float32 storage).
        direct = generate_frame("kitti-road", 0, sensor=small_sensor, seed=1)
        assert np.allclose(frames[0].xyz, direct.xyz, atol=1e-4)

    def test_metadata(self, tmp_path, small_sensor):
        root = write_archive(tmp_path / "ds", "kitti-road", 2, sensor=small_sensor)
        info = archive_info(root)
        assert info["scene"] == "kitti-road"
        assert info["n_frames"] == 2
        assert len(info["point_counts"]) == 2
        assert info["sensor"]["n_beams"] == small_sensor.n_beams

    def test_unknown_scene_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            write_archive(tmp_path / "ds", "mars", 1)

    def test_zero_frames_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_archive(tmp_path / "ds", "kitti-road", 0)

    def test_missing_metadata_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            archive_info(tmp_path / "empty")

    def test_missing_frame_detected(self, tmp_path, small_sensor):
        root = write_archive(tmp_path / "ds", "kitti-road", 2, sensor=small_sensor)
        (root / "000001.bin").unlink()
        with pytest.raises(ValueError):
            archive_info(root)

    def test_bad_format_rejected(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "metadata.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            archive_info(root)
