"""The decode offload tier: process-pool decompression with stream affinity.

``DbgcServer(decode_workers=N)`` moves decompress-mode decoding off the
handler threads onto a sticky worker pool.  The contract under test is
*transparency*: offloaded ingest must be byte-identical to inline ingest
— same stored clouds (intra and temporal), same quarantine records for
the same garbage, same dedupe/ACK semantics — while v3 delta chains
decode in arrival order on their stream's own worker.  The acceptance
drill kills and restarts an offloaded server mid-fleet: deltas orphaned
by the lost decoder state quarantine until the next keyframe, and
everything that did store matches the uninterrupted oracle.
"""

from __future__ import annotations

import os
import socket
import time

import pytest

from repro import observability as obs
from repro.system import (
    DbgcServer,
    FleetSpec,
    ShardedFrameStore,
    SqliteFrameStore,
    cloud_contents,
    compressed_fleet_payloads,
    run_fleet,
)
from repro.system.protocol import (
    ACK_QUARANTINED,
    ACK_STATUS_MASK,
    ACK_STORED,
    TYPE_ACK,
    TYPE_FRAME,
    TYPE_HELLO,
    encode_record,
    read_record,
)

pytestmark = pytest.mark.timeout(300)

KEYFRAME_INTERVAL = 2
N_CLIENTS = int(os.environ.get("DBGC_FLEET_CLIENTS", "3").split(",")[-1] or 3)

SPEC = FleetSpec(n_clients=N_CLIENTS, frames_per_client=6, seed=11)


@pytest.fixture(scope="module")
def intra_payloads():
    return compressed_fleet_payloads(SPEC, sensor_scale=0.2)


@pytest.fixture(scope="module")
def temporal_payloads():
    return compressed_fleet_payloads(
        SPEC, sensor_scale=0.2, temporal=True, keyframe_interval=KEYFRAME_INTERVAL
    )


def _decompress_fleet(payloads, decode_workers, store, **kwargs):
    return run_fleet(
        SPEC,
        store,
        mode="decompress",
        decode_workers=decode_workers,
        payloads=payloads,
        **kwargs,
    )


def _send_frame(sock: socket.socket, index: int, payload: bytes):
    sock.sendall(encode_record(TYPE_FRAME, index, payload))
    ack = read_record(sock)
    assert ack.type == TYPE_ACK and ack.frame_index == index
    return ack


# -- construction ------------------------------------------------------------


def test_decode_workers_requires_decompress_mode():
    with SqliteFrameStore() as store:
        with pytest.raises(ValueError, match="decompress"):
            DbgcServer(store, mode="store", decode_workers=2)
        with pytest.raises(ValueError, match="decode_workers"):
            DbgcServer(store, mode="decompress", decode_workers=-1)
        # Inline decode (workers=0) builds no pool at all.
        server = DbgcServer(store, mode="decompress")
        assert server._decode_pool is None
        server.close()


# -- byte-identity: offloaded vs inline --------------------------------------


def test_offloaded_intra_matches_inline(intra_payloads):
    with SqliteFrameStore() as inline_store:
        inline = _decompress_fleet(intra_payloads, 0, inline_store, concurrent=False)
        oracle = cloud_contents(inline_store)
    assert inline.n_stored == SPEC.n_clients * SPEC.frames_per_client
    with SqliteFrameStore() as store:
        offloaded = _decompress_fleet(intra_payloads, 2, store)
        assert offloaded.n_stored == inline.n_stored
        assert offloaded.n_quarantined == 0
        assert cloud_contents(store) == oracle


def test_offloaded_temporal_matches_inline(temporal_payloads):
    """Delta chains decode through worker-owned stateful decoders and must
    still land byte-identical to the single-threaded inline path."""
    with SqliteFrameStore() as inline_store:
        inline = _decompress_fleet(temporal_payloads, 0, inline_store, concurrent=False)
        oracle = cloud_contents(inline_store)
    with SqliteFrameStore() as store:
        offloaded = _decompress_fleet(temporal_payloads, 2, store)
        assert offloaded.n_quarantined == 0 and offloaded.n_dropped == 0
        assert cloud_contents(store) == oracle


def test_ordered_delta_decode_under_sticky_routing(temporal_payloads):
    """Concurrent streams over fewer workers than streams: every stream's
    deltas must decode in arrival order on its own worker."""
    with ShardedFrameStore.sqlite(2) as store:
        result = _decompress_fleet(temporal_payloads, 2, store)
        # A single out-of-order or cross-stream decode would quarantine
        # (broken delta chain) or corrupt the stored bytes.
        assert result.n_quarantined == 0
        assert result.n_stored == SPEC.n_clients * SPEC.frames_per_client
        pool = result.server._decode_pool
        assert pool is not None
        per_slot = pool.submitted_per_slot()
        # N_CLIENTS streams over 2 slots, least-loaded-first: both slots
        # carried work, and totals reconcile with the frame count.
        assert all(count > 0 for count in per_slot)
        assert sum(per_slot) == result.n_stored
    with ShardedFrameStore.sqlite(2) as oracle_store:
        _decompress_fleet(temporal_payloads, 0, oracle_store, concurrent=False)
        with ShardedFrameStore.sqlite(2) as again:
            _decompress_fleet(temporal_payloads, 2, again)
            assert cloud_contents(again) == cloud_contents(oracle_store)


# -- quarantine from a worker process ----------------------------------------


def test_worker_decode_failure_quarantines_and_releases_seen(intra_payloads):
    garbage = b"this is not a dbgc container"
    valid = intra_payloads[0][0]

    def drive(server) -> tuple[str, list[int]]:
        with socket.create_connection(server.address) as sock:
            sock.sendall(encode_record(TYPE_HELLO, 4))
            ack = _send_frame(sock, 0, garbage)
            assert ack.flags & ACK_STATUS_MASK == ACK_QUARANTINED
            # The ``seen`` reservation was released: the same index can
            # be retransmitted with a good payload and still store.
            ack = _send_frame(sock, 0, valid)
            assert ack.flags & ACK_STATUS_MASK == ACK_STORED
        assert server.stream_state(4).seen == {0}
        assert [q.frame_index for q in server.quarantine] == [0]
        assert server.store.frame_indices() == [0]
        return server.quarantine[0].error, server.store.get_cloud(0).xyz.tobytes()

    with SqliteFrameStore() as store_inline:
        server = DbgcServer(store_inline, mode="decompress").start()
        inline_error, inline_cloud = drive(server)
        server.close()
    with SqliteFrameStore() as store_offloaded:
        server = DbgcServer(store_offloaded, mode="decompress", decode_workers=2).start()
        offloaded_error, offloaded_cloud = drive(server)
        server.close()
    # The worker's exception crossed the process boundary verbatim:
    # forensics records are identical to the inline path's.
    assert offloaded_error == inline_error
    assert offloaded_cloud == inline_cloud


# -- backpressure from the decode queue --------------------------------------


def test_busy_hint_trips_on_decode_queue_depth():
    from tests.test_system_pool import _slow_echo

    with SqliteFrameStore() as store:
        # A huge EWMA threshold keeps store latency out of the picture:
        # only the decode queue (busy_depth=0) can trip the hint.
        server = DbgcServer(
            store,
            mode="decompress",
            decode_workers=1,
            busy_threshold_s=1000.0,
            busy_depth=0,
        ).start()
        try:
            assert not server._busy_now()  # empty queue: not busy
            future = server._decode_pool.submit(_slow_echo, 1, 0.5)
            assert server._decode_pool.depth() > 0
            assert server._busy_now()  # queued decode work trips the hint
            future.result()
            deadline = time.monotonic() + 5.0
            while server._decode_pool.depth() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not server._busy_now()
        finally:
            server.close()


# -- receipt bound -----------------------------------------------------------


def test_max_receipts_evicts_oldest():
    with SqliteFrameStore() as store:
        server = DbgcServer(store, mode="store", max_receipts=5).start()
        with obs.recording() as recorder:
            with socket.create_connection(server.address) as sock:
                sock.sendall(encode_record(TYPE_HELLO, 8))
                for i in range(8):
                    ack = _send_frame(sock, i, b"x" * 32)
                    assert ack.flags & ACK_STATUS_MASK == ACK_STORED
        server.close()
        assert len(server.receipts) == 5
        stream = server.stream_state(8)
        assert len(stream.receipts) == 5
        # Oldest first: only the newest five receipts survive.
        assert [r[0] for r in stream.receipts] == [3, 4, 5, 6, 7]
        assert server.receipts_evicted == 3
        metrics = obs.report_dict(recorder)
        assert metrics["counters"]["server.receipts.evicted"] == 3
        # Dedupe is unaffected by receipt eviction — ``seen`` still holds
        # every index, and all eight frames are in the store.
        assert stream.seen == set(range(8))
        assert len(store) == 8
    with pytest.raises(ValueError, match="max_receipts"):
        DbgcServer(SqliteFrameStore(), max_receipts=0)


# -- observability -----------------------------------------------------------


def test_decode_observability_counters(temporal_payloads):
    with obs.recording() as recorder:
        with SqliteFrameStore() as store:
            result = _decompress_fleet(temporal_payloads, 2, store)
    metrics = obs.report_dict(recorder)
    total = result.n_stored
    # Per-worker utilization counters cover every decoded frame.
    worker_counts = {
        name: n
        for name, n in metrics["counters"].items()
        if name.startswith("server.decode.worker.")
    }
    assert sum(worker_counts.values()) == total
    assert len(worker_counts) == min(2, N_CLIENTS)
    # Queue-depth histogram: one observation per offloaded frame.
    assert metrics["histograms"]["server.decode.queue_depth"]["count"] == total
    # The decode-vs-store span split: both families present and the
    # store-write timings no longer absorb decode time.
    assert metrics["histograms"]["server.decode_s"]["count"] == total
    assert metrics["histograms"]["server.store_write_s"]["count"] == total


# -- kill-and-restart drill --------------------------------------------------


def test_decompress_kill_and_restart_drill(tmp_path, temporal_payloads):
    """The tier's process-fault bar: kill an offloaded decompress server
    mid-fleet.  The restarted server's workers have fresh decoder state,
    so orphaned deltas quarantine until their stream's next keyframe —
    and everything stored matches the uninterrupted oracle."""
    spec = SPEC
    total = spec.n_clients * spec.frames_per_client
    with SqliteFrameStore(tmp_path / "frames.sqlite") as store:
        result = run_fleet(
            spec,
            store,
            mode="decompress",
            decode_workers=2,
            payloads=temporal_payloads,
            receipt_journal=tmp_path / "receipts.jsonl",
            kill_after_frames=total // 2,
        )
        assert result.restarts >= 1
        # Nothing vanishes: every frame is stored or quarantined.
        for cid, report in result.reports.items():
            assert report.n_dropped == 0, cid
            assert report.n_stored + report.n_quarantined == spec.frames_per_client
        stored = cloud_contents(store)
        with SqliteFrameStore() as oracle_store:
            oracle = _decompress_fleet(temporal_payloads, 0, oracle_store,
                                       concurrent=False)
            assert oracle.n_quarantined == 0
            oracle_clouds = cloud_contents(oracle_store)
        # Whatever stored is byte-identical to the oracle's same frame.
        for index, blob in stored.items():
            assert blob == oracle_clouds[index], index
        # Whatever quarantined is a delta: keyframes always decode, with
        # or without prior stream state.  (A frame can be both stored
        # pre-kill and quarantine-acked post-restart when the kill ate
        # its batched journal receipt, so missing <= quarantined.)
        missing = set(oracle_clouds) - set(stored)
        assert len(missing) <= result.n_quarantined
        for index in missing:
            local = index % spec.frames_per_client
            assert local % KEYFRAME_INTERVAL != 0, (index, local)
