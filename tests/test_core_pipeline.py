"""Integration tests for the end-to-end DBGC pipeline."""

import numpy as np
import pytest

from repro.core import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.datasets import generate_frame
from repro.geometry import PointCloud


@pytest.fixture(scope="module")
def frame():
    # Subsampled frame keeps the suite fast while exercising everything.
    pc = generate_frame("kitti-city", 0)
    return PointCloud(pc.xyz[::3])


def _roundtrip(frame, params):
    comp = DBGCCompressor(params)
    result = comp.compress_detailed(frame)
    decoded = DBGCDecompressor().decompress(result.payload)
    return result, decoded


class TestRoundtrip:
    def test_counts_preserved(self, frame):
        result, decoded = _roundtrip(frame, DBGCParams())
        assert len(decoded) == len(frame)
        assert result.n_dense + result.n_sparse + result.n_outliers == len(frame)

    def test_mapping_is_permutation(self, frame):
        result, _ = _roundtrip(frame, DBGCParams())
        assert sorted(result.mapping.tolist()) == list(range(len(frame)))

    def test_euclidean_error_bound(self, frame):
        q = 0.02
        result, decoded = _roundtrip(frame, DBGCParams(q_xyz=q))
        err = np.linalg.norm(decoded.xyz[result.mapping] - frame.xyz, axis=1)
        assert err.max() <= np.sqrt(3) * q * (1 + 1e-6)

    def test_strict_mode_per_dimension_bound(self, frame):
        q = 0.02
        result, decoded = _roundtrip(
            frame, DBGCParams(q_xyz=q, strict_cartesian=True)
        )
        err = np.abs(decoded.xyz[result.mapping] - frame.xyz)
        assert err.max() <= q * (1 + 1e-6)

    @pytest.mark.parametrize("q", [0.005, 0.02, 0.1])
    def test_error_bound_across_q(self, frame, q):
        result, decoded = _roundtrip(frame, DBGCParams(q_xyz=q))
        err = np.linalg.norm(decoded.xyz[result.mapping] - frame.xyz, axis=1)
        assert err.max() <= np.sqrt(3) * q * (1 + 1e-6)

    def test_larger_q_compresses_more(self, frame):
        small, _ = _roundtrip(frame, DBGCParams(q_xyz=0.005))
        large, _ = _roundtrip(frame, DBGCParams(q_xyz=0.08))
        assert large.size < small.size

    def test_compresses_meaningfully(self, frame):
        result, _ = _roundtrip(frame, DBGCParams(q_xyz=0.02))
        assert result.compression_ratio() > 4.0

    def test_compress_equals_detailed_payload(self, frame):
        comp = DBGCCompressor(DBGCParams())
        assert comp.compress(frame) == comp.compress_detailed(frame).payload

    def test_timings_cover_all_stages(self, frame):
        result, _ = _roundtrip(frame, DBGCParams())
        assert set(result.timings) == {"den", "oct", "cor", "org", "spa", "out"}
        assert all(t >= 0 for t in result.timings.values())


class TestConfigurations:
    @pytest.mark.parametrize(
        "params",
        [
            DBGCParams(radial_reference=False),
            DBGCParams(grouping=False),
            DBGCParams(spherical_conversion=False),
            DBGCParams(outlier_mode="octree"),
            DBGCParams(outlier_mode="none"),
            DBGCParams(clustering="none"),
            DBGCParams(clustering="all-dense"),
            DBGCParams(dense_fraction=0.5),
            DBGCParams(n_groups=1),
            DBGCParams(n_groups=5),
        ],
        ids=[
            "no-radial",
            "no-group",
            "cartesian",
            "outlier-octree",
            "outlier-none",
            "all-sparse",
            "all-dense",
            "half-split",
            "one-group",
            "five-groups",
        ],
    )
    def test_all_configurations_roundtrip(self, frame, params):
        result, decoded = _roundtrip(frame, params)
        assert len(decoded) == len(frame)
        err = np.linalg.norm(decoded.xyz[result.mapping] - frame.xyz, axis=1)
        assert err.max() <= np.sqrt(3) * params.q_xyz * (1 + 1e-6)

    def test_all_dense_equals_pure_octree_ratio(self, frame):
        """dense_fraction=1.0 and clustering='all-dense' agree."""
        a, _ = _roundtrip(frame, DBGCParams(dense_fraction=1.0))
        b, _ = _roundtrip(frame, DBGCParams(clustering="all-dense"))
        assert a.n_dense == b.n_dense == len(frame)

    def test_exact_clustering_roundtrip(self, frame):
        # Exact clustering is slow; run it on a further-subsampled cloud.
        small = PointCloud(frame.xyz[::4])
        params = DBGCParams(clustering="exact")
        comp = DBGCCompressor(params)
        result = comp.compress_detailed(small)
        decoded = DBGCDecompressor().decompress(result.payload)
        assert len(decoded) == len(small)


class TestEdgeCases:
    def test_empty_cloud(self):
        result, decoded = _roundtrip(PointCloud.empty(), DBGCParams())
        assert len(decoded) == 0
        assert result.size > 0  # header still present

    def test_single_point(self):
        cloud = PointCloud(np.array([[5.0, 3.0, -1.0]]))
        result, decoded = _roundtrip(cloud, DBGCParams())
        assert len(decoded) == 1
        err = np.abs(decoded.xyz[result.mapping] - cloud.xyz)
        assert err.max() <= np.sqrt(3) * 0.02

    def test_few_points(self):
        rng = np.random.default_rng(0)
        cloud = PointCloud(rng.uniform(-20, 20, size=(7, 3)))
        result, decoded = _roundtrip(cloud, DBGCParams())
        assert len(decoded) == 7

    def test_duplicate_points(self):
        cloud = PointCloud(np.repeat([[1.0, 2.0, 3.0]], 50, axis=0))
        result, decoded = _roundtrip(cloud, DBGCParams())
        assert len(decoded) == 50

    def test_collinear_points(self):
        x = np.linspace(1.0, 50.0, 300)
        cloud = PointCloud(np.column_stack([x, x * 0.5, np.full_like(x, -1.7)]))
        result, decoded = _roundtrip(cloud, DBGCParams())
        err = np.linalg.norm(decoded.xyz[result.mapping] - cloud.xyz, axis=1)
        assert err.max() <= np.sqrt(3) * 0.02 * (1 + 1e-6)

    def test_not_dbgc_stream_rejected(self):
        with pytest.raises(ValueError):
            DBGCDecompressor().decompress(b"not a dbgc stream at all")
