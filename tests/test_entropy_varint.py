"""Unit tests for repro.entropy.varint."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import decode_varints, encode_varints, zigzag_decode, zigzag_encode
from repro.entropy.varint import decode_uvarint, encode_uvarint


class TestUvarint:
    def test_small_values_one_byte(self):
        out = bytearray()
        encode_uvarint(0, out)
        encode_uvarint(127, out)
        assert bytes(out) == bytes([0, 127])

    def test_multibyte(self):
        out = bytearray()
        encode_uvarint(300, out)
        assert bytes(out) == bytes([0xAC, 0x02])
        assert decode_uvarint(bytes(out), 0) == (300, 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1, bytearray())

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode_uvarint(bytes([0x80]), 0)

    def test_overlong_rejected(self):
        with pytest.raises(ValueError):
            decode_uvarint(bytes([0x80] * 12), 0)

    @given(st.integers(0, 2**62))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, value):
        out = bytearray()
        encode_uvarint(value, out)
        assert decode_uvarint(bytes(out), 0)[0] == value


class TestZigzag:
    def test_known_mapping(self):
        values = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        assert zigzag_encode(values).tolist() == [0, 1, 2, 3, 4]

    def test_roundtrip_extremes(self):
        values = np.array([np.iinfo(np.int64).min // 2, np.iinfo(np.int64).max // 2])
        assert np.array_equal(zigzag_decode(zigzag_encode(values)), values)

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(arr)), arr)


class TestVarintSequences:
    def test_empty(self):
        assert encode_varints([]) == b""
        assert decode_varints(b"", 0).size == 0

    def test_signed_roundtrip(self):
        values = np.array([0, -5, 1000, -70000, 3])
        data = encode_varints(values, signed=True)
        assert np.array_equal(decode_varints(data, 5, signed=True), values)

    def test_unsigned_roundtrip(self):
        values = np.array([0, 5, 1000, 70000])
        data = encode_varints(values, signed=False)
        assert np.array_equal(decode_varints(data, 4, signed=False), values)

    def test_small_deltas_are_compact(self):
        # The motivating case: delta-encoded coordinates near zero.
        deltas = np.zeros(1000, dtype=np.int64)
        assert len(encode_varints(deltas)) == 1000

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        data = encode_varints(arr)
        assert np.array_equal(decode_varints(data, len(values)), arr)
