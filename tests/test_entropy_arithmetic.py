"""Unit and property tests for repro.entropy.arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import (
    AdaptiveModel,
    arithmetic_decode,
    arithmetic_encode,
    decode_int_sequence,
    encode_int_sequence,
)


class TestAdaptiveModel:
    def test_initial_uniform(self):
        model = AdaptiveModel(4)
        assert model.total == 4
        assert model.cum_range(0) == (0, 1)
        assert model.cum_range(3) == (3, 4)

    def test_update_shifts_mass(self):
        model = AdaptiveModel(4, increment=10)
        model.update(2)
        assert model.total == 14
        assert model.cum_range(2) == (2, 13)
        assert model.cum_range(3) == (13, 14)

    def test_find_inverts_cum_range(self):
        model = AdaptiveModel(8, increment=5)
        rng = np.random.default_rng(0)
        for s in rng.integers(0, 8, size=100):
            model.update(int(s))
        for symbol in range(8):
            low, high = model.cum_range(symbol)
            for target in (low, high - 1):
                found, f_low, f_high = model.find(target)
                assert found == symbol
                assert (f_low, f_high) == (low, high)

    def test_rescale_keeps_positive_freqs(self):
        model = AdaptiveModel(4, increment=100, max_total=512)
        for _ in range(50):
            model.update(0)
        assert model.total <= 512
        for symbol in range(4):
            low, high = model.cum_range(symbol)
            assert high > low  # every symbol stays encodable

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            AdaptiveModel(0)
        with pytest.raises(ValueError):
            AdaptiveModel(4, increment=0)
        with pytest.raises(ValueError):
            AdaptiveModel(256, max_total=100)

    def test_non_power_of_two_alphabet(self):
        model = AdaptiveModel(5, increment=3)
        for s in [0, 4, 4, 2, 3, 1, 4]:
            model.update(s)
        total = model.cum_range(4)[1]
        assert total == model.total


class TestArithmeticCodec:
    def test_empty(self):
        data = arithmetic_encode(np.array([], dtype=np.int64), 4)
        assert np.array_equal(arithmetic_decode(data, 0, 4), [])

    def test_roundtrip_skewed(self):
        rng = np.random.default_rng(42)
        symbols = rng.choice(8, size=5000, p=[0.7, 0.1, 0.05, 0.05, 0.04, 0.03, 0.02, 0.01])
        data = arithmetic_encode(symbols, 8)
        assert np.array_equal(arithmetic_decode(data, len(symbols), 8), symbols)

    def test_compresses_skewed_below_fixed_width(self):
        rng = np.random.default_rng(1)
        symbols = rng.choice(4, size=8000, p=[0.94, 0.03, 0.02, 0.01])
        data = arithmetic_encode(symbols, 4)
        # Fixed-width would be 2 bits/symbol = 2000 bytes; entropy ~0.4 bits.
        assert len(data) < 1000

    def test_single_symbol_alphabet(self):
        symbols = np.zeros(100, dtype=np.int64)
        data = arithmetic_encode(symbols, 1)
        assert np.array_equal(arithmetic_decode(data, 100, 1), symbols)
        assert len(data) <= 2

    def test_out_of_range_symbol_rejected(self):
        with pytest.raises(ValueError):
            arithmetic_encode(np.array([4]), 4)
        with pytest.raises(ValueError):
            arithmetic_encode(np.array([-1]), 4)

    def test_alternating_worst_case(self):
        symbols = np.tile([0, 1], 500)
        data = arithmetic_encode(symbols, 2)
        assert np.array_equal(arithmetic_decode(data, 1000, 2), symbols)

    @given(
        st.integers(2, 40),
        st.lists(st.integers(0, 1000), min_size=0, max_size=400),
        st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, num_symbols, raw, increment):
        symbols = np.array([v % num_symbols for v in raw], dtype=np.int64)
        data = arithmetic_encode(symbols, num_symbols, increment=increment)
        out = arithmetic_decode(data, len(symbols), num_symbols, increment=increment)
        assert np.array_equal(out, symbols)


class TestIntSequenceCodec:
    def test_empty(self):
        data = encode_int_sequence(np.array([], dtype=np.int64))
        assert decode_int_sequence(data).size == 0

    def test_roundtrip_mixed_magnitudes(self):
        values = np.array([0, -1, 1, 1000000, -70000, 3, 3, 3, 3])
        assert np.array_equal(decode_int_sequence(encode_int_sequence(values)), values)

    def test_near_zero_deltas_compress_well(self):
        rng = np.random.default_rng(9)
        values = rng.integers(-2, 3, size=5000)
        data = encode_int_sequence(values)
        assert len(data) < 5000 // 2  # far below one byte per value

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(decode_int_sequence(encode_int_sequence(arr)), arr)

    def test_truncated_payload_raises(self):
        # Regression: a truncated int-sequence stream used to decode to
        # garbage values silently; the trailing checksum byte must catch it.
        rng = np.random.default_rng(0)
        data = encode_int_sequence(rng.integers(-500, 500, size=300))
        for cut in (len(data) - 1, len(data) // 2, 3):
            with pytest.raises(ValueError):
                decode_int_sequence(data[:cut])

    def test_corrupted_payload_raises(self):
        data = bytearray(encode_int_sequence(np.arange(-50, 50)))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(ValueError):
            decode_int_sequence(bytes(data))
