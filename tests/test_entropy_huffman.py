"""Unit and property tests for repro.entropy.huffman."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy import huffman_compress, huffman_decompress
from repro.entropy.huffman import build_code_lengths, canonical_codes


class TestCodeConstruction:
    def test_empty_frequencies(self):
        assert build_code_lengths({}) == {}

    def test_single_symbol_gets_length_one(self):
        assert build_code_lengths({65: 10}) == {65: 1}

    def test_kraft_inequality(self):
        lengths = build_code_lengths({0: 50, 1: 30, 2: 15, 3: 5})
        assert sum(2.0 ** -l for l in lengths.values()) <= 1.0 + 1e-12

    def test_more_frequent_not_longer(self):
        lengths = build_code_lengths({0: 100, 1: 10, 2: 1})
        assert lengths[0] <= lengths[1] <= lengths[2]

    def test_canonical_codes_prefix_free(self):
        lengths = build_code_lengths({i: (i + 1) ** 2 for i in range(10)})
        codes = canonical_codes(lengths)
        entries = sorted(codes.values(), key=lambda cl: (cl[1], cl[0]))
        as_bits = [format(code, f"0{length}b") for code, length in entries]
        for i, a in enumerate(as_bits):
            for b in as_bits[i + 1 :]:
                assert not b.startswith(a)


class TestCodec:
    def test_empty(self):
        assert huffman_decompress(huffman_compress(b"")) == b""

    def test_single_byte(self):
        assert huffman_decompress(huffman_compress(b"x")) == b"x"

    def test_uniform_run(self):
        data = b"a" * 10000
        compressed = huffman_compress(data)
        assert huffman_decompress(compressed) == data
        # One symbol at length 1 -> ~1 bit per byte.
        assert len(compressed) < 1400

    def test_text_roundtrip(self):
        data = (b"the quick brown fox jumps over the lazy dog " * 100)
        compressed = huffman_compress(data)
        assert huffman_decompress(compressed) == data
        assert len(compressed) < len(data)

    def test_all_256_symbols(self):
        data = bytes(range(256)) * 4
        assert huffman_decompress(huffman_compress(data)) == data

    def test_skewed_beats_uniform_rate(self):
        skewed = bytes([0] * 900 + [1] * 50 + [2] * 30 + [3] * 20)
        uniform = bytes([i % 4 for i in range(1000)])
        assert len(huffman_compress(skewed)) < len(huffman_compress(uniform))

    @given(st.binary(max_size=2000))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, data):
        assert huffman_decompress(huffman_compress(data)) == data

    def test_rate_close_to_entropy(self):
        import math
        import random

        rng = random.Random(0)
        data = bytes(rng.choices(range(8), weights=[64, 32, 16, 8, 4, 2, 1, 1], k=20000))
        counts = Counter(data)
        entropy = -sum(
            (c / len(data)) * math.log2(c / len(data)) for c in counts.values()
        )
        compressed = huffman_compress(data)
        rate = len(compressed) * 8 / len(data)
        # Huffman is within 1 bit of entropy; header adds a little.
        assert rate < entropy + 1.1
