"""Tests for the parallel frame compressor."""

import numpy as np
import pytest

from repro.core import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.datasets import SensorModel, generate_frame
from repro.geometry import PointCloud
from repro.system.parallel import ParallelFrameCompressor


@pytest.fixture(scope="module")
def small_sensor():
    return SensorModel.benchmark_default().scaled(0.3)


@pytest.fixture(scope="module")
def frames(small_sensor):
    return [
        PointCloud(generate_frame("kitti-road", i, sensor=small_sensor).xyz)
        for i in range(3)
    ]


class TestParallel:
    def test_payloads_match_serial(self, frames, small_sensor):
        params = DBGCParams()
        serial = [DBGCCompressor(params, sensor=small_sensor).compress(f) for f in frames]
        with ParallelFrameCompressor(params, sensor=small_sensor, workers=2) as pool:
            parallel = pool.compress_all(frames)
        assert parallel == serial  # byte-identical, order preserved

    def test_payloads_decode(self, frames, small_sensor):
        with ParallelFrameCompressor(sensor=small_sensor, workers=2) as pool:
            payloads = pool.compress_all(frames)
        decoder = DBGCDecompressor()
        for payload, frame in zip(payloads, frames):
            assert len(decoder.decompress(payload)) == len(frame)

    def test_streaming_interface(self, frames, small_sensor):
        with ParallelFrameCompressor(sensor=small_sensor, workers=2) as pool:
            count = sum(1 for _ in pool.compress_stream(frames))
        assert count == len(frames)

    def test_requires_context_manager(self, frames):
        pool = ParallelFrameCompressor(workers=1)
        with pytest.raises(RuntimeError):
            list(pool.compress_stream(frames))

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelFrameCompressor(workers=0)
