"""Tests for the parallel frame compressor."""

import time

import numpy as np
import pytest

from repro.core import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.datasets import SensorModel, generate_frame
from repro.geometry import PointCloud
from repro.system.parallel import ParallelFrameCompressor


@pytest.fixture(scope="module")
def small_sensor():
    return SensorModel.benchmark_default().scaled(0.3)


@pytest.fixture(scope="module")
def frames(small_sensor):
    return [
        PointCloud(generate_frame("kitti-road", i, sensor=small_sensor).xyz)
        for i in range(3)
    ]


class TestParallel:
    def test_payloads_match_serial(self, frames, small_sensor):
        params = DBGCParams()
        serial = [DBGCCompressor(params, sensor=small_sensor).compress(f) for f in frames]
        with ParallelFrameCompressor(params, sensor=small_sensor, workers=2) as pool:
            parallel = pool.compress_all(frames)
        assert parallel == serial  # byte-identical, order preserved

    def test_payloads_decode(self, frames, small_sensor):
        with ParallelFrameCompressor(sensor=small_sensor, workers=2) as pool:
            payloads = pool.compress_all(frames)
        decoder = DBGCDecompressor()
        for payload, frame in zip(payloads, frames):
            assert len(decoder.decompress(payload)) == len(frame)

    def test_streaming_interface(self, frames, small_sensor):
        with ParallelFrameCompressor(sensor=small_sensor, workers=2) as pool:
            count = sum(1 for _ in pool.compress_stream(frames))
        assert count == len(frames)

    def test_requires_context_manager(self, frames):
        pool = ParallelFrameCompressor(workers=1)
        with pytest.raises(RuntimeError):
            list(pool.compress_stream(frames))

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelFrameCompressor(workers=0)

    def test_stream_consumes_lazily(self, small_sensor):
        # Regression: compress_stream used to drain the whole iterable via
        # executor.map before yielding anything, which never terminates on
        # a live (infinite) frame source.  The bounded window must pull at
        # most ~2x workers frames ahead of what has been yielded.
        rng = np.random.default_rng(0)
        template = PointCloud(rng.uniform(-5.0, 5.0, size=(120, 3)))
        pulled = 0

        def endless():
            nonlocal pulled
            while True:
                pulled += 1
                yield template

        workers = 2
        consumed = 0
        with ParallelFrameCompressor(sensor=small_sensor, workers=workers) as pool:
            for payload in pool.compress_stream(endless()):
                assert payload
                consumed += 1
                if consumed == 3:
                    break
        assert pulled <= 2 * workers + consumed

    def test_abandoned_stream_cancels_pending_work(self, small_sensor):
        # Regression: dropping a compress_stream generator mid-flight used
        # to leave its window of submitted futures grinding in the worker
        # processes.  Closing the generator must cancel what it can and
        # drain in-flight work, leaving the pool reusable.
        rng = np.random.default_rng(1)
        template = PointCloud(rng.uniform(-5.0, 5.0, size=(150, 3)))

        def endless():
            while True:
                yield template

        with ParallelFrameCompressor(sensor=small_sensor, workers=2) as pool:
            stream = pool.compress_stream(endless())
            assert next(stream)
            stream.close()  # GeneratorExit -> pending futures cancelled
            deadline = time.monotonic() + 10.0
            while pool.in_flight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.in_flight == 0
            # The pool survives the abandonment: a fresh stream still works.
            assert sum(1 for _ in pool.compress_stream([template] * 2)) == 2

    def test_attributes_match_serial(self, frames, small_sensor):
        # Regression: the parallel path used to rebuild PointCloud(xyz)
        # only, silently dropping per-point attributes from the payload.
        rng = np.random.default_rng(7)
        items = [(f, {"intensity": rng.random(len(f))}) for f in frames]
        params = DBGCParams()
        serial = [
            DBGCCompressor(params, sensor=small_sensor).compress(f, attrs)
            for f, attrs in items
        ]
        with ParallelFrameCompressor(params, sensor=small_sensor, workers=2) as pool:
            parallel = pool.compress_all(items)
        assert parallel == serial  # byte-identical to the serial path
        decoder = DBGCDecompressor()
        for payload, (f, attrs) in zip(parallel, items):
            _, decoded = decoder.decompress_with_attributes(payload)
            assert "intensity" in decoded
            assert len(decoded["intensity"]) == len(f)

    def test_mixed_bare_and_attributed_frames(self, frames, small_sensor):
        rng = np.random.default_rng(11)
        items = [frames[0], (frames[1], {"intensity": rng.random(len(frames[1]))})]
        with ParallelFrameCompressor(sensor=small_sensor, workers=2) as pool:
            payloads = pool.compress_all(items)
        decoder = DBGCDecompressor()
        _, attrs0 = decoder.decompress_with_attributes(payloads[0])
        _, attrs1 = decoder.decompress_with_attributes(payloads[1])
        assert attrs0 == {}
        assert set(attrs1) == {"intensity"}
