"""Tests for the entropy-backend registry and the vectorized rANS coder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.core.container import unpack_container
from repro.entropy.backend import (
    AdaptiveArithmeticBackend,
    RansBackend,
    available_backends,
    backend_for_tag,
    decode_tagged_ints,
    decode_tagged_symbols,
    encode_tagged_ints,
    encode_tagged_symbols,
    get_backend,
    register_backend,
)
from repro.entropy.rans import rans_decode, rans_encode
from repro.geometry.points import PointCloud

BACKEND_NAMES = ("adaptive-arith", "rans")


class TestRansCodec:
    def test_empty(self):
        assert rans_encode(np.array([], dtype=np.int64), 4) == b""
        assert rans_decode(b"", 0, 4).size == 0

    @pytest.mark.parametrize("mode", [None, 0, 1])
    def test_roundtrip_modes(self, mode):
        rng = np.random.default_rng(0)
        symbols = rng.geometric(0.3, size=20000) % 16
        data = rans_encode(symbols, 16, mode=mode)
        assert np.array_equal(rans_decode(data, symbols.size, 16), symbols)

    def test_roundtrip_single_point(self):
        data = rans_encode(np.array([3]), 10)
        assert np.array_equal(rans_decode(data, 1, 10), [3])

    def test_roundtrip_single_symbol_alphabet_degenerate(self):
        symbols = np.zeros(5000, dtype=np.int64)
        data = rans_encode(symbols, 1)
        assert np.array_equal(rans_decode(data, 5000, 1), symbols)

    def test_roundtrip_lane_boundaries(self):
        # Exercise the partial last row for every residue class around the
        # lane-count divisor.
        rng = np.random.default_rng(1)
        for n in (1023, 1024, 1025, 2048, 2049):
            symbols = rng.integers(0, 8, size=n)
            data = rans_encode(symbols, 8, n_lanes=7)
            assert np.array_equal(rans_decode(data, n, 8), symbols)

    def test_forced_block_tables(self):
        rng = np.random.default_rng(2)
        # Drifting distribution: per-block tables should beat one table.
        symbols = (np.arange(30000) // 3000 + rng.integers(0, 3, 30000)) % 8
        single = rans_encode(symbols, 8, mode=0, rows_per_block=0)
        blocked = rans_encode(symbols, 8, mode=0, rows_per_block=32)
        assert len(blocked) < len(single)
        for data in (single, blocked):
            assert np.array_equal(rans_decode(data, symbols.size, 8), symbols)

    def test_truncation_raises(self):
        rng = np.random.default_rng(3)
        symbols = rng.integers(0, 256, size=20000)
        data = rans_encode(symbols, 256)
        for cut in (1, 5, len(data) // 2, len(data) - 1):
            with pytest.raises(ValueError):
                rans_decode(data[:cut], symbols.size, 256)

    def test_rejects_out_of_range_symbols(self):
        with pytest.raises(ValueError):
            rans_encode(np.array([4]), 4)
        with pytest.raises(ValueError):
            rans_encode(np.array([-1]), 4)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            rans_encode(np.arange(4), 4, mode=7)

    @given(st.lists(st.integers(0, 255), min_size=0, max_size=600))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, raw):
        symbols = np.array(raw, dtype=np.int64)
        data = rans_encode(symbols, 256)
        assert np.array_equal(rans_decode(data, symbols.size, 256), symbols)


class TestRegistry:
    def test_available_backends(self):
        names = available_backends()
        assert "adaptive-arith" in names and "rans" in names

    def test_get_backend_unknown_name(self):
        with pytest.raises(ValueError, match="unknown entropy backend"):
            get_backend("no-such-coder")

    def test_backend_for_tag_roundtrip(self):
        for name in BACKEND_NAMES:
            backend = get_backend(name)
            assert backend_for_tag(backend.tag) is backend

    def test_backend_for_unknown_tag(self):
        with pytest.raises(ValueError):
            backend_for_tag(250)

    def test_register_rejects_conflicts(self):
        class Impostor(AdaptiveArithmeticBackend):
            tag = 9

        with pytest.raises(ValueError):
            register_backend(Impostor())

    def test_params_validate_backend(self):
        with pytest.raises(ValueError):
            DBGCParams(entropy_backend="no-such-coder")


class TestTaggedStreams:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_symbols_roundtrip_is_self_describing(self, backend):
        rng = np.random.default_rng(4)
        symbols = rng.integers(0, 4, size=3000)
        data = encode_tagged_symbols(symbols, 4, backend)
        assert data[0] == get_backend(backend).tag
        # No backend hint needed: the tag byte selects the decoder.
        assert np.array_equal(decode_tagged_symbols(data, symbols.size, 4), symbols)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_ints_roundtrip(self, backend):
        rng = np.random.default_rng(5)
        values = rng.integers(-(2**30), 2**30, size=2000)
        data = encode_tagged_ints(values, backend)
        assert np.array_equal(decode_tagged_ints(data), values)

    def test_empty_stream_raises(self):
        with pytest.raises(ValueError):
            decode_tagged_symbols(b"", 4, 4)
        with pytest.raises(ValueError):
            decode_tagged_ints(b"")

    def test_rans_small_stream_fallback(self):
        backend = RansBackend()
        small = np.arange(20) % 4
        data = backend.encode(small, 4)
        assert data[0] == RansBackend._MODE_ADAPTIVE
        assert np.array_equal(backend.decode(data, small.size, 4), small)
        big = np.arange(5000) % 4
        data = backend.encode(big, 4)
        assert data[0] == RansBackend._MODE_RANS
        assert np.array_equal(backend.decode(data, big.size, 4), big)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @given(raw=st.lists(st.integers(0, 255), min_size=0, max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_occupancy_bytes_roundtrip_exact(self, backend, raw):
        # Occupancy streams are alphabet-256 byte streams.
        symbols = np.array(raw, dtype=np.int64)
        data = encode_tagged_symbols(symbols, 256, backend)
        assert np.array_equal(
            decode_tagged_symbols(data, symbols.size, 256), symbols
        )

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @given(raw=st.lists(st.integers(-(2**40), 2**40), min_size=0, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_zigzag_delta_roundtrip_exact(self, backend, raw):
        # The Δθ / Δφ / ∇r delta streams are signed-int sequences.
        values = np.array(raw, dtype=np.int64)
        data = encode_tagged_ints(values, backend)
        assert np.array_equal(decode_tagged_ints(data), values)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @given(raw=st.lists(st.integers(0, 3), min_size=0, max_size=500))
    @settings(max_examples=25, deadline=None)
    def test_lref_trit_roundtrip_exact(self, backend, raw):
        # L_ref reference labels ride a 4-symbol alphabet.
        symbols = np.array(raw, dtype=np.int64)
        data = encode_tagged_symbols(symbols, 4, backend)
        assert np.array_equal(
            decode_tagged_symbols(data, symbols.size, 4), symbols
        )


class TestPipelineBackend:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(6)
        n = 4000
        theta = rng.uniform(-np.pi, np.pi, n)
        r = rng.uniform(2.0, 40.0, n)
        z = rng.uniform(-1.5, 1.5, n)
        return PointCloud(
            np.column_stack([r * np.cos(theta), r * np.sin(theta), z])
        )

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_container_roundtrip_within_bound(self, cloud, backend):
        params = DBGCParams(entropy_backend=backend)
        result = DBGCCompressor(params).compress_detailed(cloud)
        decoded = DBGCDecompressor().decompress(result.payload)
        assert len(decoded) == len(cloud)
        err = np.linalg.norm(decoded.xyz[result.mapping] - cloud.xyz, axis=1)
        assert err.max() <= params.q_xyz * np.sqrt(3.0) + 1e-12

    def test_container_header_records_backend(self, cloud):
        params = DBGCParams(entropy_backend="rans")
        payload = DBGCCompressor(params).compress(cloud)
        header, *_ = unpack_container(payload)
        assert header.entropy_backend == "rans"
        assert header.to_params().entropy_backend == "rans"

    def test_cross_backend_decode(self, cloud):
        # A decompressor never needs to know the encoding backend: every
        # stream carries its own tag.
        for backend in BACKEND_NAMES:
            payload = DBGCCompressor(DBGCParams(entropy_backend=backend)).compress(
                cloud
            )
            assert len(DBGCDecompressor().decompress(payload)) == len(cloud)
