"""Property-based end-to-end tests of the DBGC pipeline.

Hypothesis drives the full compressor/decompressor with arbitrary small
clouds and parameter combinations; the invariants are the problem
statement's three conditions (Section 2.1): a bit sequence is produced,
the mapping is one-to-one, and every point's error respects the bound.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.geometry import PointCloud

_coord = st.floats(-60.0, 60.0, allow_nan=False, allow_infinity=False)
_points = st.lists(st.tuples(_coord, _coord, _coord), min_size=0, max_size=120)


@given(
    points=_points,
    q_index=st.integers(0, 2),
    n_groups=st.integers(1, 4),
    strict=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_problem_statement_invariants(points, q_index, n_groups, strict):
    q_xyz = [0.005, 0.02, 0.1][q_index]
    params = DBGCParams(q_xyz=q_xyz, n_groups=n_groups, strict_cartesian=strict)
    cloud = PointCloud(np.array(points, dtype=np.float64).reshape(-1, 3))
    result = DBGCCompressor(params).compress_detailed(cloud)
    # (1) a bit sequence B is produced and decodes...
    decoded = DBGCDecompressor().decompress(result.payload)
    assert len(decoded) == len(cloud)
    if len(cloud) == 0:
        return
    # (2) the mapping is one-to-one...
    assert sorted(result.mapping.tolist()) == list(range(len(cloud)))
    # (3) ...and every point meets the error bound.
    diff = decoded.xyz[result.mapping] - cloud.xyz
    if strict:
        assert np.abs(diff).max() <= q_xyz * (1 + 1e-6)
    else:
        assert np.linalg.norm(diff, axis=1).max() <= np.sqrt(3) * q_xyz * (1 + 1e-6)


@given(points=_points, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_compression_is_deterministic(points, seed):
    """Same input, same parameters -> byte-identical stream."""
    cloud = PointCloud(np.array(points, dtype=np.float64).reshape(-1, 3))
    params = DBGCParams(q_xyz=0.02)
    a = DBGCCompressor(params).compress(cloud)
    b = DBGCCompressor(params).compress(cloud)
    assert a == b


@given(points=st.lists(st.tuples(_coord, _coord, _coord), min_size=1, max_size=60))
@settings(max_examples=25, deadline=None)
def test_double_roundtrip_is_stable(points):
    """Re-compressing a decompressed cloud stays within the same bound.

    (Idempotence up to quantization: the second pass may re-snap points but
    the error against the *first* decode stays bounded.)
    """
    params = DBGCParams(q_xyz=0.02)
    cloud = PointCloud(np.array(points, dtype=np.float64).reshape(-1, 3))
    first_result = DBGCCompressor(params).compress_detailed(cloud)
    first = DBGCDecompressor().decompress(first_result.payload)
    second_result = DBGCCompressor(params).compress_detailed(first)
    second = DBGCDecompressor().decompress(second_result.payload)
    diff = second.xyz[second_result.mapping] - first.xyz
    assert np.linalg.norm(diff, axis=1).max() <= np.sqrt(3) * 0.02 * (1 + 1e-6)
