"""Tests for the frame diagnostics in repro.eval.analysis."""

import numpy as np
import pytest

from repro.core import DBGCParams
from repro.datasets import generate_frame
from repro.eval.analysis import (
    classification_summary,
    density_profile,
    empirical_entropy,
    polyline_statistics,
    stream_entropy_report,
)
from repro.geometry import PointCloud


@pytest.fixture(scope="module")
def frame():
    return generate_frame("kitti-city", 0)


class TestEntropy:
    def test_empty(self):
        assert empirical_entropy(np.array([])) == 0.0

    def test_constant_sequence(self):
        assert empirical_entropy(np.zeros(100)) == 0.0

    def test_uniform_binary(self):
        values = np.tile([0, 1], 500)
        assert empirical_entropy(values) == pytest.approx(1.0)

    def test_uniform_k_ary(self):
        values = np.arange(1024) % 8
        assert empirical_entropy(values) == pytest.approx(3.0)


class TestDensityProfile:
    def test_falls_with_radius(self, frame):
        profile = density_profile(frame)
        densities = [row["density"] for row in profile]
        assert all(a > b for a, b in zip(densities, densities[1:]))

    def test_counts_monotone(self, frame):
        profile = density_profile(frame, radii=[10.0, 30.0, 90.0])
        counts = [row["count"] for row in profile]
        assert counts == sorted(counts)
        assert counts[-1] <= len(frame)


class TestClassification:
    def test_fractions_sum_to_one(self, frame):
        summary = classification_summary(frame)
        total = (
            summary.dense_fraction
            + summary.sparse_fraction
            + summary.outlier_fraction
        )
        assert total == pytest.approx(1.0)

    def test_paper_like_split(self, frame):
        """Section 4.3: roughly 40/60 dense-sparse with ~1% outliers."""
        summary = classification_summary(frame)
        assert 0.1 < summary.dense_fraction < 0.6
        assert summary.outlier_fraction < 0.05

    def test_parameters_reported(self, frame):
        summary = classification_summary(frame)
        assert summary.eps == pytest.approx(0.2)
        assert summary.min_pts >= 2

    def test_empty_cloud(self):
        summary = classification_summary(PointCloud.empty())
        assert summary.n_points == 0
        assert summary.dense_fraction == 0.0


class TestPolylineStats:
    def test_groups_reported(self, frame):
        stats = polyline_statistics(frame)
        assert 1 <= len(stats) <= DBGCParams().n_groups
        for s in stats:
            assert s.n_lines > 0
            assert s.mean_length >= 2.0
            assert s.length_percentiles[10] <= s.length_percentiles[90]

    def test_empty_cloud(self):
        assert polyline_statistics(PointCloud.empty()) == []


class TestEntropyReport:
    def test_report_structure(self, frame):
        report = stream_entropy_report(frame)
        assert len(report) >= 1
        for row in report:
            assert row["H_dtheta"] >= 0.0
            assert row["total_bits_per_point"] > 0.0
            if row["n_points"] < 2000:
                continue  # tiny groups are dominated by header amortization
            # Large groups run within a few bits of the within-line entropy
            # floor (heads/lengths overhead included in coded bits).
            floor = row["H_dtheta"] + row["H_dphi"] + row["H_dr"]
            assert row["total_bits_per_point"] < floor + 6.0

    def test_empty_cloud(self):
        assert stream_entropy_report(PointCloud.empty()) == []
