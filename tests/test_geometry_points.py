"""Unit tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry import PointCloud


def _cloud(n=10, seed=0):
    rng = np.random.default_rng(seed)
    return PointCloud(rng.normal(size=(n, 3)) * 10.0)


class TestConstruction:
    def test_from_array(self):
        pc = PointCloud(np.zeros((5, 3)))
        assert len(pc) == 5

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            PointCloud(np.zeros(5))

    def test_empty(self):
        pc = PointCloud.empty()
        assert len(pc) == 0
        assert pc.nbytes_raw() == 0

    def test_from_columns(self):
        pc = PointCloud.from_columns(np.array([1.0]), np.array([2.0]), np.array([3.0]))
        assert np.allclose(pc.xyz, [[1.0, 2.0, 3.0]])

    def test_immutable(self):
        pc = _cloud()
        with pytest.raises(ValueError):
            pc.xyz[0, 0] = 99.0

    def test_input_mutation_does_not_leak(self):
        arr = np.ones((3, 3))
        pc = PointCloud(arr)
        arr[0, 0] = 42.0
        assert pc.xyz[0, 0] == 1.0


class TestAccessors:
    def test_columns(self):
        pc = PointCloud(np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]))
        assert np.array_equal(pc.x, [1.0, 4.0])
        assert np.array_equal(pc.y, [2.0, 5.0])
        assert np.array_equal(pc.z, [3.0, 6.0])

    def test_iteration_and_indexing(self):
        pc = _cloud(4)
        rows = list(pc)
        assert len(rows) == 4
        assert np.array_equal(rows[2], pc[2])

    def test_equality(self):
        a = PointCloud(np.ones((2, 3)))
        b = PointCloud(np.ones((2, 3)))
        c = PointCloud(np.zeros((2, 3)))
        assert a == b
        assert a != c
        assert a != "not a cloud"

    def test_repr(self):
        assert "n=7" in repr(_cloud(7))


class TestDerived:
    def test_nbytes_raw_matches_paper_accounting(self):
        # Section 4.4: a point is 32 bits x 3 = 12 bytes.
        assert _cloud(100).nbytes_raw() == 1200
        assert _cloud(100).nbytes_raw(bits_per_coordinate=64) == 2400

    def test_radii(self):
        pc = PointCloud(np.array([[3.0, 4.0, 0.0]]))
        assert np.allclose(pc.radii(), [5.0])
        assert np.allclose(pc.radii(origin=[3.0, 4.0, 0.0]), [0.0])

    def test_select_mask_and_indices(self):
        pc = _cloud(6)
        mask = np.array([True, False, True, False, False, True])
        assert len(pc.select(mask)) == 3
        assert np.array_equal(pc.select([0, 2, 5]).xyz, pc.select(mask).xyz)

    def test_concatenate_preserves_order(self):
        a, b = _cloud(3, seed=1), _cloud(2, seed=2)
        merged = a.concatenate(b)
        assert len(merged) == 5
        assert np.array_equal(merged.xyz[:3], a.xyz)
        assert np.array_equal(merged.xyz[3:], b.xyz)

    def test_max_abs_error(self):
        a = PointCloud(np.zeros((2, 3)))
        b = PointCloud(np.array([[0.0, 0.0, 0.01], [0.0, -0.03, 0.0]]))
        assert a.max_abs_error(b) == pytest.approx(0.03)

    def test_max_euclidean_error(self):
        a = PointCloud(np.zeros((1, 3)))
        b = PointCloud(np.array([[3.0, 4.0, 0.0]]))
        assert a.max_euclidean_error(b) == pytest.approx(5.0)

    def test_error_requires_same_length(self):
        with pytest.raises(ValueError):
            _cloud(3).max_abs_error(_cloud(4))

    def test_error_of_empty_clouds(self):
        assert PointCloud.empty().max_abs_error(PointCloud.empty()) == 0.0
        assert PointCloud.empty().max_euclidean_error(PointCloud.empty()) == 0.0
