"""Tests for the perf-regression comparator (benchmarks/compare.py)."""

import copy
import json

import pytest

from benchmarks.compare import SCHEMA, compare, main


def record(**overrides) -> dict:
    base = {
        "schema": SCHEMA,
        "name": "fig13",
        "git_rev": "abc123",
        "sensor_scale": 1.0,
        "wall_times_s": {"compress.org": 0.100, "compress.spa": 0.200},
        "sizes_bytes": {"dbgc.q0.02": 51200},
        "point_counts": {"kitti-city": 120000},
    }
    base.update(overrides)
    return base


class TestCompare:
    def test_identical_records_pass(self):
        assert compare(record(), record()) == []

    def test_regression_over_20_percent_fails(self):
        current = record(
            wall_times_s={"compress.org": 0.121, "compress.spa": 0.200}
        )
        problems = compare(record(), current)
        assert len(problems) == 1
        assert "compress.org" in problems[0]

    def test_regression_within_tolerance_passes(self):
        current = record(
            wall_times_s={"compress.org": 0.119, "compress.spa": 0.200}
        )
        assert compare(record(), current) == []

    def test_speedup_passes(self):
        current = record(
            wall_times_s={"compress.org": 0.010, "compress.spa": 0.020}
        )
        assert compare(record(), current) == []

    def test_custom_tolerance(self):
        current = record(wall_times_s={"compress.org": 0.150})
        assert compare(record(), current, tolerance=0.60) == []
        assert compare(record(), current, tolerance=0.20)

    def test_ignore_wall_skips_timings_not_sizes(self):
        current = record(
            wall_times_s={"compress.org": 9.9},
            sizes_bytes={"dbgc.q0.02": 99},
        )
        problems = compare(record(), current, ignore_wall=True)
        assert len(problems) == 1
        assert "sizes_bytes" in problems[0]

    def test_size_mismatch_fails(self):
        current = record(sizes_bytes={"dbgc.q0.02": 51201})
        problems = compare(record(), current)
        assert any("sizes_bytes" in p for p in problems)

    def test_point_count_mismatch_fails(self):
        current = record(point_counts={"kitti-city": 119999})
        problems = compare(record(), current)
        assert any("point_counts" in p for p in problems)

    def test_disjoint_keys_are_ignored(self):
        baseline = record(wall_times_s={"old.metric": 1.0})
        current = record(wall_times_s={"new.metric": 9.0})
        assert compare(baseline, current) == []

    def test_different_bench_names_fail(self):
        problems = compare(record(), record(name="fig12"))
        assert problems and "different benches" in problems[0]

    def test_different_sensor_scales_fail(self):
        problems = compare(record(), record(sensor_scale=0.25))
        assert problems and "sensor scales" in problems[0]


class TestMain:
    def _write(self, tmp_path, name, rec):
        path = tmp_path / name
        path.write_text(json.dumps(rec))
        return str(path)

    def test_exit_zero_on_match(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", record())
        b = self._write(tmp_path, "b.json", record())
        assert main([a, b]) == 0
        assert "ok" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", record())
        slow = copy.deepcopy(record())
        slow["wall_times_s"]["compress.spa"] = 0.500
        b = self._write(tmp_path, "b.json", slow)
        assert main([a, b]) == 1
        assert "compress.spa" in capsys.readouterr().out

    def test_loose_tolerance_flag(self, tmp_path):
        a = self._write(tmp_path, "a.json", record())
        slow = copy.deepcopy(record())
        slow["wall_times_s"]["compress.spa"] = 0.500
        b = self._write(tmp_path, "b.json", slow)
        assert main([a, b, "--tolerance", "2.0"]) == 0

    def test_schema_mismatch_exits_2(self, tmp_path):
        a = self._write(tmp_path, "a.json", record(schema="bogus/9"))
        b = self._write(tmp_path, "b.json", record())
        with pytest.raises(SystemExit) as exc:
            main([a, b])
        assert exc.value.code == 2

    def test_missing_file_raises_system_exit(self, tmp_path):
        b = self._write(tmp_path, "b.json", record())
        with pytest.raises(SystemExit):
            main([str(tmp_path / "absent.json"), b])
