"""Tests for density-based clustering."""

import numpy as np
import pytest

from repro.core import cluster_approx, cluster_exact, split_by_fraction


def _two_blobs(n_dense=400, n_sparse=60, seed=0):
    """A tight blob (dense) plus far-flung scatter (sparse)."""
    rng = np.random.default_rng(seed)
    dense = rng.normal(0.0, 0.05, size=(n_dense, 3))
    sparse = rng.uniform(5.0, 30.0, size=(n_sparse, 3)) * rng.choice(
        [-1.0, 1.0], size=(n_sparse, 3)
    )
    xyz = np.vstack([dense, sparse])
    expected = np.zeros(len(xyz), dtype=bool)
    expected[:n_dense] = True
    return xyz, expected


class TestExact:
    def test_empty(self):
        assert cluster_exact(np.empty((0, 3)), 0.2, 10, 0.04).size == 0

    def test_blob_vs_scatter(self):
        xyz, expected = _two_blobs()
        mask = cluster_exact(xyz, eps=0.2, min_pts=20, cell_side=0.04)
        # All blob points dense, no far scatter point dense.
        assert mask[expected].mean() > 0.95
        assert not mask[~expected].any()

    def test_min_pts_controls_strictness(self):
        xyz, expected = _two_blobs()
        lenient = cluster_exact(xyz, 0.2, 5, 0.04)
        strict = cluster_exact(xyz, 0.2, 500, 0.04)
        assert lenient.sum() >= strict.sum()
        assert strict.sum() == 0  # nothing that dense here

    def test_cell_absorption(self):
        """A sparse point sharing a leaf cell with a core point turns dense."""
        rng = np.random.default_rng(1)
        blob = rng.normal(0.0, 0.02, size=(100, 3))
        # One extra point inside the blob's cell region but call it "its own":
        # it will be absorbed either via neighbor expansion or the cell pass.
        extra = np.array([[0.01, 0.01, 0.01]])
        xyz = np.vstack([blob, extra])
        mask = cluster_exact(xyz, eps=0.1, min_pts=30, cell_side=0.2)
        assert mask[-1]

    def test_all_isolated_points_sparse(self):
        xyz = np.diag([10.0, 20.0, 30.0])
        mask = cluster_exact(xyz, eps=0.2, min_pts=2, cell_side=0.04)
        assert not mask.any()


class TestApprox:
    def test_empty(self):
        assert cluster_approx(np.empty((0, 3)), 0.2, 10).size == 0

    def test_blob_vs_scatter(self):
        xyz, expected = _two_blobs()
        mask = cluster_approx(xyz, eps=0.2, min_pts=20)
        assert mask[expected].all()  # grid over-approximates, never misses
        assert mask[~expected].sum() == 0

    def test_agrees_with_exact_on_realistic_data(self):
        """Section 4.3: the two methods produce nearly the same dense set."""
        from repro.datasets import generate_frame

        xyz = generate_frame("kitti-city", 0).xyz[::4]
        exact = cluster_exact(xyz, 0.2, 60, 0.04)
        approx = cluster_approx(xyz, 0.2, 60)
        agreement = (exact == approx).mean()
        assert agreement > 0.9

    def test_dilation_absorbs_border_cells(self):
        rng = np.random.default_rng(2)
        blob = rng.normal(0.0, 0.05, size=(300, 3))
        border = np.array([[0.25, 0.0, 0.0]])  # next cell over
        xyz = np.vstack([blob, border])
        mask = cluster_approx(xyz, eps=0.2, min_pts=50)
        assert mask[-1]

    @staticmethod
    def _reference_approx(xyz, eps, min_pts):
        """The pre-vectorization dict-per-cell implementation, verbatim."""
        xyz = np.asarray(xyz, dtype=np.float64)
        if len(xyz) == 0:
            return np.zeros(0, dtype=bool)
        cells = np.floor(xyz / (eps / 2.0)).astype(np.int64)
        keys = (
            (cells[:, 0] + (1 << 20)) << 42
            | (cells[:, 1] + (1 << 20)) << 21
            | (cells[:, 2] + (1 << 20))
        )
        unique_keys, inverse, counts = np.unique(
            keys, return_inverse=True, return_counts=True
        )
        count_of = dict(zip(unique_keys.tolist(), counts.tolist()))
        offsets = [
            dx * (1 << 42) + dy * (1 << 21) + dz
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ]
        unique_list = unique_keys.tolist()
        neighborhood = np.zeros(len(unique_list), dtype=np.int64)
        for offset in offsets:
            for i, key in enumerate(unique_list):
                neighborhood[i] += count_of.get(key + offset, 0)
        dense_cell = neighborhood >= min_pts
        dense_set = {k for k, d in zip(unique_list, dense_cell.tolist()) if d}
        dilated = dense_cell.copy()
        for i, key in enumerate(unique_list):
            if dilated[i]:
                continue
            if any(key + offset in dense_set for offset in offsets):
                dilated[i] = True
        return dilated[inverse]

    @pytest.mark.parametrize("min_pts", [5, 20, 60])
    def test_vectorized_matches_reference_random(self, min_pts):
        """The searchsorted path must reproduce the dict path bit-for-bit."""
        rng = np.random.default_rng(3)
        xyz = np.vstack(
            [
                rng.normal(0.0, 0.08, size=(500, 3)),
                rng.uniform(-20.0, 20.0, size=(200, 3)),
            ]
        )
        fast = cluster_approx(xyz, eps=0.2, min_pts=min_pts)
        slow = self._reference_approx(xyz, eps=0.2, min_pts=min_pts)
        np.testing.assert_array_equal(fast, slow)

    def test_vectorized_matches_reference_realistic(self):
        from repro.datasets import generate_frame

        xyz = generate_frame("kitti-city", 0).xyz[::4]
        fast = cluster_approx(xyz, 0.2, 60)
        slow = self._reference_approx(xyz, 0.2, 60)
        np.testing.assert_array_equal(fast, slow)


class TestSplitByFraction:
    def test_bounds(self):
        xyz = np.random.default_rng(0).normal(size=(100, 3))
        assert split_by_fraction(xyz, 0.0).sum() == 0
        assert split_by_fraction(xyz, 1.0).sum() == 100

    def test_takes_nearest(self):
        xyz = np.array([[1.0, 0, 0], [5.0, 0, 0], [2.0, 0, 0], [10.0, 0, 0]])
        mask = split_by_fraction(xyz, 0.5)
        assert mask.tolist() == [True, False, True, False]

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            split_by_fraction(np.zeros((1, 3)), -0.1)
