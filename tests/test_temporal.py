"""Tests for inter-frame temporal compression (format v3 delta frames)."""

import numpy as np
import pytest

from repro.core import DBGCDecompressor, DBGCParams
from repro.core.container import container_version
from repro.core.pipeline import DBGCCompressor
from repro.core.temporal import (
    TemporalContext,
    TemporalDecoder,
    decompress_delta,
)
from repro.datasets import SensorModel
from repro.datasets.trajectories import generate_sequence, straight

Q_XYZ = 0.02
KEYFRAME_INTERVAL = 4
N_FRAMES = 5


@pytest.fixture(scope="module")
def sensor():
    return SensorModel.benchmark_default().scaled(0.3)


@pytest.fixture(scope="module")
def drive(sensor):
    """A short straight drive: (frames, trajectory positions)."""
    trajectory = straight(N_FRAMES)
    frames = list(
        generate_sequence("kitti-road", trajectory, sensor=sensor, seed=1)
    )
    return frames, trajectory


def _ego_deltas(trajectory):
    deltas = [(0.0, 0.0, 0.0)]
    for i in range(1, len(trajectory)):
        prev, cur = trajectory[i - 1], trajectory[i]
        deltas.append((cur[0] - prev[0], cur[1] - prev[1], 0.0))
    return deltas


def _compress_drive(frames, trajectory, sensor, keyframe_interval=KEYFRAME_INTERVAL):
    params = DBGCParams(
        q_xyz=Q_XYZ, temporal=True, keyframe_interval=keyframe_interval
    )
    compressor = DBGCCompressor(params, sensor=sensor)
    context = TemporalContext()
    results = []
    for cloud, ego_delta in zip(frames, _ego_deltas(trajectory)):
        results.append(
            compressor.compress_temporal(cloud, context, ego_delta=ego_delta)
        )
    return results


class TestTemporalCodec:
    def test_keyframe_schedule(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(frames, trajectory, sensor)
        versions = [container_version(r.payload) for r in results]
        # Frames 0 and 4 are keyframes (interval 4); 1..3 are v3 deltas.
        assert versions[0] <= 2 and versions[4] <= 2
        assert versions[1] == versions[2] == versions[3] == 3

    def test_stateful_round_trip_and_error_bound(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(frames, trajectory, sensor)
        decoder = TemporalDecoder()
        bound = np.sqrt(3.0) * Q_XYZ * 1.0001
        for frame, result in zip(frames, results):
            decoded = decoder.decode(result.payload)
            assert len(decoded) == len(frame)
            # The per-frame error bound holds on delta frames too: the
            # mapping permutes decoded points back into capture order.
            err = np.linalg.norm(decoded.xyz[result.mapping] - frame.xyz, axis=1)
            assert float(err.max()) <= bound

    def test_decode_is_deterministic(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(frames, trajectory, sensor)
        a = TemporalDecoder()
        b = TemporalDecoder()
        for result in results:
            assert np.array_equal(
                a.decode(result.payload).xyz, b.decode(result.payload).xyz
            )

    def test_delta_frames_do_not_exceed_intra(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(frames, trajectory, sensor)
        intra = DBGCCompressor(DBGCParams(q_xyz=Q_XYZ), sensor=sensor)
        delta_total = sum(len(results[i].payload) for i in range(1, 4))
        intra_total = sum(len(intra.compress(frames[i])) for i in range(1, 4))
        # Deltas must win in aggregate on an overlapping drive; per-frame
        # ties can happen when every component falls back to intra.
        assert delta_total < intra_total

    def test_keyframe_interval_one_matches_independent_coding(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(
            frames, trajectory, sensor, keyframe_interval=1
        )
        intra = DBGCCompressor(DBGCParams(q_xyz=Q_XYZ), sensor=sensor)
        for frame, result in zip(frames, results):
            assert result.payload == intra.compress(frame)

    def test_stateless_decompressor_rejects_delta(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(frames, trajectory, sensor)
        with pytest.raises(ValueError, match="delta frame"):
            DBGCDecompressor().decompress(results[1].payload)

    def test_delta_without_state_rejected(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(frames, trajectory, sensor)
        with pytest.raises(ValueError, match="without predictor state"):
            decompress_delta(results[1].payload, TemporalContext())

    def test_skipped_frame_breaks_fingerprint(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(frames, trajectory, sensor)
        decoder = TemporalDecoder()
        decoder.decode(results[0].payload)
        decoder.decode(results[1].payload)
        # Dropping frame 2 leaves the context one frame behind; frame 3's
        # delta must refuse to decode against the stale predictor.
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            decoder.decode(results[3].payload)
        # The stream heals at the next keyframe.
        decoded = decoder.decode(results[4].payload)
        assert len(decoded) == len(frames[4])


class TestServerTemporalIngest:
    @pytest.fixture(scope="class")
    def payloads(self, drive, sensor):
        frames, trajectory = drive
        results = _compress_drive(
            frames, trajectory, sensor, keyframe_interval=2
        )
        return frames, [r.payload for r in results]

    def test_in_order_ingest_decodes_deltas(self, payloads):
        from repro.system import DbgcClient, DbgcServer, SqliteFrameStore

        frames, blobs = payloads
        store = SqliteFrameStore()
        server = DbgcServer(store, mode="decompress").start()
        client = DbgcClient(server.address)
        for index, blob in enumerate(blobs):
            client.send_payload(index, blob)
        client.close()
        server.join()
        assert len(store) == len(frames)
        assert not server.quarantine
        for index, frame in enumerate(frames):
            assert len(store.get_cloud(index)) == len(frame)

    def test_restart_quarantines_deltas_until_keyframe(self, payloads):
        from repro.system import DbgcClient, DbgcServer, SqliteFrameStore

        frames, blobs = payloads
        # A fresh server models a restart: the predictor state is gone, so
        # a stream resuming at a delta frame (index 1) must quarantine it
        # and heal at the next keyframe (index 2, interval 2).
        store = SqliteFrameStore()
        server = DbgcServer(store, mode="decompress").start()
        client = DbgcClient(server.address)
        for index, blob in enumerate(blobs[1:], start=1):
            client.send_payload(index, blob)
        client.close()
        server.join()
        assert [q.frame_index for q in server.quarantine] == [1]
        assert sorted(store.frame_indices()) == [2, 3, 4]
        for index in (2, 3, 4):
            assert len(store.get_cloud(index)) == len(frames[index])
