"""Golden-payload compatibility tests for container formats v1 and v2.

``tests/golden/`` holds committed payloads produced by the v1 (seed) and
v2 encoders on a deterministic analytic scene, plus the exact decoder
output at the time they were recorded.  These pin two promises:

* **Decoder compatibility** — today's decoder reads old payloads
  bit-identically; a v3-capable reader changes nothing about v1/v2.
* **Encoder stability** — re-encoding the same input with default
  parameters reproduces the committed v2 payload byte-for-byte, so a
  format change can never slip in silently.

The original cloud is regenerated analytically (not loaded) so the test
also guards the recipe that would be needed to re-record the goldens.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core import DBGCDecompressor, DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.core.temporal import TemporalDecoder
from repro.datasets import SensorModel
from repro.geometry import PointCloud

GOLDEN = Path(__file__).parent / "golden"


def golden_cloud() -> tuple[np.ndarray, np.ndarray]:
    """The analytic scene the goldens were recorded from (seeded, exact)."""
    rng = np.random.default_rng(42)
    wall = np.stack(
        [
            4.0 + rng.normal(0.0, 0.004, 900),
            np.tile(np.linspace(-1.5, 1.5, 30), 30),
            np.repeat(np.linspace(-0.9, 0.9, 30), 30),
        ],
        axis=1,
    )
    th = np.linspace(0.0, 2.0 * np.pi, 700, endpoint=False)
    rings = []
    for r, z in ((12.0, -1.2), (18.0, -1.0), (25.0, -0.8)):
        rr = r + rng.normal(0.0, 0.02, 700)
        rings.append(
            np.stack(
                [rr * np.cos(th), rr * np.sin(th), z + rng.normal(0.0, 0.01, 700)],
                axis=1,
            )
        )
    outliers = rng.uniform(-60.0, 60.0, (40, 3))
    outliers[:, 2] = rng.uniform(-2.0, 6.0, 40)
    xyz = np.vstack([wall] + rings + [outliers])
    intensity = rng.random(len(xyz)) * 0.9
    return xyz, intensity


@pytest.mark.parametrize("version", [1, 2])
class TestGoldenDecode:
    def test_version_byte(self, version):
        blob = (GOLDEN / f"v{version}_frame.dbgc").read_bytes()
        assert blob[4] == version

    def test_decodes_bit_identically(self, version):
        blob = (GOLDEN / f"v{version}_frame.dbgc").read_bytes()
        expected = np.load(GOLDEN / f"v{version}_frame_expected.npz")
        cloud, attrs = DBGCDecompressor().decompress_with_attributes(blob)
        assert np.array_equal(cloud.xyz, expected["decoded"])
        assert np.array_equal(attrs["intensity"], expected["intensity"])

    def test_temporal_decoder_reads_intra_unchanged(self, version):
        # The stateful v3-capable reader must treat v1/v2 payloads exactly
        # like the stateless decompressor (they are keyframes).
        blob = (GOLDEN / f"v{version}_frame.dbgc").read_bytes()
        expected = np.load(GOLDEN / f"v{version}_frame_expected.npz")
        cloud = TemporalDecoder().decode(blob)
        assert np.array_equal(cloud.xyz, expected["decoded"])

    def test_recorded_decode_satisfies_error_contract(self, version):
        # The golden isn't just self-consistent: every original point has
        # a reconstruction within the quantization bound, so the committed
        # payload demonstrably honors the codec's error contract.
        expected = np.load(GOLDEN / f"v{version}_frame_expected.npz")
        original = expected["original"]
        decoded = expected["decoded"]
        assert original.shape == decoded.shape
        bound = np.sqrt(3.0) * DBGCParams().q_xyz * 1.0001
        worst = 0.0
        for start in range(0, len(original), 256):
            chunk = original[start : start + 256]
            d2 = ((chunk[:, None, :] - decoded[None, :, :]) ** 2).sum(axis=2)
            worst = max(worst, float(np.sqrt(d2.min(axis=1)).max()))
        assert worst <= bound


class TestGoldenEncode:
    def test_recipe_matches_recorded_original(self):
        xyz, _ = golden_cloud()
        expected = np.load(GOLDEN / "v2_frame_expected.npz")
        assert np.array_equal(xyz, expected["original"])

    def test_v2_reencode_is_byte_stable(self):
        xyz, intensity = golden_cloud()
        compressor = DBGCCompressor(
            DBGCParams(), sensor=SensorModel.benchmark_default().scaled(0.5)
        )
        blob = compressor.compress(
            PointCloud(xyz), attributes={"intensity": intensity}
        )
        assert blob == (GOLDEN / "v2_frame.dbgc").read_bytes()
