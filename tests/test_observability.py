"""Tests for the unified observability layer (spans, counters, exporters)."""

import json
import threading
import time

import numpy as np
import pytest

from repro import observability as obs
from repro.core.pipeline import DBGCCompressor, DBGCDecompressor
from repro.geometry.points import PointCloud


@pytest.fixture(autouse=True)
def _no_leaked_global_recorder():
    """Every test must leave the process-global recorder uninstalled."""
    assert obs.get_recorder() is None
    yield
    assert obs.get_recorder() is None


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(11)
    xyz = np.vstack(
        [
            rng.normal(0.0, 0.5, size=(1500, 3)),
            rng.uniform(-30.0, 30.0, size=(1500, 3)),
        ]
    )
    return PointCloud(xyz)


class TestRecorder:
    def test_span_nesting_and_durations(self):
        rec = obs.Recorder()
        with rec.span("outer") as outer:
            with rec.span("inner"):
                time.sleep(0.001)
        assert len(rec.roots) == 1
        assert rec.roots[0] is outer
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.duration >= outer.children[0].duration > 0.0
        assert outer.total("inner") == outer.children[0].duration

    def test_counters_and_histograms(self):
        rec = obs.Recorder()
        rec.count("frames")
        rec.count("frames", 2)
        rec.observe("latency", 0.5)
        rec.observe("latency", 1.5)
        assert rec.counters["frames"] == 3
        assert rec.histograms["latency"] == [0.5, 1.5]

    def test_add_bytes_lands_on_active_span_and_counter(self):
        rec = obs.Recorder()
        with rec.span("stage") as span:
            rec.add_bytes("payload", 100)
            rec.add_bytes("payload", 50)
        assert span.bytes == {"payload": 150}
        assert rec.counters["bytes.payload"] == 150
        assert rec.byte_totals() == {"payload": 150}

    def test_exception_unwinds_span_stack(self):
        rec = obs.Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("outer"):
                with rec.span("inner"):
                    raise RuntimeError("boom")
        # The stack must be clean: a new span is a root, not a child.
        with rec.span("after"):
            pass
        assert [r.name for r in rec.roots] == ["outer", "after"]

    def test_threads_build_separate_trees_in_one_recorder(self):
        rec = obs.Recorder()

        def work(tag):
            with rec.span(tag):
                rec.count("work")

        with obs.recording(rec):
            threads = [
                threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sorted(r.name for r in rec.roots) == ["t0", "t1", "t2", "t3"]
        assert rec.counters["work"] == 4


class TestAmbientDispatch:
    def test_disabled_hooks_are_noops(self):
        assert obs.current() is None
        span = obs.span("anything")
        with span:
            obs.count("nope")
            obs.add_bytes("nope", 10)
            obs.observe("nope", 1.0)
        assert span.duration == 0.0
        assert span.total("anything") == 0.0
        # The no-op span is a shared singleton: no per-call allocation.
        assert obs.span("a") is obs.span("b")

    def test_recording_installs_and_restores(self):
        with obs.recording() as rec:
            assert obs.current() is rec
            with obs.span("s"):
                obs.count("c")
        assert obs.current() is None
        assert rec.counters["c"] == 1
        assert [r.name for r in rec.roots] == ["s"]

    def test_recording_restores_previous_recorder(self):
        with obs.recording() as outer_rec:
            with obs.recording() as inner_rec:
                assert obs.current() is inner_rec
            assert obs.current() is outer_rec
        assert obs.current() is None

    def test_ensure_recorder_reuses_ambient(self):
        with obs.recording() as rec:
            with obs.ensure_recorder() as ensured:
                assert ensured is rec

    def test_ensure_recorder_installs_thread_scoped(self):
        with obs.ensure_recorder() as rec:
            assert obs.current() is rec
            assert obs.get_recorder() is None  # not global
        assert obs.current() is None

    def test_scoped_recorder_does_not_leak_across_threads(self):
        seen = {}

        def probe():
            seen["recorder"] = obs.current()

        with obs.ensure_recorder():
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["recorder"] is None


class TestExporters:
    def _sample_recorder(self):
        rec = obs.Recorder()
        with rec.span("root"):
            with rec.span("child"):
                rec.add_bytes("stream", 42)
            rec.count("frames")
            rec.observe("seconds", 0.25)
            rec.observe("seconds", 0.75)
        return rec

    def test_report_dict_schema(self):
        rec = self._sample_recorder()
        report = obs.report_dict(rec)
        obs.validate_report(report)
        assert report["version"] == obs.REPORT_VERSION
        (root,) = report["spans"]
        assert root["name"] == "root"
        (child,) = root["children"]
        assert child["bytes"] == {"stream": 42}
        assert report["counters"]["frames"] == 1
        assert report["counters"]["bytes.stream"] == 42
        hist = report["histograms"]["seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(1.0)
        assert hist["min"] == 0.25 and hist["max"] == 0.75

    def test_to_json_round_trips(self):
        rec = self._sample_recorder()
        report = json.loads(obs.to_json(rec))
        obs.validate_report(report)

    def test_validate_report_rejects_malformed(self):
        with pytest.raises(ValueError):
            obs.validate_report({"version": obs.REPORT_VERSION})
        with pytest.raises(ValueError):
            obs.validate_report(
                {"version": 99, "spans": [], "counters": {}, "histograms": {}}
            )
        bad_span = {
            "version": obs.REPORT_VERSION,
            "spans": [{"name": "x"}],  # missing duration_s
            "counters": {},
            "histograms": {},
        }
        with pytest.raises(ValueError):
            obs.validate_report(bad_span)

    def test_stage_and_byte_totals(self):
        rec = self._sample_recorder()
        report = obs.report_dict(rec)
        assert set(obs.stage_totals(report)) == {"root", "child"}
        assert set(obs.stage_totals(report, "root")) == {"child"}
        assert obs.byte_totals(report) == {"stream": 42}

    def test_prometheus_rendering(self):
        rec = self._sample_recorder()
        text = obs.to_prometheus(rec)
        assert "# TYPE dbgc_frames counter" in text
        assert "dbgc_frames 1" in text
        assert 'dbgc_span_seconds_total{name="child"}' in text
        assert 'dbgc_seconds{quantile="0.5"}' in text
        assert "dbgc_seconds_count 2" in text

    def test_ascii_breakdown_renders(self):
        rec = self._sample_recorder()
        text = obs.ascii_breakdown(rec)
        assert "root" in text and "child" in text
        assert "stream" in text and "42" in text


class TestPipelineIntegration:
    def test_timings_populated_without_recording(self, cloud):
        result = DBGCCompressor().compress_detailed(cloud)
        assert set(result.timings) == {"den", "oct", "cor", "org", "spa", "out"}
        assert sum(result.timings.values()) > 0.0
        assert obs.current() is None

    def test_span_tree_byte_counters_reconcile_with_payload(self, cloud):
        """bytes.* counters must agree with the container's stream sizes."""
        with obs.recording() as rec:
            result = DBGCCompressor().compress_detailed(cloud)
        totals = rec.byte_totals()
        assert totals["stream.dense"] == result.stream_sizes["dense"]
        assert totals["stream.sparse"] == result.stream_sizes["sparse"]
        assert totals["stream.outlier"] == result.stream_sizes["outlier"]
        # Per-stream sparse detail also matches the result's accounting.
        for name, size in result.stream_sizes.items():
            if name in ("dense", "sparse", "outlier"):
                continue
            assert totals["sparse." + name] == size
        # Counter sanity: point partition adds up.
        c = rec.counters
        assert (
            c["compress.points_dense"]
            + c["compress.points_sparse"]
            + c["compress.points_outlier"]
            == c["compress.points_in"]
        )
        assert c["compress.payload_bytes"] == len(result.payload)

    def test_span_tree_timings_match_result(self, cloud):
        with obs.recording() as rec:
            result = DBGCCompressor().compress_detailed(cloud)
        (root,) = rec.roots
        assert root.name == "dbgc.compress"
        assert root.total("dbgc.den") == result.timings["den"]
        assert root.total("sparse.spa") == result.timings["spa"]
        # Stage times nest inside the root's wall clock.
        assert sum(result.timings.values()) <= root.duration

    def test_decompress_joins_report(self, cloud):
        payload = DBGCCompressor().compress(cloud)
        with obs.recording() as rec:
            restored, timings = DBGCDecompressor().decompress_detailed(payload)
        assert set(timings) == {"oct", "spa", "out"}
        assert rec.counters["decompress.points_out"] == len(restored)
        assert rec.counters["decompress.frames"] == 1

    def test_disabled_recorder_overhead_under_5_percent(self, cloud):
        """The tentpole's no-op guarantee, measured.

        min-of-N wall clock with instrumentation disabled must be within
        5% of... itself — i.e. compress with no recorder installed versus
        compress inside a recording block.  The two loops are interleaved
        so CPU-frequency drift hits both equally (a frame now compresses
        in tens of milliseconds, where back-to-back loops used to read
        pure ramp-up noise); min-of-N then suppresses scheduler noise, and
        the margin is generous because the hooks are a single global read
        when disabled.
        """
        compressor = DBGCCompressor()
        compressor.compress(cloud)  # warm caches / JIT-free baseline

        def recorded():
            with obs.recording():
                compressor.compress(cloud)

        # Enabled may legitimately be a touch slower; disabled must never
        # be systematically above the enabled path's best (no hidden
        # cost).  A hidden cost would show up on every iteration, so the
        # 10% bound stays meaningful while tolerating per-run jitter at
        # the tens-of-milliseconds frame scale.  Iterate until the bound
        # holds (a systematic cost never satisfies it) with a hard cap so
        # a real regression still fails rather than spinning.
        disabled = enabled = float("inf")
        for iteration in range(21):
            start = time.perf_counter()
            compressor.compress(cloud)
            disabled = min(disabled, time.perf_counter() - start)
            start = time.perf_counter()
            recorded()
            enabled = min(enabled, time.perf_counter() - start)
            if iteration >= 6 and disabled <= enabled * 1.10:
                break
        assert disabled <= enabled * 1.10


class TestCliMetrics:
    def test_compress_metrics_report(self, tmp_path, capsys):
        from repro.cli import main

        frame = tmp_path / "frame.npz"
        assert main(
            ["simulate", "kitti-road", str(frame), "--sensor-scale", "0.2"]
        ) == 0
        out = tmp_path / "frame.dbgc"
        metrics = tmp_path / "metrics.json"
        assert main(
            [
                "compress", str(frame), str(out),
                "--sensor-scale", "0.2", "--metrics", str(metrics),
            ]
        ) == 0
        report = json.loads(metrics.read_text())
        obs.validate_report(report)
        assert report["counters"]["compress.frames"] == 1
        assert report["counters"]["compress.payload_bytes"] == len(
            out.read_bytes()
        )
        names = {s["name"] for s in report["spans"]}
        assert "dbgc.compress" in names
        # The terminal got the ASCII breakdown alongside the file.
        captured = capsys.readouterr().out
        assert "dbgc.den" in captured
        assert obs.get_recorder() is None

    def test_compress_metrics_stdout(self, tmp_path, capsys):
        from repro.cli import main

        frame = tmp_path / "frame.npz"
        assert main(
            ["simulate", "kitti-road", str(frame), "--sensor-scale", "0.2"]
        ) == 0
        assert main(
            [
                "compress", str(frame), str(tmp_path / "f.dbgc"),
                "--sensor-scale", "0.2", "--metrics", "-",
            ]
        ) == 0
        stdout = capsys.readouterr().out
        start = stdout.index("{")
        depth = 0
        for end, ch in enumerate(stdout[start:], start):
            depth += {"{": 1, "}": -1}.get(ch, 0)
            if depth == 0:
                break
        report = json.loads(stdout[start : end + 1])
        obs.validate_report(report)
