"""The multi-client ingest tier: sharded stores, stream scoping, fleet runs.

Covers the thread-safety bugs the single-connection server used to hide:
off-lock dedupe mutation (two connections hammering one stream), SQLite
access from concurrent handler threads, double-counted file-store frames,
the END/ACK handshake's addressing, and — as the acceptance bar — a
seeded 4-client fault-injection run whose accounting must reconcile
exactly with a serial replay.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.geometry import PointCloud
from repro.system import (
    DbgcClient,
    DbgcServer,
    FaultSpec,
    FaultyChannel,
    FileFrameStore,
    FleetSpec,
    ShardedFrameStore,
    SqliteFrameStore,
    run_fleet,
)
from repro.system.loadgen import payload_contents
from repro.system.protocol import (
    ACK_DUPLICATE,
    ACK_STORED,
    END_ACK_INDEX,
    TYPE_ACK,
    TYPE_END,
    TYPE_FRAME,
    TYPE_HELLO,
    encode_record,
    read_record,
)

pytestmark = pytest.mark.timeout(180)


# -- sharded / concurrent stores --------------------------------------------


def test_sharded_store_routes_by_modulo(tmp_path):
    with ShardedFrameStore.sqlite(3) as store:
        for index in range(10):
            assert store.shard_for(index) == index % 3
            store.put_payload(index, bytes([index]) * (index + 1))
        assert store.frame_indices() == list(range(10))
        assert len(store) == 10
        for k, shard in enumerate(store.shards):
            assert all(i % 3 == k for i in shard.frame_indices())
        # Per-shard byte totals sum to the whole store's.
        per_shard = store.shard_payload_bytes()
        assert sum(per_shard) == store.total_payload_bytes() == sum(range(1, 11))
        assert store.get_payload(7) == bytes([7]) * 8


def test_sharded_file_store_layout(tmp_path):
    with ShardedFrameStore.files(2, tmp_path) as store:
        store.put_payload(4, b"even")
        store.put_payload(5, b"odd")
        assert (tmp_path / "shard_0" / "frame_000004.dbgc").read_bytes() == b"even"
        assert (tmp_path / "shard_1" / "frame_000005.dbgc").read_bytes() == b"odd"
        assert store.frame_indices() == [4, 5]


def test_sqlite_store_concurrent_writers():
    """Interleaved execute/commit from many threads must not lose rows."""
    store = SqliteFrameStore()
    n_threads, per_thread = 8, 50

    def write(worker: int) -> None:
        for i in range(per_thread):
            index = worker * per_thread + i
            store.put_payload(index, index.to_bytes(4, "little"))

    threads = [threading.Thread(target=write, args=(w,)) for w in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(store) == n_threads * per_thread
    assert store.frame_indices() == list(range(n_threads * per_thread))
    for index in (0, 123, 399):
        assert store.get_payload(index) == index.to_bytes(4, "little")
    store.close()


def test_sqlite_store_kind_conflict_raises():
    store = SqliteFrameStore()
    store.put_payload(1, b"payload-bytes")
    # Idempotent same-kind overwrite is fine (retransmissions).
    store.put_payload(1, b"payload-bytes")
    with pytest.raises(ValueError, match="already stored as 'payload'"):
        store.put_cloud(1, PointCloud([[0.0, 0.0, 0.0]]))
    assert store.get_payload(1) == b"payload-bytes"
    store.close()


def test_file_store_counts_each_index_once(tmp_path):
    """A .dbgc and a .npz for one index used to double-count the frame."""
    store = FileFrameStore(tmp_path)
    store.put_payload(3, b"compressed")
    store.put_cloud(3, PointCloud([[1.0, 2.0, 3.0]]))
    store.put_payload(8, b"other")
    assert store.frame_indices() == [3, 8]
    assert len(store) == 2


# -- raw-socket protocol behavior -------------------------------------------


def _raw_client(address, stream_id=None):
    sock = socket.create_connection(address, timeout=10.0)
    sock.settimeout(10.0)
    if stream_id is not None:
        sock.sendall(encode_record(TYPE_HELLO, stream_id))
    return sock


def test_dedupe_hammer_two_connections_one_stream():
    """Two connections on one stream racing the same indices: exactly-once.

    This is the regression test for the off-lock ``_seen`` mutation — the
    old server mutated the dedupe set outside any lock, so two handler
    threads could both miss the set and store the same frame twice.
    """
    indices = list(range(20))
    store = SqliteFrameStore()
    with DbgcServer(store, mode="store", max_clients=4) as server:
        barrier = threading.Barrier(2)
        acks: dict[int, list[int]] = {0: [], 1: []}

        def hammer(slot: int) -> None:
            sock = _raw_client(server.address, stream_id=99)
            barrier.wait()
            for index in indices:
                sock.sendall(encode_record(TYPE_FRAME, index, b"p" * 64))
                ack = read_record(sock)
                assert ack.type == TYPE_ACK
                assert ack.frame_index == index
                acks[slot].append(ack.flags)
            sock.close()

        threads = [threading.Thread(target=hammer, args=(slot,)) for slot in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Exactly once in the store, no matter how the threads interleaved.
        assert store.frame_indices() == indices
        state = server.stream_state(99)
        assert state is not None and state.seen == set(indices)
        # Per index: one STORED and one DUPLICATE across the two senders.
        for i, (a, b) in enumerate(zip(acks[0], acks[1])):
            assert sorted((a, b)) == [ACK_STORED, ACK_DUPLICATE], (i, a, b)
        assert len(server.receipts) == len(indices)
    store.close()


def test_streams_do_not_share_dedupe_state():
    """The same frame index on two different streams is not a duplicate."""
    store = ShardedFrameStore.sqlite(2)
    with DbgcServer(store, mode="store") as server:
        sock_a = _raw_client(server.address, stream_id=1)
        sock_b = _raw_client(server.address, stream_id=2)
        sock_a.sendall(encode_record(TYPE_FRAME, 5, b"from-stream-1"))
        assert read_record(sock_a).flags == ACK_STORED
        sock_b.sendall(encode_record(TYPE_FRAME, 5, b"from-stream-2"))
        ack_b = read_record(sock_b)
        # Scoped dedupe: stream 2 is NOT deduped against stream 1.
        assert ack_b.flags == ACK_STORED
        assert server.stream_state(1).seen == {5}
        assert server.stream_state(2).seen == {5}
        assert server.receipts_for(1)[0][1] == len(b"from-stream-1")
        assert server.receipts_for(2)[0][1] == len(b"from-stream-2")
        sock_a.close()
        sock_b.close()
    store.close()


def test_end_ack_carries_the_sentinel_index():
    """Frame ACKs carry their frame's index; the END ACK carries the sentinel."""
    store = SqliteFrameStore()
    with DbgcServer(store, mode="store") as server:
        sock = _raw_client(server.address, stream_id=0)
        sock.sendall(encode_record(TYPE_FRAME, 3, b"payload"))
        frame_ack = read_record(sock)
        assert (frame_ack.type, frame_ack.frame_index) == (TYPE_ACK, 3)
        sock.sendall(encode_record(TYPE_END, END_ACK_INDEX))
        end_ack = read_record(sock)
        assert (end_ack.type, end_ack.frame_index) == (TYPE_ACK, END_ACK_INDEX)
        sock.close()
        server.wait_for_streams(1, timeout=10.0)
        assert server.streams_ended == 1
    store.close()


def test_end_handshake_survives_a_dropped_end_ack():
    """A lost END ACK forces an END retransmission that must converge."""
    spec = FaultSpec(force_ack_drop_first=frozenset({END_ACK_INDEX}))
    channel = FaultyChannel(None, seed=5, spec=spec)
    store = SqliteFrameStore()
    with DbgcServer(store, mode="store", channel={77: channel}) as server:
        with DbgcClient(
            server.address,
            stream_id=77,
            channel=channel,
            ack_timeout=0.5,
            backoff_base=0.01,
        ) as client:
            client.send_payload(0, b"only-frame")
        server.wait_for_streams(1, timeout=30.0)
        # First END's ack was dropped: the client reconnected and re-ENDed.
        end_events = [e for e in server.events if e[0] == "end"]
        assert len(end_events) >= 2
        assert server.connections >= 2
        assert server.streams_ended == 1  # counted once despite retries
        assert client.report.n_stored == 1
        assert store.frame_indices() == [0]
    store.close()


# -- fleet runs --------------------------------------------------------------


def test_max_clients_caps_concurrency():
    """With one handler slot, three clients serialize but all complete."""
    spec = FleetSpec(n_clients=3, frames_per_client=5, seed=2)
    with ShardedFrameStore.sqlite(2) as store:
        result = run_fleet(spec, store, max_clients=1)
        assert result.n_stored == 15
        assert result.n_dropped == 0 and result.n_quarantined == 0
        assert result.server.peak_active_clients == 1
        assert result.server.connections >= 3


def test_fleet_observability_counters():
    from repro import observability as obs

    spec = FleetSpec(n_clients=2, frames_per_client=3, seed=4)
    with obs.recording() as recorder:
        with ShardedFrameStore.sqlite(2) as store:
            result = run_fleet(spec, store)
    metrics = obs.report_dict(recorder)
    assert metrics["counters"]["server.clients.total"] == result.server.connections
    assert metrics["counters"]["server.clients.active"] == 0  # all released
    assert metrics["counters"]["server.streams.ended"] == 2
    assert metrics["counters"]["server.stored"] == 6


ACCEPTANCE_SPEC = FleetSpec(
    n_clients=4,
    frames_per_client=25,
    seed=7,
    fault_spec=FaultSpec(corrupt_rate=0.08, ack_drop_rate=0.10),
    force_disconnect_local=frozenset({10}),
    ack_timeout=1.0,
    backoff_base=0.01,
)


def _check_acceptance(result, store) -> None:
    spec = result.spec
    # Zero lost frames: every frame of every client is stored or
    # quarantined (corruption is *detected*, never silently dropped).
    for cid, report in result.reports.items():
        assert report.n_dropped == 0, (cid, report.event_counts())
        assert report.n_stored + report.n_quarantined == spec.frames_per_client
    # The forced mid-record disconnect must have caused reconnects.
    assert result.server.connections > spec.n_clients
    # Stored payloads are byte-identical to what the clients sent.
    stored = payload_contents(store)
    expected_stored = {
        t.frame_index: result.payloads[cid][t.frame_index]
        for cid, report in result.reports.items()
        for t in report.stored_traces
    }
    assert stored == expected_stored
    # Shard routing and per-shard byte accounting reconcile exactly with
    # the client-side traces.
    n_shards = store.n_shards
    expected_shard_bytes = [0] * n_shards
    for index, payload in expected_stored.items():
        expected_shard_bytes[index % n_shards] += len(payload)
    assert store.shard_payload_bytes() == expected_shard_bytes
    for k, shard in enumerate(store.shards):
        assert all(i % n_shards == k for i in shard.frame_indices())


def test_fleet_acceptance_under_faults(tmp_path):
    """4 clients x 25 frames through bit flips, disconnects, and ACK loss."""
    with ShardedFrameStore.files(3, tmp_path / "a") as store:
        result = run_fleet(ACCEPTANCE_SPEC, store)
        _check_acceptance(result, store)
        keys = result.accounting_keys()

    # Same spec, fresh store: fault handling replays identically even
    # though thread interleavings differ.
    with ShardedFrameStore.files(3, tmp_path / "b") as store_b:
        rerun = run_fleet(ACCEPTANCE_SPEC, store_b)
        assert rerun.accounting_keys() == keys


def test_fleet_concurrent_matches_serial_replay(tmp_path):
    """The serial oracle: one client at a time must produce byte-identical
    shard contents and equal per-client accounting."""
    with ShardedFrameStore.files(3, tmp_path / "conc") as store:
        concurrent = run_fleet(ACCEPTANCE_SPEC, store)
        _check_acceptance(concurrent, store)
        concurrent_contents = payload_contents(store)
        concurrent_keys = concurrent.accounting_keys()

    with ShardedFrameStore.files(3, tmp_path / "serial") as store_s:
        serial = run_fleet(ACCEPTANCE_SPEC, store_s, concurrent=False)
        _check_acceptance(serial, store_s)
        assert payload_contents(store_s) == concurrent_contents
        assert serial.accounting_keys() == concurrent_keys
