"""Vectorized kernels vs their pure-Python oracles.

The sparse-pipeline hot loops (polyline organization, radial reference
coding, plain radial deltas) were rewritten as batched numpy kernels; the
original loop implementations stay as ``*_py`` oracles.  These tests pin
the contract: identical outputs on every input — including the awkward
ones (empty groups, single-point polylines, duplicate ``(theta, phi)``
points whose tie-breaks must match bit for bit).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import DBGCParams
from repro.core.polyline import organize_polylines, organize_polylines_py
from repro.core.reference import (
    decode_radial,
    decode_radial_plain,
    decode_radial_plain_py,
    decode_radial_py,
    encode_radial,
    encode_radial_plain,
    encode_radial_plain_py,
    encode_radial_py,
)
from repro.core.sparse_codec import decode_sparse_group, encode_sparse_group
from repro.geometry.spherical import spherical_to_cartesian


def _assert_same_lines(fast, oracle):
    assert len(fast) == len(oracle)
    for a, b in zip(fast, oracle):
        assert np.array_equal(a, b)


def _cloud(theta, phi, r):
    theta = np.asarray(theta, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    r = np.asarray(r, dtype=np.float64)
    xyz = spherical_to_cartesian(np.column_stack([theta, phi, r]))
    return theta, phi, xyz


class TestOrganizeOracle:
    def test_empty(self):
        theta, phi, xyz = _cloud([], [], [])
        assert organize_polylines(theta, phi, xyz, 0.01, 0.01) == []
        assert organize_polylines_py(theta, phi, xyz, 0.01, 0.01) == []

    def test_single_point(self):
        theta, phi, xyz = _cloud([0.3], [1.6], [10.0])
        _assert_same_lines(
            organize_polylines(theta, phi, xyz, 0.01, 0.01),
            organize_polylines_py(theta, phi, xyz, 0.01, 0.01),
        )

    def test_all_duplicate_theta_phi(self):
        """Coincident angular coordinates force pure tie-break ordering."""
        n = 12
        theta, phi, xyz = _cloud(
            np.zeros(n), np.full(n, 1.6), 10.0 + np.arange(n) * 0.001
        )
        fast = organize_polylines(theta, phi, xyz, 0.01, 0.01)
        _assert_same_lines(fast, organize_polylines_py(theta, phi, xyz, 0.01, 0.01))

    def test_duplicate_points_identical_xyz(self):
        """Exactly repeated points: equal distances, index tie-break only."""
        theta, phi, xyz = _cloud(
            [0.0, 0.0, 0.01, 0.01, 0.02],
            [1.6, 1.6, 1.6, 1.6, 1.6],
            [10.0, 10.0, 10.0, 10.0, 10.0],
        )
        fast = organize_polylines(theta, phi, xyz, 0.01, 0.01)
        _assert_same_lines(fast, organize_polylines_py(theta, phi, xyz, 0.01, 0.01))

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_organize_property(self, data):
        """Random clouds on a coarse angular lattice (many exact duplicates)."""
        n = data.draw(st.integers(0, 40))
        theta_grid = data.draw(st.integers(1, 8))
        phi_grid = data.draw(st.integers(1, 4))
        theta = np.array(
            data.draw(
                st.lists(st.integers(0, theta_grid), min_size=n, max_size=n)
            ),
            dtype=np.float64,
        ) * 0.013
        phi = 1.5 + np.array(
            data.draw(st.lists(st.integers(0, phi_grid), min_size=n, max_size=n)),
            dtype=np.float64,
        ) * 0.009
        r = np.array(
            data.draw(
                st.lists(
                    st.floats(1.0, 50.0, allow_nan=False), min_size=n, max_size=n
                )
            )
        )
        theta, phi, xyz = _cloud(theta, phi, r)
        fast = organize_polylines(theta, phi, xyz, 0.013, 0.009)
        _assert_same_lines(fast, organize_polylines_py(theta, phi, xyz, 0.013, 0.009))
        if n:
            assert sorted(np.concatenate(fast).tolist()) == list(range(n))


def _radial_case(raw_lines, phis, th_phi, th_r):
    lines_theta = []
    lines_r = []
    for rs in raw_lines:
        lines_theta.append(np.arange(len(rs), dtype=np.int64))
        lines_r.append(np.asarray(rs, dtype=np.int64))
    line_phis = sorted(phis[: len(raw_lines)])
    return lines_theta, lines_r, line_phis, th_phi, th_r


class TestRadialOracle:
    def _check(self, lines_theta, lines_r, line_phis, th_phi, th_r):
        fast = encode_radial(lines_theta, lines_r, line_phis, th_phi, th_r)
        oracle = encode_radial_py(lines_theta, lines_r, line_phis, th_phi, th_r)
        assert np.array_equal(fast[0], oracle[0])
        assert list(fast[1]) == list(oracle[1])
        symbols = np.asarray(fast[1], dtype=np.int64)
        dec_fast = decode_radial(
            lines_theta, line_phis, fast[0], symbols, th_phi, th_r
        )
        dec_oracle = decode_radial_py(
            lines_theta, line_phis, fast[0], symbols, th_phi, th_r
        )
        _assert_same_lines(dec_fast, dec_oracle)
        _assert_same_lines(dec_fast, lines_r)

    def test_empty(self):
        self._check([], [], [], 2, 50)

    def test_single_point_lines(self):
        self._check(*_radial_case([[7], [9], [400]], [0, 1, 2], 2, 50))

    def test_zero_phi_window(self):
        """th_phi = 0: reference sets empty, every line heads fresh."""
        self._check(*_radial_case([[5, 6], [7, 8], [9, 10]], [0, 0, 0], 0, 10))

    def test_identical_lines(self):
        rs = [100, 100, 500, 500]
        self._check(*_radial_case([rs, rs, rs, rs], [0, 0, 1, 1], 3, 40))

    @given(
        st.lists(
            st.lists(st.integers(0, 3000), min_size=1, max_size=12),
            min_size=0,
            max_size=7,
        ),
        st.lists(st.integers(0, 12), min_size=7, max_size=7),
        st.integers(0, 8),
        st.integers(1, 200),
    )
    @settings(max_examples=80, deadline=None)
    def test_radial_property(self, raw_lines, phis, th_phi, th_r):
        self._check(*_radial_case(raw_lines, phis, th_phi, th_r))


class TestPlainRadialOracle:
    def test_empty(self):
        assert np.array_equal(encode_radial_plain([]), encode_radial_plain_py([]))
        assert decode_radial_plain(np.empty(0, np.int64), []) == []
        assert decode_radial_plain_py(np.empty(0, np.int64), []) == []

    @given(
        st.lists(
            st.lists(st.integers(-5000, 5000), min_size=1, max_size=12),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_plain_property(self, raw_lines):
        lines_r = [np.asarray(rs, dtype=np.int64) for rs in raw_lines]
        fast = encode_radial_plain(lines_r)
        assert np.array_equal(fast, encode_radial_plain_py(lines_r))
        lengths = [len(rs) for rs in raw_lines]
        dec_fast = decode_radial_plain(fast, lengths)
        _assert_same_lines(dec_fast, decode_radial_plain_py(fast, lengths))
        _assert_same_lines(dec_fast, lines_r)


class TestSparseGroupEdgeCases:
    """End-to-end byte behavior of the group codec on kernel edge cases."""

    def _roundtrip(self, xyz):
        params = DBGCParams()
        enc = encode_sparse_group(xyz, params, 0.01, 0.01)
        decoded = decode_sparse_group(enc.payload, params, 0.01, 0.01)
        coded = len(xyz) - len(enc.outlier_indices)
        assert len(decoded) == coded
        return enc, decoded

    def test_empty_group(self):
        enc, decoded = self._roundtrip(np.empty((0, 3)))
        assert len(enc.payload) >= 1
        assert len(decoded) == 0

    def test_all_single_point_polylines(self):
        """Isolated points are all outliers; the group payload is empty."""
        theta = np.array([0.0, 1.0, 2.0])
        phi = np.array([1.5, 1.7, 1.9])
        _t, _p, xyz = _cloud(theta, phi, [10.0, 20.0, 30.0])
        enc, decoded = self._roundtrip(xyz)
        assert len(enc.outlier_indices) == 3
        assert len(decoded) == 0

    def test_duplicate_theta_phi_points_roundtrip(self):
        theta = np.repeat(np.arange(6) * 0.01, 2)
        phi = np.full(12, 1.6)
        r = np.tile([10.0, 10.002], 6)
        _t, _p, xyz = _cloud(theta, phi, r)
        enc, decoded = self._roundtrip(xyz)
        # Every coded point must come back within the error bound; decoded
        # points arrive in stored polyline order (enc.order).
        params = DBGCParams()
        errors = np.linalg.norm(xyz[enc.order] - decoded, axis=1)
        assert np.all(errors <= np.sqrt(3.0) * params.q_xyz * (1 + 1e-9))
