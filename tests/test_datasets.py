"""Tests for the sensor model, scenes, simulator, and dataset registry."""

import numpy as np
import pytest

from repro.datasets import (
    SCENE_BUILDERS,
    SensorModel,
    generate_frame,
    generate_frames,
    simulate_frame,
)
from repro.datasets.scenes import Scene, city_scene
from repro.geometry.spherical import cartesian_to_spherical


class TestSensorModel:
    def test_hdl64e_defaults(self):
        s = SensorModel.velodyne_hdl64e()
        assert s.n_beams == 64
        assert s.frames_per_second == 10.0
        # Section 4.4: ~100K points -> ~9.6 Mbit/frame, 96 Mbit/s raw.
        assert s.raw_frame_bits() / 1e6 > 9.0
        assert s.raw_frame_bits() * s.frames_per_second / 1e6 > 90.0

    def test_phi_angles_span_fov(self):
        s = SensorModel.velodyne_hdl64e()
        lo, hi = s.phi_range
        assert lo == pytest.approx(np.deg2rad(88.0))
        assert hi == pytest.approx(np.deg2rad(114.8))
        assert len(s.phi_angles) == 64

    def test_angular_steps(self):
        s = SensorModel.velodyne_hdl64e()
        assert s.u_theta == pytest.approx(2 * np.pi / s.azimuth_steps)
        assert s.u_phi == pytest.approx((s.phi_range[1] - s.phi_range[0]) / 63)

    def test_scaled_preserves_aspect_ratio(self):
        s = SensorModel.velodyne_hdl64e().scaled(0.5)
        assert s.n_beams == 32
        assert s.azimuth_steps == round(2083 * 0.5)
        # The angular aspect ratio drives polyline extension; it must hold.
        full = SensorModel.velodyne_hdl64e()
        assert s.u_theta / s.u_phi == pytest.approx(
            full.u_theta / full.u_phi, rel=0.1
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorModel(n_beams=0)
        with pytest.raises(ValueError):
            SensorModel(dropout=1.0)
        with pytest.raises(ValueError):
            SensorModel(elevation_min_deg=5.0, elevation_max_deg=2.0)
        with pytest.raises(ValueError):
            SensorModel(r_min=0.0)


class TestScenes:
    @pytest.mark.parametrize("name", sorted(SCENE_BUILDERS))
    def test_builders_produce_objects(self, name):
        scene = SCENE_BUILDERS[name](seed=0)
        assert scene.n_objects > 5
        assert scene.boxes.shape[1] == 6
        assert scene.cylinders.shape[1] == 5

    @pytest.mark.parametrize("name", sorted(SCENE_BUILDERS))
    def test_sensor_not_inside_any_box(self, name):
        scene = SCENE_BUILDERS[name](seed=0)
        for box in scene.boxes:
            inside = box[0] <= 0 <= box[3] and box[1] <= 0 <= box[4]
            assert not inside, f"box {box} covers the sensor origin"

    def test_seed_controls_geometry(self):
        a, b = city_scene(seed=1), city_scene(seed=2)
        assert not np.array_equal(a.boxes, b.boxes)
        assert np.array_equal(city_scene(seed=1).boxes, a.boxes)


class TestSimulator:
    def test_deterministic_given_seed(self):
        scene = city_scene(0)
        sensor = SensorModel.benchmark_default()
        a = simulate_frame(scene, sensor, seed=7)
        b = simulate_frame(scene, sensor, seed=7)
        assert np.array_equal(a.xyz, b.xyz)

    def test_range_respected(self):
        pc = generate_frame("kitti-city", 0)
        sensor = SensorModel.benchmark_default()
        r = pc.radii()
        # Noise can push a hair past the bounds.
        assert r.min() >= sensor.r_min - 5 * sensor.range_noise_sigma
        assert r.max() <= sensor.r_max + 5 * sensor.range_noise_sigma

    def test_ground_plane_visible(self):
        pc = generate_frame("kitti-road", 0)
        sensor = SensorModel.benchmark_default()
        near_ground = np.abs(pc.z + sensor.height) < 0.1
        assert near_ground.mean() > 0.3  # roads are mostly ground returns

    def test_density_decreases_with_radius(self):
        """The paper's Figure 3b: density falls sharply over radius."""
        pc = generate_frame("kitti-city", 0)
        r = pc.radii()
        densities = []
        for radius in (5.0, 10.0, 20.0, 40.0):
            count = int((r <= radius).sum())
            densities.append(count / (4 / 3 * np.pi * radius**3))
        assert densities[0] > densities[1] > densities[2] > densities[3]
        assert densities[0] > 10 * densities[3]

    def test_spherical_regularity_with_jitter(self):
        """Calibrated-style cloud: near-regular but not an exact grid."""
        pc = generate_frame("kitti-campus", 0)
        sensor = SensorModel.benchmark_default()
        tpr = cartesian_to_spherical(pc.xyz)
        phi = np.sort(tpr[:, 1])
        # Points concentrate near the 64 beam angles...
        beam_angles = sensor.phi_angles
        nearest = np.min(np.abs(phi[:, None] - beam_angles[None, :]), axis=1)
        assert np.median(nearest) < sensor.u_phi
        # ...but do not sit exactly on them (jitter).
        assert np.median(nearest) > 0.0

    def test_no_dropout_no_noise_full_grid(self):
        sensor = SensorModel(
            azimuth_steps=64, dropout=0.0, range_noise_sigma=0.0, angle_jitter=0.0
        )
        scene = Scene("flat")
        pc = simulate_frame(scene, sensor, seed=0)
        # Only downward beams hit the ground within range.
        r = pc.radii()
        assert len(pc) > 0
        assert np.all(r <= sensor.r_max)
        assert np.allclose(pc.z, -sensor.height, atol=1e-9)

    def test_sensor_translation_shifts_scene(self):
        scene = city_scene(0)
        sensor = SensorModel(azimuth_steps=128, dropout=0.0, range_noise_sigma=0.0,
                             angle_jitter=0.0)
        a = simulate_frame(scene, sensor, seed=0, sensor_xy=(0.0, 0.0))
        b = simulate_frame(scene, sensor, seed=0, sensor_xy=(50.0, 0.0))
        assert not np.array_equal(a.xyz, b.xyz)


class TestRegistry:
    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            generate_frame("not-a-scene")

    def test_frames_differ_but_overlap(self):
        frames = list(generate_frames("kitti-campus", 2))
        assert len(frames) == 2
        assert len(frames[0]) > 1000
        assert not np.array_equal(frames[0].xyz[:100], frames[1].xyz[:100])

    @pytest.mark.parametrize("name", sorted(SCENE_BUILDERS))
    def test_all_scenes_generate(self, name):
        pc = generate_frame(name, 0)
        assert 5000 < len(pc) < 120000
