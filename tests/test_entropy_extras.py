"""Tests for Rice coding, bit packing, and Sprintz-style prediction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entropy.bitpacking import bitpack_decode, bitpack_encode
from repro.entropy.golomb import rice_decode, rice_encode, rice_parameter_for
from repro.entropy.predictive import (
    delta2_decode,
    delta2_encode,
    sprintz_decode,
    sprintz_encode,
)


class TestRice:
    def test_empty(self):
        assert rice_decode(rice_encode(np.array([], dtype=np.int64))).size == 0

    def test_roundtrip_small_signed(self):
        values = np.array([0, -1, 2, -3, 5, 0, 0, 1])
        assert np.array_equal(rice_decode(rice_encode(values)), values)

    def test_roundtrip_unsigned(self):
        values = np.array([10, 20, 0, 7])
        data = rice_encode(values, signed=False)
        assert np.array_equal(rice_decode(data), values)

    def test_parameter_tracks_mean(self):
        small = rice_parameter_for(np.array([0, 1, 1, 2], dtype=np.uint64))
        large = rice_parameter_for(np.array([1000, 2000, 1500], dtype=np.uint64))
        assert small < large

    def test_geometric_data_compact(self):
        rng = np.random.default_rng(0)
        values = rng.geometric(0.4, size=5000) - 1
        data = rice_encode(values, signed=False)
        # ~2-3 bits/value expected for p=0.4 geometric.
        assert len(data) < 5000 * 0.6

    def test_adaptive_k_absorbs_heavy_values(self):
        # The mean-based parameter keeps even huge values decodable
        # (the unary part stays bounded because k tracks the mean).
        values = np.array([0, 0, 0, 1 << 40])
        assert np.array_equal(rice_decode(rice_encode(values, signed=False)), values)

    @given(st.lists(st.integers(-10000, 10000), max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(rice_decode(rice_encode(arr)), arr)


class TestBitpack:
    def test_empty(self):
        assert bitpack_decode(bitpack_encode(np.array([], dtype=np.int64))).size == 0

    def test_roundtrip(self):
        values = np.array([0, -5, 1000, 3, -70000])
        assert np.array_equal(bitpack_decode(bitpack_encode(values)), values)

    def test_zero_block_is_tiny(self):
        values = np.zeros(1000, dtype=np.int64)
        assert len(bitpack_encode(values)) < 20

    def test_block_isolation_of_outliers(self):
        # An outlier only widens its own 128-value block.
        narrow = np.ones(1024, dtype=np.int64)
        spiked = narrow.copy()
        spiked[0] = 1 << 30
        assert len(bitpack_encode(spiked)) < len(bitpack_encode(narrow)) + 600

    def test_unsigned_mode(self):
        values = np.array([7, 0, 255])
        data = bitpack_encode(values, signed=False)
        assert np.array_equal(bitpack_decode(data), values)

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(bitpack_decode(bitpack_encode(arr)), arr)


class TestPredictive:
    def test_delta2_linear_ramp_is_sparse(self):
        values = np.arange(0, 1000, 7, dtype=np.int64)
        residuals = delta2_encode(values)
        assert np.all(residuals[2:] == 0)

    def test_delta2_roundtrip(self):
        rng = np.random.default_rng(1)
        values = np.cumsum(rng.integers(-5, 6, size=500))
        assert np.array_equal(delta2_decode(delta2_encode(values)), values)

    def test_short_sequences(self):
        for values in ([], [42], [42, -17]):
            arr = np.array(values, dtype=np.int64)
            assert np.array_equal(delta2_decode(delta2_encode(arr)), arr)

    @pytest.mark.parametrize("backend", ["bitpack", "rice"])
    def test_sprintz_roundtrip(self, backend):
        rng = np.random.default_rng(2)
        # Smooth trajectory + noise: the Sprintz sweet spot.
        values = (np.cumsum(np.cumsum(rng.integers(-2, 3, size=400)))).astype(np.int64)
        data = sprintz_encode(values, backend=backend)
        assert np.array_equal(sprintz_decode(data), values)

    def test_sprintz_beats_plain_bitpack_on_smooth_data(self):
        t = np.arange(2000)
        values = (100 * np.sin(t / 50) + t).astype(np.int64)
        plain = bitpack_encode(values)
        predicted = sprintz_encode(values)
        assert len(predicted) < len(plain) / 2

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            sprintz_encode(np.array([1]), backend="zstd")
        with pytest.raises(ValueError):
            sprintz_decode(b"\x09abc")
        with pytest.raises(ValueError):
            sprintz_decode(b"")

    @given(st.lists(st.integers(-(2**30), 2**30), max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_sprintz_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(sprintz_decode(sprintz_encode(arr)), arr)
