"""Tests for point cloud file I/O."""

import numpy as np
import pytest

from repro.datasets import (
    load_kitti_bin,
    load_npz,
    load_ply,
    save_kitti_bin,
    save_npz,
    save_ply,
)
from repro.geometry import PointCloud


@pytest.fixture
def cloud():
    rng = np.random.default_rng(0)
    return PointCloud(rng.normal(size=(123, 3)) * 40.0)


class TestKittiBin:
    def test_roundtrip(self, cloud, tmp_path):
        path = tmp_path / "frame.bin"
        save_kitti_bin(cloud, path)
        loaded, intensity = load_kitti_bin(path)
        assert len(loaded) == len(cloud)
        # float32 storage loses some precision
        assert np.allclose(loaded.xyz, cloud.xyz, atol=1e-4)
        assert np.all(intensity == 0.0)

    def test_intensity_roundtrip(self, cloud, tmp_path):
        path = tmp_path / "frame.bin"
        intensity = np.linspace(0, 1, len(cloud)).astype(np.float32)
        save_kitti_bin(cloud, path, intensity=intensity)
        _, loaded = load_kitti_bin(path)
        assert np.allclose(loaded, intensity)

    def test_intensity_length_checked(self, cloud, tmp_path):
        with pytest.raises(ValueError):
            save_kitti_bin(cloud, tmp_path / "x.bin", intensity=np.zeros(3))

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"\x00" * 13)
        with pytest.raises(ValueError):
            load_kitti_bin(path)


class TestPly:
    def test_roundtrip(self, cloud, tmp_path):
        path = tmp_path / "frame.ply"
        save_ply(cloud, path)
        loaded = load_ply(path)
        assert np.allclose(loaded.xyz, cloud.xyz, rtol=1e-6)

    def test_empty_cloud(self, tmp_path):
        path = tmp_path / "empty.ply"
        save_ply(PointCloud.empty(), path)
        assert len(load_ply(path)) == 0

    def test_single_point(self, tmp_path):
        path = tmp_path / "one.ply"
        save_ply(PointCloud(np.array([[1.0, 2.0, 3.0]])), path)
        assert np.allclose(load_ply(path).xyz, [[1.0, 2.0, 3.0]])

    def test_not_ply_rejected(self, tmp_path):
        path = tmp_path / "bad.ply"
        path.write_text("obj\n")
        with pytest.raises(ValueError):
            load_ply(path)

    def test_binary_ply_rejected(self, tmp_path):
        path = tmp_path / "bin.ply"
        path.write_text(
            "ply\nformat binary_little_endian 1.0\nelement vertex 0\nend_header\n"
        )
        with pytest.raises(ValueError):
            load_ply(path)


class TestNpz:
    def test_roundtrip_lossless(self, cloud, tmp_path):
        path = tmp_path / "frame.npz"
        save_npz(cloud, path)
        assert np.array_equal(load_npz(path).xyz, cloud.xyz)
