"""Tests for the sparse coordinate codec (Steps 1-9)."""

import numpy as np
import pytest

from repro.core.params import DBGCParams
from repro.core.sparse_codec import decode_sparse_group, encode_sparse_group
from repro.geometry.spherical import spherical_to_cartesian

U_THETA = 0.012
U_PHI = 0.0075


def _rings_cloud(n_rings=8, n_per_ring=60, r=15.0, seed=0):
    """A scan-like patch: n_rings rings of n_per_ring samples with noise."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n_rings):
        phi = 1.6 + i * U_PHI + rng.normal(0, 0.05 * U_PHI, n_per_ring)
        theta = np.arange(n_per_ring) * U_THETA + rng.normal(
            0, 0.05 * U_THETA, n_per_ring
        )
        radius = r + rng.normal(0, 0.01, n_per_ring)
        rows.append(np.column_stack([theta, phi, radius]))
    tpr = np.vstack(rows)
    return spherical_to_cartesian(tpr)


class TestRoundtrip:
    def test_empty_group(self):
        params = DBGCParams()
        enc = encode_sparse_group(np.empty((0, 3)), params, U_THETA, U_PHI)
        assert decode_sparse_group(enc.payload, params, U_THETA, U_PHI).shape == (0, 3)

    def test_all_outliers_group(self):
        params = DBGCParams()
        xyz = np.array([[10.0, 0, 0], [0, 20.0, 0], [0, 0, 30.0]])
        enc = encode_sparse_group(xyz, params, U_THETA, U_PHI)
        assert len(enc.outlier_indices) == 3
        assert decode_sparse_group(enc.payload, params, U_THETA, U_PHI).shape == (0, 3)

    def test_scan_patch_error_bound(self):
        params = DBGCParams(q_xyz=0.02)
        xyz = _rings_cloud()
        enc = encode_sparse_group(xyz, params, U_THETA, U_PHI)
        decoded = decode_sparse_group(enc.payload, params, U_THETA, U_PHI)
        coded = xyz[enc.order]
        assert decoded.shape == coded.shape
        err = np.linalg.norm(decoded - coded, axis=1)
        assert err.max() <= np.sqrt(3) * params.q_xyz * (1 + 1e-6)

    def test_strict_mode_meets_per_dim_bound(self):
        params = DBGCParams(q_xyz=0.02, strict_cartesian=True)
        xyz = _rings_cloud()
        enc = encode_sparse_group(xyz, params, U_THETA, U_PHI)
        decoded = decode_sparse_group(enc.payload, params, U_THETA, U_PHI)
        err = np.abs(decoded - xyz[enc.order])
        assert err.max() <= params.q_xyz * (1 + 1e-6)

    def test_order_covers_non_outliers(self):
        params = DBGCParams()
        xyz = _rings_cloud(n_rings=3, n_per_ring=20)
        enc = encode_sparse_group(xyz, params, U_THETA, U_PHI)
        combined = sorted(enc.order.tolist() + enc.outlier_indices.tolist())
        assert combined == list(range(len(xyz)))

    def test_compresses_scan_patch_well(self):
        params = DBGCParams(q_xyz=0.02)
        xyz = _rings_cloud(n_rings=16, n_per_ring=120)
        enc = encode_sparse_group(xyz, params, U_THETA, U_PHI)
        raw = len(enc.order) * 12
        assert len(enc.payload) < raw / 4  # > 4x on clean scan structure

    def test_stream_sizes_reported(self):
        params = DBGCParams()
        enc = encode_sparse_group(_rings_cloud(), params, U_THETA, U_PHI)
        for key in ("lengths", "d1_heads", "d1_tails", "d2_heads", "d2_tails", "d3"):
            assert key in enc.stream_sizes
        assert sum(enc.stream_sizes.values()) <= len(enc.payload)

    def test_timings_reported(self):
        enc = encode_sparse_group(_rings_cloud(), DBGCParams(), U_THETA, U_PHI)
        assert set(enc.timings) == {"cor", "org", "spa"}


class TestAblationModes:
    def test_no_radial_reference_roundtrip(self):
        params = DBGCParams(radial_reference=False)
        xyz = _rings_cloud()
        enc = encode_sparse_group(xyz, params, U_THETA, U_PHI)
        decoded = decode_sparse_group(enc.payload, params, U_THETA, U_PHI)
        err = np.linalg.norm(decoded - xyz[enc.order], axis=1)
        assert err.max() <= np.sqrt(3) * params.q_xyz * (1 + 1e-6)

    def test_cartesian_mode_roundtrip(self):
        params = DBGCParams(spherical_conversion=False)
        xyz = _rings_cloud()
        enc = encode_sparse_group(xyz, params, U_THETA, U_PHI)
        decoded = decode_sparse_group(enc.payload, params, U_THETA, U_PHI)
        err = np.abs(decoded - xyz[enc.order])
        assert err.max() <= params.q_xyz * (1 + 1e-9)

    def test_spherical_beats_cartesian(self):
        """Figure 11's -Conversion: spherical streams are much smaller."""
        xyz = _rings_cloud(n_rings=16, n_per_ring=120)
        sph = encode_sparse_group(xyz, DBGCParams(), U_THETA, U_PHI)
        cart = encode_sparse_group(
            xyz, DBGCParams(spherical_conversion=False), U_THETA, U_PHI
        )
        assert len(sph.payload) < len(cart.payload)

    def test_radial_reference_helps_on_edges(self):
        """Figure 11's -Radial: aligned radial jumps favor the reference."""
        rng = np.random.default_rng(3)
        rows = []
        for i in range(12):
            phi = 1.6 + i * U_PHI
            theta = np.arange(100) * U_THETA
            radius = np.where(theta < 50 * U_THETA, 10.0, 40.0) + rng.normal(
                0, 0.01, 100
            )
            rows.append(np.column_stack([theta, np.full(100, phi), radius]))
        xyz = spherical_to_cartesian(np.vstack(rows))
        with_ref = encode_sparse_group(xyz, DBGCParams(), U_THETA, U_PHI)
        without = encode_sparse_group(
            xyz, DBGCParams(radial_reference=False), U_THETA, U_PHI
        )
        assert with_ref.stream_sizes["d3"] <= without.stream_sizes["d3"]


class TestCorruption:
    def test_length_mismatch_detected(self):
        params = DBGCParams()
        enc = encode_sparse_group(_rings_cloud(3, 20), params, U_THETA, U_PHI)
        corrupted = bytearray(enc.payload)
        corrupted[0] ^= 0x01  # flip the point count
        with pytest.raises((ValueError, IndexError, StopIteration)):
            decode_sparse_group(bytes(corrupted), params, U_THETA, U_PHI)
