"""The crash-safety tier: journals, recovery, replication, backpressure.

Process faults, not channel faults: a server killed mid-ingest must come
back answering retransmissions from its durable receipt journal, stores
must roll torn writes back on open, replicated shards must scrub
themselves back to health, and an overloaded server must push back on
its clients via the BUSY ACK hint.  The acceptance bar is the seeded
kill-and-restart drill: a concurrent fleet with the server killed and
restarted mid-ingest must land byte-identical to an uninterrupted serial
replay, with a clean scrub.
"""

from __future__ import annotations

import os
import socket
import sqlite3
import threading

import pytest

from repro.geometry import PointCloud
from repro.system import (
    DbgcClient,
    DbgcServer,
    FaultSpec,
    FileFrameStore,
    FleetSpec,
    ReceiptJournal,
    ServerKillSwitch,
    ShardedFrameStore,
    SqliteFrameStore,
    atomic_write_bytes,
    run_fleet,
)
from repro.system.protocol import (
    ACK_DUPLICATE,
    ACK_FLAG_BUSY,
    ACK_QUARANTINED,
    ACK_STATUS_MASK,
    ACK_STORED,
    TYPE_ACK,
    TYPE_END,
    TYPE_FRAME,
    TYPE_HELLO,
    encode_record,
    read_record,
)

pytestmark = pytest.mark.timeout(180)


def _send_frame(sock: socket.socket, index: int, payload: bytes):
    sock.sendall(encode_record(TYPE_FRAME, index, payload))
    ack = read_record(sock)
    assert ack.type == TYPE_ACK and ack.frame_index == index
    return ack


# -- receipt journal ---------------------------------------------------------


def test_journal_roundtrip_and_replay(tmp_path):
    path = tmp_path / "receipts.jsonl"
    with ReceiptJournal(path) as journal:
        journal.append_frame("stream-a", 0, 111)
        journal.append_frame("stream-a", 1, 222)
        journal.append_frame(7, 5, 333)
        journal.append_end("stream-a")
    replay = ReceiptJournal(path).replay()
    assert replay.frames == (("stream-a", 0, 111), ("stream-a", 1, 222), (7, 5, 333))
    assert replay.ended == ("stream-a",)
    assert replay.torn == 0
    assert replay.seen_by_stream() == {"stream-a": {0, 1}, 7: {5}}


def test_journal_torn_tail_stops_replay(tmp_path):
    path = tmp_path / "receipts.jsonl"
    with ReceiptJournal(path) as journal:
        for i in range(3):
            journal.append_frame("s", i, i * 10)
    # Tear the final record the way a mid-write kill would: drop its tail.
    lines = path.read_bytes().splitlines(keepends=True)
    path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
    replay = ReceiptJournal(path).replay()
    assert replay.torn == 1
    assert replay.frames == (("s", 0, 0), ("s", 1, 10))
    # A record with an intact line but a wrong CRC is equally torn.
    path.write_bytes(b"".join(lines[:-1]) + lines[-1].replace(b'"idx":2', b'"idx":9'))
    replay = ReceiptJournal(path).replay()
    assert replay.torn == 1 and len(replay.frames) == 2


def test_journal_batching_drain_and_eager_end(tmp_path):
    path = tmp_path / "receipts.jsonl"
    journal = ReceiptJournal(path, batch=4)
    journal.append_frame("s", 0, 1)
    journal.append_frame("s", 1, 2)
    # Below the batch threshold nothing has hit the file yet: this is
    # exactly the kill-loss window the server's idempotent re-store
    # tolerates.
    assert path.read_bytes() == b""
    journal.drain()
    assert len(ReceiptJournal(path).replay().frames) == 2
    # ENDs flush eagerly, carrying any batched frames with them.
    journal.append_frame("s", 2, 3)
    journal.append_end("s")
    replay = ReceiptJournal(path).replay()
    assert len(replay.frames) == 3 and replay.ended == ("s",)
    journal.close()
    journal.close()  # idempotent
    with pytest.raises(ValueError):
        journal.append_frame("s", 3, 4)
    with pytest.raises(ValueError):
        ReceiptJournal(path, batch=0)


def test_journal_rotates_and_replays_across_segments(tmp_path):
    path = tmp_path / "receipts.jsonl"
    journal = ReceiptJournal(path, batch=1, rotate_bytes=200)
    for i in range(12):
        journal.append_frame("live", i, i * 7)
    journal.drain()
    assert journal.rotations >= 1
    sealed = journal.segments()
    assert sealed and all(seg.name.startswith("receipts.jsonl.") for seg in sealed)
    # Replay walks sealed segments oldest-first, then the active file —
    # the full history comes back exactly as if never rotated.
    replay = journal.replay()
    assert replay.frames == tuple(("live", i, i * 7) for i in range(12))
    assert replay.torn == 0
    journal.close()
    # A reopened journal resumes the segment sequence instead of
    # clobbering sealed files: the full history keeps replaying.
    reopened = ReceiptJournal(path, batch=1, rotate_bytes=200)
    for i in range(12, 18):
        reopened.append_frame("live", i, i * 7)
    reopened.drain()
    assert reopened.rotations >= 1
    assert reopened.replay().seen_by_stream() == {"live": set(range(18))}
    reopened.close()
    with pytest.raises(ValueError):
        ReceiptJournal(tmp_path / "bad.jsonl", rotate_bytes=0)


def test_journal_compaction_drops_fully_ended_streams(tmp_path):
    path = tmp_path / "receipts.jsonl"
    journal = ReceiptJournal(path, batch=1, rotate_bytes=150)
    for i in range(8):
        journal.append_frame("done", i, i)
        journal.append_frame("live", i, i)
    journal.append_end("done")
    # Force one more rotation so compaction sees the END in a sealed
    # segment and can drop the ended stream's frame records.
    for i in range(8, 16):
        journal.append_frame("live", i, i)
    journal.drain()
    assert journal.compacted_frames > 0
    assert len(journal.segments()) == 1  # merged into one sealed segment
    replay = journal.replay()
    # The END survives (restart must still answer the ended stream's
    # late END retransmissions), its frames are gone, and the live
    # stream keeps every receipt.
    assert "done" in replay.ended
    assert "done" not in replay.seen_by_stream()
    assert replay.seen_by_stream()["live"] == set(range(16))
    journal.close()


def test_journal_rotation_keeps_torn_tail_detection(tmp_path):
    path = tmp_path / "receipts.jsonl"
    with ReceiptJournal(path, batch=1, rotate_bytes=120) as journal:
        for i in range(10):
            journal.append_frame("s", i, i)
    assert ReceiptJournal(path).segments()
    # Tear the active file's last record: only that record is lost;
    # every sealed segment still replays in full.
    data = path.read_bytes()
    assert data, "active segment should hold the newest records"
    path.write_bytes(data[:-4])
    replay = ReceiptJournal(path).replay()
    assert replay.torn == 1
    assert replay.seen_by_stream()["s"] == set(range(9))


def test_server_recovers_from_rotated_journal(tmp_path):
    journal_path = tmp_path / "receipts.jsonl"
    payload = b"\x55\xaa" * 60
    with SqliteFrameStore(tmp_path / "frames.sqlite") as store:
        server = DbgcServer(
            store,
            mode="store",
            receipt_journal=journal_path,
            journal_rotate_bytes=128,
        ).start()
        with socket.create_connection(server.address) as sock:
            sock.sendall(encode_record(TYPE_HELLO, 3))
            for i in range(10):
                assert _send_frame(sock, i, payload).flags & ACK_STATUS_MASK == (
                    ACK_STORED
                )
        server.close()
        assert list(journal_path.parent.glob("receipts.jsonl.*"))

        # The restarted server replays receipts from every segment: all
        # ten retransmissions answer DUPLICATE, nothing is re-stored.
        restarted = DbgcServer(
            store,
            mode="store",
            receipt_journal=journal_path,
            journal_rotate_bytes=128,
        ).start()
        with socket.create_connection(restarted.address) as sock:
            sock.sendall(encode_record(TYPE_HELLO, 3))
            for i in range(10):
                assert _send_frame(sock, i, payload).flags & ACK_STATUS_MASK == (
                    ACK_DUPLICATE
                )
        restarted.close()
        assert store.frame_indices() == list(range(10))


def test_atomic_write_commits_or_leaves_only_tmp(tmp_path):
    target = tmp_path / "frame.bin"
    atomic_write_bytes(target, b"payload", fsync=True)
    assert target.read_bytes() == b"payload"
    assert list(tmp_path.glob("*.tmp")) == []


# -- store recovery ----------------------------------------------------------


def test_file_store_recover_rolls_back_torn_writes(tmp_path):
    store = FileFrameStore(tmp_path)
    store.put_payload(1, b"\x01" * 32)
    # Simulate a crash mid-commit: a tmp orphan and a widowed CRC sidecar.
    (tmp_path / "frame_000002.dbgc.tmp").write_bytes(b"half a frame")
    (tmp_path / "frame_000003.crc").write_text("deadbeef\n")
    reopened = FileFrameStore(tmp_path)
    assert reopened.last_recovery.rolled_back == 1
    assert reopened.last_recovery.orphans_removed == 1
    assert not (tmp_path / "frame_000002.dbgc.tmp").exists()
    assert not (tmp_path / "frame_000003.crc").exists()
    # The committed frame survived, sidecar intact.
    assert reopened.frame_indices() == [1]
    import zlib

    assert reopened.payload_crc(1) == zlib.crc32(b"\x01" * 32)


def test_sqlite_recover_replays_committed_and_rolls_back_torn(tmp_path):
    import zlib

    db = tmp_path / "frames.sqlite"
    payload = b"\x42" * 64
    with SqliteFrameStore(db) as store:
        store.put_payload(5, payload)
    # Craft the two crash shapes by hand: an intent whose frame row
    # landed (only the clearance was lost) and an intent whose write
    # never committed.
    conn = sqlite3.connect(db)
    conn.execute(
        "INSERT INTO journal VALUES (?, ?, ?)", (5, "payload", zlib.crc32(payload))
    )
    conn.execute("INSERT INTO journal VALUES (?, ?, ?)", (9, "payload", 12345))
    conn.commit()
    conn.close()
    reopened = SqliteFrameStore(db)
    report = reopened.last_recovery
    assert report.replayed == 1 and report.rolled_back == 1
    assert reopened.frame_indices() == [5]
    assert reopened.get_payload(5) == payload
    # The journal table is clear again.
    conn = sqlite3.connect(db)
    assert conn.execute("SELECT COUNT(*) FROM journal").fetchone()[0] == 0
    conn.close()
    reopened.close()


def test_sqlite_cross_kind_conflict_under_threads():
    cloud = PointCloud([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
    with SqliteFrameStore() as store:
        errors, barrier = [], threading.Barrier(8)

        def writer(k: int):
            barrier.wait()
            try:
                if k % 2:
                    store.put_payload(0, b"payload-bytes")
                else:
                    store.put_cloud(0, cloud)
            except ValueError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one kind won the index; every cross-kind writer raised,
        # every same-kind overwrite was an idempotent no-op.
        assert len(store) == 1
        assert len(errors) == 4
        assert all("already stored" in str(e) for e in errors)


# -- replication + scrub -----------------------------------------------------


def test_replication_reads_fall_back_past_corruption(tmp_path):
    with ShardedFrameStore.files(3, tmp_path, replication=2) as store:
        payload = b"replicated-payload" * 10
        store.put_payload(4, payload)
        assert store.replica_shards(4) == [1, 2]
        # Flip bytes in the primary copy on disk; the read must fall back
        # to the intact replica instead of returning garbage.
        primary = tmp_path / "shard_1" / "frame_000004.dbgc"
        primary.write_bytes(b"X" * len(payload))
        assert store.get_payload(4) == payload


def test_scrub_repairs_corrupt_and_missing_replicas(tmp_path):
    with ShardedFrameStore.files(3, tmp_path, replication=2) as store:
        for i in range(6):
            store.put_payload(i, bytes([i]) * 100)
        (tmp_path / "shard_1" / "frame_000000.dbgc").write_bytes(b"garbage")
        (tmp_path / "shard_2" / "frame_000001.dbgc").unlink()
        report = store.scrub()
        assert report.frames_checked == 6
        assert report.n_corrupt == 1 and report.n_missing == 1
        assert report.n_repaired == 2 and report.n_unrepaired == 0
        assert store.get_payload(0) == bytes([0]) * 100
        # A second pass finds a fully healthy store: 6 frames x 2 copies.
        second = store.scrub()
        assert second.clean and second.copies_healthy == 12


def test_scrub_without_repair_reports_only(tmp_path):
    with ShardedFrameStore.files(2, tmp_path, replication=2) as store:
        store.put_payload(0, b"A" * 50)
        (tmp_path / "shard_0" / "frame_000000.dbgc").write_bytes(b"B" * 50)
        report = store.scrub(repair=False)
        assert report.n_corrupt == 1 and report.n_repaired == 0
        assert not report.clean
        # Still broken on the next audit — nothing was touched.
        assert not store.scrub(repair=False).clean


def test_sharded_byte_accounting_multithreaded():
    # 2 shards, 8 writer threads: several threads land on each shard
    # concurrently, and the per-shard byte totals must still reconcile.
    with ShardedFrameStore.sqlite(2, replication=2) as store:
        barrier = threading.Barrier(8)

        def writer(k: int):
            barrier.wait()
            for i in range(10):
                index = k * 10 + i
                store.put_payload(index, b"\xab" * (index + 1))

        threads = [threading.Thread(target=writer, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        n = 80
        logical = n * (n + 1) // 2
        per_shard = store.shard_payload_bytes()
        # Every frame is on both shards (replication=2 over 2 shards).
        assert per_shard == [logical, logical]
        assert store.total_payload_bytes() == 2 * logical
        assert store.frame_indices() == list(range(n))


# -- close() lifecycle -------------------------------------------------------


def test_close_is_idempotent_and_safe_before_connect(tmp_path):
    # A client that never finished __init__ (connect refused) must still
    # close cleanly — close() can run on a half-built instance.
    object.__new__(DbgcClient).close()
    for store in (
        FileFrameStore(tmp_path / "files"),
        SqliteFrameStore(),
        ShardedFrameStore.sqlite(2),
    ):
        store.close()
        store.close()
    server = DbgcServer(SqliteFrameStore(), mode="store").start()
    with DbgcClient(server.address, stream_id=1) as client:
        client.send_payload(0, b"once")
    client.close()  # second close after the context manager: no-op
    server.close()
    server.close()


# -- server restart recovery -------------------------------------------------


def test_restarted_server_answers_duplicate_from_journal(tmp_path):
    journal = tmp_path / "receipts.jsonl"
    payload = b"\x10\x20\x30" * 40
    with SqliteFrameStore(tmp_path / "frames.sqlite") as store:
        server = DbgcServer(
            store, mode="store", receipt_journal=journal
        ).start()
        with socket.create_connection(server.address) as sock:
            sock.sendall(encode_record(TYPE_HELLO, 5))
            ack = _send_frame(sock, 3, payload)
            assert ack.flags & ACK_STATUS_MASK == ACK_STORED
        server.close()  # flushes the owned journal

        # A brand-new server over the same journal: the retransmission
        # must be recognized without re-storing, new frames still land.
        restarted = DbgcServer(
            store, mode="store", receipt_journal=journal
        ).start()
        assert any(kind == "recover" for kind, _ in restarted.events)
        with socket.create_connection(restarted.address) as sock:
            sock.sendall(encode_record(TYPE_HELLO, 5))
            assert _send_frame(sock, 3, payload).flags & ACK_STATUS_MASK == (
                ACK_DUPLICATE
            )
            assert _send_frame(sock, 4, b"fresh").flags & ACK_STATUS_MASK == (
                ACK_STORED
            )
            sock.sendall(encode_record(TYPE_END, 0))
            read_record(sock)
        restarted.close()
        assert store.frame_indices() == [3, 4]
        assert store.get_payload(3) == payload


def test_client_resumes_across_server_restart(tmp_path):
    journal = tmp_path / "receipts.jsonl"
    payloads = {i: bytes([i + 1]) * 200 for i in range(3)}
    with SqliteFrameStore(tmp_path / "frames.sqlite") as store:
        server = DbgcServer(store, mode="store", receipt_journal=journal).start()
        client = DbgcClient(
            server.address,
            stream_id=9,
            ack_timeout=1.0,
            backoff_base=0.05,
            max_retries=10,
        )
        client.send_payload(0, payloads[0])
        client.send_payload(1, payloads[1])
        port = server.address[1]
        server.close()
        # Same port, same store, same journal: the client's reconnect
        # path must carry it across the restart without losing a frame.
        restarted = DbgcServer(
            store, mode="store", port=port, receipt_journal=journal
        ).start()
        client.send_payload(1, payloads[1])  # retransmit -> DUPLICATE
        client.send_payload(2, payloads[2])
        client.close()
        restarted.close()
        assert store.frame_indices() == [0, 1, 2]
        for i, expected in payloads.items():
            assert store.get_payload(i) == expected
        assert client.report.n_stored == 4  # the duplicate ACKs as stored
        with server.lock:
            pass  # the dead server's lock is still a plain, free lock


# -- kill switch + acceptance drill ------------------------------------------


def test_kill_switch_validation_and_fleet_guard():
    with pytest.raises(ValueError):
        ServerKillSwitch(0)
    with pytest.raises(ValueError, match="receipt_journal"):
        run_fleet(FleetSpec(n_clients=1, frames_per_client=2), SqliteFrameStore(),
                  kill_after_frames=1)


DRILL_CLIENTS = int(
    os.environ.get("DBGC_FLEET_CLIENTS", "2").split(",")[-1] or 2
)


def test_fleet_kill_and_restart_drill(tmp_path):
    """The tier's acceptance bar (see ROADMAP): kill mid-ingest, restart
    on the same store+journal, lose nothing, scrub clean."""
    spec = FleetSpec(
        n_clients=DRILL_CLIENTS,
        frames_per_client=25,
        seed=7,
        fault_spec=FaultSpec(ack_drop_rate=0.05),
        ack_timeout=1.0,
        backoff_base=0.01,
        max_retries=8,
    )
    total = spec.n_clients * spec.frames_per_client
    kill_after = total // 2
    with ShardedFrameStore.sqlite(3, replication=2) as store:
        result = run_fleet(
            spec,
            store,
            receipt_journal=tmp_path / "receipts.jsonl",
            kill_after_frames=kill_after,
        )
        assert result.restarts >= 1
        assert result.n_stored == total
        assert result.n_dropped == 0 and result.n_quarantined == 0
        # The restarted server recovered durable receipts (the batched
        # journal guarantees at least the drained prefix).
        assert any(kind == "recover" for kind, _ in result.server.events)
        # Byte-identity with an uninterrupted serial replay of the same
        # spec: the process fault must be invisible in the stored data.
        with ShardedFrameStore.sqlite(3, replication=2) as oracle:
            run_fleet(spec, oracle, concurrent=False)
            assert store.frame_indices() == oracle.frame_indices()
            for index in oracle.frame_indices():
                assert store.get_payload(index) == oracle.get_payload(index)
        # Every replica of every frame is healthy: exactly-once storage,
        # no torn copies left behind by the kill.
        report = store.scrub()
        assert report.clean
        assert report.frames_checked == total
        assert report.copies_healthy == 2 * total
        # Second drill: corrupt one replica of the drilled store and
        # scrub it back to health.
        victim = store.shards[0].frame_indices()[0]
        store.shards[0].put_payload(victim, b"bitrot")
        repair = store.scrub()
        assert repair.n_repaired >= 1 and repair.n_unrepaired == 0
        assert store.scrub().clean


# -- backpressure ------------------------------------------------------------


def test_busy_hint_rides_the_ack_status_nibble():
    with SqliteFrameStore() as store:
        # threshold 0.0: any nonzero store-latency EWMA flags BUSY, so
        # every ACK after the first carries the hint.
        server = DbgcServer(store, mode="store", busy_threshold_s=0.0).start()
        with socket.create_connection(server.address) as sock:
            sock.sendall(encode_record(TYPE_HELLO, 2))
            _send_frame(sock, 0, b"warm-up")
            ack = _send_frame(sock, 1, b"now the server is busy")
            assert ack.flags & ACK_FLAG_BUSY
            assert ack.flags & ACK_STATUS_MASK == ACK_STORED
            # Status survives alongside the hint for every outcome.
            ack = _send_frame(sock, 1, b"now the server is busy")
            assert ack.flags & ACK_FLAG_BUSY
            assert ack.flags & ACK_STATUS_MASK == ACK_DUPLICATE
        server.close()
        assert server.busy_hints >= 2


def test_client_records_and_obeys_busy_hints():
    from repro import observability as obs

    with SqliteFrameStore() as store:
        server = DbgcServer(store, mode="store", busy_threshold_s=0.0).start()
        with obs.recording() as recorder:
            with DbgcClient(
                server.address, stream_id=3, busy_backoff_s=0.02
            ) as client:
                for i in range(5):
                    client.send_payload(i, bytes(50))
        server.close()
        # close() drained the queue, so every ACK (and its hint) landed.
        assert client._busy_until > 0.0  # a backoff window was set
        assert client.report.busy_hints >= 3
        metrics = obs.report_dict(recorder)
        assert metrics["counters"]["transport.busy_hints"] >= 3
        assert metrics["counters"]["server.busy_hints"] >= 3
        assert len(store) == 5  # backpressure slows, never drops


def test_quarantine_is_bounded_with_oldest_evicted():
    from repro import observability as obs

    with SqliteFrameStore() as store:
        server = DbgcServer(store, mode="decompress", max_quarantine=2).start()
        with obs.recording() as recorder:
            with socket.create_connection(server.address) as sock:
                sock.sendall(encode_record(TYPE_HELLO, 1))
                for i in range(5):
                    ack = _send_frame(sock, i, b"not a dbgc payload %d" % i)
                    assert ack.flags & ACK_STATUS_MASK == ACK_QUARANTINED
        server.close()
        assert len(server.quarantine) == 2
        # Oldest out first: only the newest rejects are retained.
        assert [q.frame_index for q in server.quarantine] == [3, 4]
        assert server.quarantine_evicted == 3
        metrics = obs.report_dict(recorder)
        assert metrics["counters"]["server.quarantine.evicted"] == 3
        assert len(store) == 0
