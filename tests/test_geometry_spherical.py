"""Unit and property tests for repro.geometry.spherical."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.spherical import (
    cartesian_to_spherical,
    spherical_error_bounds,
    spherical_to_cartesian,
)


class TestConversion:
    def test_axes(self):
        xyz = np.array(
            [
                [1.0, 0.0, 0.0],  # +x: theta=0, phi=pi/2
                [0.0, 1.0, 0.0],  # +y: theta=pi/2, phi=pi/2
                [0.0, 0.0, 1.0],  # +z: phi=0
                [0.0, 0.0, -1.0],  # -z: phi=pi
            ]
        )
        tpr = cartesian_to_spherical(xyz)
        assert tpr[0] == pytest.approx([0.0, np.pi / 2, 1.0])
        assert tpr[1] == pytest.approx([np.pi / 2, np.pi / 2, 1.0])
        assert tpr[2] == pytest.approx([0.0, 0.0, 1.0])
        assert tpr[3, 1] == pytest.approx(np.pi)

    def test_theta_range_is_0_to_2pi(self):
        xyz = np.array([[1.0, -1.0, 0.0], [-1.0, -1.0, 0.0]])
        tpr = cartesian_to_spherical(xyz)
        assert np.all(tpr[:, 0] >= 0.0)
        assert np.all(tpr[:, 0] < 2 * np.pi)
        assert tpr[0, 0] == pytest.approx(7 * np.pi / 4)

    def test_origin_point(self):
        tpr = cartesian_to_spherical(np.zeros((1, 3)))
        assert np.allclose(tpr, 0.0)

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        xyz = rng.normal(size=(500, 3)) * 30.0
        back = spherical_to_cartesian(cartesian_to_spherical(xyz))
        assert np.allclose(back, xyz, atol=1e-9)

    def test_roundtrip_with_origin(self):
        rng = np.random.default_rng(1)
        xyz = rng.normal(size=(100, 3))
        origin = np.array([5.0, -2.0, 1.5])
        tpr = cartesian_to_spherical(xyz, origin=origin)
        back = spherical_to_cartesian(tpr, origin=origin)
        assert np.allclose(back, xyz, atol=1e-9)

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, points):
        xyz = np.array(points, dtype=np.float64)
        back = spherical_to_cartesian(cartesian_to_spherical(xyz))
        # arccos loses a few ULPs near the poles; 1e-6 m is far below any
        # error bound the codecs use.
        assert np.allclose(back, xyz, atol=1e-6)


class TestErrorBounds:
    def test_paper_step1_choice(self):
        q_theta, q_phi, q_r = spherical_error_bounds(0.02, r_max=80.0)
        assert q_theta == pytest.approx(0.02 / 80.0)
        assert q_phi == pytest.approx(0.02 / 80.0)
        assert q_r == pytest.approx(0.02)

    def test_strict_mode_tightens_by_sqrt3(self):
        loose = spherical_error_bounds(0.02, 80.0)
        strict = spherical_error_bounds(0.02, 80.0, strict_cartesian=True)
        for l, s in zip(loose, strict):
            assert s == pytest.approx(l / np.sqrt(3.0))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            spherical_error_bounds(0.0, 80.0)
        with pytest.raises(ValueError):
            spherical_error_bounds(0.02, 0.0)

    def test_lemma_euclidean_error_bound(self):
        """Lemma 3.2: spherical quantization error <= sqrt(3)*q Euclidean.

        Perturb each spherical dimension by its full bound and verify the
        Cartesian displacement stays below sqrt(3) * q_xyz (with a small
        numerical cushion).
        """
        rng = np.random.default_rng(7)
        q = 0.02
        xyz = rng.normal(size=(2000, 3)) * 25.0
        tpr = cartesian_to_spherical(xyz)
        r_max = tpr[:, 2].max()
        q_theta, q_phi, q_r = spherical_error_bounds(q, r_max)
        signs = rng.choice([-1.0, 1.0], size=(2000, 3))
        perturbed = tpr + signs * np.array([q_theta, q_phi, q_r])
        moved = spherical_to_cartesian(perturbed)
        err = np.linalg.norm(moved - xyz, axis=1)
        assert err.max() <= np.sqrt(3.0) * q * (1.0 + 1e-6)
