"""Unit and property tests for repro.octree.morton."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import deinterleave2, deinterleave3, interleave2, interleave3


class TestMorton3D:
    def test_unit_axes(self):
        # bit 0 -> x, bit 1 -> y, bit 2 -> z at every level
        assert interleave3(np.array([1]), np.array([0]), np.array([0]))[0] == 1
        assert interleave3(np.array([0]), np.array([1]), np.array([0]))[0] == 2
        assert interleave3(np.array([0]), np.array([0]), np.array([1]))[0] == 4
        assert interleave3(np.array([2]), np.array([0]), np.array([0]))[0] == 8

    def test_parent_is_shift(self):
        ix, iy, iz = np.array([5]), np.array([3]), np.array([7])
        code = interleave3(ix, iy, iz)
        parent = interleave3(ix >> 1, iy >> 1, iz >> 1)
        assert (code >> 3)[0] == parent[0]

    def test_roundtrip_max_range(self):
        v = np.array([(1 << 20) - 1])
        code = interleave3(v, v, v)
        x, y, z = deinterleave3(code)
        assert (x[0], y[0], z[0]) == (v[0], v[0], v[0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interleave3(np.array([1 << 20]), np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            interleave3(np.array([-1]), np.array([0]), np.array([0]))

    def test_sorted_by_cell_order(self):
        # Morton order of siblings equals child-index order.
        ix = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        iy = np.array([0, 0, 1, 1, 0, 0, 1, 1])
        iz = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        codes = interleave3(ix, iy, iz)
        assert codes.tolist() == list(range(8))

    @given(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 20) - 1),
                st.integers(0, (1 << 20) - 1),
                st.integers(0, (1 << 20) - 1),
            ),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, cells):
        ix, iy, iz = (np.array(c) for c in zip(*cells))
        x, y, z = deinterleave3(interleave3(ix, iy, iz))
        assert np.array_equal(x, ix)
        assert np.array_equal(y, iy)
        assert np.array_equal(z, iz)


class TestMorton2D:
    def test_unit_axes(self):
        assert interleave2(np.array([1]), np.array([0]))[0] == 1
        assert interleave2(np.array([0]), np.array([1]))[0] == 2
        assert interleave2(np.array([2]), np.array([0]))[0] == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            interleave2(np.array([1 << 31]), np.array([0]))

    @given(
        st.lists(
            st.tuples(st.integers(0, (1 << 31) - 1), st.integers(0, (1 << 31) - 1)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, cells):
        ix, iy = (np.array(c) for c in zip(*cells))
        x, y = deinterleave2(interleave2(ix, iy))
        assert np.array_equal(x, ix)
        assert np.array_equal(y, iy)
