"""Tests for the range-image (image-based) baseline."""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import RangeImageCompressor
from repro.datasets import SensorModel, generate_frame, simulate_frame
from repro.datasets.scenes import city_scene
from repro.geometry import PointCloud


@pytest.fixture(scope="module")
def raw_sensor():
    """A sensor whose output sits exactly on the angular grid."""
    return replace(
        SensorModel.benchmark_default(), beam_jitter=0.0, angle_jitter=0.0
    )


@pytest.fixture(scope="module")
def raw_frame(raw_sensor):
    return simulate_frame(city_scene(0), raw_sensor, seed=0)


@pytest.fixture(scope="module")
def calibrated_frame():
    return generate_frame("kitti-city", 0)


class TestRangeImage:
    def test_empty(self):
        codec = RangeImageCompressor(0.02)
        assert len(codec.decompress(codec.compress(PointCloud.empty()))) == 0

    def test_count_preserved_with_collisions(self, calibrated_frame):
        codec = RangeImageCompressor(0.02)
        decoded = codec.decompress(codec.compress(calibrated_frame))
        assert len(decoded) == len(calibrated_frame)

    def test_mapping_is_permutation(self, calibrated_frame):
        codec = RangeImageCompressor(0.02)
        mapping = codec.mapping(calibrated_frame)
        assert sorted(mapping.tolist()) == list(range(len(calibrated_frame)))

    def test_raw_grid_meets_bound_and_compresses_hard(self, raw_sensor, raw_frame):
        codec = RangeImageCompressor(0.02, sensor=raw_sensor)
        payload = codec.compress(raw_frame)
        decoded = codec.decompress(payload)
        err = np.linalg.norm(
            decoded.xyz[codec.mapping(raw_frame)] - raw_frame.xyz, axis=1
        ).max()
        # On raw output the radial bound is the only error source.
        assert err <= np.sqrt(3) * 0.02 * (1 + 1e-6)
        assert raw_frame.nbytes_raw() / len(payload) > 15

    def test_calibrated_cloud_blows_the_bound(self, calibrated_frame):
        """The paper's critique: image methods lose accuracy off-grid."""
        codec = RangeImageCompressor(0.02)
        err = codec.tangential_error(calibrated_frame)
        assert err > 5 * 0.02  # error governed by grid pitch, not q

    def test_duplicate_points_kept_as_extras(self):
        codec = RangeImageCompressor(0.02)
        cloud = PointCloud(np.repeat([[10.0, 5.0, -1.0]], 4, axis=0))
        decoded = codec.decompress(codec.compress(cloud))
        assert len(decoded) == 4
