"""Remote survey over a lossy 4G uplink — the paper's motivating application.

A sensor-side client compresses frames online and ships them through a
bandwidth-shaped TCP link to a server that decompresses and stores them in
SQLite; the run reports per-stage latency and whether the stream fits the
uplink (paper Section 4.4).  A second pass replays the same stream through
a seeded fault injector — payload corruption plus a mid-frame disconnect —
to show the transport retrying, quarantining, and carrying on.

Run:  python examples/remote_survey.py
"""

from repro.core import DBGCParams
from repro.datasets import SensorModel, generate_frames
from repro.system import (
    BandwidthShaper,
    DbgcClient,
    DbgcServer,
    FaultSpec,
    FaultyChannel,
    SqliteFrameStore,
)


def stream(frames, channel, title):
    print(f"\n--- {title} ---")
    store = SqliteFrameStore()
    with DbgcServer(store, mode="decompress") as server:
        with DbgcClient(
            server.address,
            params=DBGCParams(q_xyz=0.02),
            channel=channel,
            ack_timeout=2.0,
        ) as client:
            for index, frame in enumerate(frames):
                trace = client.send_frame(index, frame)
                print(
                    f"frame {index}: {trace.payload_bytes} B, "
                    f"compress {trace.compress_latency * 1e3:.0f} ms"
                )
        server.join()
    client.merge_receipts(server.receipts)
    report = client.report
    print(f"stored {report.n_stored}/{len(frames)} frames "
          f"over {server.connections} connection(s); "
          f"retries {report.total_retries}, quarantined {report.n_quarantined}")
    for bad in server.quarantine:
        print(f"  quarantined {bad}")
    return report


def main() -> None:
    sensor = SensorModel.benchmark_default()
    n_frames = 5
    frames = list(generate_frames("ford-campus", n_frames, sensor=sensor))
    raw_mbps = 8 * frames[0].nbytes_raw() * sensor.frames_per_second / 1e6
    uplink = BandwidthShaper.mobile_4g()
    print(f"sensor: {sensor.name}, {len(frames[0])} points/frame, 10 fps")
    print(f"raw stream needs {raw_mbps:.1f} Mbps; 4G uplink offers {uplink.bandwidth_mbps} Mbps")

    report = stream(frames, uplink, "clean 4G uplink")
    compressed_mbps = report.bandwidth_mbps(sensor.frames_per_second)
    print(f"compressed stream: {compressed_mbps:.2f} Mbps "
          f"({'fits' if compressed_mbps <= uplink.bandwidth_mbps else 'exceeds'} the uplink)")
    print(f"mean end-to-end latency: {report.mean_total_latency * 1e3:.0f} ms/frame")
    print(f"  compress: {report.mean_compress_latency * 1e3:.0f} ms")
    print(f"  transfer: {report.mean_transfer_latency * 1e3:.0f} ms")
    print(f"pipeline throughput: {report.throughput_fps():.1f} frames/s")

    # Same stream, hostile link: deterministic corruption + a disconnect.
    spec = FaultSpec(corrupt_rate=0.25, force_disconnect_frames=frozenset({2}))
    stream(frames, FaultyChannel(uplink, seed=11, spec=spec), "faulty 4G uplink (seed 11)")


if __name__ == "__main__":
    main()
