"""Remote survey over a 4G uplink — the paper's motivating application.

A sensor-side client compresses frames online and ships them through a
bandwidth-shaped TCP link to a server that decompresses and stores them in
SQLite; the run reports per-stage latency and whether the stream fits the
uplink (paper Section 4.4).

Run:  python examples/remote_survey.py
"""

from repro.core import DBGCParams
from repro.datasets import SensorModel, generate_frames
from repro.system import BandwidthShaper, DbgcClient, DbgcServer, SqliteFrameStore


def main() -> None:
    sensor = SensorModel.benchmark_default()
    n_frames = 5
    frames = list(generate_frames("ford-campus", n_frames, sensor=sensor))
    raw_mbps = 8 * frames[0].nbytes_raw() * sensor.frames_per_second / 1e6
    uplink = BandwidthShaper.mobile_4g()
    print(f"sensor: {sensor.name}, {len(frames[0])} points/frame, 10 fps")
    print(f"raw stream needs {raw_mbps:.1f} Mbps; 4G uplink offers {uplink.bandwidth_mbps} Mbps")

    store = SqliteFrameStore()
    server = DbgcServer(store, mode="decompress").start()
    client = DbgcClient(
        server.address,
        params=DBGCParams(q_xyz=0.02),
        channel=uplink,
    )
    for index, frame in enumerate(frames):
        trace = client.send_frame(index, frame)
        print(
            f"frame {index}: {trace.payload_bytes} B, "
            f"compress {trace.compress_latency * 1e3:.0f} ms"
        )
    client.close()
    server.join()
    client.merge_receipts(server.receipts)

    report = client.report
    compressed_mbps = report.bandwidth_mbps(sensor.frames_per_second)
    print(f"\nstored frames: {len(store)}")
    print(f"compressed stream: {compressed_mbps:.2f} Mbps "
          f"({'fits' if compressed_mbps <= uplink.bandwidth_mbps else 'exceeds'} the uplink)")
    print(f"mean end-to-end latency: {report.mean_total_latency * 1e3:.0f} ms/frame")
    print(f"  compress: {report.mean_compress_latency * 1e3:.0f} ms")
    print(f"  transfer: {report.mean_transfer_latency * 1e3:.0f} ms")
    print(f"pipeline throughput: {report.throughput_fps():.1f} frames/s")


if __name__ == "__main__":
    main()
