"""Quickstart: compress one LiDAR frame with DBGC and verify the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.datasets import generate_frame


def main() -> None:
    # A synthetic Velodyne HDL-64E frame of a city street (~29 K points).
    cloud = generate_frame("kitti-city", frame_index=0)
    print(f"input cloud: {len(cloud)} points, raw size {cloud.nbytes_raw()} bytes")

    # The paper's default error bound: 2 cm per dimension.
    params = DBGCParams(q_xyz=0.02)
    compressor = DBGCCompressor(params)
    result = compressor.compress_detailed(cloud)

    print(f"compressed size: {result.size} bytes")
    print(f"compression ratio: {result.compression_ratio():.1f}x")
    print(
        f"point split: {result.n_dense} dense (octree), "
        f"{result.n_sparse} sparse (polylines), {result.n_outliers} outliers"
    )

    # Decompression is self-contained: only the byte string is needed.
    restored = DBGCDecompressor().decompress(result.payload)
    assert len(restored) == len(cloud)

    # Check the error-bound contract under the one-to-one mapping.
    errors = np.linalg.norm(restored.xyz[result.mapping] - cloud.xyz, axis=1)
    bound = np.sqrt(3.0) * params.q_xyz
    print(f"max reconstruction error: {errors.max():.4f} m (bound {bound:.4f} m)")
    assert errors.max() <= bound * (1 + 1e-6)
    print("roundtrip OK")


if __name__ == "__main__":
    main()
