"""Use DBGC with a custom sensor and standard point cloud file formats.

DBGC only needs the sensor's angular metadata (``u_theta``, ``u_phi``); the
example builds a 16-beam sensor (a VLP-16-like layout), simulates a frame,
writes/reads it through KITTI ``.bin`` and PLY, and compresses it.

Run:  python examples/custom_sensor_io.py
"""

import tempfile
from pathlib import Path

from repro import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.datasets import (
    SensorModel,
    load_kitti_bin,
    load_ply,
    save_kitti_bin,
    save_ply,
    simulate_frame,
)
from repro.datasets.scenes import road_scene


def main() -> None:
    # A VLP-16-style sensor: 16 beams over a +-15 degree vertical FOV.
    sensor = SensorModel(
        name="vlp16-like",
        n_beams=16,
        azimuth_steps=900,
        elevation_max_deg=15.0,
        elevation_min_deg=-15.0,
        r_max=100.0,
    )
    cloud = simulate_frame(road_scene(seed=7), sensor, seed=7)
    print(f"simulated {len(cloud)} points with {sensor.name}")

    with tempfile.TemporaryDirectory() as tmp:
        # Round-trip through the formats real datasets ship in.
        bin_path = Path(tmp) / "frame.bin"
        save_kitti_bin(cloud, bin_path)
        from_bin, _ = load_kitti_bin(bin_path)
        print(f"KITTI .bin: {bin_path.stat().st_size} bytes, {len(from_bin)} points")

        ply_path = Path(tmp) / "frame.ply"
        save_ply(cloud, ply_path)
        print(f"ASCII PLY:  {ply_path.stat().st_size} bytes, {len(load_ply(ply_path))} points")

    # Compress with the custom sensor's metadata driving the polylines.
    compressor = DBGCCompressor(DBGCParams(q_xyz=0.02), sensor=sensor)
    result = compressor.compress_detailed(cloud)
    restored = DBGCDecompressor().decompress(result.payload)
    print(
        f"DBGC: {result.size} bytes ({result.compression_ratio():.1f}x), "
        f"{len(restored)} points restored"
    )


if __name__ == "__main__":
    main()
