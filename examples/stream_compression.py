"""Compress a whole drive sequence into a seekable frame stream.

Simulates a short drive through the residential scene, writes every frame
into one ``.dbgcs`` stream (each frame independently decodable — the right
property for lossy uplinks), then decodes a frame picked from the middle.

Run:  python examples/stream_compression.py
"""

import io

from repro.core import DBGCDecompressor, DBGCParams
from repro.core.streaming import FrameStreamReader, FrameStreamWriter
from repro.datasets import SensorModel
from repro.datasets.trajectories import generate_sequence, straight


def main() -> None:
    sensor = SensorModel.benchmark_default()
    trajectory = straight(n_frames=6, speed_mps=10.0, fps=sensor.frames_per_second)
    print(f"drive: {trajectory.total_distance():.0f} m over {len(trajectory)} frames")

    buffer = io.BytesIO()
    writer = FrameStreamWriter(buffer, DBGCParams(q_xyz=0.02), sensor=sensor)
    for index, cloud in enumerate(
        generate_sequence("kitti-residential", trajectory, sensor=sensor)
    ):
        size = writer.write_frame(cloud)
        print(f"frame {index}: {len(cloud)} points -> {size} bytes")

    stats = writer.stats
    print(f"\nstream: {stats.total_compressed_bytes} bytes for {stats.n_frames} frames")
    print(f"overall ratio: {stats.compression_ratio:.1f}x")
    print(
        f"bandwidth at {sensor.frames_per_second:.0f} fps: "
        f"{stats.bandwidth_mbps(sensor.frames_per_second):.2f} Mbps"
    )

    # Random access: grab frame 3 without touching the others' geometry.
    buffer.seek(0)
    payloads = list(FrameStreamReader(buffer).payloads())
    middle = DBGCDecompressor().decompress(payloads[3])
    print(f"\nrandom-access decode of frame 3: {len(middle)} points")


if __name__ == "__main__":
    main()
