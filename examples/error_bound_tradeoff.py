"""Sweep the error bound: ratio vs accuracy, and the strict-Cartesian mode.

Measurement applications pick q from their accuracy requirement; this
example shows the resulting size/accuracy trade-off and the optional
``strict_cartesian`` mode whose per-dimension error never exceeds q.

Run:  python examples/error_bound_tradeoff.py
"""

import numpy as np

from repro import DBGCCompressor, DBGCDecompressor, DBGCParams
from repro.datasets import generate_frame
from repro.eval import render_table


def main() -> None:
    cloud = generate_frame("kitti-residential", 0)
    rows = []
    for q_xyz in (0.0006, 0.002, 0.005, 0.01, 0.02):
        for strict in (False, True):
            params = DBGCParams(q_xyz=q_xyz, strict_cartesian=strict)
            result = DBGCCompressor(params).compress_detailed(cloud)
            restored = DBGCDecompressor().decompress(result.payload)
            diff = restored.xyz[result.mapping] - cloud.xyz
            rows.append(
                [
                    f"{q_xyz * 100:.2f} cm",
                    "strict" if strict else "lemma",
                    result.compression_ratio(),
                    float(np.abs(diff).max()),
                    float(np.linalg.norm(diff, axis=1).max()),
                ]
            )
    print(
        render_table(
            ["q_xyz", "mode", "ratio", "max |err| per dim", "max eucl err"],
            rows,
            title="DBGC: error bound vs compression ratio (kitti-residential)",
        )
    )
    print(
        "\n'lemma' mode bounds the Euclidean error by sqrt(3)*q (paper Lemma 3.2);"
        "\n'strict' tightens the spherical quantizers so even per-dimension error <= q."
    )


if __name__ == "__main__":
    main()
