"""Inspect why DBGC works on a frame: density, split, polylines, entropy.

Reproduces the paper's motivating measurements on one synthetic frame: the
density falloff (Fig. 3b), the dense/sparse/outlier split (Section 4.3),
the polyline structure Algorithm 1 finds, and how close each coordinate
stream runs to its entropy floor.

Run:  python examples/analyze_frame.py
"""

from repro.datasets import generate_frame
from repro.eval import render_table
from repro.eval.ascii_plot import theta_phi_scatter, xoy_web
from repro.eval.analysis import (
    classification_summary,
    density_profile,
    polyline_statistics,
    stream_entropy_report,
)


def main() -> None:
    cloud = generate_frame("kitti-city", 0)
    print(f"frame: kitti-city, {len(cloud)} points\n")

    print("xoy projection (the paper's Figure 1 'spider web'):")
    print(xoy_web(cloud, width=70, height=22))
    print("\n(theta, phi) plane (the paper's Figure 5 scan rings):")
    print(theta_phi_scatter(cloud, width=70, height=12))
    print()

    profile = density_profile(cloud)
    print(
        render_table(
            ["radius (m)", "points", "density (pts/m^3)"],
            [[int(r["radius"]), r["count"], r["density"]] for r in profile],
            title="Density falloff (the paper's Figure 3b)",
        )
    )

    summary = classification_summary(cloud)
    print(
        f"\npoint split (eps={summary.eps} m, minPts={summary.min_pts}): "
        f"{summary.dense_fraction:.1%} dense / {summary.sparse_fraction:.1%} sparse"
        f" / {summary.outlier_fraction:.1%} outliers"
        "\n(paper's example cloud: 39.4% / 60.6% / 1.2%)\n"
    )

    stats = polyline_statistics(cloud)
    print(
        render_table(
            ["group", "points", "lines", "mean len", "p50 len", "outliers"],
            [
                [s.group, s.n_points, s.n_lines, s.mean_length,
                 s.length_percentiles[50], s.n_outliers]
                for s in stats
            ],
            title="Polyline organization (Algorithm 1) per radial group",
        )
    )

    report = stream_entropy_report(cloud)
    print(
        "\n"
        + render_table(
            ["group", "points", "H(dθ)", "H(dφ)", "H(dr)", "coded bits/pt"],
            [
                [r["group"], r["n_points"], r["H_dtheta"], r["H_dphi"], r["H_dr"],
                 r["total_bits_per_point"]]
                for r in report
            ],
            title="Stream entropies vs coded rate (bits/point)",
        )
    )


if __name__ == "__main__":
    main()
