"""Compare DBGC against the four baselines across scenes (mini Figure 9).

Run:  python examples/scene_comparison.py
"""

from repro.datasets import generate_frame
from repro.eval import make_compressors, render_table


def main() -> None:
    scenes = ["kitti-campus", "kitti-city", "kitti-road", "apollo-urban"]
    q_xyz = 0.02  # the typical LiDAR accuracy the paper highlights
    rows = []
    for scene in scenes:
        frame = generate_frame(scene, 0)
        row = [scene, len(frame)]
        for compressor in make_compressors(q_xyz):
            payload = compressor.compress(frame)
            row.append(frame.nbytes_raw() / len(payload))
        rows.append(row)
    headers = ["scene", "points"] + [c.name for c in make_compressors(q_xyz)]
    print(render_table(headers, rows, title=f"Compression ratio at q = {q_xyz} m"))
    print("\nHigher is better; DBGC should lead on every scene (paper Fig. 9).")


if __name__ == "__main__":
    main()
