"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
through PEP 517 fails; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` (and plain ``python setup.py develop``) work. All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
