"""Point cloud container.

The paper (Definition 2.1) models a point cloud as a set of points carrying
geometry, and its compression problem requires a one-to-one mapping between
the input and decompressed clouds.  We therefore keep points in a stable
array order: index ``i`` of the input cloud corresponds to index ``i`` of the
decompressed cloud produced by every codec in this repository.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["PointCloud"]


class PointCloud:
    """An ordered collection of 3D points.

    Parameters
    ----------
    xyz:
        Array-like of shape ``(n, 3)`` holding Cartesian coordinates.
        The data is copied into a contiguous ``float64`` array unless it is
        already one, in which case it is referenced and marked read-only.

    Notes
    -----
    The container is deliberately immutable: codecs hand point clouds around
    freely and rely on them not changing underneath.  Use
    :meth:`with_points` to derive a modified cloud.
    """

    __slots__ = ("_xyz",)

    def __init__(self, xyz: np.ndarray) -> None:
        arr = np.asarray(xyz, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"expected an (n, 3) array, got shape {arr.shape}")
        if not arr.flags["C_CONTIGUOUS"] or arr is xyz:
            arr = np.ascontiguousarray(arr).copy() if arr is xyz else np.ascontiguousarray(arr)
        arr.setflags(write=False)
        self._xyz = arr

    # -- construction helpers -------------------------------------------------

    @classmethod
    def _adopt(cls, xyz: np.ndarray) -> "PointCloud":
        """Wrap ``xyz`` directly, skipping the defensive copy.

        For trusted internal callers only — notably the process-pool
        transfer path, where the array is already backed by immutable
        bytes received from a worker and copying it would defeat the
        zero-copy hand-off.  The array must be a C-contiguous float64
        ``(n, 3)``; it is marked read-only in place, so the caller must
        not hold a writable alias.
        """
        if xyz.dtype != np.float64 or xyz.ndim != 2 or xyz.shape[1] != 3:
            raise ValueError(
                f"expected a float64 (n, 3) array, got {xyz.dtype} {xyz.shape}"
            )
        if not xyz.flags["C_CONTIGUOUS"]:
            raise ValueError("adopted arrays must be C-contiguous")
        xyz.setflags(write=False)
        cloud = cls.__new__(cls)
        cloud._xyz = xyz
        return cloud

    @classmethod
    def empty(cls) -> "PointCloud":
        """Return a cloud with zero points."""
        return cls(np.empty((0, 3), dtype=np.float64))

    @classmethod
    def from_columns(cls, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> "PointCloud":
        """Build a cloud from three coordinate columns of equal length."""
        return cls(np.column_stack([x, y, z]))

    def with_points(self, xyz: np.ndarray) -> "PointCloud":
        """Return a new cloud holding ``xyz`` (same type, fresh data)."""
        return PointCloud(xyz)

    # -- accessors -------------------------------------------------------------

    @property
    def xyz(self) -> np.ndarray:
        """The ``(n, 3)`` read-only coordinate array."""
        return self._xyz

    @property
    def x(self) -> np.ndarray:
        return self._xyz[:, 0]

    @property
    def y(self) -> np.ndarray:
        return self._xyz[:, 1]

    @property
    def z(self) -> np.ndarray:
        return self._xyz[:, 2]

    def __len__(self) -> int:
        return self._xyz.shape[0]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._xyz)

    def __getitem__(self, index) -> np.ndarray:
        return self._xyz[index]

    def __repr__(self) -> str:
        return f"PointCloud(n={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PointCloud):
            return NotImplemented
        return self._xyz.shape == other._xyz.shape and bool(
            np.array_equal(self._xyz, other._xyz)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    # -- derived quantities -----------------------------------------------------

    def nbytes_raw(self, bits_per_coordinate: int = 32) -> int:
        """Raw storage size in bytes at the paper's accounting.

        The paper sizes an uncompressed point as three floating-point
        coordinates (Section 4.4: ``32 bits x 3 = 96 bits``); compression
        ratios everywhere in the evaluation are raw size / ``|B|``.
        """
        return len(self) * 3 * bits_per_coordinate // 8

    def radii(self, origin: np.ndarray | None = None) -> np.ndarray:
        """Euclidean distance of every point from ``origin`` (default 0)."""
        pts = self._xyz if origin is None else self._xyz - np.asarray(origin, dtype=np.float64)
        return np.linalg.norm(pts, axis=1)

    def select(self, mask_or_indices) -> "PointCloud":
        """Return the sub-cloud given by a boolean mask or index array."""
        return PointCloud(self._xyz[mask_or_indices])

    def concatenate(self, *others: "PointCloud") -> "PointCloud":
        """Return this cloud followed by ``others`` (order preserved)."""
        arrays = [self._xyz] + [o._xyz for o in others]
        return PointCloud(np.vstack(arrays))

    def max_abs_error(self, other: "PointCloud") -> float:
        """Largest per-dimension error against ``other`` (paper Def. 2.2)."""
        if len(self) != len(other):
            raise ValueError("clouds must have the same number of points")
        if len(self) == 0:
            return 0.0
        return float(np.max(np.abs(self._xyz - other._xyz)))

    def max_euclidean_error(self, other: "PointCloud") -> float:
        """Largest per-point Euclidean error against ``other``."""
        if len(self) != len(other):
            raise ValueError("clouds must have the same number of points")
        if len(self) == 0:
            return 0.0
        return float(np.max(np.linalg.norm(self._xyz - other._xyz, axis=1)))
