"""Spatial substrate: point clouds, bounding volumes, coordinates, grids.

This subpackage provides the geometric primitives that every other part of
the system builds on:

- :class:`~repro.geometry.points.PointCloud` — an immutable wrapper around an
  ``(n, 3)`` float array of Cartesian coordinates.
- :class:`~repro.geometry.bbox.BoundingBox` and
  :class:`~repro.geometry.bbox.BoundingCube` — axis-aligned bounds used by the
  octree and quadtree coders.
- :mod:`~repro.geometry.spherical` — Cartesian <-> spherical conversion with
  the paper's (theta, phi, r) convention.
- :class:`~repro.geometry.grid.HashGrid` — a uniform hash grid for
  fixed-radius neighbor queries, used by the density-based clustering.
"""

from repro.geometry.bbox import BoundingBox, BoundingCube
from repro.geometry.grid import HashGrid
from repro.geometry.points import PointCloud
from repro.geometry.spherical import cartesian_to_spherical, spherical_to_cartesian

__all__ = [
    "BoundingBox",
    "BoundingCube",
    "HashGrid",
    "PointCloud",
    "cartesian_to_spherical",
    "spherical_to_cartesian",
]
