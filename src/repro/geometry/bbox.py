"""Axis-aligned bounding volumes used by the tree-based coders."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundingBox", "BoundingCube", "pow2_cover"]


def pow2_cover(extent: float, leaf_side: float) -> tuple[float, int]:
    """Smallest ``(side, depth)`` with ``side == leaf_side * 2**depth >= extent``.

    The sizing rule shared by the octree root cube and the outlier
    quadtree: grow the leaf side by doubling until it covers ``extent``,
    so recursive halving of the result lands exactly back on the leaf
    size.  The tiny epsilon keeps points exactly on the max boundary
    inside the half-open cell decomposition.  ``leaf_side`` must be
    positive (both callers validate it).
    """
    depth = 0
    side = leaf_side
    while side < extent * (1.0 + 1e-12) or side == 0.0:
        side *= 2.0
        depth += 1
    return side, depth


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box with independent extents per dimension."""

    lo: tuple[float, float, float]
    hi: tuple[float, float, float]

    def __post_init__(self) -> None:
        if any(h < l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"invalid bounds: lo={self.lo}, hi={self.hi}")

    @classmethod
    def of_points(cls, xyz: np.ndarray) -> "BoundingBox":
        """Tight bounding box of an ``(n, 3)`` coordinate array."""
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.shape[0] == 0:
            return cls((0.0, 0.0, 0.0), (0.0, 0.0, 0.0))
        return cls(tuple(xyz.min(axis=0)), tuple(xyz.max(axis=0)))

    @property
    def extents(self) -> tuple[float, float, float]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def center(self) -> tuple[float, float, float]:
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def volume(self) -> float:
        ex, ey, ez = self.extents
        return ex * ey * ez

    def contains(self, xyz: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside (inclusive) this box."""
        xyz = np.asarray(xyz, dtype=np.float64)
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        return np.all((xyz >= lo) & (xyz <= hi), axis=1)


@dataclass(frozen=True)
class BoundingCube:
    """Axis-aligned cube; the root cell of an octree.

    The paper's octree lets the leaf side length be exactly ``2 * q_xyz``.
    :meth:`for_leaf_size` grows a tight bounding box into the smallest cube
    whose side is ``leaf_side * 2**depth`` for an integral ``depth``, so that
    recursive halving lands exactly on the requested leaf size.
    """

    origin: tuple[float, float, float]
    side: float

    def __post_init__(self) -> None:
        if self.side < 0:
            raise ValueError(f"cube side must be non-negative, got {self.side}")

    @classmethod
    def of_points(cls, xyz: np.ndarray, pad: float = 0.0) -> "BoundingCube":
        """Smallest cube containing the points, optionally padded."""
        box = BoundingBox.of_points(xyz)
        side = max(box.extents) + 2.0 * pad
        origin = tuple(l - pad for l in box.lo)
        return cls(origin, side)

    @classmethod
    def for_leaf_size(cls, xyz: np.ndarray, leaf_side: float) -> tuple["BoundingCube", int]:
        """Cube + depth such that ``side == leaf_side * 2**depth`` covers points.

        Returns the cube and the octree depth (number of subdivision levels)
        at which leaf cells have side exactly ``leaf_side``.
        """
        if leaf_side <= 0:
            raise ValueError(f"leaf_side must be positive, got {leaf_side}")
        box = BoundingBox.of_points(np.asarray(xyz, dtype=np.float64))
        side, depth = pow2_cover(max(box.extents), leaf_side)
        return cls(box.lo, side), depth

    @property
    def hi(self) -> tuple[float, float, float]:
        return tuple(o + self.side for o in self.origin)

    @property
    def center(self) -> tuple[float, float, float]:
        return tuple(o + self.side / 2.0 for o in self.origin)

    def as_box(self) -> BoundingBox:
        return BoundingBox(self.origin, self.hi)

    def child(self, index: int) -> "BoundingCube":
        """Return one of the eight child octants (Morton-style indexing).

        Bit 0 of ``index`` selects the x half, bit 1 the y half and bit 2 the
        z half; bit set means the upper half.
        """
        if not 0 <= index < 8:
            raise ValueError(f"octant index must be in [0, 8), got {index}")
        half = self.side / 2.0
        ox, oy, oz = self.origin
        return BoundingCube(
            (
                ox + (half if index & 1 else 0.0),
                oy + (half if index & 2 else 0.0),
                oz + (half if index & 4 else 0.0),
            ),
            half,
        )
