"""Uniform hash grid for fixed-radius neighbor queries.

Density-based clustering (paper Section 3.2) repeatedly asks "how many points
lie within ``eps`` of ``p``?".  A uniform grid with cell side ``eps`` answers
this by scanning the 27 cells around ``p``'s cell and range-filtering the
candidates, which is the standard O(1)-expected-neighbourhood structure for
DBSCAN-style algorithms.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["HashGrid"]


@lru_cache(maxsize=8)
def _neighbor_offsets(reach: int) -> np.ndarray:
    """Packed-key offsets of the ``(2*reach+1)^3`` block, ascending.

    Arithmetic (not bitwise) composition so negative components borrow
    across the packed 21-bit fields; (dx, dy, dz) lexicographic order is
    exactly ascending key order, which the candidate lookup relies on to
    reproduce the historical nested-loop concatenation order.
    """
    r = np.arange(-reach, reach + 1, dtype=np.int64)
    return (
        r[:, None, None] * (1 << 42)
        + r[None, :, None] * (1 << 21)
        + r[None, None, :]
    ).ravel()


class HashGrid:
    """A uniform grid over 3D points with cell side ``cell_size``.

    Parameters
    ----------
    xyz:
        ``(n, 3)`` coordinate array.  Referenced, not copied.
    cell_size:
        Side length of the cubic grid cells.
    """

    def __init__(self, xyz: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._xyz = np.asarray(xyz, dtype=np.float64)
        if self._xyz.ndim != 2 or self._xyz.shape[1] != 3:
            raise ValueError(f"expected (n, 3) array, got {self._xyz.shape}")
        self.cell_size = float(cell_size)
        self._cells = np.floor(self._xyz / self.cell_size).astype(np.int64)
        # Group point indices by cell: sort by cell key, then slice.  The
        # sorted unique-key/slice arrays double as the vectorized lookup
        # table for _candidates_around (searchsorted over all neighbor
        # keys at once, the cluster_approx trick).
        if len(self._xyz):
            keys = self._pack(self._cells)
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [len(keys)]])
            self._order = order
            self._unique_keys = sorted_keys[starts]
            self._starts = starts
            self._ends = ends
            self._bucket: dict[int, np.ndarray] = {
                int(sorted_keys[s]): order[s:e] for s, e in zip(starts, ends)
            }
        else:
            self._order = np.empty(0, dtype=np.int64)
            self._unique_keys = np.empty(0, dtype=np.int64)
            self._starts = np.empty(0, dtype=np.int64)
            self._ends = np.empty(0, dtype=np.int64)
            self._bucket = {}

    @staticmethod
    def _pack(cells: np.ndarray) -> np.ndarray:
        """Pack integer cell coordinates into single int64 keys.

        21 bits per axis (offset by 2^20) covers coordinates in
        ``[-2^20, 2^20)`` cells, far beyond any LiDAR scene extent.
        """
        offset = 1 << 20
        c = cells + offset
        if np.any((c < 0) | (c >= (1 << 21))):
            raise ValueError("cell coordinates out of packable range")
        return (c[:, 0] << 42) | (c[:, 1] << 21) | c[:, 2]

    def __len__(self) -> int:
        return self._xyz.shape[0]

    @property
    def n_occupied_cells(self) -> int:
        return len(self._bucket)

    def cell_of(self, index: int) -> tuple[int, int, int]:
        """Grid cell coordinates of point ``index``."""
        return tuple(int(v) for v in self._cells[index])

    def points_in_cell(self, cell: tuple[int, int, int]) -> np.ndarray:
        """Indices of points inside one grid cell (possibly empty)."""
        key = self._pack(np.asarray([cell], dtype=np.int64))[0]
        return self._bucket.get(int(key), np.empty(0, dtype=np.int64))

    def _candidates_around(self, cell: np.ndarray, reach: int) -> np.ndarray:
        """Indices of points in the ``(2*reach+1)^3`` block around ``cell``.

        One searchsorted over all block keys replaces the historical
        nested dx/dy/dz loop of dict probes; the ascending offset order
        keeps the concatenation order identical to that loop's.
        """
        if len(self._unique_keys) == 0:
            return np.empty(0, dtype=np.int64)
        offset = 1 << 20
        low = cell - reach + offset
        high = cell + reach + offset
        if np.any(low < 0) or np.any(high >= (1 << 21)):
            raise ValueError("cell coordinates out of packable range")
        center_key = self._pack(np.asarray(cell, dtype=np.int64)[None, :])[0]
        keys = center_key + _neighbor_offsets(reach)
        idx = np.searchsorted(self._unique_keys, keys)
        idx = np.minimum(idx, len(self._unique_keys) - 1)
        hit = idx[self._unique_keys[idx] == keys]
        if not len(hit):
            return np.empty(0, dtype=np.int64)
        chunks = [
            self._order[s:e] for s, e in zip(self._starts[hit], self._ends[hit])
        ]
        return np.concatenate(chunks)

    def neighbors_within(self, index: int, radius: float) -> np.ndarray:
        """Indices of points (excluding ``index``) within ``radius`` of it."""
        candidates = self.query_ball(self._xyz[index], radius)
        return candidates[candidates != index]

    def query_ball(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of an arbitrary center."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        center = np.asarray(center, dtype=np.float64)
        cell = np.floor(center / self.cell_size).astype(np.int64)
        reach = int(np.ceil(radius / self.cell_size))
        candidates = self._candidates_around(cell, reach)
        if len(candidates) == 0:
            return candidates
        d2 = np.sum((self._xyz[candidates] - center) ** 2, axis=1)
        return candidates[d2 <= radius * radius]

    def count_within(self, index: int, radius: float) -> int:
        """Number of neighbors of point ``index`` within ``radius``."""
        return int(len(self.neighbors_within(index, radius)))

    def occupied_cells(self) -> np.ndarray:
        """Unique occupied cell coordinates as an ``(m, 3)`` int array."""
        if not self._bucket:
            return np.empty((0, 3), dtype=np.int64)
        keys = np.fromiter(self._bucket.keys(), dtype=np.int64, count=len(self._bucket))
        return self._unpack(keys)

    @staticmethod
    def _unpack(keys: np.ndarray) -> np.ndarray:
        offset = 1 << 20
        mask = (1 << 21) - 1
        x = (keys >> 42) & mask
        y = (keys >> 21) & mask
        z = keys & mask
        return np.column_stack([x, y, z]).astype(np.int64) - offset

    def cell_point_counts(self) -> dict[tuple[int, int, int], int]:
        """Mapping of occupied cell -> number of points inside it."""
        cells = self.occupied_cells()
        return {
            tuple(int(v) for v in cell): len(self._bucket[int(self._pack(cell[None, :])[0])])
            for cell in cells
        }
