"""Cartesian <-> spherical coordinate conversion.

The paper (Section 2.1) represents a point ``p`` in spherical coordinates as
``(theta_p, phi_p, r_p)`` where ``theta`` is the azimuthal angle, ``phi`` the
polar angle (measured from the +z axis), and ``r`` the radial distance from
the sensor origin.  This matches the physics convention:

    x = r * sin(phi) * cos(theta)
    y = r * sin(phi) * sin(theta)
    z = r * cos(phi)

``theta`` is returned in ``[0, 2*pi)`` so the azimuth of a spinning LiDAR
increases monotonically along a scan ring, and ``phi`` in ``[0, pi]``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cartesian_to_spherical",
    "spherical_to_cartesian",
    "spherical_error_bounds",
]

_TWO_PI = 2.0 * np.pi


def cartesian_to_spherical(
    xyz: np.ndarray, origin: np.ndarray | None = None
) -> np.ndarray:
    """Convert ``(n, 3)`` Cartesian coordinates to ``(theta, phi, r)``.

    Points coincident with the origin get ``theta = phi = 0``.
    """
    pts = np.asarray(xyz, dtype=np.float64)
    if origin is not None:
        pts = pts - np.asarray(origin, dtype=np.float64)
    x, y, z = pts[:, 0], pts[:, 1], pts[:, 2]
    r = np.sqrt(x * x + y * y + z * z)
    theta = np.arctan2(y, x)
    theta = np.where(theta < 0.0, theta + _TWO_PI, theta)
    with np.errstate(invalid="ignore"):
        cos_phi = np.where(r > 0.0, z / np.where(r > 0.0, r, 1.0), 1.0)
    phi = np.arccos(np.clip(cos_phi, -1.0, 1.0))
    theta = np.where(r > 0.0, theta, 0.0)
    return np.column_stack([theta, phi, r])


def spherical_to_cartesian(
    tpr: np.ndarray, origin: np.ndarray | None = None
) -> np.ndarray:
    """Convert ``(n, 3)`` spherical ``(theta, phi, r)`` back to Cartesian."""
    tpr = np.asarray(tpr, dtype=np.float64)
    theta, phi, r = tpr[:, 0], tpr[:, 1], tpr[:, 2]
    sin_phi = np.sin(phi)
    xyz = np.column_stack(
        [r * sin_phi * np.cos(theta), r * sin_phi * np.sin(theta), r * np.cos(phi)]
    )
    if origin is not None:
        xyz = xyz + np.asarray(origin, dtype=np.float64)
    return xyz


def spherical_error_bounds(
    q_xyz: float, r_max: float, strict_cartesian: bool = False
) -> tuple[float, float, float]:
    """Per-dimension spherical error bounds for a Cartesian bound ``q_xyz``.

    Implements the paper's Step 1 choice: ``q_theta = q_phi = q_xyz / r_max``
    and ``q_r = q_xyz``.  Lemma 3.2 then bounds the Euclidean reconstruction
    error by ``sqrt(2 + sin^2(phi)) * q_xyz <= sqrt(3) * q_xyz``, i.e. by the
    worst-case Euclidean error of the Cartesian bound itself.

    With ``strict_cartesian=True`` every bound is tightened by ``1/sqrt(3)``
    so even the *per-dimension* Cartesian error stays below ``q_xyz``.
    """
    if q_xyz <= 0:
        raise ValueError(f"q_xyz must be positive, got {q_xyz}")
    if r_max <= 0:
        raise ValueError(f"r_max must be positive, got {r_max}")
    scale = 1.0 / np.sqrt(3.0) if strict_cartesian else 1.0
    q_angle = scale * q_xyz / r_max
    return q_angle, q_angle, scale * q_xyz
