"""Process-wide tracing and metrics substrate.

One recorder replaces the four disjoint instrumentation copies that grew
across the repo (the ``timings`` dicts of :mod:`repro.core.pipeline` and
:mod:`repro.core.sparse_codec`, the per-command ``time.perf_counter``
pairs in :mod:`repro.cli`, and the transport-side ``FrameTrace`` /
``TransportEvent`` bookkeeping):

- **Spans** — nested wall-clock intervals (``with obs.span("dbgc.den")``)
  forming a tree per thread; byte counters attach to the active span via
  :func:`add_bytes`, so a span-tree query answers both of the paper's
  Section 4.4 questions (where does time go, where do bytes go).
- **Counters / histograms** — a flat registry of named monotonic counters
  (:func:`count`) and value distributions (:func:`observe`) shared by the
  codec and the transport.

Dispatch is ambient: the module keeps one process-global recorder
(installed by :class:`recording` or :func:`set_recorder`) plus a
per-thread override (installed by :class:`ensure_recorder`).  When neither
is set, every hook is a no-op behind a single global read — no span
objects, no dict writes, no allocation — so instrumented hot paths cost
nothing in production.

Thread-safety: each thread builds its own span stack (``threading.local``)
while root registration, counters, and histograms are lock-protected, so
the transport's sender/serve threads and the main thread can record into
one shared recorder.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "Span",
    "Recorder",
    "recording",
    "ensure_recorder",
    "current",
    "get_recorder",
    "set_recorder",
    "span",
    "count",
    "add_bytes",
    "observe",
]


class Span:
    """One timed interval in the span tree.

    Created by :meth:`Recorder.span` and used as a context manager; the
    clock runs from ``__enter__`` to ``__exit__``.  ``bytes`` holds the
    byte counters attached while the span was the innermost active one.
    """

    __slots__ = ("name", "started_at", "ended_at", "children", "bytes", "_recorder")

    def __init__(self, name: str, recorder: "Recorder") -> None:
        self.name = name
        self.started_at = 0.0
        self.ended_at = 0.0
        self.children: list[Span] = []
        self.bytes: dict[str, int] = {}
        self._recorder = recorder

    def __enter__(self) -> "Span":
        self.started_at = time.perf_counter()
        self._recorder._push(self)
        return self

    def __exit__(self, *exc_info) -> None:
        self.ended_at = time.perf_counter()
        self._recorder._pop(self)

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while the span is still open)."""
        return max(0.0, self.ended_at - self.started_at)

    def iter_spans(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def total(self, name: str) -> float:
        """Summed duration of all spans named ``name`` in this subtree."""
        return sum(s.duration for s in self.iter_spans() if s.name == name)

    def total_bytes(self, tag: str) -> int:
        """Summed byte counter ``tag`` over this subtree."""
        return sum(s.bytes.get(tag, 0) for s in self.iter_spans())

    def to_dict(self) -> dict:
        """JSON-able form (see docs/OBSERVABILITY.md for the schema)."""
        node: dict = {"name": self.name, "duration_s": self.duration}
        if self.bytes:
            node["bytes"] = dict(self.bytes)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"


class _NoopSpan:
    """The shared do-nothing span returned while recording is off."""

    __slots__ = ()
    duration = 0.0
    name = ""
    bytes: dict[str, int] = {}
    children: list = []

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def iter_spans(self):
        return iter(())

    def total(self, name: str) -> float:
        return 0.0

    def total_bytes(self, tag: str) -> int:
        return 0


_NOOP = _NoopSpan()


class Recorder:
    """Collects a span forest plus the counter/histogram registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stacks = threading.local()
        #: Top-level spans, in start order across all threads.
        self.roots: list[Span] = []
        #: Monotonic named counters (includes ``bytes.<tag>`` mirrors).
        self.counters: dict[str, int] = {}
        #: Raw observed values per histogram name.
        self.histograms: dict[str, list[float]] = {}

    # -- span plumbing -------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Tolerate a mismatched exit (an exception unwound child spans).
        while stack and stack.pop() is not span:
            pass

    # -- recording API -------------------------------------------------

    def span(self, name: str) -> Span:
        """A new span; use as a context manager."""
        return Span(name, self)

    def attach(self, parent: Span) -> "_Attach":
        """Adopt ``parent`` as the current thread's span-stack base.

        For worker threads running stages on behalf of another thread's
        open span (the intra-frame stage pool): inside the ``with`` block
        this recorder becomes the thread's ambient recorder and new spans
        become children of ``parent``, so a parallel frame produces the
        same span-tree shape as a serial one.  ``parent.children`` is
        appended from multiple threads, which is safe under the GIL; child
        order across stages is unspecified, durations and totals are not.
        """
        return _Attach(self, parent)

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def add_bytes(self, tag: str, n: int) -> None:
        """Attach ``n`` bytes to the active span and the ``bytes.<tag>`` counter."""
        stack = self._stack()
        if stack:
            top = stack[-1]
            top.bytes[tag] = top.bytes.get(tag, 0) + int(n)
        self.count("bytes." + tag, int(n))

    def observe(self, name: str, value: float) -> None:
        """Record one sample of the named histogram."""
        with self._lock:
            self.histograms.setdefault(name, []).append(float(value))

    # -- queries -------------------------------------------------------

    def iter_spans(self):
        """Every recorded span, depth-first across all roots."""
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from root.iter_spans()

    def total(self, name: str) -> float:
        """Summed duration of all spans with the given name."""
        return sum(s.duration for s in self.iter_spans() if s.name == name)

    def span_totals(self) -> dict[str, float]:
        """Total seconds per span name over the whole forest."""
        totals: dict[str, float] = {}
        for s in self.iter_spans():
            totals[s.name] = totals.get(s.name, 0.0) + s.duration
        return totals

    def byte_totals(self) -> dict[str, int]:
        """Total bytes per tag, from the ``bytes.<tag>`` counter mirrors."""
        with self._lock:
            return {
                name[len("bytes."):]: value
                for name, value in self.counters.items()
                if name.startswith("bytes.")
            }


class _Attach:
    """Context manager backing :meth:`Recorder.attach`."""

    __slots__ = ("_recorder", "_parent", "_prev_scoped", "_prev_stack")

    def __init__(self, recorder: Recorder, parent: Span) -> None:
        self._recorder = recorder
        self._parent = parent
        self._prev_scoped: Recorder | None = None
        self._prev_stack: list | None = None

    def __enter__(self) -> Recorder:
        self._prev_scoped = getattr(_SCOPED, "recorder", None)
        _SCOPED.recorder = self._recorder
        self._prev_stack = getattr(self._recorder._stacks, "stack", None)
        self._recorder._stacks.stack = [self._parent]
        return self._recorder

    def __exit__(self, *exc_info) -> None:
        self._recorder._stacks.stack = self._prev_stack
        _SCOPED.recorder = self._prev_scoped


# -- ambient dispatch -------------------------------------------------------

_GLOBAL: Recorder | None = None
_SCOPED = threading.local()


def current() -> Recorder | None:
    """The recorder hooks dispatch to: thread-scoped first, then global."""
    scoped = getattr(_SCOPED, "recorder", None)
    if scoped is not None:
        return scoped
    return _GLOBAL


def get_recorder() -> Recorder | None:
    """The process-global recorder (``None`` = disabled)."""
    return _GLOBAL


def set_recorder(recorder: Recorder | None) -> Recorder | None:
    """Install (or clear, with ``None``) the process-global recorder."""
    global _GLOBAL
    _GLOBAL = recorder
    return recorder


def span(name: str):
    """A span under the ambient recorder; shared no-op when disabled."""
    recorder = current()
    if recorder is None:
        return _NOOP
    return recorder.span(name)


def count(name: str, value: int = 1) -> None:
    """Increment a counter on the ambient recorder, if one is active."""
    recorder = current()
    if recorder is not None:
        recorder.count(name, value)


def add_bytes(tag: str, n: int) -> None:
    """Attach bytes to the ambient recorder's active span, if recording."""
    recorder = current()
    if recorder is not None:
        recorder.add_bytes(tag, n)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the ambient recorder, if one is active."""
    recorder = current()
    if recorder is not None:
        recorder.observe(name, value)


class recording:
    """Enable process-global recording for a ``with`` block.

    ::

        with obs.recording() as rec:
            compressor.compress(cloud)
        print(obs.ascii_breakdown(rec))

    Restores the previous global recorder on exit.  Spans started by other
    threads while the block is open land in the same recorder — that is
    the point: transport threads and the codec share one report.
    """

    def __init__(self, recorder: Recorder | None = None) -> None:
        self.recorder = recorder if recorder is not None else Recorder()
        self._previous: Recorder | None = None

    def __enter__(self) -> Recorder:
        self._previous = _GLOBAL
        set_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc_info) -> None:
        set_recorder(self._previous)


class ensure_recorder:
    """Reuse the ambient recorder, or install a thread-scoped one.

    Instrumented entry points (``compress_detailed`` and friends) wrap
    themselves in this so their span tree always exists: inside a
    :class:`recording` block they join the global report; otherwise they
    get a private recorder visible only to the current thread, which the
    caller can query and drop.
    """

    __slots__ = ("recorder", "_installed")

    def __init__(self) -> None:
        self.recorder: Recorder | None = None
        self._installed = False

    def __enter__(self) -> Recorder:
        recorder = current()
        if recorder is None:
            recorder = Recorder()
            _SCOPED.recorder = recorder
            self._installed = True
        self.recorder = recorder
        return recorder

    def __exit__(self, *exc_info) -> None:
        if self._installed:
            _SCOPED.recorder = None
            self._installed = False
