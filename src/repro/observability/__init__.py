"""Unified observability: spans, counters/histograms, and exporters.

The pipeline-wide instrumentation substrate (see docs/OBSERVABILITY.md).
Typical use::

    from repro import observability as obs

    with obs.recording() as rec:
        DBGCCompressor().compress(cloud)        # stages record spans
    print(obs.ascii_breakdown(rec))             # Figure 13 in the terminal
    report = obs.report_dict(rec)               # structured JSON report

With no recorder installed every hook is a no-op behind a single global
read, so instrumented code costs nothing when observability is off.
Observability is a side channel: it never changes the wire format or the
compressed payloads.
"""

from repro.observability.exporters import (
    REPORT_VERSION,
    ascii_breakdown,
    byte_totals,
    report_dict,
    stage_totals,
    to_json,
    to_prometheus,
    validate_report,
)
from repro.observability.recorder import (
    Recorder,
    Span,
    add_bytes,
    count,
    current,
    ensure_recorder,
    get_recorder,
    observe,
    recording,
    set_recorder,
    span,
)

__all__ = [
    "REPORT_VERSION",
    "Recorder",
    "Span",
    "add_bytes",
    "ascii_breakdown",
    "byte_totals",
    "count",
    "current",
    "ensure_recorder",
    "get_recorder",
    "observe",
    "recording",
    "report_dict",
    "set_recorder",
    "span",
    "stage_totals",
    "to_json",
    "to_prometheus",
    "validate_report",
]
