"""Report builders for a :class:`~repro.observability.recorder.Recorder`.

Three views of one recording:

- :func:`report_dict` / :func:`to_json` — the structured report (schema
  below, documented in docs/OBSERVABILITY.md) consumed by the benchmarks
  and the ``dbgc ... --metrics`` CLI flag;
- :func:`to_prometheus` — Prometheus text exposition (counters, span
  totals, histogram summaries) for scrape-style monitoring;
- :func:`ascii_breakdown` — the Figure 12/13-style terminal view: per-span
  time bars and per-tag byte bars.

Report schema (``version`` 1)::

    {
      "version": 1,
      "spans": [
        {"name": str, "duration_s": float,
         "bytes": {tag: int},        # omitted when empty
         "children": [...]},         # omitted when empty
      ],
      "counters": {name: int},
      "histograms": {name: {"count": int, "sum": float, "min": float,
                            "max": float, "mean": float,
                            "p50": float, "p90": float}},
    }

:func:`validate_report` checks that shape and is what the CI smoke step
runs against the CLI's JSON output.
"""

from __future__ import annotations

import json

from repro.observability.recorder import Recorder

__all__ = [
    "REPORT_VERSION",
    "report_dict",
    "to_json",
    "to_prometheus",
    "ascii_breakdown",
    "validate_report",
    "stage_totals",
    "byte_totals",
]

REPORT_VERSION = 1


def _histogram_summary(values: list[float]) -> dict:
    ordered = sorted(values)
    n = len(ordered)

    def percentile(q: float) -> float:
        if n == 1:
            return ordered[0]
        pos = q * (n - 1)
        lo = int(pos)
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    return {
        "count": n,
        "sum": float(sum(ordered)),
        "min": ordered[0],
        "max": ordered[-1],
        "mean": float(sum(ordered) / n),
        "p50": percentile(0.5),
        "p90": percentile(0.9),
    }


def report_dict(recorder: Recorder) -> dict:
    """The structured report of one recording (JSON-able)."""
    with recorder._lock:
        roots = list(recorder.roots)
        counters = dict(recorder.counters)
        histograms = {name: list(vals) for name, vals in recorder.histograms.items()}
    return {
        "version": REPORT_VERSION,
        "spans": [root.to_dict() for root in roots],
        "counters": counters,
        "histograms": {
            name: _histogram_summary(vals) for name, vals in histograms.items() if vals
        },
    }


def to_json(recorder: Recorder, indent: int = 2) -> str:
    """The structured report serialized as JSON text."""
    return json.dumps(report_dict(recorder), indent=indent, sort_keys=True)


# -- report-dict queries ----------------------------------------------------


def _iter_report_spans(nodes: list[dict]):
    for node in nodes:
        yield node
        yield from _iter_report_spans(node.get("children", []))


def stage_totals(report: dict, root: str | None = None) -> dict[str, float]:
    """Total seconds per span name in a report (optionally under one root).

    This is the span-tree query that replaces the old parallel ``timings``
    dicts: ``stage_totals(report, "dbgc.compress")`` returns the Figure 13
    per-stage compression breakdown.
    """
    nodes = report.get("spans", [])
    if root is not None:
        nodes = [n for n in _iter_report_spans(nodes) if n["name"] == root]
        nodes = [child for n in nodes for child in n.get("children", [])]
    totals: dict[str, float] = {}
    for node in _iter_report_spans(nodes):
        totals[node["name"]] = totals.get(node["name"], 0.0) + node["duration_s"]
    return totals


def byte_totals(report: dict) -> dict[str, int]:
    """Total bytes per tag from a report's ``bytes.<tag>`` counters."""
    return {
        name[len("bytes."):]: value
        for name, value in report.get("counters", {}).items()
        if name.startswith("bytes.")
    }


# -- Prometheus text exposition ---------------------------------------------


def _metric_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "dbgc_" + cleaned


def to_prometheus(recorder: Recorder) -> str:
    """Prometheus text-format rendering of counters, spans and histograms."""
    report = report_dict(recorder)
    lines: list[str] = []
    for name in sorted(report["counters"]):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {report['counters'][name]}")
    totals = stage_totals(report)
    if totals:
        lines.append("# TYPE dbgc_span_seconds_total counter")
        for name in sorted(totals):
            lines.append(
                f'dbgc_span_seconds_total{{name="{name}"}} {totals[name]:.9f}'
            )
    for name in sorted(report["histograms"]):
        metric = _metric_name(name)
        summary = report["histograms"][name]
        lines.append(f"# TYPE {metric} summary")
        lines.append(f'{metric}{{quantile="0.5"}} {summary["p50"]:.9f}')
        lines.append(f'{metric}{{quantile="0.9"}} {summary["p90"]:.9f}')
        lines.append(f"{metric}_sum {summary['sum']:.9f}")
        lines.append(f"{metric}_count {summary['count']}")
    return "\n".join(lines) + "\n"


# -- ASCII breakdown view ---------------------------------------------------


def ascii_breakdown(recorder: Recorder, width: int = 40) -> str:
    """Terminal view: per-stage time bars plus per-tag byte bars.

    Reuses the bar renderer of :mod:`repro.eval.ascii_plot`, so the
    ``dbgc compress --metrics`` output matches the house style of the
    reproduced figures.
    """
    # Imported lazily: repro.eval pulls in the pipeline, which itself
    # imports this package — at module import time that would be a cycle.
    from repro.eval.ascii_plot import bar_chart

    report = report_dict(recorder)
    sections: list[str] = []
    totals = stage_totals(report)
    if totals:
        names = sorted(totals, key=lambda n: -totals[n])
        sections.append(
            bar_chart(
                names,
                [totals[n] for n in names],
                width=width,
                unit="s",
                title="span seconds (aggregated by name)",
            )
        )
    sizes = byte_totals(report)
    if sizes:
        tags = sorted(sizes, key=lambda t: -sizes[t])
        sections.append(
            bar_chart(
                tags,
                [float(sizes[t]) for t in tags],
                width=width,
                unit="B",
                title="bytes by stream tag",
            )
        )
    other = {
        name: value
        for name, value in report["counters"].items()
        if not name.startswith("bytes.")
    }
    if other:
        body = "\n".join(f"  {name:<32} {other[name]}" for name in sorted(other))
        sections.append("counters\n" + body)
    return "\n\n".join(sections) if sections else "(nothing recorded)"


# -- validation -------------------------------------------------------------


def _validate_span(node: dict, path: str) -> None:
    if not isinstance(node, dict):
        raise ValueError(f"{path}: span must be an object")
    if not isinstance(node.get("name"), str) or not node["name"]:
        raise ValueError(f"{path}: span needs a non-empty string 'name'")
    duration = node.get("duration_s")
    if not isinstance(duration, (int, float)) or duration < 0:
        raise ValueError(f"{path}: 'duration_s' must be a non-negative number")
    for tag, size in node.get("bytes", {}).items():
        if not isinstance(tag, str) or not isinstance(size, int) or size < 0:
            raise ValueError(f"{path}: byte tags map strings to counts >= 0")
    children = node.get("children", [])
    if not isinstance(children, list):
        raise ValueError(f"{path}: 'children' must be a list")
    for i, child in enumerate(children):
        _validate_span(child, f"{path}.children[{i}]")


def validate_report(report: dict) -> dict:
    """Check a report against the documented schema; returns it unchanged.

    Raises :class:`ValueError` on the first violation.  Used by the test
    suite and the CI smoke step on ``dbgc compress --metrics`` output.
    """
    if not isinstance(report, dict):
        raise ValueError("report must be an object")
    if report.get("version") != REPORT_VERSION:
        raise ValueError(f"unsupported report version {report.get('version')!r}")
    spans = report.get("spans")
    if not isinstance(spans, list):
        raise ValueError("'spans' must be a list")
    for i, node in enumerate(spans):
        _validate_span(node, f"spans[{i}]")
    counters = report.get("counters")
    if not isinstance(counters, dict):
        raise ValueError("'counters' must be an object")
    for name, value in counters.items():
        if not isinstance(name, str) or not isinstance(value, int):
            raise ValueError("counters map string names to integers")
    histograms = report.get("histograms")
    if not isinstance(histograms, dict):
        raise ValueError("'histograms' must be an object")
    required = {"count", "sum", "min", "max", "mean", "p50", "p90"}
    for name, summary in histograms.items():
        if not isinstance(summary, dict) or not required.issubset(summary):
            raise ValueError(f"histogram {name!r} missing fields {required}")
    return report
