"""LEB128 varints and zigzag mapping for signed integers.

Delta-encoded coordinate streams are signed and concentrated near zero
(paper Step 2), so zigzag + varint gives a compact byte representation that
the arithmetic/Huffman back-ends can then squeeze further.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "encode_varints",
    "decode_varints",
    "zigzag_encode",
    "zigzag_decode",
]


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append one unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def decode_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one unsigned varint at ``pos``; return ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)) ^ -(v & np.uint64(1)).astype(np.int64)


def encode_varints(values: Iterable[int] | np.ndarray, signed: bool = True) -> bytes:
    """Encode an integer sequence as concatenated varints.

    ``signed=True`` zigzag-maps first so small negative values stay short.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if arr.size == 0:
        return b""
    arr = arr.astype(np.int64)
    u = zigzag_encode(arr) if signed else arr.astype(np.uint64)
    out = bytearray()
    for value in u.tolist():
        encode_uvarint(int(value), out)
    return bytes(out)


def decode_varints(data: bytes, count: int, signed: bool = True) -> np.ndarray:
    """Decode ``count`` varints; inverse of :func:`encode_varints`."""
    values = np.empty(count, dtype=np.uint64)
    pos = 0
    for i in range(count):
        value, pos = decode_uvarint(data, pos)
        values[i] = value
    if signed:
        return zigzag_decode(values)
    return values.astype(np.int64)


def varint_byte_stream(values: Sequence[int] | np.ndarray, signed: bool = True) -> bytes:
    """Alias of :func:`encode_varints` named for its role as a byte stream."""
    return encode_varints(values, signed=signed)
