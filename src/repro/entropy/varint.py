"""LEB128 varints and zigzag mapping for signed integers.

Delta-encoded coordinate streams are signed and concentrated near zero
(paper Step 2), so zigzag + varint gives a compact byte representation that
the arithmetic/Huffman back-ends can then squeeze further.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "encode_varints",
    "decode_varints",
    "zigzag_encode",
    "zigzag_decode",
]


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append one unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def decode_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    """Decode one unsigned varint at ``pos``; return ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    v = np.asarray(values, dtype=np.int64)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    v = np.asarray(values, dtype=np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)) ^ -(v & np.uint64(1)).astype(np.int64)


#: ``_LEN_THRESHOLDS[k]`` is the smallest value needing ``k + 2`` bytes.
_LEN_THRESHOLDS = (np.uint64(1) << (np.uint64(7) * np.arange(1, 10, dtype=np.uint64)))


def encode_varints(values: Iterable[int] | np.ndarray, signed: bool = True) -> bytes:
    """Encode an integer sequence as concatenated varints (vectorized).

    ``signed=True`` zigzag-maps first so small negative values stay short.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if arr.size == 0:
        return b""
    arr = arr.astype(np.int64)
    u = zigzag_encode(arr) if signed else arr.astype(np.uint64)
    lengths = 1 + (u[:, None] >= _LEN_THRESHOLDS).sum(axis=1)
    total = int(lengths.sum())
    starts = np.zeros(arr.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    value_idx = np.repeat(np.arange(arr.size), lengths)
    byte_off = (np.arange(total) - np.repeat(starts, lengths)).astype(np.uint64)
    chunks = ((u[value_idx] >> (np.uint64(7) * byte_off)) & np.uint64(0x7F)).astype(
        np.uint8
    )
    chunks[byte_off < (lengths[value_idx] - 1).astype(np.uint64)] |= 0x80
    return chunks.tobytes()


def decode_varints(data: bytes, count: int, signed: bool = True) -> np.ndarray:
    """Decode ``count`` varints; inverse of :func:`encode_varints` (vectorized)."""
    if count == 0:
        return np.empty(0, dtype=np.int64)
    raw = np.frombuffer(data, dtype=np.uint8)
    terminators = np.flatnonzero((raw & 0x80) == 0)
    if len(terminators) < count:
        raise ValueError("truncated varint")
    terminators = terminators[:count]
    end = int(terminators[-1]) + 1
    raw = raw[:end]
    starts = np.zeros(count, dtype=np.int64)
    starts[1:] = terminators[:-1] + 1
    if int((terminators - starts).max()) + 1 > 10:
        raise ValueError("varint too long")
    byte_off = (np.arange(end) - np.repeat(starts, terminators - starts + 1)).astype(
        np.uint64
    )
    contrib = (raw.astype(np.uint64) & np.uint64(0x7F)) << (np.uint64(7) * byte_off)
    values = np.add.reduceat(contrib, starts)
    if signed:
        return zigzag_decode(values)
    return values.astype(np.int64)


def varint_byte_stream(values: Sequence[int] | np.ndarray, signed: bool = True) -> bytes:
    """Alias of :func:`encode_varints` named for its role as a byte stream."""
    return encode_varints(values, signed=signed)
