"""MSB-first bit-level I/O used by the arithmetic and Huffman coders."""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits most-significant-first into a byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._acc = (self._acc << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._buffer.append(self._acc)
            self._acc = 0
            self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value``, most significant first."""
        if count < 0:
            raise ValueError(f"bit count must be non-negative, got {count}")
        if value < 0 or (count < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {count} bits")
        acc = (self._acc << count) | value
        nbits = self._nbits + count
        while nbits >= 8:
            nbits -= 8
            self._buffer.append((acc >> nbits) & 0xFF)
        self._acc = acc & ((1 << nbits) - 1)
        self._nbits = nbits

    def __len__(self) -> int:
        """Number of complete bytes buffered so far."""
        return len(self._buffer)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Finish the stream, zero-padding the final partial byte."""
        out = bytearray(self._buffer)
        if self._nbits:
            out.append((self._acc << (8 - self._nbits)) & 0xFF)
        return bytes(out)


class BitReader:
    """Reads bits most-significant-first from a byte buffer.

    Reading past the end yields zero bits: the arithmetic decoder primes its
    code register with more bits than the encoder may have emitted, and those
    phantom bits are zeros by construction.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bit(self) -> int:
        """Read a single bit, or 0 beyond the end of the stream."""
        if self._nbits == 0:
            if self._pos < len(self._data):
                self._acc = self._data[self._pos]
                self._pos += 1
                self._nbits = 8
            else:
                return 0
        self._nbits -= 1
        return (self._acc >> self._nbits) & 1

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits as an unsigned integer."""
        if count < 0:
            raise ValueError(f"bit count must be non-negative, got {count}")
        value = 0
        remaining = count
        while remaining > 0:
            if self._nbits == 0:
                if self._pos < len(self._data):
                    self._acc = self._data[self._pos]
                    self._pos += 1
                    self._nbits = 8
                else:
                    return value << remaining
            take = min(self._nbits, remaining)
            self._nbits -= take
            value = (value << take) | ((self._acc >> self._nbits) & ((1 << take) - 1))
            remaining -= take
        return value

    @property
    def bits_consumed(self) -> int:
        """Number of bits consumed from real (non-phantom) data."""
        return self._pos * 8 - self._nbits
