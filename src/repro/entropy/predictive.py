"""Sprintz-style predictive coding for integer time series.

Sprintz [6] stores the difference between actual and *predicted* values and
bit-packs the residuals; with a double-delta (constant-velocity) predictor
it beats plain delta coding on smoothly varying sequences — exactly the
shape of LiDAR coordinate streams along a scan.  Included as an alternative
back-end for the entropy-stage ablation.
"""

from __future__ import annotations

import numpy as np

from repro.entropy.bitpacking import bitpack_decode, bitpack_encode
from repro.entropy.golomb import rice_decode, rice_encode

__all__ = ["delta2_encode", "delta2_decode", "sprintz_encode", "sprintz_decode"]


def delta2_encode(values: np.ndarray) -> np.ndarray:
    """Double-delta transform: residuals of a constant-velocity predictor.

    ``r[0] = v[0]``, ``r[1] = v[1] - v[0]``, and for n >= 2
    ``r[n] = v[n] - (2 * v[n-1] - v[n-2])``.
    """
    arr = np.asarray(values, dtype=np.int64)
    if arr.size == 0:
        return arr.copy()
    residuals = np.empty_like(arr)
    residuals[0] = arr[0]
    if arr.size > 1:
        residuals[1] = arr[1] - arr[0]
    if arr.size > 2:
        residuals[2:] = arr[2:] - (2 * arr[1:-1] - arr[:-2])
    return residuals


def delta2_decode(residuals: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta2_encode`."""
    res = np.asarray(residuals, dtype=np.int64)
    if res.size == 0:
        return res.copy()
    values = np.empty_like(res)
    values[0] = res[0]
    if res.size > 1:
        values[1] = res[1] + values[0]
    for i in range(2, res.size):
        values[i] = res[i] + 2 * values[i - 1] - values[i - 2]
    return values


def sprintz_encode(values: np.ndarray, backend: str = "bitpack") -> bytes:
    """Predict (double delta) then pack residuals.

    ``backend`` selects the residual coder: ``"bitpack"`` (the original
    Sprintz choice) or ``"rice"``.
    """
    residuals = delta2_encode(np.asarray(values, dtype=np.int64))
    if backend == "bitpack":
        return b"\x00" + bitpack_encode(residuals, signed=True)
    if backend == "rice":
        return b"\x01" + rice_encode(residuals, signed=True)
    raise ValueError(f"unknown sprintz backend {backend!r}")


def sprintz_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`sprintz_encode`."""
    if not data:
        raise ValueError("empty sprintz stream")
    backend = data[0]
    if backend == 0:
        residuals = bitpack_decode(data[1:])
    elif backend == 1:
        residuals = rice_decode(data[1:])
    else:
        raise ValueError(f"unknown sprintz backend byte {backend}")
    return delta2_decode(residuals)
