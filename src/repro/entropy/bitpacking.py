"""Fixed-width bit packing (the columnar-database workhorse).

Packs a block of integers at the width of its largest magnitude — the
"bit-packing encoding" of the lightweight-compression literature the paper
surveys (Fang et al. [18], Sprintz [6]).  Blocks bound the damage a single
outlier does to the width.
"""

from __future__ import annotations

import numpy as np

from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import (
    decode_uvarint,
    encode_uvarint,
    zigzag_decode,
    zigzag_encode,
)

__all__ = ["bitpack_encode", "bitpack_decode", "BLOCK_SIZE"]

BLOCK_SIZE = 128


def bitpack_encode(values: np.ndarray, signed: bool = True) -> bytes:
    """Block-wise fixed-width packing; self-contained header per stream.

    Layout: ``uvarint count | flags | per block: uvarint width, payload``.
    """
    arr = np.asarray(values, dtype=np.int64)
    u = zigzag_encode(arr) if signed else arr.astype(np.uint64)
    out = bytearray()
    encode_uvarint(arr.size, out)
    if arr.size == 0:
        return bytes(out)
    out.append(1 if signed else 0)
    for start in range(0, arr.size, BLOCK_SIZE):
        block = u[start : start + BLOCK_SIZE]
        width = int(block.max()).bit_length()
        encode_uvarint(width, out)
        writer = BitWriter()
        if width:
            for value in block.tolist():
                writer.write_bits(value, width)
        payload = writer.getvalue()
        out += payload
    return bytes(out)


def bitpack_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`bitpack_encode`."""
    count, pos = decode_uvarint(data, 0)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    signed = bool(data[pos])
    pos += 1
    u = np.empty(count, dtype=np.uint64)
    done = 0
    while done < count:
        block_len = min(BLOCK_SIZE, count - done)
        width, pos = decode_uvarint(data, pos)
        if width == 0:
            u[done : done + block_len] = 0
        else:
            n_bytes = (block_len * width + 7) // 8
            reader = BitReader(data[pos : pos + n_bytes])
            for i in range(block_len):
                u[done + i] = reader.read_bits(width)
            pos += n_bytes
        done += block_len
    return zigzag_decode(u) if signed else u.astype(np.int64)
