"""Entropy-coding substrate built from scratch.

The paper composes its scheme out of classic lossless coders: an arithmetic
coder for the octree occupancy codes and the Δφ / ∇r / L_ref streams, and
Deflate (LZ77 + Huffman) for the Δθ streams which carry repeated cross-line
patterns.  This subpackage provides those building blocks without external
codec libraries:

- :mod:`~repro.entropy.bitio` — MSB-first bit readers/writers.
- :mod:`~repro.entropy.varint` — LEB128 varints and zigzag mapping.
- :mod:`~repro.entropy.rle` — byte run-length coding.
- :mod:`~repro.entropy.arithmetic` — adaptive arithmetic coder over a
  Fenwick-tree frequency model.
- :mod:`~repro.entropy.huffman` — canonical Huffman codec for byte streams.
- :mod:`~repro.entropy.lz77` — hash-chain LZ77 tokenizer.
- :mod:`~repro.entropy.deflate` — the LZ77+Huffman "deflate-style" codec.
"""

from repro.entropy.arithmetic import (
    AdaptiveModel,
    arithmetic_decode,
    arithmetic_encode,
    decode_int_sequence,
    encode_int_sequence,
)
from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.deflate import deflate_compress, deflate_decompress
from repro.entropy.huffman import huffman_compress, huffman_decompress
from repro.entropy.lz77 import lz77_compress_tokens, lz77_decompress_tokens
from repro.entropy.rle import rle_decode, rle_encode
from repro.entropy.varint import (
    decode_varints,
    encode_varints,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "AdaptiveModel",
    "BitReader",
    "BitWriter",
    "arithmetic_decode",
    "arithmetic_encode",
    "decode_int_sequence",
    "decode_varints",
    "deflate_compress",
    "deflate_decompress",
    "encode_int_sequence",
    "encode_varints",
    "huffman_compress",
    "huffman_decompress",
    "lz77_compress_tokens",
    "lz77_decompress_tokens",
    "rle_decode",
    "rle_encode",
    "zigzag_decode",
    "zigzag_encode",
]
