"""Entropy-coding substrate built from scratch.

The paper composes its scheme out of classic lossless coders: an arithmetic
coder for the octree occupancy codes and the Δφ / ∇r / L_ref streams, and
Deflate (LZ77 + Huffman) for the Δθ streams which carry repeated cross-line
patterns.  This subpackage provides those building blocks without external
codec libraries:

- :mod:`~repro.entropy.bitio` — MSB-first bit readers/writers.
- :mod:`~repro.entropy.varint` — LEB128 varints and zigzag mapping.
- :mod:`~repro.entropy.rle` — byte run-length coding.
- :mod:`~repro.entropy.arithmetic` — adaptive arithmetic coder over a
  Fenwick-tree frequency model.
- :mod:`~repro.entropy.huffman` — canonical Huffman codec for byte streams.
- :mod:`~repro.entropy.lz77` — hash-chain LZ77 tokenizer.
- :mod:`~repro.entropy.deflate` — the LZ77+Huffman "deflate-style" codec.
- :mod:`~repro.entropy.rans` — numpy-vectorized interleaved rANS coder.
- :mod:`~repro.entropy.backend` — pluggable backend registry and the
  tagged-stream helpers the codecs code through.
"""

from repro.entropy.arithmetic import (
    AdaptiveModel,
    arithmetic_decode,
    arithmetic_encode,
    decode_int_sequence,
    encode_int_sequence,
)
from repro.entropy.backend import (
    AdaptiveArithmeticBackend,
    EntropyBackend,
    RansBackend,
    available_backends,
    backend_for_tag,
    decode_tagged_ints,
    decode_tagged_symbols,
    encode_tagged_ints,
    encode_tagged_symbols,
    get_backend,
    register_backend,
)
from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.deflate import deflate_compress, deflate_decompress
from repro.entropy.huffman import huffman_compress, huffman_decompress
from repro.entropy.lz77 import lz77_compress_tokens, lz77_decompress_tokens
from repro.entropy.rans import rans_decode, rans_encode
from repro.entropy.rle import rle_decode, rle_encode
from repro.entropy.varint import (
    decode_varints,
    encode_varints,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "AdaptiveArithmeticBackend",
    "AdaptiveModel",
    "BitReader",
    "BitWriter",
    "EntropyBackend",
    "RansBackend",
    "arithmetic_decode",
    "arithmetic_encode",
    "available_backends",
    "backend_for_tag",
    "decode_int_sequence",
    "decode_tagged_ints",
    "decode_tagged_symbols",
    "decode_varints",
    "deflate_compress",
    "deflate_decompress",
    "encode_int_sequence",
    "encode_tagged_ints",
    "encode_tagged_symbols",
    "encode_varints",
    "get_backend",
    "huffman_compress",
    "huffman_decompress",
    "lz77_compress_tokens",
    "lz77_decompress_tokens",
    "rans_decode",
    "rans_encode",
    "register_backend",
    "rle_decode",
    "rle_encode",
    "zigzag_decode",
    "zigzag_encode",
]
