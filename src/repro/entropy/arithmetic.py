"""Adaptive arithmetic coding.

The paper uses an arithmetic coder [58] for the octree occupancy stream,
the polar-angle delta streams, the radial ``∇L_r`` stream and the reference
stream ``L_ref``.  This module implements the classic Witten–Neal–Cleary
integer arithmetic coder with 32-bit registers and an adaptive frequency
model backed by a Fenwick tree, so both sides stay in lockstep without
transmitting the model.
"""

from __future__ import annotations

import numpy as np

from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = [
    "AdaptiveModel",
    "ArithmeticEncoder",
    "ArithmeticDecoder",
    "arithmetic_encode",
    "arithmetic_decode",
    "encode_int_sequence",
    "decode_int_sequence",
]

_CODE_BITS = 32
_FULL = 1 << _CODE_BITS
_HALF = _FULL >> 1
_QUARTER = _FULL >> 2
_THREE_QUARTERS = _HALF + _QUARTER
_MASK = _FULL - 1


class AdaptiveModel:
    """Adaptive frequency model over ``num_symbols`` symbols.

    Every symbol starts with frequency 1 (so anything is encodable) and gains
    ``increment`` on each occurrence.  When the total exceeds ``max_total``
    all frequencies are halved (rounding up), which both bounds coder
    precision requirements and lets the model track non-stationary streams.
    """

    def __init__(self, num_symbols: int, increment: int = 32, max_total: int = 1 << 16):
        if num_symbols < 1:
            raise ValueError(f"need at least one symbol, got {num_symbols}")
        if increment < 1:
            raise ValueError(f"increment must be >= 1, got {increment}")
        if max_total < 2 * num_symbols:
            raise ValueError("max_total too small for the alphabet")
        self.num_symbols = num_symbols
        self.increment = increment
        self.max_total = max_total
        self._freq = [1] * num_symbols
        self.total = num_symbols
        # Fenwick tree (1-based) over the frequencies.
        self._tree = [0] * (num_symbols + 1)
        for i in range(1, num_symbols + 1):
            self._tree[i] += 1
            parent = i + (i & -i)
            if parent <= num_symbols:
                self._tree[parent] += self._tree[i]
        top = 1
        while top * 2 <= num_symbols:
            top *= 2
        self._top = top

    def _tree_add(self, symbol: int, delta: int) -> None:
        i = symbol + 1
        tree = self._tree
        n = self.num_symbols
        while i <= n:
            tree[i] += delta
            i += i & -i

    def cum_range(self, symbol: int) -> tuple[int, int]:
        """Return ``(cum_low, cum_high)`` for ``symbol``."""
        i = symbol
        low = 0
        tree = self._tree
        while i > 0:
            low += tree[i]
            i -= i & -i
        return low, low + self._freq[symbol]

    def find(self, target: int) -> tuple[int, int, int]:
        """Locate the symbol whose cumulative range covers ``target``.

        Returns ``(symbol, cum_low, cum_high)``.
        """
        idx = 0
        remainder = target
        bitmask = self._top
        tree = self._tree
        n = self.num_symbols
        while bitmask:
            nxt = idx + bitmask
            if nxt <= n and tree[nxt] <= remainder:
                idx = nxt
                remainder -= tree[nxt]
            bitmask >>= 1
        cum_low = target - remainder
        return idx, cum_low, cum_low + self._freq[idx]

    def update(self, symbol: int) -> None:
        """Record one occurrence of ``symbol``."""
        self._freq[symbol] += self.increment
        self.total += self.increment
        self._tree_add(symbol, self.increment)
        if self.total > self.max_total:
            self._rescale()

    def _rescale(self) -> None:
        n = self.num_symbols
        freq = self._freq
        total = 0
        for s in range(n):
            freq[s] = (freq[s] + 1) // 2
            total += freq[s]
        self.total = total
        tree = self._tree
        for i in range(1, n + 1):
            tree[i] = 0
        for i in range(1, n + 1):
            tree[i] += freq[i - 1]
            parent = i + (i & -i)
            if parent <= n:
                tree[parent] += tree[i]


class ArithmeticEncoder:
    """32-bit integer arithmetic encoder (Witten–Neal–Cleary)."""

    def __init__(self) -> None:
        self._writer = BitWriter()
        self._low = 0
        self._high = _MASK
        self._pending = 0
        self._finished = False

    def encode(self, cum_low: int, cum_high: int, total: int) -> None:
        """Narrow the interval to ``[cum_low, cum_high) / total``."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        span = self._high - self._low + 1
        self._high = self._low + span * cum_high // total - 1
        self._low = self._low + span * cum_low // total
        low, high, pending = self._low, self._high, self._pending
        writer = self._writer
        while True:
            if high < _HALF:
                writer.write_bit(0)
                if pending:
                    writer.write_bits((1 << pending) - 1, pending)
                    pending = 0
            elif low >= _HALF:
                writer.write_bit(1)
                if pending:
                    writer.write_bits(0, pending)
                    pending = 0
                low -= _HALF
                high -= _HALF
            elif low >= _QUARTER and high < _THREE_QUARTERS:
                pending += 1
                low -= _QUARTER
                high -= _QUARTER
            else:
                break
            low <<= 1
            high = (high << 1) | 1
        self._low, self._high, self._pending = low, high, pending

    def encode_symbol(self, model: AdaptiveModel, symbol: int) -> None:
        """Encode ``symbol`` under ``model`` and update the model."""
        cum_low, cum_high = model.cum_range(symbol)
        self.encode(cum_low, cum_high, model.total)
        model.update(symbol)

    def finish(self) -> bytes:
        """Flush the final disambiguating bits and return the byte stream."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        self._finished = True
        self._pending += 1
        writer = self._writer
        if self._low < _QUARTER:
            writer.write_bit(0)
            writer.write_bits((1 << self._pending) - 1, self._pending)
        else:
            writer.write_bit(1)
            writer.write_bits(0, self._pending)
        return writer.getvalue()


class ArithmeticDecoder:
    """Mirror of :class:`ArithmeticEncoder`."""

    def __init__(self, data: bytes) -> None:
        self._reader = BitReader(data)
        self._low = 0
        self._high = _MASK
        self._code = self._reader.read_bits(_CODE_BITS)

    def decode_target(self, total: int) -> int:
        """Return the cumulative-frequency target for the next symbol."""
        span = self._high - self._low + 1
        return ((self._code - self._low + 1) * total - 1) // span

    def consume(self, cum_low: int, cum_high: int, total: int) -> None:
        """Advance past a symbol whose range was ``[cum_low, cum_high)``."""
        span = self._high - self._low + 1
        self._high = self._low + span * cum_high // total - 1
        self._low = self._low + span * cum_low // total
        low, high, code = self._low, self._high, self._code
        reader = self._reader
        while True:
            if high < _HALF:
                pass
            elif low >= _HALF:
                low -= _HALF
                high -= _HALF
                code -= _HALF
            elif low >= _QUARTER and high < _THREE_QUARTERS:
                low -= _QUARTER
                high -= _QUARTER
                code -= _QUARTER
            else:
                break
            low <<= 1
            high = (high << 1) | 1
            code = (code << 1) | reader.read_bit()
        self._low, self._high, self._code = low, high, code

    def decode_symbol(self, model: AdaptiveModel) -> int:
        """Decode one symbol under ``model`` and update the model."""
        symbol, cum_low, cum_high = model.find(self.decode_target(model.total))
        self.consume(cum_low, cum_high, model.total)
        model.update(symbol)
        return symbol


def arithmetic_encode(
    symbols: np.ndarray, num_symbols: int, increment: int = 32, max_total: int = 1 << 16
) -> bytes:
    """Adaptively encode a symbol sequence; inverse is :func:`arithmetic_decode`."""
    arr = np.asarray(symbols, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= num_symbols):
        raise ValueError("symbol out of alphabet range")
    model = AdaptiveModel(num_symbols, increment=increment, max_total=max_total)
    encoder = ArithmeticEncoder()
    encode_one = encoder.encode_symbol
    for symbol in arr.tolist():
        encode_one(model, symbol)
    return encoder.finish()


def arithmetic_decode(
    data: bytes,
    count: int,
    num_symbols: int,
    increment: int = 32,
    max_total: int = 1 << 16,
) -> np.ndarray:
    """Decode ``count`` symbols produced by :func:`arithmetic_encode`."""
    model = AdaptiveModel(num_symbols, increment=increment, max_total=max_total)
    decoder = ArithmeticDecoder(data)
    decode_one = decoder.decode_symbol
    out = np.empty(count, dtype=np.int64)
    for i in range(count):
        out[i] = decode_one(model)
    return out


def _int_sequence_checksum(byte_sum: int, n_bytes: int) -> int:
    """One-byte integrity check over the zigzag-varint byte stream."""
    return (byte_sum + n_bytes) & 0xFF


def encode_int_sequence(values: np.ndarray) -> bytes:
    """Compress arbitrary signed integers: zigzag varint bytes + arithmetic.

    Self-contained: the element count is stored in a varint header, followed
    by a one-byte checksum of the varint byte stream, so
    :func:`decode_int_sequence` needs only the byte string and a truncated
    payload raises ``ValueError`` instead of decoding plausible garbage
    (the underlying :class:`~repro.entropy.bitio.BitReader` yields phantom
    zero bits past end-of-stream, so truncation is otherwise silent).
    """
    arr = np.asarray(values, dtype=np.int64)
    header = bytearray()
    encode_uvarint(arr.size, header)
    if arr.size == 0:
        return bytes(header)
    from repro.entropy.varint import encode_varints

    byte_stream = encode_varints(arr, signed=True)
    header.append(_int_sequence_checksum(sum(byte_stream), len(byte_stream)))
    payload = arithmetic_encode(np.frombuffer(byte_stream, dtype=np.uint8), 256)
    return bytes(header) + payload


def decode_int_sequence(data: bytes, checksum: bool = True) -> np.ndarray:
    """Inverse of :func:`encode_int_sequence`.

    ``checksum=False`` decodes the legacy format-v1 layout, which carried
    no integrity byte between the count header and the arithmetic payload
    (needed to read v1 DBGC containers bit-identically).
    """
    count, pos = decode_uvarint(data, 0)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    expected = 0
    if checksum:
        if pos >= len(data):
            raise ValueError("truncated int sequence (missing checksum)")
        expected = data[pos]
        pos += 1
    # Varints are self-delimiting: decode bytes until `count` values complete.
    model = AdaptiveModel(256)
    decoder = ArithmeticDecoder(data[pos:])
    values = np.empty(count, dtype=np.int64)
    done = 0
    current = 0
    shift = 0
    byte_sum = 0
    n_bytes = 0
    while done < count:
        byte = decoder.decode_symbol(model)
        byte_sum += byte
        n_bytes += 1
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            if shift > 63:
                raise ValueError("corrupt varint in arithmetic stream")
        else:
            if current >> 64:
                raise ValueError("corrupt varint in arithmetic stream")
            # zigzag decode
            values[done] = (current >> 1) ^ -(current & 1)
            done += 1
            current = 0
            shift = 0
    if checksum and _int_sequence_checksum(byte_sum, n_bytes) != expected:
        raise ValueError("truncated or corrupt int sequence (checksum mismatch)")
    return values
