"""Pluggable entropy-backend registry for the hot coding paths.

Every arithmetic-coded stream in DBGC — octree/quadtree occupancy, Δφ,
∇L_r, L_ref, outlier z, per-leaf counts, attributes — goes through one of
the backends registered here:

- ``"adaptive-arith"`` — the paper's adaptive arithmetic coder
  (:mod:`repro.entropy.arithmetic`): symbol-at-a-time, model-free wire
  format, best on tiny or highly non-stationary streams.
- ``"rans"`` — the numpy-vectorized semi-static range coder
  (:mod:`repro.entropy.rans`): two-pass, transmits a frequency table,
  then codes in batches; a multi-x speedup on the dominant streams.

Encoded streams are *self-describing*: :func:`encode_tagged_symbols` and
:func:`encode_tagged_ints` prefix one backend tag byte, so decoders never
need out-of-band backend knowledge — the container records the frame-level
default purely as metadata.  The registry is the seam future backends
(native kernels, context-mixing coders) plug into: register an instance
and select it per-frame via ``DBGCParams.entropy_backend``.
"""

from __future__ import annotations

import numpy as np

from repro.observability import recorder as _obs
from repro.entropy.arithmetic import (
    arithmetic_decode,
    arithmetic_encode,
    decode_int_sequence,
    encode_int_sequence,
)
from repro.entropy.rans import rans_decode, rans_encode
from repro.entropy.varint import (
    decode_uvarint,
    decode_varints,
    encode_uvarint,
    encode_varints,
)

__all__ = [
    "EntropyBackend",
    "AdaptiveArithmeticBackend",
    "RansBackend",
    "register_backend",
    "get_backend",
    "backend_for_tag",
    "resolve_tag",
    "available_backends",
    "encode_tagged_symbols",
    "decode_tagged_symbols",
    "encode_tagged_ints",
    "decode_tagged_ints",
    "DEFAULT_BACKEND",
]


class EntropyBackend:
    """A symbol-stream codec with a stable name and wire tag.

    Subclasses implement :meth:`encode` / :meth:`decode` over a finite
    alphabet.  Integer sequences ride on top: zigzag varint bytes coded as
    an alphabet-256 stream (:meth:`encode_ints` / :meth:`decode_ints`);
    backends may override those when they have a better native path.
    """

    #: Registry name (e.g. ``"rans"``); unique.
    name: str
    #: One-byte wire tag written ahead of tagged streams; stable forever.
    tag: int

    def encode(self, symbols: np.ndarray, num_symbols: int) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes, count: int, num_symbols: int) -> np.ndarray:
        raise NotImplementedError

    def encode_ints(self, values: np.ndarray) -> bytes:
        """Compress arbitrary signed integers (self-contained payload)."""
        arr = np.asarray(values, dtype=np.int64)
        out = bytearray()
        encode_uvarint(arr.size, out)
        if arr.size == 0:
            return bytes(out)
        byte_stream = encode_varints(arr, signed=True)
        encode_uvarint(len(byte_stream), out)
        out += self.encode(np.frombuffer(byte_stream, dtype=np.uint8), 256)
        return bytes(out)

    def decode_ints(self, data: bytes) -> np.ndarray:
        """Inverse of :meth:`encode_ints`."""
        count, pos = decode_uvarint(data, 0)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        n_bytes, pos = decode_uvarint(data, pos)
        raw = self.decode(data[pos:], n_bytes, 256).astype(np.uint8).tobytes()
        return decode_varints(raw, count, signed=True)


class AdaptiveArithmeticBackend(EntropyBackend):
    """The paper's adaptive arithmetic coder behind the backend interface."""

    name = "adaptive-arith"
    tag = 0

    def __init__(self, increment: int = 32, max_total: int = 1 << 16):
        self.increment = increment
        self.max_total = max_total

    def encode(self, symbols: np.ndarray, num_symbols: int) -> bytes:
        return arithmetic_encode(
            symbols, num_symbols, increment=self.increment, max_total=self.max_total
        )

    def decode(self, data: bytes, count: int, num_symbols: int) -> np.ndarray:
        return arithmetic_decode(
            data, count, num_symbols, increment=self.increment, max_total=self.max_total
        )

    def encode_ints(self, values: np.ndarray) -> bytes:
        # The native int-sequence path: varint bytes are self-delimiting, so
        # no byte-count header is needed and the checksum guards truncation.
        return encode_int_sequence(values)

    def decode_ints(self, data: bytes) -> np.ndarray:
        return decode_int_sequence(data)


class RansBackend(EntropyBackend):
    """Vectorized semi-static rANS (see :mod:`repro.entropy.rans`).

    Streams below :attr:`small_threshold` symbols fall back to the adaptive
    arithmetic coder (recorded in a leading mode byte): rANS pays a
    frequency-table header that dominates tiny streams, and the adaptive
    coder's per-symbol cost is negligible at that size.  Large streams —
    the ones that dominate wall-clock — take the vectorized path.
    """

    name = "rans"
    tag = 1

    _MODE_RANS = 0
    _MODE_ADAPTIVE = 1

    def __init__(self, small_threshold: int = 1024):
        self.small_threshold = small_threshold

    def encode(self, symbols: np.ndarray, num_symbols: int) -> bytes:
        arr = np.asarray(symbols)
        if arr.size == 0:
            return b""
        if arr.size < self.small_threshold:
            return bytes([self._MODE_ADAPTIVE]) + arithmetic_encode(arr, num_symbols)
        return bytes([self._MODE_RANS]) + rans_encode(arr, num_symbols)

    def decode(self, data: bytes, count: int, num_symbols: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if not data:
            raise ValueError("truncated rans stream (missing mode byte)")
        mode, payload = data[0], data[1:]
        if mode == self._MODE_ADAPTIVE:
            return arithmetic_decode(payload, count, num_symbols)
        if mode == self._MODE_RANS:
            return rans_decode(payload, count, num_symbols)
        raise ValueError(f"unknown rans stream mode byte {mode}")


_REGISTRY: dict[str, EntropyBackend] = {}
_BY_TAG: dict[int, EntropyBackend] = {}

DEFAULT_BACKEND = "adaptive-arith"


def register_backend(backend: EntropyBackend) -> EntropyBackend:
    """Add a backend to the registry; names and tags must be unique."""
    if not 0 <= backend.tag <= 255:
        raise ValueError(f"backend tag must fit one byte, got {backend.tag}")
    existing = _REGISTRY.get(backend.name)
    if existing is not None and existing.tag != backend.tag:
        raise ValueError(f"backend name {backend.name!r} already registered")
    claimed = _BY_TAG.get(backend.tag)
    if claimed is not None and claimed.name != backend.name:
        raise ValueError(f"backend tag {backend.tag} already registered")
    _REGISTRY[backend.name] = backend
    _BY_TAG[backend.tag] = backend
    return backend


register_backend(AdaptiveArithmeticBackend())
register_backend(RansBackend())


def get_backend(backend: str | EntropyBackend) -> EntropyBackend:
    """Resolve a backend by name (or pass an instance through)."""
    if isinstance(backend, EntropyBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise ValueError(
            f"unknown entropy backend {backend!r}; "
            f"available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def backend_for_tag(tag: int) -> EntropyBackend:
    """Resolve a backend by its wire tag byte."""
    try:
        return _BY_TAG[tag]
    except KeyError:
        raise ValueError(f"unknown entropy backend tag {tag}") from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


# -- self-describing stream helpers ---------------------------------------------


def encode_tagged_symbols(
    symbols: np.ndarray, num_symbols: int, backend: str | EntropyBackend = DEFAULT_BACKEND
) -> bytes:
    """Encode a symbol stream with a leading backend tag byte."""
    b = get_backend(backend)
    payload = bytes([b.tag]) + b.encode(symbols, num_symbols)
    rec = _obs.current()
    if rec is not None:
        rec.count("entropy." + b.name + ".streams")
        rec.add_bytes("entropy." + b.name, len(payload))
    return payload


def resolve_tag(tag: int, preferred: EntropyBackend | None = None) -> EntropyBackend:
    """Backend for a wire tag, honoring a caller-configured instance.

    Codecs that parametrize their backend (e.g. a custom adaptive
    ``increment``) pass that instance as ``preferred``; it is used whenever
    the tag matches, so encoder and decoder stay in lockstep.
    """
    if preferred is not None and preferred.tag == tag:
        return preferred
    return backend_for_tag(tag)


def decode_tagged_symbols(
    data: bytes,
    count: int,
    num_symbols: int,
    preferred: EntropyBackend | None = None,
) -> np.ndarray:
    """Decode a tagged symbol stream (backend chosen by its tag byte)."""
    if not data:
        raise ValueError("empty tagged symbol stream")
    return resolve_tag(data[0], preferred).decode(data[1:], count, num_symbols)


def encode_tagged_ints(
    values: np.ndarray, backend: str | EntropyBackend = DEFAULT_BACKEND
) -> bytes:
    """Encode a signed integer sequence with a leading backend tag byte."""
    b = get_backend(backend)
    payload = bytes([b.tag]) + b.encode_ints(values)
    rec = _obs.current()
    if rec is not None:
        rec.count("entropy." + b.name + ".streams")
        rec.add_bytes("entropy." + b.name, len(payload))
    return payload


def decode_tagged_ints(
    data: bytes, preferred: EntropyBackend | None = None
) -> np.ndarray:
    """Decode a tagged integer sequence (backend chosen by its tag byte)."""
    if not data:
        raise ValueError("empty tagged int stream")
    return resolve_tag(data[0], preferred).decode_ints(data[1:])
