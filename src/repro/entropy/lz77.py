"""Hash-chain LZ77 tokenizer.

LZ77 [61] factors a byte stream into literals and back-references
``(offset, length)`` into a sliding window.  We keep the tokenizer separate
from the entropy stage so the deflate-style codec
(:mod:`repro.entropy.deflate`) can entropy-code each token stream with the
model that suits it.

Token serialization (consumed by :func:`lz77_decompress_tokens`):

- ``flags`` — one bit per token, MSB-first; 0 = literal, 1 = match.
- ``literals`` — the literal bytes, in order.
- ``matches`` — per match: ``uvarint(length - min_match)``,
  ``uvarint(offset)``.
"""

from __future__ import annotations

from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = ["Lz77Tokens", "lz77_compress_tokens", "lz77_decompress_tokens"]

MIN_MATCH = 4
MAX_MATCH = 258
WINDOW = 1 << 15


class Lz77Tokens:
    """The three raw token streams plus the token count."""

    __slots__ = ("n_tokens", "flags", "literals", "matches")

    def __init__(self, n_tokens: int, flags: bytes, literals: bytes, matches: bytes):
        self.n_tokens = n_tokens
        self.flags = flags
        self.literals = literals
        self.matches = matches


def lz77_compress_tokens(data: bytes, max_chain: int = 32) -> Lz77Tokens:
    """Greedy hash-chain LZ77 factorization of ``data``."""
    n = len(data)
    flags = BitWriter()
    literals = bytearray()
    matches = bytearray()
    n_tokens = 0
    # Hash chains: 4-byte prefix -> recent positions (most recent last).
    chains: dict[int, list[int]] = {}
    pos = 0
    while pos < n:
        best_len = 0
        best_offset = 0
        if pos + MIN_MATCH <= n:
            key = int.from_bytes(data[pos : pos + 4], "little")
            candidates = chains.get(key)
            if candidates:
                limit = min(MAX_MATCH, n - pos)
                # Walk the chain newest-first; stop at the window edge.
                for candidate in reversed(candidates):
                    if pos - candidate > WINDOW:
                        break
                    length = 4
                    while length < limit and data[candidate + length] == data[pos + length]:
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_offset = pos - candidate
                        if length >= limit:
                            break
        if best_len >= MIN_MATCH:
            flags.write_bit(1)
            encode_uvarint(best_len - MIN_MATCH, matches)
            encode_uvarint(best_offset, matches)
            end = pos + best_len
            # Index the covered positions so later matches can reference them.
            last = min(end, n - MIN_MATCH + 1)
            step = 1 if best_len <= 16 else 2
            for p in range(pos, last, step):
                key = int.from_bytes(data[p : p + 4], "little")
                chain = chains.setdefault(key, [])
                chain.append(p)
                if len(chain) > max_chain:
                    del chain[0 : len(chain) - max_chain]
            pos = end
        else:
            flags.write_bit(0)
            literals.append(data[pos])
            if pos + MIN_MATCH <= n:
                key = int.from_bytes(data[pos : pos + 4], "little")
                chain = chains.setdefault(key, [])
                chain.append(pos)
                if len(chain) > max_chain:
                    del chain[0 : len(chain) - max_chain]
            pos += 1
        n_tokens += 1
    return Lz77Tokens(n_tokens, flags.getvalue(), bytes(literals), bytes(matches))


def lz77_decompress_tokens(tokens: Lz77Tokens) -> bytes:
    """Reconstruct the original byte stream from token streams."""
    out = bytearray()
    flag_reader = BitReader(tokens.flags)
    literals = tokens.literals
    matches = tokens.matches
    lit_pos = 0
    match_pos = 0
    for _ in range(tokens.n_tokens):
        if flag_reader.read_bit():
            length, match_pos = decode_uvarint(matches, match_pos)
            offset, match_pos = decode_uvarint(matches, match_pos)
            length += MIN_MATCH
            if offset <= 0 or offset > len(out):
                raise ValueError("corrupt LZ77 stream: bad offset")
            start = len(out) - offset
            if offset >= length:
                out.extend(out[start : start + length])
            else:
                # Overlapping copy: replicate byte-by-byte (RLE-like matches).
                for i in range(length):
                    out.append(out[start + i])
        else:
            if lit_pos >= len(literals):
                raise ValueError("corrupt LZ77 stream: missing literal")
            out.append(literals[lit_pos])
            lit_pos += 1
    return bytes(out)
