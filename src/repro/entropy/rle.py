"""Byte run-length coding.

A lightweight database-style codec (the paper surveys these in Section 2.2);
used for highly repetitive side streams such as the reference-choice stream
``L_ref`` when a frame is dominated by flat scenery.
"""

from __future__ import annotations

from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = ["rle_encode", "rle_decode"]


def rle_encode(data: bytes) -> bytes:
    """Encode as ``(byte, varint run length)`` pairs."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        j = i + 1
        while j < n and data[j] == byte:
            j += 1
        out.append(byte)
        encode_uvarint(j - i, out)
        i = j
    return bytes(out)


def rle_decode(data: bytes) -> bytes:
    """Inverse of :func:`rle_encode`."""
    out = bytearray()
    pos = 0
    while pos < len(data):
        byte = data[pos]
        run, pos = decode_uvarint(data, pos + 1)
        out.extend(bytes([byte]) * run)
    return bytes(out)
