"""Canonical Huffman coding for byte streams.

Serves as the entropy stage of our deflate-style codec
(:mod:`repro.entropy.deflate`) and as a standalone baseline entropy coder in
the ablation benchmarks.  Codes are canonical, so the header only carries
code lengths.
"""

from __future__ import annotations

import heapq
from collections import Counter

from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = [
    "build_code_lengths",
    "canonical_codes",
    "huffman_compress",
    "huffman_decompress",
]


def build_code_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Return Huffman code lengths per symbol from raw frequencies.

    A single-symbol alphabet gets length 1 (a degenerate but decodable code).
    """
    symbols = [s for s, f in frequencies.items() if f > 0]
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}
    # Heap of (weight, tiebreak, tree); tree is either a symbol or a pair.
    heap: list[tuple[int, int, object]] = [
        (frequencies[s], s, s) for s in symbols
    ]
    heapq.heapify(heap)
    counter = 256  # tiebreak ids beyond the byte range
    while len(heap) > 1:
        w1, _, t1 = heapq.heappop(heap)
        w2, _, t2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, counter, (t1, t2)))
        counter += 1
    lengths: dict[int, int] = {}

    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)
    return lengths


def canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Assign canonical codes: returns ``symbol -> (code, length)``.

    Symbols are ordered by (length, symbol value), codes increase
    lexicographically — the scheme used by Deflate (RFC 1951 §3.2.2).
    """
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    prev_len = 0
    for symbol, length in ordered:
        code <<= length - prev_len
        codes[symbol] = (code, length)
        code += 1
        prev_len = length
    return codes


class _CanonicalDecoder:
    """Bit-serial canonical Huffman decoder tables."""

    def __init__(self, lengths: dict[int, int]) -> None:
        if not lengths:
            raise ValueError("cannot build decoder for an empty code")
        self.max_length = max(lengths.values())
        ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
        self.first_code = [0] * (self.max_length + 1)
        self.count = [0] * (self.max_length + 1)
        self.offset = [0] * (self.max_length + 1)
        self.symbols = [symbol for symbol, _ in ordered]
        code = 0
        prev_len = 0
        index = 0
        for symbol, length in ordered:
            code <<= length - prev_len
            if self.count[length] == 0:
                self.first_code[length] = code
                self.offset[length] = index
            self.count[length] += 1
            code += 1
            prev_len = length
            index += 1

    def decode_one(self, reader: BitReader) -> int:
        code = 0
        for length in range(1, self.max_length + 1):
            code = (code << 1) | reader.read_bit()
            relative = code - self.first_code[length]
            if 0 <= relative < self.count[length]:
                return self.symbols[self.offset[length] + relative]
        raise ValueError("invalid Huffman code in stream")


def _encode_lengths_header(lengths: dict[int, int], out: bytearray) -> None:
    encode_uvarint(len(lengths), out)
    for symbol in sorted(lengths):
        encode_uvarint(symbol, out)
        encode_uvarint(lengths[symbol], out)


def _decode_lengths_header(data: bytes, pos: int) -> tuple[dict[int, int], int]:
    n, pos = decode_uvarint(data, pos)
    lengths: dict[int, int] = {}
    for _ in range(n):
        symbol, pos = decode_uvarint(data, pos)
        length, pos = decode_uvarint(data, pos)
        lengths[symbol] = length
    return lengths, pos


def huffman_compress(data: bytes) -> bytes:
    """Compress a byte string with a one-shot canonical Huffman code."""
    out = bytearray()
    encode_uvarint(len(data), out)
    if not data:
        return bytes(out)
    lengths = build_code_lengths(Counter(data))
    _encode_lengths_header(lengths, out)
    codes = canonical_codes(lengths)
    writer = BitWriter()
    write_bits = writer.write_bits
    table = [codes.get(s) for s in range(256)]
    for byte in data:
        code, length = table[byte]
        write_bits(code, length)
    return bytes(out) + writer.getvalue()


def huffman_decompress(data: bytes) -> bytes:
    """Inverse of :func:`huffman_compress`."""
    count, pos = decode_uvarint(data, 0)
    if count == 0:
        return b""
    lengths, pos = _decode_lengths_header(data, pos)
    decoder = _CanonicalDecoder(lengths)
    reader = BitReader(data[pos:])
    out = bytearray(count)
    decode_one = decoder.decode_one
    for i in range(count):
        out[i] = decode_one(reader)
    return bytes(out)
