"""Deflate-style codec: LZ77 factorization + canonical Huffman entropy stage.

The paper compresses the azimuthal delta streams with Deflate [13] because
neighbouring polylines repeat whole sub-sequences (Step 6).  This codec
follows the same two-stage recipe — LZ77 to exploit repeats, Huffman to
squeeze the residual streams — in our own container format (we do not chase
RFC 1951 bit-compatibility; see DESIGN.md §4).
"""

from __future__ import annotations

from repro.entropy.huffman import huffman_compress, huffman_decompress
from repro.entropy.lz77 import Lz77Tokens, lz77_compress_tokens, lz77_decompress_tokens
from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = ["deflate_compress", "deflate_decompress"]

# A tiny input cannot win from the LZ+Huffman headers; store it raw.
_STORE_THRESHOLD = 64

_MODE_STORED = 0
_MODE_DEFLATE = 1


def deflate_compress(data: bytes, max_chain: int = 32) -> bytes:
    """Compress ``data``; always decodable by :func:`deflate_decompress`."""
    if len(data) < _STORE_THRESHOLD:
        return bytes([_MODE_STORED]) + data
    tokens = lz77_compress_tokens(data, max_chain=max_chain)
    literals = huffman_compress(tokens.literals)
    matches = huffman_compress(tokens.matches)
    out = bytearray([_MODE_DEFLATE])
    encode_uvarint(tokens.n_tokens, out)
    for section in (tokens.flags, literals, matches):
        encode_uvarint(len(section), out)
    body = bytes(out) + tokens.flags + literals + matches
    if len(body) >= len(data) + 1:
        # Entropy stage lost: fall back to stored mode.
        return bytes([_MODE_STORED]) + data
    return body


def deflate_decompress(data: bytes) -> bytes:
    """Inverse of :func:`deflate_compress`."""
    if not data:
        raise ValueError("empty deflate stream")
    mode = data[0]
    if mode == _MODE_STORED:
        return data[1:]
    if mode != _MODE_DEFLATE:
        raise ValueError(f"unknown deflate mode byte {mode}")
    pos = 1
    n_tokens, pos = decode_uvarint(data, pos)
    sizes = []
    for _ in range(3):
        size, pos = decode_uvarint(data, pos)
        sizes.append(size)
    flags = data[pos : pos + sizes[0]]
    pos += sizes[0]
    literals = huffman_decompress(data[pos : pos + sizes[1]])
    pos += sizes[1]
    matches = huffman_decompress(data[pos : pos + sizes[2]])
    return lz77_decompress_tokens(Lz77Tokens(n_tokens, flags, literals, matches))
