"""Golomb–Rice coding for geometric-ish integer distributions.

A lightweight database codec (paper Section 2.2 surveys this family): value
``v`` splits into quotient ``v >> k`` (unary) and remainder (``k`` raw
bits).  Near-geometric delta streams — polyline lengths, dropout gap runs —
code close to entropy with the right ``k``, and the optimal ``k`` is cheap
to estimate from the mean.
"""

from __future__ import annotations

import numpy as np

from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import decode_uvarint, encode_uvarint, zigzag_decode, zigzag_encode

__all__ = ["rice_parameter_for", "rice_encode", "rice_decode"]

#: Safety cap: a quotient run longer than this means k was absurdly small.
_MAX_QUOTIENT = 1 << 20


def rice_parameter_for(values: np.ndarray) -> int:
    """A good Rice parameter k for unsigned values (mean-based rule)."""
    values = np.asarray(values, dtype=np.uint64)
    if values.size == 0:
        return 0
    mean = float(values.mean())
    k = 0
    # Rule of thumb: 2^k close to the mean codes ~entropy for geometric data.
    while (1 << (k + 1)) <= mean + 1.0 and k < 40:
        k += 1
    return k


def rice_encode(values: np.ndarray, signed: bool = True) -> bytes:
    """Encode integers with Rice coding; self-contained header.

    Layout: ``uvarint count | uvarint k | flags byte | bitstream``.
    """
    arr = np.asarray(values, dtype=np.int64)
    u = zigzag_encode(arr) if signed else arr.astype(np.uint64)
    out = bytearray()
    encode_uvarint(arr.size, out)
    if arr.size == 0:
        return bytes(out)
    k = rice_parameter_for(u)
    encode_uvarint(k, out)
    out.append(1 if signed else 0)
    writer = BitWriter()
    for value in u.tolist():
        quotient = value >> k
        if quotient >= _MAX_QUOTIENT:
            raise ValueError(
                f"value {value} too large for Rice parameter {k}; "
                "use varint/arithmetic coding for heavy-tailed data"
            )
        # Unary quotient: `quotient` ones then a zero.
        while quotient >= 32:
            writer.write_bits((1 << 32) - 1, 32)
            quotient -= 32
        if quotient:
            writer.write_bits((1 << quotient) - 1, quotient)
        writer.write_bit(0)
        if k:
            writer.write_bits(value & ((1 << k) - 1), k)
    return bytes(out) + writer.getvalue()


def rice_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`rice_encode`."""
    count, pos = decode_uvarint(data, 0)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    k, pos = decode_uvarint(data, pos)
    signed = bool(data[pos])
    pos += 1
    reader = BitReader(data[pos:])
    u = np.empty(count, dtype=np.uint64)
    for i in range(count):
        quotient = 0
        while reader.read_bit():
            quotient += 1
            if quotient > _MAX_QUOTIENT:
                raise ValueError("corrupt Rice stream: runaway unary run")
        remainder = reader.read_bits(k) if k else 0
        u[i] = (quotient << k) | remainder
    return zigzag_decode(u) if signed else u.astype(np.int64)
