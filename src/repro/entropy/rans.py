"""Numpy-vectorized range coder (interleaved rANS) with two model modes.

The adaptive arithmetic coder in :mod:`repro.entropy.arithmetic` is exact
but pays a Python-level loop per symbol, which dominates DBGC's wall-clock
on the occupancy / Δφ / ∇L_r streams (Figure 13).  This module provides the
batched alternative: a two-pass range coder in the rANS family (Duda's
asymmetric numeral systems) whose inner loops are numpy operations over a
bank of interleaved coder states — one Python iteration per *row* of lanes
instead of one per symbol.

Coder geometry (the rans64 layout):

- 64-bit states constrained to ``[2^31, 2^63)``;
- 12-bit frequency scale (``M = 4096``);
- 32-bit renormalization words, so each state emits/consumes at most one
  word per symbol — the property that makes the lane bank vectorizable.

rANS is last-in-first-out: the encoder walks the symbols *backwards* and
the emitted word stream is reversed, so the decoder streams forwards.  The
decoder's final state per lane must equal the encoder's initial state
(``2^31``), which doubles as a free end-of-stream integrity check: a
truncated or corrupted payload raises ``ValueError`` instead of silently
decoding garbage.

Probability models.  LiDAR streams are *piecewise* stationary — azimuthal
deltas are near-constant along a scan line, octree occupancy drifts with
tree level and local geometry — so a single static histogram loses several
percent to the adaptive coder.  The encoder therefore picks, by a cheap
entropy estimate, between two transmitted modes:

- **Semi-static** (mode 0): histogram per block of ``rows_per_block``
  rows, normalized to the 12-bit scale and transmitted as compact tables.
  Blocks align with whole rows of the lane bank, so the coder states run
  straight through block boundaries: a block costs one table and nothing
  else.  Best when a handful of tables capture the drift (Δφ, Δθ).
- **Lagged-adaptive** (mode 1): no tables at all — both sides rebuild the
  model every few rows from the symbols already coded (counts with
  periodic halving, exact integer normalization), mirroring the adaptive
  coder's tracking at a ~hundred-symbol lag.  Best when the distribution
  drifts continuously (occupancy, ∇L_r).

Payload layout (see docs/FORMAT.md)::

    uvarint n_lanes
    uvarint mode                  (0 = semi-static, 1 = lagged-adaptive)
    [mode 0] uvarint rows_per_block   (0 = one table for the whole stream)
             per block:
               uvarint n_present
               per present symbol (ascending): uvarint gap, uvarint freq-1
    n_lanes * u64  final encoder states (the decoder's initial states)
    uvarint n_words
    n_words * u32  renormalization words

An empty symbol sequence encodes to ``b""``.
"""

from __future__ import annotations

import numpy as np

from repro.entropy.varint import decode_uvarint, encode_uvarint

__all__ = ["rans_encode", "rans_decode"]

#: Frequency scale bits: normalized frequencies sum to ``1 << _SCALE_BITS``.
_SCALE_BITS = 12
_M = 1 << _SCALE_BITS

#: Lower bound of the coder state interval ``[_LOW, _LOW << 32)``.
_LOW = np.uint64(1 << 31)

#: Lane-count policy: one lane per this many symbols, capped.  More lanes
#: mean fewer Python-level iterations but 8 bytes of state flush each, so
#: the cap keeps the header overhead negligible on the hot streams while
#: the divisor keeps short streams from paying for unused lanes.
_LANE_DIV = 1024
_MAX_LANES = 64

_MODE_STATIC = 0
_MODE_ADAPTIVE = 1

#: Candidate block sizes (symbols) for the semi-static per-block tables;
#: the encoder also always considers a single whole-stream table.
_BLOCK_CANDIDATES = (1024, 2048, 4096, 8192)

#: Lagged-adaptive model: rebuild every ``_ADAPT_PERIOD`` symbols (rounded
#: to whole rows); halve the counts when they reach ``_ADAPT_CAP`` so the
#: model tracks drift like the arithmetic coder's increment/max_total.
_ADAPT_PERIOD = 64
_ADAPT_CAP = 512
#: Streams shorter than this skip the lagged-adaptive candidate: the
#: uniform-model warmup dominates before the model has learned anything.
_ADAPT_MIN = 2048

_U32_MASK = np.uint64(0xFFFFFFFF)
_SLOT_MASK = np.uint64(_M - 1)
_SHIFT_32 = np.uint64(32)
_SHIFT_SCALE = np.uint64(_SCALE_BITS)
#: Encoder renorm threshold is ``freq << 51``: ``(_LOW >> _SCALE_BITS) << 32``.
_SHIFT_XMAX = np.uint64(31 - _SCALE_BITS + 32)


def _default_lanes(count: int) -> int:
    return max(1, min(_MAX_LANES, count // _LANE_DIV))


def _normalize_freqs(counts: np.ndarray) -> np.ndarray:
    """Scale raw counts to frequencies summing to ``_M``, all present >= 1."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    present = np.flatnonzero(counts)
    if len(present) > _M:
        raise ValueError(
            f"alphabet has {len(present)} distinct symbols; rANS scale "
            f"supports at most {_M}"
        )
    freq = np.zeros_like(counts)
    freq[present] = np.maximum(counts[present] * _M // total, 1)
    drift = int(freq.sum()) - _M
    if drift:
        # Settle the rounding drift on the most frequent symbols, never
        # driving a present frequency below 1.
        order = present[np.argsort(counts[present], kind="stable")[::-1]]
        if drift < 0:
            freq[order[0]] -= drift
        else:
            i = 0
            while drift > 0:
                s = order[i % len(order)]
                take = min(int(freq[s]) - 1, drift)
                freq[s] -= take
                drift -= take
                i += 1
    return freq


def _smoothed_model(counts: np.ndarray, num_symbols: int) -> np.ndarray:
    """Exact integer normalization with a uniform floor (vectorized).

    ``cum[s] = s + (M - A) * C[s] // T`` is strictly increasing, so every
    symbol gets frequency >= 1 and the total is exactly ``_M`` — no
    drift-settling loop, and bit-identical on encoder and decoder.
    """
    cum = np.zeros(num_symbols + 1, dtype=np.int64)
    np.cumsum(counts, out=cum[1:])
    total = max(int(cum[-1]), 1)
    return np.arange(num_symbols + 1, dtype=np.int64) + (
        (_M - num_symbols) * cum
    ) // total


def _write_freq_table(freq: np.ndarray, out: bytearray) -> None:
    present = np.flatnonzero(freq)
    encode_uvarint(len(present), out)
    prev = -1
    for s in present.tolist():
        encode_uvarint(s - prev - 1, out)
        encode_uvarint(int(freq[s]) - 1, out)
        prev = s


def _block_cost_estimate(arr: np.ndarray, num_symbols: int, block: int) -> float:
    """Approximate coded bytes with one frequency table per ``block`` symbols."""
    n = arr.size
    total = 0.0
    for lo in range(0, n, block):
        chunk = arr[lo : lo + block]
        counts = np.bincount(chunk, minlength=num_symbols)
        nz = counts[counts > 0]
        p = nz / chunk.size
        total += float(-(p * np.log2(p)).sum()) * chunk.size / 8.0
        # Table estimate: gap varint (~1 byte) + freq varint, sized from the
        # proportional frequency each count would normalize to.
        f = np.maximum(nz * _M // chunk.size, 1)
        total += 1.0 + float((2.0 + (f > 128)).sum())
    return total


def _choose_block_rows(
    arr: np.ndarray, num_symbols: int, lanes: int
) -> tuple[int, float]:
    """Best ``rows_per_block`` (0 = single table) by the entropy estimate."""
    n = arr.size
    best_rows, best_cost = 0, _block_cost_estimate(arr, num_symbols, n)
    for block in _BLOCK_CANDIDATES:
        if block >= n:
            continue
        rows = max(1, block // lanes)
        cost = _block_cost_estimate(arr, num_symbols, rows * lanes)
        if cost < best_cost:
            best_rows, best_cost = rows, cost
    return best_rows, best_cost


def _adaptive_sweep(
    arr: np.ndarray, num_symbols: int, lanes: int
) -> tuple[np.ndarray, np.ndarray, float]:
    """Forward pass of the lagged-adaptive model.

    Returns the per-position ``(freq, cum)`` lookups the backward coding
    loop needs, plus the exact model cost in bytes (for mode selection).
    """
    n = arr.size
    period = max(1, _ADAPT_PERIOD // lanes) * lanes
    pos_freq = np.empty(n, dtype=np.uint64)
    pos_cum = np.empty(n, dtype=np.uint64)
    counts = np.zeros(num_symbols, dtype=np.int64)
    for lo in range(0, n, period):
        chunk = arr[lo : lo + period]
        g = _smoothed_model(counts, num_symbols)
        pos_freq[lo : lo + chunk.size] = np.diff(g)[chunk].astype(np.uint64)
        pos_cum[lo : lo + chunk.size] = g[chunk].astype(np.uint64)
        counts += np.bincount(chunk, minlength=num_symbols)
        if int(counts.sum()) >= _ADAPT_CAP:
            counts >>= 1
    bits = float(-np.log2(pos_freq.astype(np.float64) / _M).sum())
    return pos_freq, pos_cum, bits / 8.0


def rans_encode(
    symbols: np.ndarray,
    num_symbols: int,
    n_lanes: int | None = None,
    mode: int | None = None,
    rows_per_block: int | None = None,
) -> bytes:
    """Encode a symbol sequence; inverse is :func:`rans_decode`.

    ``mode``/``rows_per_block`` override the automatic model selection
    (see the module docstring); both default to the encoder's choice by
    entropy estimate.
    """
    if num_symbols < 1:
        raise ValueError(f"need at least one symbol, got {num_symbols}")
    arr = np.ascontiguousarray(symbols, dtype=np.int64).ravel()
    n = arr.size
    if n == 0:
        return b""
    if arr.min() < 0 or arr.max() >= num_symbols:
        raise ValueError("symbol out of alphabet range")

    lanes = _default_lanes(n) if n_lanes is None else max(1, min(int(n_lanes), n))
    rows = -(-n // lanes)
    rem = n - (rows - 1) * lanes

    # -- model selection and per-position (freq, cum) materialization -----------
    rpb = None
    if mode is None:
        rpb, static_cost = _choose_block_rows(arr, num_symbols, lanes)
        if n >= _ADAPT_MIN:
            pos_freq, pos_cum, adaptive_cost = _adaptive_sweep(
                arr, num_symbols, lanes
            )
            mode = _MODE_ADAPTIVE if adaptive_cost < static_cost else _MODE_STATIC
        else:
            mode = _MODE_STATIC
    elif mode == _MODE_ADAPTIVE:
        pos_freq, pos_cum, _ = _adaptive_sweep(arr, num_symbols, lanes)
    elif mode != _MODE_STATIC:
        raise ValueError(f"unknown rANS mode {mode}")

    tables = bytearray()
    if mode == _MODE_STATIC:
        if rpb is None:
            rpb = (
                max(0, int(rows_per_block))
                if rows_per_block is not None
                else _choose_block_rows(arr, num_symbols, lanes)[0]
            )
        if rows_per_block is not None:
            rpb = max(0, int(rows_per_block))
        if rpb >= rows:
            rpb = 0
        block_sym = rpb * lanes
        starts = list(range(0, n, block_sym)) if rpb else [0]
        pos_freq = np.empty(n, dtype=np.uint64)
        pos_cum = np.empty(n, dtype=np.uint64)
        for lo in starts:
            chunk = arr[lo : lo + block_sym] if rpb else arr
            freq = _normalize_freqs(np.bincount(chunk, minlength=num_symbols))
            cum = np.zeros(num_symbols + 1, dtype=np.int64)
            np.cumsum(freq, out=cum[1:])
            pos_freq[lo : lo + chunk.size] = freq[chunk].astype(np.uint64)
            pos_cum[lo : lo + chunk.size] = cum[chunk].astype(np.uint64)
            _write_freq_table(freq, tables)
    pos_xmax = pos_freq << _SHIFT_XMAX

    # -- backward coding over the lane bank --------------------------------------
    x = np.full(lanes, _LOW, dtype=np.uint64)
    scale = np.uint64(_M)
    chunks: list[np.ndarray] = []
    # LIFO: walk rows back to front; the partial row (if any) goes first.
    for r in range(rows - 1, -1, -1):
        k = rem if r == rows - 1 else lanes
        lo = r * lanes
        f = pos_freq[lo : lo + k]
        xs = x[:k]
        msk = xs >= pos_xmax[lo : lo + k]
        if msk.any():
            # Reversed within the row so the global reversal below leaves
            # each row's words in ascending lane order for the decoder.
            chunks.append((xs[msk] & _U32_MASK).astype(np.uint32)[::-1])
            xs[msk] >>= _SHIFT_32
        x[:k] = (xs // f) * scale + (xs % f) + pos_cum[lo : lo + k]

    words = (
        np.concatenate(chunks)[::-1] if chunks else np.empty(0, dtype=np.uint32)
    )

    out = bytearray()
    encode_uvarint(lanes, out)
    encode_uvarint(mode, out)
    if mode == _MODE_STATIC:
        encode_uvarint(rpb, out)
        out += tables
    out += x.astype("<u8").tobytes()
    encode_uvarint(len(words), out)
    out += words.astype("<u4").tobytes()
    return bytes(out)


def _read_freq_table(
    data: bytes, pos: int, num_symbols: int
) -> tuple[np.ndarray, int]:
    n_present, pos = decode_uvarint(data, pos)
    freq = np.zeros(num_symbols, dtype=np.int64)
    s = -1
    for _ in range(n_present):
        gap, pos = decode_uvarint(data, pos)
        f_minus_1, pos = decode_uvarint(data, pos)
        s += gap + 1
        if s >= num_symbols:
            raise ValueError("rANS frequency table exceeds alphabet")
        freq[s] = f_minus_1 + 1
    if int(freq.sum()) != _M:
        raise ValueError("corrupt rANS frequency table")
    return freq, pos


def rans_decode(data: bytes, count: int, num_symbols: int) -> np.ndarray:
    """Decode ``count`` symbols produced by :func:`rans_encode`.

    Raises ``ValueError`` on truncated or corrupted payloads: the word
    stream must be consumed exactly and every lane must land back on the
    encoder's initial state.
    """
    if num_symbols < 1:
        raise ValueError(f"need at least one symbol, got {num_symbols}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    lanes, pos = decode_uvarint(data, 0)
    if not 1 <= lanes <= count:
        raise ValueError(f"invalid rANS lane count {lanes}")
    rows = -(-count // lanes)
    rem = count - (rows - 1) * lanes
    mode, pos = decode_uvarint(data, pos)

    if mode == _MODE_STATIC:
        rpb, pos = decode_uvarint(data, pos)
        if rpb >= rows:
            raise ValueError(f"invalid rANS block size {rpb}")
        n_blocks = -(-rows // rpb) if rpb else 1
        freq_t = np.empty((n_blocks, num_symbols), dtype=np.uint64)
        cum_t = np.empty((n_blocks, num_symbols), dtype=np.uint64)
        slot_t = np.empty((n_blocks, _M), dtype=np.int64)
        for b in range(n_blocks):
            freq, pos = _read_freq_table(data, pos, num_symbols)
            freq_t[b] = freq.astype(np.uint64)
            cum_t[b] = np.cumsum(freq, dtype=np.int64) - freq
            slot_t[b] = np.repeat(np.arange(num_symbols, dtype=np.int64), freq)
    elif mode == _MODE_ADAPTIVE:
        period_rows = max(1, _ADAPT_PERIOD // lanes)
        counts = np.zeros(num_symbols, dtype=np.int64)
    else:
        raise ValueError(f"unknown rANS mode {mode}")

    if len(data) < pos + 8 * lanes:
        raise ValueError("truncated rANS state block")
    x = np.frombuffer(data, dtype="<u8", count=lanes, offset=pos).astype(np.uint64)
    pos += 8 * lanes
    if (x < _LOW).any() or (x >> np.uint64(63)).any():
        raise ValueError("rANS state out of range")
    n_words, pos = decode_uvarint(data, pos)
    if len(data) < pos + 4 * n_words:
        raise ValueError("truncated rANS word stream")
    words = np.frombuffer(data, dtype="<u4", count=n_words, offset=pos).astype(
        np.uint64
    )

    out = np.empty(count, dtype=np.int64)
    ptr = 0
    freq_cur = cum_cur = slot_cur = None
    for r in range(rows):
        k = rem if r == rows - 1 else lanes
        if mode == _MODE_STATIC:
            b = r // rpb if rpb else 0
            freq_cur, cum_cur, slot_cur = freq_t[b], cum_t[b], slot_t[b]
        elif r % period_rows == 0:
            if r:
                # Fold the just-decoded period into the lagged model.
                decoded = out[(r - period_rows) * lanes : r * lanes]
                counts += np.bincount(decoded, minlength=num_symbols)
                if int(counts.sum()) >= _ADAPT_CAP:
                    counts >>= 1
            g = _smoothed_model(counts, num_symbols)
            freq = np.diff(g)
            freq_cur = freq.astype(np.uint64)
            cum_cur = g[:-1].astype(np.uint64)
            slot_cur = np.repeat(np.arange(num_symbols, dtype=np.int64), freq)
        xs = x[:k]
        slot = xs & _SLOT_MASK
        s = slot_cur[slot]
        out[r * lanes : r * lanes + k] = s
        xs = freq_cur[s] * (xs >> _SHIFT_SCALE) + slot - cum_cur[s]
        msk = xs < _LOW
        refill = int(msk.sum())
        if refill:
            if ptr + refill > n_words:
                raise ValueError("truncated rANS stream")
            xs[msk] = (xs[msk] << _SHIFT_32) | words[ptr : ptr + refill]
            ptr += refill
        x[:k] = xs
    if ptr != n_words or not (x == _LOW).all():
        raise ValueError("corrupt rANS stream (bad final state)")
    return out
