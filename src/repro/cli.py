"""Command-line interface: ``dbgc``.

Subcommands:

- ``compress``   — point cloud file (.bin/.ply/.npz) -> .dbgc stream
- ``decompress`` — .dbgc stream -> point cloud file
- ``info``       — inspect a .dbgc stream's header and layout
- ``simulate``   — generate a synthetic frame into a point cloud file
- ``sequence``   — compress a simulated drive into a .dbgcs frame stream
- ``dataset``    — create/inspect a KITTI-layout archive of frames
- ``verify``     — validate a .dbgc stream (optionally against the original)
- ``reproduce``  — re-run one of the paper's tables/figures
- ``bench``      — quick ratio comparison of all methods on one frame
- ``stream``     — run the client/server pipeline over a (faulty) uplink
- ``serve``      — run a standalone multi-client ingest server
- ``fleet``      — drive N concurrent clients against one server (loadgen)
- ``scrub``      — audit (and repair) replica CRCs of an on-disk store

All commands run offline; see ``dbgc <command> --help`` for options.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from pathlib import Path

from repro.core.container import unpack_container
from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor, DBGCDecompressor
from repro.datasets.frames import SCENE_BUILDERS, generate_frame
from repro.datasets.io import (
    load_kitti_bin,
    load_npz,
    load_ply,
    save_kitti_bin,
    save_npz,
    save_ply,
)
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud

__all__ = ["main"]


def _load_cloud(path: Path) -> PointCloud:
    suffix = path.suffix.lower()
    if suffix == ".bin":
        cloud, _ = load_kitti_bin(path)
        return cloud
    if suffix == ".ply":
        return load_ply(path)
    if suffix == ".npz":
        return load_npz(path)
    raise SystemExit(f"unsupported point cloud format {suffix!r} (use .bin/.ply/.npz)")


def _save_cloud(cloud: PointCloud, path: Path) -> None:
    suffix = path.suffix.lower()
    if suffix == ".bin":
        save_kitti_bin(cloud, path)
    elif suffix == ".ply":
        save_ply(cloud, path)
    elif suffix == ".npz":
        save_npz(cloud, path)
    else:
        raise SystemExit(f"unsupported output format {suffix!r} (use .bin/.ply/.npz)")


def _sensor_from_args(args: argparse.Namespace) -> SensorModel:
    sensor = SensorModel.velodyne_hdl64e()
    if args.sensor_scale != 1.0:
        sensor = sensor.scaled(args.sensor_scale)
    return sensor


def _add_sensor_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sensor-scale",
        type=float,
        default=0.5,
        help="angular resolution scale of the HDL-64E model (default 0.5)",
    )


def _emit_metrics(recorder, dest: str) -> None:
    """Write the observability report as JSON; ``-`` prints to stdout."""
    from repro import observability as obs

    text = obs.to_json(recorder)
    if dest == "-":
        print(text)
    else:
        Path(dest).write_text(text + "\n")
        print(f"metrics report -> {dest}")
        print(obs.ascii_breakdown(recorder))


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro import observability as obs

    cloud = _load_cloud(Path(args.input))
    params = DBGCParams(
        q_xyz=args.q,
        strict_cartesian=args.strict,
        entropy_backend=args.entropy_backend,
        intra_frame_workers=args.intra_frame_workers,
    )
    compressor = DBGCCompressor(params, sensor=_sensor_from_args(args))
    start = time.perf_counter()
    if args.metrics:
        with obs.recording() as recorder:
            result = compressor.compress_detailed(cloud)
    else:
        recorder = None
        result = compressor.compress_detailed(cloud)
    elapsed = time.perf_counter() - start
    Path(args.output).write_bytes(result.payload)
    print(
        f"{args.input}: {len(cloud)} points -> {result.size} bytes "
        f"({result.compression_ratio():.1f}x) in {elapsed:.2f}s"
    )
    print(
        f"  dense {result.n_dense} / sparse {result.n_sparse} / "
        f"outliers {result.n_outliers}; q = {args.q} m"
    )
    if recorder is not None:
        _emit_metrics(recorder, args.metrics)
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    payload = Path(args.input).read_bytes()
    start = time.perf_counter()
    cloud = DBGCDecompressor().decompress(payload)
    elapsed = time.perf_counter() - start
    _save_cloud(cloud, Path(args.output))
    print(f"{args.input}: {len(cloud)} points restored in {elapsed:.2f}s -> {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    payload = Path(args.input).read_bytes()
    header, dense, groups, outlier, attrs = unpack_container(payload)
    print(f"{args.input}: {len(payload)} bytes, DBGC v{payload[4]}")
    print(f"  error bound q_xyz : {header.q_xyz} m")
    print(f"  entropy backend   : {header.entropy_backend}")
    print(f"  angular steps     : u_theta={header.u_theta:.6f}, u_phi={header.u_phi:.6f}")
    print(
        f"  coding flags      : spherical={header.spherical_conversion}, "
        f"radial_ref={header.radial_reference}, strict={header.strict_cartesian}"
    )
    print(f"  dense stream      : {len(dense)} bytes")
    for i, group in enumerate(groups):
        print(f"  sparse group {i}    : {len(group)} bytes")
    print(f"  outlier stream    : {len(outlier)} bytes")
    if attrs:
        print(f"  attribute block   : {len(attrs)} bytes")
    cloud = DBGCDecompressor().decompress(payload)
    print(f"  decoded points    : {len(cloud)}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    cloud = generate_frame(
        args.scene, args.frame, sensor=_sensor_from_args(args), seed=args.seed
    )
    _save_cloud(cloud, Path(args.output))
    print(f"{args.scene} frame {args.frame}: {len(cloud)} points -> {args.output}")
    return 0


def _cmd_sequence(args: argparse.Namespace) -> int:
    from repro.core.streaming import FrameStreamReader, FrameStreamWriter
    from repro.datasets import trajectories

    sensor = _sensor_from_args(args)
    builders = {
        "straight": trajectories.straight,
        "curve": trajectories.curve,
        "loop": trajectories.loop,
    }
    traj = builders[args.trajectory](args.frames)
    params = DBGCParams(
        q_xyz=args.q,
        temporal=args.temporal,
        keyframe_interval=args.keyframe_interval,
    )
    frames = trajectories.generate_sequence(
        args.scene, traj, sensor=sensor, seed=args.seed
    )
    start = time.perf_counter()
    with open(args.output, "wb") as sink:
        with FrameStreamWriter(sink, params, sensor=sensor) as writer:
            for index, cloud in enumerate(frames):
                size = writer.write_frame(cloud, ego_position=traj[index])
                kind = (
                    "delta"
                    if args.temporal and index % args.keyframe_interval != 0
                    else "key"
                )
                print(f"frame {index}: {len(cloud)} points -> {size} B ({kind})")
    elapsed = time.perf_counter() - start
    stats = writer.stats
    print(
        f"{args.output}: {stats.n_frames} frames, "
        f"{stats.total_compressed_bytes} bytes "
        f"({stats.compression_ratio:.1f}x) in {elapsed:.2f}s"
    )
    print(
        f"  mean bandwidth at {sensor.frames_per_second:.1f} fps: "
        f"{stats.bandwidth_mbps(sensor.frames_per_second):.2f} Mbps"
    )
    if args.verify:
        with open(args.output, "rb") as source:
            decoded = list(FrameStreamReader(source))
        if len(decoded) != stats.n_frames:
            print(f"verify FAILED: {len(decoded)}/{stats.n_frames} frames decoded")
            return 1
        total = sum(len(c) for c in decoded)
        print(f"  verified: {len(decoded)} frames decode back to {total} points")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.validation import validate_stream

    payload = Path(args.input).read_bytes()
    original = _load_cloud(Path(args.original)) if args.original else None
    sensor = _sensor_from_args(args) if args.original else None
    report = validate_stream(payload, original=original, sensor=sensor)
    print(str(report))
    return 0 if report.ok else 1


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.datasets.archive import archive_info, write_archive

    if args.action == "create":
        root = write_archive(
            args.path,
            args.scene,
            args.frames,
            sensor=_sensor_from_args(args),
            seed=args.seed,
        )
        info = archive_info(root)
        total = sum(info["point_counts"])
        print(f"{root}: {info['n_frames']} frames of {info['scene']}, {total} points")
    else:
        info = archive_info(args.path)
        print(f"{args.path}: {info['n_frames']} frames of {info['scene']}")
        print(f"  seed {info['seed']}, sensor {info['sensor']['name']} "
              f"({info['sensor']['n_beams']} beams x {info['sensor']['azimuth_steps']} steps)")
        print(f"  points per frame: {info['point_counts']}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.eval.experiments import list_experiments, reproduce

    sensor = _sensor_from_args(args)
    names = list_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        kwargs = {"sensor": sensor}
        if name == "fig9":
            kwargs["scene"] = args.scene
        result = reproduce(name, **kwargs)
        print(result.text)
        print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.eval.harness import make_compressors
    from repro.eval.reporting import render_table

    sensor = _sensor_from_args(args)
    if args.input:
        cloud = _load_cloud(Path(args.input))
        label = args.input
    else:
        cloud = generate_frame(args.scene, 0, sensor=sensor)
        label = args.scene
    rows = []
    for compressor in make_compressors(args.q, sensor=sensor):
        start = time.perf_counter()
        payload = compressor.compress(cloud)
        elapsed = time.perf_counter() - start
        rows.append(
            [compressor.name, cloud.nbytes_raw() / len(payload), f"{elapsed:.2f}s"]
        )
    print(
        render_table(
            ["method", "ratio", "compress time"],
            rows,
            title=f"{label}: {len(cloud)} points, q = {args.q} m",
        )
    )
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.datasets.frames import generate_frames
    from repro.system import (
        BandwidthShaper,
        DbgcClient,
        DbgcServer,
        FaultSpec,
        FaultyChannel,
        SqliteFrameStore,
    )

    from repro import observability as obs

    sensor = _sensor_from_args(args)
    shaper = BandwidthShaper(args.bandwidth) if args.bandwidth > 0 else None
    disconnect_frames = frozenset(
        int(i) for i in args.disconnect_frames.split(",") if i.strip()
    )
    spec = FaultSpec(
        corrupt_rate=args.corrupt_rate,
        disconnect_rate=args.disconnect_rate,
        ack_drop_rate=args.ack_drop_rate,
        jitter=args.jitter,
        force_disconnect_frames=disconnect_frames,
    )
    faulty = spec != FaultSpec()
    channel = FaultyChannel(shaper, seed=args.fault_seed, spec=spec) if faulty else shaper

    store = SqliteFrameStore(args.store if args.store else ":memory:")
    server_channel = channel if isinstance(channel, FaultyChannel) else None
    # The recording block spans client, server, and sender threads: one
    # shared report covers compression spans and transport counters.
    metrics_ctx = obs.recording() if args.metrics else contextlib.nullcontext()
    with metrics_ctx as recorder:
        with DbgcServer(store, mode=args.mode, channel=server_channel) as server:
            with DbgcClient(
                server.address,
                params=DBGCParams(q_xyz=args.q),
                sensor=sensor,
                channel=channel,
                queue_capacity=args.queue_capacity,
                overflow_policy=args.policy,
                ack_timeout=args.ack_timeout,
                backoff_base=0.02,
                window=args.window,
            ) as client:
                frames = generate_frames(
                    args.scene, args.frames, sensor=sensor, seed=args.seed
                )
                for index, cloud in enumerate(frames):
                    trace = client.send_frame(index, cloud)
                    print(
                        f"frame {index}: {len(cloud)} points, "
                        f"{trace.payload_bytes} B queued"
                    )
            server.join()
        client.merge_receipts(server.receipts)

    report = client.report
    print(f"\nstored {report.n_stored}/{args.frames} frames "
          f"({len(store)} in store) over {server.connections} connection(s)")
    print(f"  retries     : {report.total_retries}")
    print(f"  dropped     : {report.n_dropped}")
    print(f"  quarantined : {report.n_quarantined}")
    print(f"  degraded    : {report.n_degraded}")
    for bad in server.quarantine:
        print(f"  quarantine: {bad}")
    if report.n_stored:
        print(f"mean total latency: {report.mean_total_latency * 1e3:.0f} ms/frame; "
              f"throughput {report.throughput_fps():.2f} fps")
    if shaper is not None:
        mbps = report.bandwidth_mbps(sensor.frames_per_second)
        verdict = "fits" if mbps <= shaper.bandwidth_mbps else "exceeds"
        print(f"stream needs {mbps:.2f} Mbps; {verdict} the "
              f"{shaper.bandwidth_mbps:g} Mbps uplink")
    if recorder is not None:
        _emit_metrics(recorder, args.metrics)
    # Every frame must be accounted for: stored, quarantined, or dropped.
    accounted = report.n_stored + report.n_quarantined + report.n_dropped
    return 0 if accounted == args.frames else 1


def _open_scrub_store(path: Path, replication: int):
    """Reopen an on-disk store for scrubbing, inferring its layout."""
    from repro.system import ShardedFrameStore, SqliteFrameStore

    if path.is_file():
        # A single SQLite database: still CRC-audited, just replica-less.
        return ShardedFrameStore([SqliteFrameStore(path)])
    if not path.is_dir():
        raise SystemExit(f"no store at {path}")
    sqlite_shards = sorted(path.glob("shard_*.sqlite"))
    if sqlite_shards:
        return ShardedFrameStore.sqlite(
            len(sqlite_shards), directory=path, replication=replication
        )
    shard_dirs = sorted(d for d in path.glob("shard_*") if d.is_dir())
    if shard_dirs:
        return ShardedFrameStore.files(
            len(shard_dirs), path, replication=replication
        )
    raise SystemExit(
        f"{path} holds neither shard_K.sqlite files nor shard_K/ directories"
    )


def _cmd_scrub(args: argparse.Namespace) -> int:
    store = _open_scrub_store(Path(args.store), args.replication)
    with store:
        report = store.scrub(repair=not args.no_repair)
    print(str(report))
    for defect in report.defects:
        print(f"  {defect}")
    # Healthy, or every defect repaired -> success.
    return 0 if report.n_unrepaired == 0 else 1


def _open_serve_store(args: argparse.Namespace):
    from repro.system import ShardedFrameStore, SqliteFrameStore

    replication = getattr(args, "replication", 1)
    if args.shards > 1:
        return ShardedFrameStore.sqlite(
            args.shards,
            directory=args.store if args.store else None,
            replication=replication,
        )
    if replication > 1:
        raise SystemExit("--replication needs --shards > 1 (copies live on shards)")
    return SqliteFrameStore(args.store if args.store else ":memory:")


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.system import DbgcServer

    store = _open_serve_store(args)
    with store, DbgcServer(
        store,
        mode=args.mode,
        host=args.host,
        port=args.port,
        max_clients=args.max_clients,
        receipt_journal=args.receipt_journal if args.receipt_journal else None,
        busy_threshold_s=args.busy_threshold if args.busy_threshold > 0 else None,
        decode_workers=args.decode_workers,
        journal_rotate_bytes=(
            args.journal_rotate_bytes if args.journal_rotate_bytes > 0 else None
        ),
    ) as server:
        host, port = server.address
        print(f"listening on {host}:{port} "
              f"(mode={args.mode}, max-clients={args.max_clients}, "
              f"shards={args.shards}, decode-workers={args.decode_workers})",
              flush=True)
        try:
            if args.exit_after_streams > 0:
                server.wait_for_streams(args.exit_after_streams, timeout=args.timeout)
            else:
                while True:
                    time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        print(f"served {server.connections} connection(s), "
              f"{server.streams_ended} stream(s) ended, "
              f"{len(store)} frame(s) stored, "
              f"{len(server.quarantine)} quarantined")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.eval.reporting import render_table
    from repro.system import FaultSpec, FleetSpec, ShardedFrameStore, run_fleet

    disconnect_local = frozenset(
        int(i) for i in args.disconnect_frames.split(",") if i.strip()
    )
    spec = FleetSpec(
        n_clients=args.clients,
        frames_per_client=args.frames,
        seed=args.seed,
        fault_spec=FaultSpec(
            corrupt_rate=args.corrupt_rate,
            ack_drop_rate=args.ack_drop_rate,
        ),
        force_disconnect_local=disconnect_local,
        bandwidth_mbps=args.bandwidth if args.bandwidth > 0 else None,
        latency_s=args.latency,
        ack_timeout=args.ack_timeout,
        window=args.window,
    )
    if args.kill_after > 0 and not args.receipt_journal:
        raise SystemExit("--kill-after requires --receipt-journal")
    if args.decode_workers > 0 and args.mode != "decompress":
        raise SystemExit("--decode-workers requires --mode decompress")
    payloads = None
    if args.mode == "decompress":
        from repro.system import compressed_fleet_payloads

        payloads = compressed_fleet_payloads(
            spec, sensor_scale=args.sensor_scale, temporal=args.temporal
        )
    with ShardedFrameStore.sqlite(args.shards, replication=args.replication) as store:
        result = run_fleet(
            spec,
            store,
            mode=args.mode,
            max_clients=args.max_clients,
            receipt_journal=args.receipt_journal if args.receipt_journal else None,
            kill_after_frames=args.kill_after if args.kill_after > 0 else None,
            decode_workers=args.decode_workers,
            payloads=payloads,
        )
        rows = []
        for cid in sorted(result.reports):
            report = result.reports[cid]
            rows.append([
                f"client {cid}",
                report.n_stored,
                report.n_quarantined,
                report.n_dropped,
                report.total_retries,
            ])
        print(render_table(
            ["stream", "stored", "quarantined", "dropped", "retries"],
            rows,
            title=f"fleet: {spec.n_clients} clients x {spec.frames_per_client} frames",
        ))
        print(f"aggregate: {result.n_stored} stored in {result.wall_s:.2f}s "
              f"({result.frames_per_second:.1f} fps), "
              f"peak concurrency {result.server.peak_active_clients}"
              + (f", {result.restarts} server restart(s)" if result.restarts else ""))
        merged = result.merged
        if merged.ack_latencies:
            print(f"ack latency: p50 {merged.ack_latency_percentile(50) * 1e3:.1f} ms, "
                  f"p99 {merged.ack_latency_percentile(99) * 1e3:.1f} ms "
                  f"(window {spec.window})")
        shard_bytes = store.shard_payload_bytes()
        print("shards: " + ", ".join(
            f"#{k}={nbytes}B" for k, nbytes in enumerate(shard_bytes)
        ))
    total = spec.n_clients * spec.frames_per_client
    accounted = result.n_stored + result.n_quarantined + result.n_dropped
    return 0 if accounted == total and result.n_stored + result.n_quarantined == total else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dbgc",
        description="Density-based geometry compression for LiDAR point clouds",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a point cloud file")
    p.add_argument("input", help="input cloud (.bin/.ply/.npz)")
    p.add_argument("output", help="output .dbgc stream")
    p.add_argument("--q", type=float, default=0.02, help="error bound in meters")
    p.add_argument(
        "--strict", action="store_true", help="hard per-dimension error bound"
    )
    from repro.entropy.backend import available_backends

    p.add_argument(
        "--entropy-backend",
        default="adaptive-arith",
        choices=available_backends(),
        help="entropy coder for the compressed streams",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        default="",
        help="write an observability JSON report to PATH ('-' for stdout)",
    )
    p.add_argument(
        "--intra-frame-workers",
        type=int,
        default=1,
        metavar="N",
        help="worker threads for the independent stages inside the frame "
        "(payloads stay byte-identical; 1 = serial)",
    )
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_compress)

    p = sub.add_parser("decompress", help="decompress a .dbgc stream")
    p.add_argument("input", help="input .dbgc stream")
    p.add_argument("output", help="output cloud (.bin/.ply/.npz)")
    p.set_defaults(func=_cmd_decompress)

    p = sub.add_parser("info", help="inspect a .dbgc stream")
    p.add_argument("input", help="input .dbgc stream")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("simulate", help="generate a synthetic LiDAR frame")
    p.add_argument("scene", choices=sorted(SCENE_BUILDERS), help="scene name")
    p.add_argument("output", help="output cloud (.bin/.ply/.npz)")
    p.add_argument("--frame", type=int, default=0, help="frame index on the drive")
    p.add_argument("--seed", type=int, default=0, help="scene random seed")
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "sequence", help="compress a simulated drive into a .dbgcs frame stream"
    )
    p.add_argument("scene", choices=sorted(SCENE_BUILDERS), help="scene name")
    p.add_argument("output", help="output .dbgcs frame stream")
    p.add_argument(
        "--trajectory",
        default="straight",
        choices=["straight", "curve", "loop"],
        help="drive path shape (default straight)",
    )
    p.add_argument("--frames", type=int, default=8, help="frames to capture")
    p.add_argument("--q", type=float, default=0.02, help="error bound in meters")
    p.add_argument(
        "--temporal",
        action="store_true",
        help="inter-frame delta coding (format v3) between keyframes",
    )
    p.add_argument(
        "--keyframe-interval",
        type=int,
        default=8,
        metavar="N",
        help="intra-coded keyframe period in temporal mode (default 8)",
    )
    p.add_argument("--seed", type=int, default=0, help="scene random seed")
    p.add_argument(
        "--verify",
        action="store_true",
        help="decode the written stream back and check the frame count",
    )
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_sequence)

    p = sub.add_parser("dataset", help="create or inspect a frame archive")
    p.add_argument("action", choices=["create", "info"])
    p.add_argument("path", help="archive directory")
    p.add_argument("--scene", default="kitti-city", choices=sorted(SCENE_BUILDERS))
    p.add_argument("--frames", type=int, default=5, help="frames to generate")
    p.add_argument("--seed", type=int, default=0)
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_dataset)

    from repro.eval.experiments import list_experiments

    p = sub.add_parser("reproduce", help="re-run a paper experiment")
    p.add_argument(
        "experiment",
        choices=list_experiments() + ["all"],
        help="which table/figure to regenerate",
    )
    p.add_argument("--scene", default="kitti-city", choices=sorted(SCENE_BUILDERS))
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_reproduce)

    p = sub.add_parser("verify", help="validate a .dbgc stream")
    p.add_argument("input", help="input .dbgc stream")
    p.add_argument(
        "--original",
        help="original cloud file: also verify the error-bound contract",
    )
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "stream", help="run the client/server pipeline over a (faulty) uplink"
    )
    p.add_argument("--scene", default="kitti-city", choices=sorted(SCENE_BUILDERS))
    p.add_argument("--frames", type=int, default=5, help="frames to stream")
    p.add_argument("--seed", type=int, default=0, help="scene random seed")
    p.add_argument("--q", type=float, default=0.02, help="error bound in meters")
    p.add_argument(
        "--mode", default="decompress", choices=["decompress", "store"],
        help="server behavior: decompress clouds or store raw payloads",
    )
    p.add_argument(
        "--store", default="", help="SQLite path for the server store (default memory)"
    )
    p.add_argument(
        "--bandwidth", type=float, default=8.2,
        help="uplink bandwidth in Mbps; 0 disables pacing (default 4G: 8.2)",
    )
    p.add_argument(
        "--policy", default="block", choices=["block", "drop-oldest", "coarsen"],
        help="send-queue overflow policy under congestion",
    )
    p.add_argument("--queue-capacity", type=int, default=8, help="send queue bound")
    p.add_argument(
        "--ack-timeout", type=float, default=10.0,
        help="seconds to wait for a server ACK before retransmitting",
    )
    p.add_argument(
        "--window", type=int, default=1,
        help="sliding-window size: unACKed frames in flight per stream "
        "(protocol v2.2 selective repeat; 1 = stop-and-wait)",
    )
    p.add_argument("--fault-seed", type=int, default=0, help="fault injection seed")
    p.add_argument(
        "--corrupt-rate", type=float, default=0.0,
        help="per-attempt probability of payload bit flips",
    )
    p.add_argument(
        "--disconnect-rate", type=float, default=0.0,
        help="per-attempt probability of a mid-record disconnect",
    )
    p.add_argument(
        "--ack-drop-rate", type=float, default=0.0,
        help="probability a server ACK is lost (exercises dedupe)",
    )
    p.add_argument(
        "--jitter", type=float, default=0.0,
        help="bandwidth jitter amplitude in [0, 1)",
    )
    p.add_argument(
        "--disconnect-frames", default="",
        help="comma-separated frame indices whose first send is cut mid-record",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        nargs="?",
        const="-",
        default="",
        help="emit an observability JSON report (to PATH, or stdout if bare)",
    )
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser("serve", help="run a standalone multi-client ingest server")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    p.add_argument(
        "--max-clients", type=int, default=8,
        help="concurrent connection-handler cap",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="SQLite store shards (frame_index %% shards routing)",
    )
    p.add_argument(
        "--store", default="",
        help="store path: SQLite file, or shard directory when --shards > 1 "
        "(default: in-memory)",
    )
    p.add_argument(
        "--mode", default="store", choices=["decompress", "store"],
        help="server behavior: decompress clouds or store raw payloads",
    )
    p.add_argument(
        "--exit-after-streams", type=int, default=0, metavar="N",
        help="exit once N client streams have ENDed (0 = run until Ctrl-C)",
    )
    p.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for --exit-after-streams before giving up",
    )
    p.add_argument(
        "--replication", type=int, default=1,
        help="store each frame on N shards (needs --shards > 1)",
    )
    p.add_argument(
        "--receipt-journal", default="", metavar="PATH",
        help="durable receipt journal: a server restarted over it answers "
        "retransmissions of already-stored frames with DUPLICATE",
    )
    p.add_argument(
        "--busy-threshold", type=float, default=0.0, metavar="SECONDS",
        help="store-latency EWMA above which ACKs carry the BUSY "
        "backpressure hint (0 = disabled)",
    )
    p.add_argument(
        "--decode-workers", type=int, default=0, metavar="N",
        help="decode offload tier: decoder worker processes with "
        "per-stream affinity (decompress mode; 0 = decode inline)",
    )
    p.add_argument(
        "--journal-rotate-bytes", type=int, default=0, metavar="BYTES",
        help="seal the receipt journal into a new segment past this size "
        "and compact fully-ended streams (0 = never rotate)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "fleet", help="drive N concurrent clients against one server (loadgen)"
    )
    p.add_argument("--clients", type=int, default=4, help="concurrent clients")
    p.add_argument("--frames", type=int, default=25, help="frames per client")
    p.add_argument("--seed", type=int, default=0, help="payload/fault root seed")
    p.add_argument(
        "--shards", type=int, default=2, help="SQLite store shards on the server"
    )
    p.add_argument(
        "--max-clients", type=int, default=None,
        help="server handler cap (default: the client count)",
    )
    p.add_argument(
        "--corrupt-rate", type=float, default=0.0,
        help="per-attempt probability of payload bit flips",
    )
    p.add_argument(
        "--ack-drop-rate", type=float, default=0.0,
        help="probability a server ACK is lost (exercises dedupe)",
    )
    p.add_argument(
        "--disconnect-frames", default="",
        help="comma-separated local frame numbers cut mid-record on every client",
    )
    p.add_argument(
        "--bandwidth", type=float, default=0.0,
        help="per-client uplink bandwidth in Mbps; 0 disables pacing",
    )
    p.add_argument(
        "--ack-timeout", type=float, default=2.0,
        help="seconds to wait for a server ACK before retransmitting",
    )
    p.add_argument(
        "--window", type=int, default=1,
        help="sliding-window size per client (protocol v2.2 selective "
        "repeat; 1 = stop-and-wait)",
    )
    p.add_argument(
        "--latency", type=float, default=0.0, metavar="SECONDS",
        help="simulated one-way link latency, charged on the ACK path "
        "(shows the window's bandwidth×delay win on loopback)",
    )
    p.add_argument(
        "--replication", type=int, default=1,
        help="store each frame on N shards (replica fan-out)",
    )
    p.add_argument(
        "--receipt-journal", default="", metavar="PATH",
        help="durable receipt journal backing server restart recovery",
    )
    p.add_argument(
        "--kill-after", type=int, default=0, metavar="N",
        help="kill-and-restart drill: SIGKILL-equivalently stop the server "
        "after N stored frames and restart it on the same port "
        "(requires --receipt-journal)",
    )
    p.add_argument(
        "--mode", default="store", choices=["decompress", "store"],
        help="server behavior: decompress clouds (clients send real "
        "compressed frames) or store raw payloads",
    )
    p.add_argument(
        "--decode-workers", type=int, default=0, metavar="N",
        help="decode offload tier: decoder worker processes with "
        "per-stream affinity (needs --mode decompress; 0 = inline)",
    )
    p.add_argument(
        "--temporal", action="store_true",
        help="decompress mode: send a temporal stream (v3 delta frames "
        "between keyframes) instead of independent intra frames",
    )
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "scrub", help="audit (and repair) replica CRCs of an on-disk store"
    )
    p.add_argument(
        "store",
        help="store location: a shard directory (shard_K.sqlite files or "
        "shard_K/ subdirectories) or a single SQLite database",
    )
    p.add_argument(
        "--replication", type=int, default=1,
        help="replica fan-out the store was written with",
    )
    p.add_argument(
        "--no-repair", action="store_true",
        help="report defects only; do not rewrite bad copies",
    )
    p.set_defaults(func=_cmd_scrub)

    p = sub.add_parser("bench", help="compare all methods on one frame")
    p.add_argument("--scene", default="kitti-city", choices=sorted(SCENE_BUILDERS))
    p.add_argument("--input", help="use a cloud file instead of a synthetic frame")
    p.add_argument("--q", type=float, default=0.02, help="error bound in meters")
    _add_sensor_arg(p)
    p.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
