"""Bandwidth-shaped transfer model.

The paper's system ships compressed frames over a 4G uplink averaging
8.2 Mbps [41].  The shaper models a link as bandwidth + fixed latency; it
can either *simulate* transfer times (fast, deterministic — used by the
benchmarks) or actually pace a sender by sleeping (used by the live
client/server example).
"""

from __future__ import annotations

import time

__all__ = ["BandwidthShaper"]


class BandwidthShaper:
    """A link with finite bandwidth and fixed one-way latency.

    Parameters
    ----------
    bandwidth_mbps:
        Link bandwidth in megabits per second (paper's 4G uplink: 8.2).
    latency_s:
        Fixed one-way latency in seconds.
    """

    #: The paper's reference links.
    MOBILE_4G_MBPS = 8.2
    ETHERNET_100BASE_TX_MBPS = 100.0

    def __init__(self, bandwidth_mbps: float, latency_s: float = 0.0) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_mbps}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {latency_s}")
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.latency_s = float(latency_s)

    @classmethod
    def mobile_4g(cls) -> "BandwidthShaper":
        """The paper's 4G uplink (8.2 Mbps average upload [41])."""
        return cls(cls.MOBILE_4G_MBPS)

    @classmethod
    def ethernet(cls) -> "BandwidthShaper":
        """The sensor-to-client wired link (100BASE-TX)."""
        return cls(cls.ETHERNET_100BASE_TX_MBPS)

    def transfer_seconds(self, n_bytes: int) -> float:
        """Simulated one-way transfer time for a payload."""
        return self.latency_s + self.serialization_seconds(n_bytes)

    def serialization_seconds(self, n_bytes: int) -> float:
        """Time the payload occupies the link (transfer minus latency)."""
        return 8.0 * n_bytes / (self.bandwidth_mbps * 1e6)

    def sustainable_fps(self, n_bytes: int) -> float:
        """Frames per second the link sustains at this payload size."""
        serialization = self.serialization_seconds(n_bytes)
        return float("inf") if serialization == 0 else 1.0 / serialization

    def supports(self, n_bytes: int, frames_per_second: float) -> bool:
        """Can the link keep up with the sensor's frame rate? (Section 4.4)"""
        return self.sustainable_fps(n_bytes) >= frames_per_second

    def pace(self, n_bytes: int, started_at: float, scale: float = 1.0) -> None:
        """Sleep until the payload 'fits through' the link (live mode).

        Pacing models **serialization only**: a sliding-window sender
        keeps the pipe full, so per-frame sends must not each pay the
        propagation delay — the client charges ``latency_s`` on the ACK
        path instead (one way out, one way back = a full RTT), which
        keeps the bandwidth×delay product observable without
        serializing latencies.

        ``scale`` stretches or shrinks this transfer's serialization time
        around the nominal link model — fault injection uses it to model
        bandwidth jitter without mutating the shaper.
        """
        deadline = started_at + scale * self.serialization_seconds(n_bytes)
        remaining = deadline - time.perf_counter()
        if remaining > 0:
            time.sleep(remaining)
