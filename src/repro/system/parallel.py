"""Parallel frame compression.

The paper's throughput argument (Section 4.4) assumes the compressor keeps
up with the sensor's 10 fps.  A pure-Python DBGC frame takes ~1 s, so a
single process cannot; frames are independent, though, so a process pool
restores online throughput on multi-core clients.  This is a deployment
aid, not a change to the scheme: payloads are byte-identical to the serial
compressor's.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator

import numpy as np

from repro.core.attributes import DEFAULT_ATTRIBUTE_STEP
from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud

__all__ = ["ParallelFrameCompressor"]

#: A work item: a bare frame, or a frame with its per-point attributes.
Frame = PointCloud | tuple[PointCloud, dict[str, np.ndarray]]

# Module-level worker state: built once per worker process.
_WORKER_COMPRESSOR: DBGCCompressor | None = None


def _init_worker(params: DBGCParams, sensor: SensorModel) -> None:
    global _WORKER_COMPRESSOR
    _WORKER_COMPRESSOR = DBGCCompressor(params, sensor=sensor)


def _compress_one(xyz, attributes, attribute_steps) -> bytes:
    assert _WORKER_COMPRESSOR is not None, "worker not initialized"
    return _WORKER_COMPRESSOR.compress(
        PointCloud(xyz), attributes, attribute_steps
    )


class ParallelFrameCompressor:
    """Compress independent frames across a process pool.

    Use as a context manager::

        with ParallelFrameCompressor(params, workers=4) as pool:
            for payload in pool.compress_stream(frames):
                ship(payload)

    Results come back in input order.  Worker processes each hold one
    :class:`DBGCCompressor`, so per-frame overhead is pickling the
    coordinate array in and the payload out.

    ``compress_stream`` pulls frames *lazily*: at most ``2 * workers``
    frames are in flight or buffered at any moment, so an unbounded
    source — a live sensor feed — streams in constant memory instead of
    being drained upfront.

    When ``params.intra_frame_workers > 1`` the two levels compose: each
    worker process also parallelizes the stages inside its frame, with the
    per-process thread count capped at ``cpu_count // workers`` so the
    total never oversubscribes the machine.
    """

    def __init__(
        self,
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
        workers: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        params = params if params is not None else DBGCParams()
        # Compose the two parallelism levels without oversubscribing: with
        # N frame processes, each worker's intra-frame stage pool gets at
        # most cpu_count // N threads.  Each process lazily builds its own
        # stage pool, so the knob composes instead of multiplying.
        if params.intra_frame_workers > 1:
            per_worker = max(1, (os.cpu_count() or 1) // workers)
            params = params.with_updates(
                intra_frame_workers=min(params.intra_frame_workers, per_worker)
            )
        self.params = params
        self.sensor = sensor if sensor is not None else SensorModel.benchmark_default()
        self.workers = workers
        self._pool: ProcessPoolExecutor | None = None

    def __enter__(self) -> "ParallelFrameCompressor":
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.params, self.sensor),
        )
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def compress_stream(
        self,
        frames: Iterable[Frame],
        attribute_steps: dict[str, float] | float = DEFAULT_ATTRIBUTE_STEP,
    ) -> Iterator[bytes]:
        """Yield payloads in frame order, compressing up to ``workers`` at once.

        Each frame is a :class:`PointCloud` or a ``(cloud, attributes)``
        pair; attributes are forwarded to the per-worker compressor, so
        payloads match the serial :meth:`DBGCCompressor.compress` exactly.
        """
        if self._pool is None:
            raise RuntimeError("use ParallelFrameCompressor as a context manager")
        pool = self._pool
        source = iter(frames)
        # Bounded in-flight window: enough to keep every worker busy while
        # results are drained in order, without eagerly consuming the
        # (possibly infinite) frame iterable.
        window = 2 * self.workers
        pending: deque = deque()

        def submit_next() -> bool:
            try:
                item = next(source)
            except StopIteration:
                return False
            if isinstance(item, tuple):
                frame, attributes = item
            else:
                frame, attributes = item, None
            pending.append(
                pool.submit(_compress_one, frame.xyz, attributes, attribute_steps)
            )
            return True

        while len(pending) < window and submit_next():
            pass
        while pending:
            payload = pending.popleft().result()
            submit_next()
            yield payload

    def compress_all(
        self,
        frames: Iterable[Frame],
        attribute_steps: dict[str, float] | float = DEFAULT_ATTRIBUTE_STEP,
    ) -> list[bytes]:
        """Compress a frame list and return all payloads (input order)."""
        return list(self.compress_stream(frames, attribute_steps))
