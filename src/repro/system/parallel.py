"""Parallel frame compression.

The paper's throughput argument (Section 4.4) assumes the compressor keeps
up with the sensor's 10 fps.  A pure-Python DBGC frame takes ~1 s, so a
single process cannot; frames are independent, though, so a process pool
restores online throughput on multi-core clients.  This is a deployment
aid, not a change to the scheme: payloads are byte-identical to the serial
compressor's.

The pool machinery — worker processes seeded via module-level state, the
bounded in-flight window, ordered streaming — lives in
:class:`~repro.system.pool.StickyWorkerPool`, shared with the server's
decode offload tier.  Frames here carry no cross-frame state, so
submissions round-robin across the slots instead of using sticky keys.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

import numpy as np

from repro.core.attributes import DEFAULT_ATTRIBUTE_STEP
from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud
from repro.system.pool import StickyWorkerPool

__all__ = ["ParallelFrameCompressor"]

#: A work item: a bare frame, or a frame with its per-point attributes.
Frame = PointCloud | tuple[PointCloud, dict[str, np.ndarray]]

# Module-level worker state: built once per worker process.
_WORKER_COMPRESSOR: DBGCCompressor | None = None


def _init_worker(params: DBGCParams, sensor: SensorModel) -> None:
    global _WORKER_COMPRESSOR
    _WORKER_COMPRESSOR = DBGCCompressor(params, sensor=sensor)


def _compress_one(xyz, attributes, attribute_steps) -> bytes:
    assert _WORKER_COMPRESSOR is not None, "worker not initialized"
    return _WORKER_COMPRESSOR.compress(
        PointCloud(xyz), attributes, attribute_steps
    )


class ParallelFrameCompressor:
    """Compress independent frames across a process pool.

    Use as a context manager::

        with ParallelFrameCompressor(params, workers=4) as pool:
            for payload in pool.compress_stream(frames):
                ship(payload)

    Results come back in input order.  Worker processes each hold one
    :class:`DBGCCompressor`, so per-frame overhead is pickling the
    coordinate array in and the payload out.

    ``compress_stream`` pulls frames *lazily*: at most ``2 * workers``
    frames are in flight or buffered at any moment, so an unbounded
    source — a live sensor feed — streams in constant memory instead of
    being drained upfront.  A consumer that stops early (``close()`` on
    the generator, ``break`` plus garbage collection, an exception)
    cancels every not-yet-running frame, so a dropped iterator does not
    leave workers grinding on payloads nobody will read.

    When ``params.intra_frame_workers > 1`` the two levels compose: each
    worker process also parallelizes the stages inside its frame, with the
    per-process thread count capped at ``cpu_count // workers`` so the
    total never oversubscribes the machine.
    """

    def __init__(
        self,
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
        workers: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        params = params if params is not None else DBGCParams()
        # Compose the two parallelism levels without oversubscribing: with
        # N frame processes, each worker's intra-frame stage pool gets at
        # most cpu_count // N threads.  Each process lazily builds its own
        # stage pool, so the knob composes instead of multiplying.
        if params.intra_frame_workers > 1:
            per_worker = max(1, (os.cpu_count() or 1) // workers)
            params = params.with_updates(
                intra_frame_workers=min(params.intra_frame_workers, per_worker)
            )
        self.params = params
        self.sensor = sensor if sensor is not None else SensorModel.benchmark_default()
        self.workers = workers
        self._pool: StickyWorkerPool | None = None

    def __enter__(self) -> "ParallelFrameCompressor":
        self._pool = StickyWorkerPool(
            self.workers,
            initializer=_init_worker,
            initargs=(self.params, self.sensor),
        )
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @property
    def in_flight(self) -> int:
        """Frames submitted but not yet finished (0 when idle or closed)."""
        return self._pool.depth() if self._pool is not None else 0

    def compress_stream(
        self,
        frames: Iterable[Frame],
        attribute_steps: dict[str, float] | float = DEFAULT_ATTRIBUTE_STEP,
    ) -> Iterator[bytes]:
        """Yield payloads in frame order, compressing up to ``workers`` at once.

        Each frame is a :class:`PointCloud` or a ``(cloud, attributes)``
        pair; attributes are forwarded to the per-worker compressor, so
        payloads match the serial :meth:`DBGCCompressor.compress` exactly.
        """
        if self._pool is None:
            raise RuntimeError("use ParallelFrameCompressor as a context manager")

        def as_args(item: Frame) -> tuple:
            if isinstance(item, tuple):
                frame, attributes = item
            else:
                frame, attributes = item, None
            return frame.xyz, attributes, attribute_steps

        return self._pool.map_stream(
            _compress_one,
            (as_args(item) for item in frames),
            window=2 * self.workers,
        )

    def compress_all(
        self,
        frames: Iterable[Frame],
        attribute_steps: dict[str, float] | float = DEFAULT_ATTRIBUTE_STEP,
    ) -> list[bytes]:
        """Compress a frame list and return all payloads (input order)."""
        return list(self.compress_stream(frames, attribute_steps))
