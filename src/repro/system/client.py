"""The DBGC client: acquire, compress, ship over an *unreliable* uplink.

Wraps a :class:`~repro.core.pipeline.DBGCCompressor` behind a TCP sender
whose pacing emulates the mobile uplink (paper Figure 2, client side) and
whose delivery survives it:

- frames go through a **bounded send queue** drained by a sender thread,
  with a configurable overflow policy for when the link cannot sustain
  the sensor's frame rate (``"block"``, ``"drop-oldest"``, or
  ``"coarsen"`` — recompress at a larger ``q_xyz``, the paper's
  ``supports()`` criterion applied online);
- each frame is a protocol-v2 record (CRC-protected, typed — see
  :mod:`repro.system.protocol`) and must be acknowledged within
  ``ack_timeout``; on timeout or disconnect the client **reconnects with
  capped exponential backoff plus jitter and retransmits** — the server
  dedupes by frame index, so retries are idempotent;
- with ``window > 1`` the sender is a **selective-repeat sliding
  window** (protocol v2.2): up to ``window`` unACKed frames ride the
  link at once, ACKs are matched out of order against an in-flight
  table, each frame carries its own retransmit deadline, and the
  effective window adapts AIMD-style — halved when the server sets
  ``ACK_FLAG_BUSY``, grown by one per clean ACK — so server
  backpressure becomes congestion control instead of a blanket pause;
- every retry, drop, quarantine, and degradation lands in the
  :class:`~repro.system.metrics.PipelineReport` for accounting.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from random import Random
from typing import Iterable

from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.observability import recorder as _obs
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud
from repro.system.channel import BandwidthShaper
from repro.system.faults import FaultPlan, FaultyChannel
from repro.system.metrics import FrameTrace, PipelineReport
from repro.system.protocol import (
    ACK_FLAG_BUSY,
    ACK_QUARANTINED,
    ACK_STATUS_MASK,
    END_ACK_INDEX,
    PAYLOAD_OFFSET,
    TYPE_ACK,
    TYPE_END,
    TYPE_FRAME,
    TYPE_HELLO,
    FLAG_DEGRADED,
    Record,
    encode_record,
    read_record,
)

__all__ = ["DbgcClient", "OVERFLOW_POLICIES"]

#: Send-queue overflow policies (engaged when the uplink falls behind).
OVERFLOW_POLICIES = ("block", "drop-oldest", "coarsen")

_CLOSE = object()  # queue sentinel: flush and send END


@dataclass
class _QueuedFrame:
    trace: FrameTrace
    payload: bytes
    flags: int = 0


@dataclass
class _InFlight:
    """One unACKed frame in the sliding window."""

    item: _QueuedFrame
    record: bytes = field(repr=False)
    attempt: int = 0  # transmissions performed so far
    sent_at: float = 0.0  # when the latest transmission hit the wire
    deadline: float = 0.0  # retransmit if no ACK by this time
    acks_at_send: int = 0  # link-liveness snapshot at the latest send


class _SendQueue:
    """A bounded FIFO with pluggable overflow behavior."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def full(self) -> bool:
        with self._cond:
            return len(self._items) >= self.capacity

    def put_block(self, item) -> None:
        """Append, waiting for space (backpressure onto the producer)."""
        with self._cond:
            while len(self._items) >= self.capacity:
                self._cond.wait()
            self._items.append(item)
            self._cond.notify_all()

    def put_drop_oldest(self, item) -> "_QueuedFrame | None":
        """Append, evicting and returning the oldest entry when full."""
        with self._cond:
            evicted = None
            if len(self._items) >= self.capacity:
                evicted = self._items.popleft()
            self._items.append(item)
            self._cond.notify_all()
            return evicted

    def put_priority(self, item) -> None:
        """Append regardless of capacity (for the close sentinel)."""
        with self._cond:
            self._items.append(item)
            self._cond.notify_all()

    def get(self):
        """Pop the oldest entry, blocking until one exists."""
        with self._cond:
            while not self._items:
                self._cond.wait()
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def get_nowait(self):
        """Pop the oldest entry, or ``None`` when the queue is empty."""
        with self._cond:
            if not self._items:
                return None
            item = self._items.popleft()
            self._cond.notify_all()
            return item


class DbgcClient:
    """Compress frames and deliver them to a :class:`DbgcServer`, reliably.

    Parameters
    ----------
    address:
        Server ``(host, port)``.
    params, sensor:
        Compression configuration.  The sensor also provides the frame
        rate used by the ``"coarsen"`` policy's ``supports()`` check.
    channel:
        Optional uplink shaper (sends are paced to its bandwidth) or a
        :class:`~repro.system.faults.FaultyChannel` for deterministic
        fault injection.  A shaper's ``latency_s`` is applied as a
        simulated one-way delay on ACK delivery (round trip = twice the
        latency), so the bandwidth×delay product is visible on loopback.
    queue_capacity, overflow_policy:
        Bounded send-queue size and what to do when it overflows:
        ``"block"`` the producer, ``"drop-oldest"`` (evict the stalest
        queued frame), or ``"coarsen"`` (recompress the incoming frame at
        ``coarsen_factor * q_xyz`` when the link is congested, blocking
        only if it still does not fit).
    coarsen_factor:
        Error-bound multiplier applied by the ``"coarsen"`` policy.
    max_retries:
        Retransmissions allowed per frame after the first attempt; a
        frame whose retries are exhausted is recorded as dropped.
    ack_timeout, connect_timeout:
        Seconds to wait for a server ACK / for a TCP connect.  The ACK
        wait is an overall per-frame deadline: stale or out-of-order
        records shrink the remaining wait instead of resetting it.
    backoff_base, backoff_cap:
        Reconnect backoff: attempt *i* sleeps
        ``min(cap, base * 2**i) * uniform(0.5, 1.0)``.
    retry_seed:
        Seed of the backoff-jitter RNG (deterministic tests).
    connect_retries:
        Attempts for the *initial* connect (defaults to ``max_retries``).
        ``__init__`` either returns a fully working client or raises with
        every socket closed — never a half-built object.
    stream_id:
        This client's stream identity, announced in a HELLO record on
        every connection (initial and reconnects).  The server keys all
        per-stream state — dedupe, ACK ordinals, receipts — by it, so
        give each client of a fleet its own id.
    busy_backoff_s:
        How long to honor a server BUSY hint (the backpressure bit an
        overloaded server sets on its ACKs): at ``window=1`` the sender
        pauses this many seconds before the next transmit, and the link
        counts as congested for the ``"coarsen"`` policy's
        ``supports()`` check until the pause expires.  At ``window>1``
        the hint halves the congestion window instead of pausing.
    window:
        Maximum unACKed frames in flight (selective repeat, protocol
        v2.2).  ``1`` (default) is the classic stop-and-wait behavior.
        The value is advertised to the server in the HELLO record's
        flags byte (capped at 255), and the *effective* window adapts
        between 1 and ``window`` via AIMD on server BUSY hints.
    """

    def __init__(
        self,
        address: tuple[str, int],
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
        channel: BandwidthShaper | FaultyChannel | None = None,
        queue_capacity: int = 8,
        overflow_policy: str = "block",
        coarsen_factor: float = 4.0,
        max_retries: int = 5,
        ack_timeout: float = 10.0,
        connect_timeout: float = 10.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
        connect_retries: int | None = None,
        stream_id: int = 0,
        busy_backoff_s: float = 0.05,
        window: int = 1,
    ) -> None:
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow_policy!r}; "
                f"choose from {OVERFLOW_POLICIES}"
            )
        if not 0 <= stream_id <= 0xFFFFFFFF:
            raise ValueError(f"stream id {stream_id} out of u32 range")
        if not 1 <= int(window) <= 255:
            raise ValueError(f"window must be in [1, 255], got {window}")
        # Build every resource-free attribute first: if the connect below
        # fails, __init__ raises without leaking a socket or a thread.
        self.address = address
        self.params = params if params is not None else DBGCParams()
        self.sensor = sensor
        self.compressor = DBGCCompressor(params, sensor=sensor)
        self.channel = channel
        self.overflow_policy = overflow_policy
        self.coarsen_factor = float(coarsen_factor)
        self.max_retries = int(max_retries)
        self.ack_timeout = float(ack_timeout)
        self.connect_timeout = float(connect_timeout)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stream_id = int(stream_id)
        self.busy_backoff_s = float(busy_backoff_s)
        self.window = int(window)
        #: Monotonic deadline until which the server's BUSY hint holds.
        self._busy_until = 0.0
        #: AIMD congestion window in [1, window], float so halving decays.
        self._cwnd = float(self.window)
        #: UnACKed frames keyed by frame index (insertion order = oldest first).
        self._inflight: dict[int, _InFlight] = {}
        #: Total ACK records that have arrived (link-liveness signal).
        self._acks_seen = 0
        #: Simulated one-way latency, applied on the ACK path as an RTT.
        self._ack_delay_s = 2.0 * getattr(channel, "latency_s", 0.0)
        #: ACKs waiting out the simulated RTT: (deliver_at, record).
        self._delayed_acks: deque[tuple[float, Record]] = deque()
        self.report = PipelineReport()
        self.transport_error: BaseException | None = None
        self._rng = Random(retry_seed)
        self._lock = threading.Lock()  # guards traces + report.events
        self._queue = _SendQueue(queue_capacity)
        self._coarse_compressor: DBGCCompressor | None = None
        self._closed = False
        self._sock: socket.socket | None = None
        self._sender: threading.Thread | None = None
        retries = self.max_retries if connect_retries is None else int(connect_retries)
        self._sock = self._connect(retries, first_immediate=True)
        try:
            self._hello()
        except OSError as exc:
            self._sock.close()
            self._sock = None
            raise ConnectionError(
                f"could not announce stream {self.stream_id} to {address}"
            ) from exc
        self._sender = threading.Thread(target=self._sender_loop, daemon=True)
        self._sender.start()

    def __enter__(self) -> "DbgcClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- producer side -------------------------------------------------

    @property
    def _frame_rate(self) -> float | None:
        return None if self.sensor is None else self.sensor.frames_per_second

    def send_frame(self, frame_index: int, cloud: PointCloud) -> FrameTrace:
        """Compress one frame and enqueue it for delivery.

        Returns the frame's trace immediately; ``sent_at``/``attempts``/
        ``status`` are filled in by the sender thread, and
        ``received_at``/``stored_at`` merge from the server's receipts
        after :meth:`close` (see :meth:`merge_receipts`).
        """
        captured_at = time.perf_counter()
        payload = self.compressor.compress(cloud)
        compressed_at = time.perf_counter()
        trace = FrameTrace(
            frame_index=frame_index,
            n_points=len(cloud),
            payload_bytes=len(payload),
            captured_at=captured_at,
            compressed_at=compressed_at,
            status="pending",
        )
        with self._lock:
            self.report.add(trace)
        self._enqueue(_QueuedFrame(trace, payload), cloud)
        return trace

    def send_payload(self, frame_index: int, payload: bytes) -> FrameTrace:
        """Enqueue a pre-compressed payload (sensor-side re-shipping)."""
        now = time.perf_counter()
        trace = FrameTrace(
            frame_index=frame_index,
            n_points=0,
            payload_bytes=len(payload),
            captured_at=now,
            compressed_at=now,
            status="pending",
        )
        with self._lock:
            self.report.add(trace)
        self._enqueue(_QueuedFrame(trace, payload), cloud=None)
        return trace

    def send_stream(self, frames: Iterable[PointCloud]) -> PipelineReport:
        """Send a whole frame stream and return the accumulated report."""
        for index, cloud in enumerate(frames):
            self.send_frame(index, cloud)
        return self.report

    def _enqueue(self, item: _QueuedFrame, cloud: PointCloud | None) -> None:
        if self._closed:
            raise RuntimeError("client is closed")
        if self.overflow_policy == "coarsen" and cloud is not None:
            item = self._maybe_coarsen(item, cloud)
            self._queue.put_block(item)
        elif self.overflow_policy == "drop-oldest":
            evicted = self._queue.put_drop_oldest(item)
            if evicted is not None:
                with self._lock:
                    evicted.trace.status = "dropped"
                    self.report.record(
                        "drop", evicted.trace.frame_index, detail="evicted: queue full"
                    )
        else:
            self._queue.put_block(item)

    def _congested(self, payload_bytes: int) -> bool:
        """Is the link falling behind? (paper's ``supports()`` criterion)"""
        if self._queue.full():
            return True
        if time.perf_counter() < self._busy_until:
            return True  # server said BUSY: treat the link as congested
        rate = self._frame_rate
        if rate is not None and self.channel is not None:
            return not self.channel.supports(payload_bytes, rate)
        return False

    def _maybe_coarsen(self, item: _QueuedFrame, cloud: PointCloud) -> _QueuedFrame:
        if not self._congested(len(item.payload)):
            return item
        if self._coarse_compressor is None:
            coarse = replace(self.params, q_xyz=self.params.q_xyz * self.coarsen_factor)
            self._coarse_compressor = DBGCCompressor(coarse, sensor=self.sensor)
        payload = self._coarse_compressor.compress(cloud)
        trace = item.trace
        with self._lock:
            trace.degraded = True
            trace.compressed_at = time.perf_counter()
            self.report.record(
                "degrade",
                trace.frame_index,
                detail=(
                    f"q_xyz x{self.coarsen_factor:g}: "
                    f"{trace.payload_bytes} -> {len(payload)} bytes"
                ),
            )
            trace.payload_bytes = len(payload)
        return _QueuedFrame(trace, payload, flags=FLAG_DEGRADED)

    # -- sender thread ------------------------------------------------

    def _window_now(self) -> int:
        """The effective (AIMD-adapted) window, clamped to [1, window]."""
        return max(1, min(self.window, int(self._cwnd)))

    def _sender_loop(self) -> None:
        """Selective-repeat sliding window over the frame queue.

        At ``window=1`` this degenerates exactly to stop-and-wait: one
        launch, then a blocking ACK wait whose expiry reconnects and
        retransmits — the pre-v2.2 behavior, event for event.
        """
        closing = False
        while True:
            # Refill the window from the send queue.
            while not closing and len(self._inflight) < self._window_now():
                item = self._queue.get() if not self._inflight else self._queue.get_nowait()
                if item is None:
                    break
                if item is _CLOSE:
                    closing = True
                    break
                if self.window == 1:
                    pause = self._busy_until - time.perf_counter()
                    if pause > 0:
                        # Server backpressure: slow down before transmit.
                        time.sleep(min(pause, self.busy_backoff_s))
                try:
                    self._launch(item)
                except BaseException as exc:
                    self._transport_dead(exc)
            if not self._inflight:
                if closing:
                    self._send_end()
                    return
                continue  # idle: go back to blocking on the queue
            try:
                self._pump_acks()
            except BaseException as exc:
                self._transport_dead(exc)

    def _launch(self, item: _QueuedFrame) -> None:
        """Enter a fresh frame into the in-flight table and send it."""
        trace = item.trace
        record = encode_record(
            TYPE_FRAME, trace.frame_index, item.payload, flags=item.flags
        )
        entry = _InFlight(item=item, record=record)
        self._inflight[trace.frame_index] = entry
        self._transmit_or_recover(entry)

    def _transmit_or_recover(self, entry: _InFlight) -> None:
        """One transmission; on a link error, reconnect and resend all."""
        try:
            self._send_attempt(entry)
        except (ConnectionError, TimeoutError, OSError) as exc:
            with self._lock:
                self.report.record(
                    "retry", entry.item.trace.frame_index, entry.attempt - 1,
                    detail=repr(exc),
                )
            self._recover_link()

    def _send_attempt(self, entry: _InFlight) -> None:
        """Transmit one attempt of one frame (no ACK wait)."""
        trace = entry.item.trace
        attempt = entry.attempt
        with self._lock:
            trace.attempts = attempt + 1
            if trace.sent_at == 0.0:
                trace.sent_at = time.perf_counter()
        faulty = self.channel if isinstance(self.channel, FaultyChannel) else None
        plan = (
            faulty.plan(trace.frame_index, attempt, len(entry.record))
            if faulty is not None
            else None
        )
        entry.attempt = attempt + 1
        entry.acks_at_send = self._acks_seen
        self._send_record(entry.record, plan)
        now = time.perf_counter()
        entry.sent_at = now
        entry.deadline = now + self.ack_timeout

    def _send_record(self, record: bytes, plan: FaultPlan | None) -> None:
        assert self._sock is not None
        data = record
        if plan is not None and plan.flip_bits:
            wire = bytearray(data)
            for bit in plan.flip_bits:
                pos = PAYLOAD_OFFSET + bit // 8
                if pos < len(wire) - 4:  # keep the trailing CRC intact
                    wire[pos] ^= 1 << (bit % 8)
            data = bytes(wire)
        started = time.perf_counter()
        scale = plan.jitter_factor if plan is not None else 1.0
        if self.channel is not None:
            self.channel.pace(len(data), started, scale=scale)
        if plan is not None and plan.cut_after is not None:
            self._sock.sendall(data[: plan.cut_after])
            # Simulate the link dying mid-record.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
            raise ConnectionError(
                f"fault injection: link died after {plan.cut_after} bytes"
            )
        self._sock.sendall(data)

    # -- ACK pump ------------------------------------------------------

    def _read_deadline(self, deadline: float) -> Record:
        """Read one record with the socket timeout set to what remains.

        The single socket-deadline helper shared by the in-flight ACK
        reader and the END handshake: every read gets the *shrinking*
        remainder of an overall deadline, so a trickle of stale records
        can never extend the total wait.
        """
        assert self._sock is not None
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            raise TimeoutError(f"deadline expired {-remaining:.3f}s ago")
        self._sock.settimeout(remaining)
        return read_record(self._sock)

    def _pump_acks(self) -> None:
        """Wait for the next ACK or frame deadline, then settle the table."""
        deadline = min(e.deadline for e in self._inflight.values())
        if self._delayed_acks:
            deadline = min(deadline, self._delayed_acks[0][0])
        try:
            record = self._read_deadline(deadline)
        except TimeoutError:
            pass  # fall through to delayed-ACK delivery and expiry
        except (ConnectionError, OSError) as exc:
            index, entry = next(iter(self._inflight.items()))
            with self._lock:
                self.report.record("retry", index, entry.attempt - 1, detail=repr(exc))
            self._recover_link()
            return
        else:
            if record.type == TYPE_ACK:
                self._acks_seen += 1  # any ACK arrival proves the link lives
                if self._ack_delay_s > 0.0:
                    self._delayed_acks.append(
                        (time.perf_counter() + self._ack_delay_s, record)
                    )
                else:
                    self._deliver_ack(record)
        while self._delayed_acks and self._delayed_acks[0][0] <= time.perf_counter():
            self._deliver_ack(self._delayed_acks.popleft()[1])
        self._expire_frames()

    def _deliver_ack(self, record: Record) -> None:
        """Match one ACK against the in-flight table (out-of-order OK)."""
        entry = self._inflight.pop(record.frame_index, None)
        busy = bool(record.flags & ACK_FLAG_BUSY)
        if busy:
            self._note_busy()
        if entry is None:
            return  # stale ACK for an attempt already resolved
        if busy:
            self._cwnd = max(1.0, self._cwnd / 2.0)
        else:
            self._cwnd = min(float(self.window), self._cwnd + 1.0)
        trace = entry.item.trace
        latency = time.perf_counter() - entry.sent_at
        _obs.observe("transport.ack_latency_s", latency)
        status = record.flags & ACK_STATUS_MASK
        with self._lock:
            self.report.ack_latencies.append(latency)
            if status == ACK_QUARANTINED:
                trace.status = "quarantined"
                self.report.record(
                    "quarantine", trace.frame_index, entry.attempt - 1,
                    detail="server rejected payload",
                )
            else:
                trace.status = "stored"  # fresh store or deduped retransmit
        if status != ACK_QUARANTINED:
            _obs.count("transport.stored")
            _obs.add_bytes("transport.sent", len(entry.item.payload))

    def _expire_frames(self) -> None:
        """Retransmit (or give up on) every frame past its ACK deadline."""
        now = time.perf_counter()
        for index in list(self._inflight):
            entry = self._inflight.get(index)
            if entry is None or entry.deadline > now:
                continue
            with self._lock:
                self.report.record(
                    "retry", index, entry.attempt - 1,
                    detail=f"no ACK within {self.ack_timeout:g}s",
                )
            if entry.attempt > self.max_retries:
                self._drop(entry)
                continue
            if self._acks_seen == entry.acks_at_send:
                # Nothing heard since this frame last hit the wire: the
                # link itself is suspect — reconnect, resend everything.
                self._recover_link()
                return
            # ACKs are flowing for other frames: selective repeat.
            self._transmit_or_recover(entry)

    def _recover_link(self) -> None:
        """Reconnect and retransmit every unACKed frame, oldest first.

        Frames that exhaust their retry budget along the way are dropped;
        a send failure mid-replay reconnects again and resumes.  Raises
        ``ConnectionError`` only when the link is beyond repair.
        """
        while True:
            self._reconnect()
            failed = False
            for index in list(self._inflight):
                entry = self._inflight.get(index)
                if entry is None:
                    continue
                if entry.attempt > self.max_retries:
                    self._drop(entry)
                    continue
                try:
                    self._send_attempt(entry)
                except (ConnectionError, TimeoutError, OSError) as exc:
                    with self._lock:
                        self.report.record(
                            "retry", index, entry.attempt - 1, detail=repr(exc)
                        )
                    failed = True
                    break
            if not failed:
                return

    def _drop(self, entry: _InFlight) -> None:
        """Give up on a frame whose retry budget is exhausted."""
        trace = entry.item.trace
        with self._lock:
            trace.status = "dropped"
            self.report.record(
                "drop", trace.frame_index, self.max_retries,
                detail=f"gave up after {self.max_retries + 1} attempts",
            )
        self._inflight.pop(trace.frame_index, None)

    def _transport_dead(self, exc: BaseException) -> None:
        """The link is beyond repair: account every in-flight frame."""
        self.transport_error = exc
        with self._lock:
            for entry in self._inflight.values():
                entry.item.trace.status = "dropped"
                self.report.record(
                    "drop", entry.item.trace.frame_index,
                    detail=f"transport dead: {exc!r}",
                )
        self._inflight.clear()
        self._delayed_acks.clear()

    def _note_busy(self) -> None:
        """Honor a server BUSY hint: mark congestion (and pause at W=1)."""
        self._busy_until = time.perf_counter() + self.busy_backoff_s
        with self._lock:
            self.report.busy_hints += 1
        _obs.count("transport.busy_hints")

    def _connect(self, retries: int, first_immediate: bool = False) -> socket.socket:
        last: BaseException | None = None
        for attempt in range(retries + 1):
            if attempt > 0 or not first_immediate:
                delay = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
                time.sleep(delay * (0.5 + 0.5 * self._rng.random()))
            try:
                return socket.create_connection(
                    self.address, timeout=self.connect_timeout
                )
            except OSError as exc:
                last = exc
        raise ConnectionError(
            f"could not connect to {self.address} after {retries + 1} attempts"
        ) from last

    def _hello(self) -> None:
        """Announce stream id + window (v2.2) on the current connection."""
        assert self._sock is not None
        self._sock.sendall(
            encode_record(TYPE_HELLO, self.stream_id, flags=min(self.window, 255))
        )

    def _reconnect(self) -> None:
        if self._sock is not None:
            self._sock.close()
        self._sock = self._connect(self.max_retries)
        try:
            self._hello()
        except OSError as exc:
            raise ConnectionError(
                f"could not re-announce stream {self.stream_id}"
            ) from exc
        with self._lock:
            self.report.record("reconnect", -1)

    def _send_end(self) -> None:
        # END is addressed at END_ACK_INDEX, so only the server's END
        # acknowledgement — never a stale frame ACK — completes the
        # handshake.  A lost END ack is retried over a fresh connection
        # (the server marks the stream ended idempotently).  Each attempt
        # gets one overall deadline; stale records shrink the remainder.
        for attempt in range(3):
            try:
                assert self._sock is not None
                self._sock.sendall(encode_record(TYPE_END, END_ACK_INDEX))
                deadline = time.perf_counter() + min(2.0, self.ack_timeout)
                while True:
                    record = self._read_deadline(deadline)
                    if record.type == TYPE_ACK and record.frame_index == END_ACK_INDEX:
                        return
            except (OSError, ConnectionError, TimeoutError):
                if attempt < 2:
                    try:
                        self._reconnect()
                    except (OSError, ConnectionError):
                        return

    # -- shutdown / receipts ------------------------------------------

    def close(self) -> None:
        """Flush the queue, signal end-of-stream, close the connection.

        Idempotent, and safe on a client whose ``__init__`` never
        finished (a failed connect leaves no socket or thread behind).
        """
        if getattr(self, "_closed", True):
            return
        self._closed = True
        sender = getattr(self, "_sender", None)
        if sender is not None and sender.is_alive():
            self._queue.put_priority(_CLOSE)
            sender.join(timeout=60.0)
        sock = getattr(self, "_sock", None)
        if sock is not None:
            sock.close()

    def merge_receipts(self, receipts: list[tuple[int, int, float, float]]) -> None:
        """Fill server-side timestamps into this client's traces."""
        by_index = {t.frame_index: t for t in self.report.traces}
        for frame_index, _, received_at, stored_at in receipts:
            trace = by_index.get(frame_index)
            if trace is not None:
                trace.received_at = received_at
                trace.stored_at = stored_at
                if trace.status == "stored":
                    _obs.observe("client.total_latency_s", trace.total_latency)
