"""The DBGC client: acquire, compress, ship over an *unreliable* uplink.

Wraps a :class:`~repro.core.pipeline.DBGCCompressor` behind a TCP sender
whose pacing emulates the mobile uplink (paper Figure 2, client side) and
whose delivery survives it:

- frames go through a **bounded send queue** drained by a sender thread,
  with a configurable overflow policy for when the link cannot sustain
  the sensor's frame rate (``"block"``, ``"drop-oldest"``, or
  ``"coarsen"`` — recompress at a larger ``q_xyz``, the paper's
  ``supports()`` criterion applied online);
- each frame is a protocol-v2 record (CRC-protected, typed — see
  :mod:`repro.system.protocol`) and must be acknowledged within
  ``ack_timeout``; on timeout or disconnect the client **reconnects with
  capped exponential backoff plus jitter and retransmits** — the server
  dedupes by frame index, so retries are idempotent;
- every retry, drop, quarantine, and degradation lands in the
  :class:`~repro.system.metrics.PipelineReport` for accounting.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from random import Random
from typing import Iterable

from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.observability import recorder as _obs
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud
from repro.system.channel import BandwidthShaper
from repro.system.faults import FaultPlan, FaultyChannel
from repro.system.metrics import FrameTrace, PipelineReport
from repro.system.protocol import (
    ACK_FLAG_BUSY,
    ACK_QUARANTINED,
    ACK_STATUS_MASK,
    END_ACK_INDEX,
    PAYLOAD_OFFSET,
    TYPE_ACK,
    TYPE_END,
    TYPE_FRAME,
    TYPE_HELLO,
    FLAG_DEGRADED,
    encode_record,
    read_record,
)

__all__ = ["DbgcClient", "OVERFLOW_POLICIES"]

#: Send-queue overflow policies (engaged when the uplink falls behind).
OVERFLOW_POLICIES = ("block", "drop-oldest", "coarsen")

_CLOSE = object()  # queue sentinel: flush and send END


@dataclass
class _QueuedFrame:
    trace: FrameTrace
    payload: bytes
    flags: int = 0


class _SendQueue:
    """A bounded FIFO with pluggable overflow behavior."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: deque = deque()
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def full(self) -> bool:
        with self._cond:
            return len(self._items) >= self.capacity

    def put_block(self, item) -> None:
        """Append, waiting for space (backpressure onto the producer)."""
        with self._cond:
            while len(self._items) >= self.capacity:
                self._cond.wait()
            self._items.append(item)
            self._cond.notify_all()

    def put_drop_oldest(self, item) -> "_QueuedFrame | None":
        """Append, evicting and returning the oldest entry when full."""
        with self._cond:
            evicted = None
            if len(self._items) >= self.capacity:
                evicted = self._items.popleft()
            self._items.append(item)
            self._cond.notify_all()
            return evicted

    def put_priority(self, item) -> None:
        """Append regardless of capacity (for the close sentinel)."""
        with self._cond:
            self._items.append(item)
            self._cond.notify_all()

    def get(self):
        """Pop the oldest entry, blocking until one exists."""
        with self._cond:
            while not self._items:
                self._cond.wait()
            item = self._items.popleft()
            self._cond.notify_all()
            return item


class DbgcClient:
    """Compress frames and deliver them to a :class:`DbgcServer`, reliably.

    Parameters
    ----------
    address:
        Server ``(host, port)``.
    params, sensor:
        Compression configuration.  The sensor also provides the frame
        rate used by the ``"coarsen"`` policy's ``supports()`` check.
    channel:
        Optional uplink shaper (sends are paced to its bandwidth) or a
        :class:`~repro.system.faults.FaultyChannel` for deterministic
        fault injection.
    queue_capacity, overflow_policy:
        Bounded send-queue size and what to do when it overflows:
        ``"block"`` the producer, ``"drop-oldest"`` (evict the stalest
        queued frame), or ``"coarsen"`` (recompress the incoming frame at
        ``coarsen_factor * q_xyz`` when the link is congested, blocking
        only if it still does not fit).
    coarsen_factor:
        Error-bound multiplier applied by the ``"coarsen"`` policy.
    max_retries:
        Retransmissions allowed per frame after the first attempt; a
        frame whose retries are exhausted is recorded as dropped.
    ack_timeout, connect_timeout:
        Seconds to wait for a server ACK / for a TCP connect.
    backoff_base, backoff_cap:
        Reconnect backoff: attempt *i* sleeps
        ``min(cap, base * 2**i) * uniform(0.5, 1.0)``.
    retry_seed:
        Seed of the backoff-jitter RNG (deterministic tests).
    connect_retries:
        Attempts for the *initial* connect (defaults to ``max_retries``).
        ``__init__`` either returns a fully working client or raises with
        every socket closed — never a half-built object.
    stream_id:
        This client's stream identity, announced in a HELLO record on
        every connection (initial and reconnects).  The server keys all
        per-stream state — dedupe, ACK ordinals, receipts — by it, so
        give each client of a fleet its own id.
    busy_backoff_s:
        How long to honor a server BUSY hint (the backpressure bit an
        overloaded server sets on its ACKs): the sender pauses this many
        seconds before the next transmit, and the link counts as
        congested for the ``"coarsen"`` policy's ``supports()`` check
        until the pause expires.
    """

    def __init__(
        self,
        address: tuple[str, int],
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
        channel: BandwidthShaper | FaultyChannel | None = None,
        queue_capacity: int = 8,
        overflow_policy: str = "block",
        coarsen_factor: float = 4.0,
        max_retries: int = 5,
        ack_timeout: float = 10.0,
        connect_timeout: float = 10.0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
        connect_retries: int | None = None,
        stream_id: int = 0,
        busy_backoff_s: float = 0.05,
    ) -> None:
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow_policy!r}; "
                f"choose from {OVERFLOW_POLICIES}"
            )
        if not 0 <= stream_id <= 0xFFFFFFFF:
            raise ValueError(f"stream id {stream_id} out of u32 range")
        # Build every resource-free attribute first: if the connect below
        # fails, __init__ raises without leaking a socket or a thread.
        self.address = address
        self.params = params if params is not None else DBGCParams()
        self.sensor = sensor
        self.compressor = DBGCCompressor(params, sensor=sensor)
        self.channel = channel
        self.overflow_policy = overflow_policy
        self.coarsen_factor = float(coarsen_factor)
        self.max_retries = int(max_retries)
        self.ack_timeout = float(ack_timeout)
        self.connect_timeout = float(connect_timeout)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stream_id = int(stream_id)
        self.busy_backoff_s = float(busy_backoff_s)
        #: Monotonic deadline until which the server's BUSY hint holds.
        self._busy_until = 0.0
        self.report = PipelineReport()
        self.transport_error: BaseException | None = None
        self._rng = Random(retry_seed)
        self._lock = threading.Lock()  # guards traces + report.events
        self._queue = _SendQueue(queue_capacity)
        self._coarse_compressor: DBGCCompressor | None = None
        self._closed = False
        self._sock: socket.socket | None = None
        self._sender: threading.Thread | None = None
        retries = self.max_retries if connect_retries is None else int(connect_retries)
        self._sock = self._connect(retries, first_immediate=True)
        try:
            self._hello()
        except OSError as exc:
            self._sock.close()
            self._sock = None
            raise ConnectionError(
                f"could not announce stream {self.stream_id} to {address}"
            ) from exc
        self._sender = threading.Thread(target=self._sender_loop, daemon=True)
        self._sender.start()

    def __enter__(self) -> "DbgcClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- producer side -------------------------------------------------

    @property
    def _frame_rate(self) -> float | None:
        return None if self.sensor is None else self.sensor.frames_per_second

    def send_frame(self, frame_index: int, cloud: PointCloud) -> FrameTrace:
        """Compress one frame and enqueue it for delivery.

        Returns the frame's trace immediately; ``sent_at``/``attempts``/
        ``status`` are filled in by the sender thread, and
        ``received_at``/``stored_at`` merge from the server's receipts
        after :meth:`close` (see :meth:`merge_receipts`).
        """
        captured_at = time.perf_counter()
        payload = self.compressor.compress(cloud)
        compressed_at = time.perf_counter()
        trace = FrameTrace(
            frame_index=frame_index,
            n_points=len(cloud),
            payload_bytes=len(payload),
            captured_at=captured_at,
            compressed_at=compressed_at,
            status="pending",
        )
        with self._lock:
            self.report.add(trace)
        self._enqueue(_QueuedFrame(trace, payload), cloud)
        return trace

    def send_payload(self, frame_index: int, payload: bytes) -> FrameTrace:
        """Enqueue a pre-compressed payload (sensor-side re-shipping)."""
        now = time.perf_counter()
        trace = FrameTrace(
            frame_index=frame_index,
            n_points=0,
            payload_bytes=len(payload),
            captured_at=now,
            compressed_at=now,
            status="pending",
        )
        with self._lock:
            self.report.add(trace)
        self._enqueue(_QueuedFrame(trace, payload), cloud=None)
        return trace

    def send_stream(self, frames: Iterable[PointCloud]) -> PipelineReport:
        """Send a whole frame stream and return the accumulated report."""
        for index, cloud in enumerate(frames):
            self.send_frame(index, cloud)
        return self.report

    def _enqueue(self, item: _QueuedFrame, cloud: PointCloud | None) -> None:
        if self._closed:
            raise RuntimeError("client is closed")
        if self.overflow_policy == "coarsen" and cloud is not None:
            item = self._maybe_coarsen(item, cloud)
            self._queue.put_block(item)
        elif self.overflow_policy == "drop-oldest":
            evicted = self._queue.put_drop_oldest(item)
            if evicted is not None:
                with self._lock:
                    evicted.trace.status = "dropped"
                    self.report.record(
                        "drop", evicted.trace.frame_index, detail="evicted: queue full"
                    )
        else:
            self._queue.put_block(item)

    def _congested(self, payload_bytes: int) -> bool:
        """Is the link falling behind? (paper's ``supports()`` criterion)"""
        if self._queue.full():
            return True
        if time.perf_counter() < self._busy_until:
            return True  # server said BUSY: treat the link as congested
        rate = self._frame_rate
        if rate is not None and self.channel is not None:
            return not self.channel.supports(payload_bytes, rate)
        return False

    def _maybe_coarsen(self, item: _QueuedFrame, cloud: PointCloud) -> _QueuedFrame:
        if not self._congested(len(item.payload)):
            return item
        if self._coarse_compressor is None:
            coarse = replace(self.params, q_xyz=self.params.q_xyz * self.coarsen_factor)
            self._coarse_compressor = DBGCCompressor(coarse, sensor=self.sensor)
        payload = self._coarse_compressor.compress(cloud)
        trace = item.trace
        with self._lock:
            trace.degraded = True
            trace.compressed_at = time.perf_counter()
            self.report.record(
                "degrade",
                trace.frame_index,
                detail=(
                    f"q_xyz x{self.coarsen_factor:g}: "
                    f"{trace.payload_bytes} -> {len(payload)} bytes"
                ),
            )
            trace.payload_bytes = len(payload)
        return _QueuedFrame(trace, payload, flags=FLAG_DEGRADED)

    # -- sender thread ------------------------------------------------

    def _sender_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                self._send_end()
                return
            pause = self._busy_until - time.perf_counter()
            if pause > 0:
                # Server backpressure: slow down before the next transmit.
                time.sleep(min(pause, self.busy_backoff_s))
            try:
                self._transmit(item)
            except BaseException as exc:
                # Link is beyond repair: account the frame, keep draining
                # so close() never deadlocks on a full queue.
                self.transport_error = exc
                with self._lock:
                    item.trace.status = "dropped"
                    self.report.record(
                        "drop", item.trace.frame_index, detail=f"transport dead: {exc!r}"
                    )

    def _transmit(self, item: _QueuedFrame) -> None:
        trace = item.trace
        record = encode_record(
            TYPE_FRAME, trace.frame_index, item.payload, flags=item.flags
        )
        faulty = self.channel if isinstance(self.channel, FaultyChannel) else None
        for attempt in range(self.max_retries + 1):
            with self._lock:
                trace.attempts = attempt + 1
                if trace.sent_at == 0.0:
                    trace.sent_at = time.perf_counter()
            plan = (
                faulty.plan(trace.frame_index, attempt, len(record))
                if faulty is not None
                else None
            )
            try:
                self._send_record(record, plan)
                status = self._await_ack(trace.frame_index)
            except (ConnectionError, TimeoutError, OSError) as exc:
                with self._lock:
                    self.report.record(
                        "retry", trace.frame_index, attempt, detail=repr(exc)
                    )
                if attempt < self.max_retries:
                    self._reconnect()
                continue
            with self._lock:
                trace.status = status
                if status == "quarantined":
                    self.report.record(
                        "quarantine", trace.frame_index, attempt,
                        detail="server rejected payload",
                    )
            if status == "stored":
                _obs.count("transport.stored")
                _obs.add_bytes("transport.sent", len(item.payload))
            return
        with self._lock:
            trace.status = "dropped"
            self.report.record(
                "drop", trace.frame_index, self.max_retries,
                detail=f"gave up after {self.max_retries + 1} attempts",
            )

    def _send_record(self, record: bytes, plan: FaultPlan | None) -> None:
        assert self._sock is not None
        data = record
        if plan is not None and plan.flip_bits:
            wire = bytearray(data)
            for bit in plan.flip_bits:
                pos = PAYLOAD_OFFSET + bit // 8
                if pos < len(wire) - 4:  # keep the trailing CRC intact
                    wire[pos] ^= 1 << (bit % 8)
            data = bytes(wire)
        started = time.perf_counter()
        scale = plan.jitter_factor if plan is not None else 1.0
        if self.channel is not None:
            self.channel.pace(len(data), started, scale=scale)
        if plan is not None and plan.cut_after is not None:
            self._sock.sendall(data[: plan.cut_after])
            # Simulate the link dying mid-record.
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
            raise ConnectionError(
                f"fault injection: link died after {plan.cut_after} bytes"
            )
        self._sock.sendall(data)

    def _await_ack(self, frame_index: int) -> str:
        assert self._sock is not None
        self._sock.settimeout(self.ack_timeout)
        while True:
            record = read_record(self._sock)
            if record.type == TYPE_ACK and record.frame_index == frame_index:
                if record.flags & ACK_FLAG_BUSY:
                    self._note_busy()
                status = record.flags & ACK_STATUS_MASK
                if status == ACK_QUARANTINED:
                    return "quarantined"
                return "stored"  # fresh store or deduped retransmission
            # A stale ACK from a previous attempt/frame: keep reading.

    def _note_busy(self) -> None:
        """Honor a server BUSY hint: pause the sender, mark congestion."""
        self._busy_until = time.perf_counter() + self.busy_backoff_s
        with self._lock:
            self.report.busy_hints += 1
        _obs.count("transport.busy_hints")

    def _connect(self, retries: int, first_immediate: bool = False) -> socket.socket:
        last: BaseException | None = None
        for attempt in range(retries + 1):
            if attempt > 0 or not first_immediate:
                delay = min(self.backoff_cap, self.backoff_base * (2 ** max(0, attempt - 1)))
                time.sleep(delay * (0.5 + 0.5 * self._rng.random()))
            try:
                return socket.create_connection(
                    self.address, timeout=self.connect_timeout
                )
            except OSError as exc:
                last = exc
        raise ConnectionError(
            f"could not connect to {self.address} after {retries + 1} attempts"
        ) from last

    def _hello(self) -> None:
        """Announce this client's stream id on the current connection."""
        assert self._sock is not None
        self._sock.sendall(encode_record(TYPE_HELLO, self.stream_id))

    def _reconnect(self) -> None:
        if self._sock is not None:
            self._sock.close()
        self._sock = self._connect(self.max_retries)
        try:
            self._hello()
        except OSError as exc:
            raise ConnectionError(
                f"could not re-announce stream {self.stream_id}"
            ) from exc
        with self._lock:
            self.report.record("reconnect", -1)

    def _send_end(self) -> None:
        # END is addressed at END_ACK_INDEX, so only the server's END
        # acknowledgement — never a stale frame ACK — completes the
        # handshake.  A lost END ack is retried over a fresh connection
        # (the server marks the stream ended idempotently).
        for attempt in range(3):
            try:
                assert self._sock is not None
                self._sock.sendall(encode_record(TYPE_END, END_ACK_INDEX))
                self._sock.settimeout(min(2.0, self.ack_timeout))
                while True:
                    record = read_record(self._sock)
                    if record.type == TYPE_ACK and record.frame_index == END_ACK_INDEX:
                        return
            except (OSError, ConnectionError, TimeoutError):
                if attempt < 2:
                    try:
                        self._reconnect()
                    except (OSError, ConnectionError):
                        return

    # -- shutdown / receipts ------------------------------------------

    def close(self) -> None:
        """Flush the queue, signal end-of-stream, close the connection.

        Idempotent, and safe on a client whose ``__init__`` never
        finished (a failed connect leaves no socket or thread behind).
        """
        if getattr(self, "_closed", True):
            return
        self._closed = True
        sender = getattr(self, "_sender", None)
        if sender is not None and sender.is_alive():
            self._queue.put_priority(_CLOSE)
            sender.join(timeout=60.0)
        sock = getattr(self, "_sock", None)
        if sock is not None:
            sock.close()

    def merge_receipts(self, receipts: list[tuple[int, int, float, float]]) -> None:
        """Fill server-side timestamps into this client's traces."""
        by_index = {t.frame_index: t for t in self.report.traces}
        for frame_index, _, received_at, stored_at in receipts:
            trace = by_index.get(frame_index)
            if trace is not None:
                trace.received_at = received_at
                trace.stored_at = stored_at
                if trace.status == "stored":
                    _obs.observe("client.total_latency_s", trace.total_latency)
