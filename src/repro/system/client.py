"""The DBGC client: acquire, compress, ship over the uplink.

Wraps a :class:`~repro.core.pipeline.DBGCCompressor` behind a TCP sender
whose pacing emulates the mobile uplink (paper Figure 2, client side).
"""

from __future__ import annotations

import socket
import struct
import time
from typing import Iterable

from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCCompressor
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud
from repro.system.channel import BandwidthShaper
from repro.system.metrics import FrameTrace, PipelineReport

__all__ = ["DbgcClient"]

_FRAME_HEADER = struct.Struct("<II")
_END_MARKER = 0xFFFFFFFF


class DbgcClient:
    """Compress frames and send them to a :class:`DbgcServer`.

    Parameters
    ----------
    address:
        Server ``(host, port)``.
    params, sensor:
        Compression configuration.
    channel:
        Optional uplink shaper; when given, sends are paced to its
        bandwidth so end-to-end latency reflects the constrained link.
    """

    def __init__(
        self,
        address: tuple[str, int],
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
        channel: BandwidthShaper | None = None,
    ) -> None:
        self.compressor = DBGCCompressor(params, sensor=sensor)
        self.channel = channel
        self._sock = socket.create_connection(address, timeout=30.0)
        self.report = PipelineReport()

    def send_frame(self, frame_index: int, cloud: PointCloud) -> FrameTrace:
        """Compress and transmit one frame; returns its (partial) trace.

        ``received_at``/``stored_at`` stay zero here; the benchmark driver
        merges them from the server's receipts after :meth:`close`.
        """
        captured_at = time.perf_counter()
        payload = self.compressor.compress(cloud)
        compressed_at = time.perf_counter()
        # Transmission starts now; the shaper delays delivery by the link's
        # serialization time, so the server's receive timestamp reflects a
        # constrained uplink rather than the loopback.
        sent_at = compressed_at
        if self.channel is not None:
            self.channel.pace(len(payload), sent_at)
        self._sock.sendall(_FRAME_HEADER.pack(frame_index, len(payload)))
        self._sock.sendall(payload)
        trace = FrameTrace(
            frame_index=frame_index,
            n_points=len(cloud),
            payload_bytes=len(payload),
            captured_at=captured_at,
            compressed_at=compressed_at,
            sent_at=sent_at,
        )
        self.report.add(trace)
        return trace

    def send_stream(self, frames: Iterable[PointCloud]) -> PipelineReport:
        """Send a whole frame stream and return the accumulated report."""
        for index, cloud in enumerate(frames):
            self.send_frame(index, cloud)
        return self.report

    def close(self) -> None:
        """Signal end-of-stream and close the connection."""
        try:
            self._sock.sendall(_FRAME_HEADER.pack(_END_MARKER, 0))
        finally:
            self._sock.close()

    def merge_receipts(self, receipts: list[tuple[int, int, float, float]]) -> None:
        """Fill server-side timestamps into this client's traces."""
        by_index = {t.frame_index: t for t in self.report.traces}
        for frame_index, _, received_at, stored_at in receipts:
            trace = by_index.get(frame_index)
            if trace is not None:
                trace.received_at = received_at
                trace.stored_at = stored_at
