"""Server-side frame stores, crash-safe.

The paper's server either decompresses and processes frames or stores the
compressed bit sequence directly; storage goes to files or to a relational
database (they use ODBC — we use the stdlib's SQLite, the same access
pattern without a driver dependency).

With the multi-client ingest tier, several connection handlers write
concurrently: :class:`SqliteFrameStore` serializes all statement/commit
pairs behind an internal lock (``check_same_thread=False`` alone is *not*
thread-safe — interleaved execute/commit from two threads can commit a
half-written row or trip sqlite's shared-cache errors), and
:class:`ShardedFrameStore` spreads the index space over N independent
stores so handlers landing on different shards do not serialize on one
database at all.

The durability tier adds a write-ahead commit path to every store
(``durable=True``, the default):

- :class:`FileFrameStore` writes each artifact to a same-directory tmp
  file and renames it into place (the commit point), recording the
  payload CRC-32 in a ``.crc`` sidecar *before* the payload rename — a
  killed process leaves a tmp orphan, never a torn frame, and
  :meth:`FileFrameStore.recover` deletes the orphans on the next open.
- :class:`SqliteFrameStore` journals each write's intent (index, kind,
  CRC) into a ``journal`` table committed *before* the frame row;
  :meth:`SqliteFrameStore.recover` replays intents whose frame row
  landed and rolls back the rest.
- :class:`ShardedFrameStore` recovers each shard on open, can write
  every frame to ``replication`` consecutive shards, and
  :meth:`ShardedFrameStore.scrub` audits the replica CRCs — repairing a
  corrupted or missing copy from a healthy one.
"""

from __future__ import annotations

import io
import sqlite3
import threading
import zlib
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.geometry.points import PointCloud
from repro.observability import recorder as _obs
from repro.system.durability import (
    RecoveryReport,
    ScrubDefect,
    ScrubReport,
    atomic_write_bytes,
)

__all__ = ["FileFrameStore", "SqliteFrameStore", "ShardedFrameStore"]


class FileFrameStore:
    """One file per frame under a directory.

    Compressed payloads are stored verbatim (``.dbgc``); decompressed
    clouds as NPZ.  A frame index counts once even when both artifacts
    exist for it.

    With ``durable=True`` (default) every artifact is committed by the
    tmp-file + rename path of :func:`~repro.system.durability.
    atomic_write_bytes` and payloads get a ``.crc`` sidecar recording
    their CRC-32 (written first, so a visible payload always has its
    checksum).  ``fsync=True`` additionally syncs each write to stable
    storage.  :meth:`recover` runs on open and removes torn tmp files
    and orphaned sidecars; the report lands in :attr:`last_recovery`.
    """

    def __init__(
        self, root: str | Path, durable: bool = True, fsync: bool = False
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.durable = bool(durable)
        self.fsync = bool(fsync)
        self._closed = False
        self.last_recovery = self.recover()

    def _payload_path(self, frame_index: int) -> Path:
        return self.root / f"frame_{frame_index:06d}.dbgc"

    def _crc_path(self, frame_index: int) -> Path:
        return self.root / f"frame_{frame_index:06d}.crc"

    def recover(self) -> RecoveryReport:
        """Roll back torn writes: delete tmp orphans and widowed sidecars."""
        report = RecoveryReport()
        for tmp in self.root.glob("frame_*.tmp"):
            tmp.unlink()
            report.rolled_back += 1
        for crc in self.root.glob("frame_*.crc"):
            if not crc.with_suffix(".dbgc").exists():
                crc.unlink()
                report.orphans_removed += 1
        if report.rolled_back:
            _obs.count("store.journal.rollbacks", report.rolled_back)
        return report

    def put_payload(self, frame_index: int, payload: bytes) -> Path:
        path = self._payload_path(frame_index)
        if self.durable:
            # Sidecar first: a payload that became visible always has its
            # CRC; the reverse orphan is cleaned up by recover().
            atomic_write_bytes(
                self._crc_path(frame_index),
                f"{zlib.crc32(payload):08x}\n".encode(),
                fsync=self.fsync,
            )
            atomic_write_bytes(path, payload, fsync=self.fsync)
            _obs.count("store.journal.commits")
        else:
            path.write_bytes(payload)
        return path

    def get_payload(self, frame_index: int) -> bytes:
        return self._payload_path(frame_index).read_bytes()

    def payload_crc(self, frame_index: int) -> int | None:
        """The CRC-32 recorded at write time, or ``None`` if never recorded."""
        try:
            return int(self._crc_path(frame_index).read_text().strip(), 16)
        except (OSError, ValueError):
            return None

    def put_cloud(self, frame_index: int, cloud: PointCloud) -> Path:
        path = self.root / f"frame_{frame_index:06d}.npz"
        if self.durable:
            buffer = io.BytesIO()
            np.savez_compressed(buffer, xyz=cloud.xyz)
            atomic_write_bytes(path, buffer.getvalue(), fsync=self.fsync)
            _obs.count("store.journal.commits")
        else:
            np.savez_compressed(path, xyz=cloud.xyz)
        return path

    def get_cloud(self, frame_index: int) -> PointCloud:
        with np.load(self.root / f"frame_{frame_index:06d}.npz") as data:
            return PointCloud(data["xyz"])

    def frame_indices(self) -> list[int]:
        """Sorted indices of every stored frame (dedupe/audit aid).

        Deduplicated by index: ``frame_N.dbgc`` and ``frame_N.npz``
        together are still one frame.  CRC sidecars and tmp files are
        metadata, not frames.
        """
        return sorted(
            {
                int(p.stem.split("_")[1])
                for pattern in ("frame_*.dbgc", "frame_*.npz")
                for p in self.root.glob(pattern)
            }
        )

    def total_payload_bytes(self) -> int:
        """Summed on-disk bytes of every stored artifact (audit aid)."""
        return sum(
            p.stat().st_size
            for pattern in ("frame_*.dbgc", "frame_*.npz")
            for p in self.root.glob(pattern)
        )

    def __len__(self) -> int:
        return len(self.frame_indices())

    def close(self) -> None:
        """Idempotent; files need no teardown (store-interface symmetry)."""
        self._closed = True

    def __enter__(self) -> "FileFrameStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SqliteFrameStore:
    """Frames as BLOB rows in a SQLite table.

    Safe to share across threads: every statement/commit pair runs under
    an internal lock.  Writing a frame index that already holds the
    *other* kind (payload vs cloud) raises instead of silently replacing
    the row — only a same-kind overwrite (an idempotent retransmission)
    is allowed.

    With ``durable=True`` (default) each write goes through a
    write-ahead ``journal`` table: the intent (index, kind, CRC) commits
    first, then the frame row and the intent's deletion commit together.
    A crash between the two commits leaves the intent behind;
    :meth:`recover` (run on open) replays intents whose frame row landed
    and rolls back the rest.  Every row records its payload CRC-32 for
    scrub audits.
    """

    def __init__(self, path: str | Path = ":memory:", durable: bool = True) -> None:
        self._lock = threading.Lock()
        self.durable = bool(durable)
        self._closed = False
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS frames ("
                " frame_index INTEGER PRIMARY KEY,"
                " kind TEXT NOT NULL,"
                " n_points INTEGER NOT NULL,"
                " data BLOB NOT NULL,"
                " crc32 INTEGER)"
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS journal ("
                " frame_index INTEGER PRIMARY KEY,"
                " kind TEXT NOT NULL,"
                " crc32 INTEGER NOT NULL)"
            )
            # Migrate pre-durability databases that lack the CRC column.
            columns = {
                row[1] for row in self._conn.execute("PRAGMA table_info(frames)")
            }
            if "crc32" not in columns:
                self._conn.execute("ALTER TABLE frames ADD COLUMN crc32 INTEGER")
            self._conn.commit()
        self.last_recovery = self.recover()

    def recover(self) -> RecoveryReport:
        """Resolve leftover journal intents: replay committed, roll back torn.

        An intent whose frame row exists with the intended CRC committed
        before the crash (only the intent's deletion was lost) — it is
        *replayed* by clearing it.  Any other intent is *rolled back*:
        the frame table still holds the pre-write state (SQLite
        transactions are atomic), so dropping the intent restores it.
        """
        report = RecoveryReport()
        with self._lock:
            intents = self._conn.execute(
                "SELECT frame_index, kind, crc32 FROM journal"
            ).fetchall()
            for frame_index, kind, crc in intents:
                row = self._conn.execute(
                    "SELECT kind, crc32 FROM frames WHERE frame_index = ?",
                    (frame_index,),
                ).fetchone()
                if row is not None and row[0] == kind and row[1] == crc:
                    report.replayed += 1
                else:
                    report.rolled_back += 1
                self._conn.execute(
                    "DELETE FROM journal WHERE frame_index = ?", (frame_index,)
                )
            self._conn.commit()
        if report.rolled_back:
            _obs.count("store.journal.rollbacks", report.rolled_back)
        return report

    def _put(self, frame_index: int, kind: str, n_points: int, data: bytes) -> None:
        crc = zlib.crc32(data)
        with self._lock:
            row = self._conn.execute(
                "SELECT kind FROM frames WHERE frame_index = ?", (frame_index,)
            ).fetchone()
            if row is not None and row[0] != kind:
                raise ValueError(
                    f"frame {frame_index} is already stored as {row[0]!r}; "
                    f"refusing to replace it with a {kind!r}"
                )
            if self.durable:
                # Phase 1: commit the intent.  Phase 2: the frame row and
                # the intent's clearance commit atomically together.
                self._conn.execute(
                    "INSERT OR REPLACE INTO journal VALUES (?, ?, ?)",
                    (frame_index, kind, crc),
                )
                self._conn.commit()
            self._conn.execute(
                "INSERT OR REPLACE INTO frames VALUES (?, ?, ?, ?, ?)",
                (frame_index, kind, n_points, data, crc),
            )
            if self.durable:
                self._conn.execute(
                    "DELETE FROM journal WHERE frame_index = ?", (frame_index,)
                )
            self._conn.commit()
        if self.durable:
            _obs.count("store.journal.commits")

    def put_payload(self, frame_index: int, payload: bytes, n_points: int = 0) -> None:
        self._put(frame_index, "payload", n_points, payload)

    def get_payload(self, frame_index: int) -> bytes:
        with self._lock:
            row = self._conn.execute(
                "SELECT data FROM frames WHERE frame_index = ? AND kind = 'payload'",
                (frame_index,),
            ).fetchone()
        if row is None:
            raise KeyError(f"no payload for frame {frame_index}")
        return row[0]

    def payload_crc(self, frame_index: int) -> int | None:
        """The CRC-32 recorded at write time, or ``None`` if never recorded."""
        with self._lock:
            row = self._conn.execute(
                "SELECT crc32 FROM frames WHERE frame_index = ? AND kind = 'payload'",
                (frame_index,),
            ).fetchone()
        return None if row is None or row[0] is None else int(row[0])

    def put_cloud(self, frame_index: int, cloud: PointCloud) -> None:
        self._put(frame_index, "cloud", len(cloud), cloud.xyz.tobytes())

    def get_cloud(self, frame_index: int) -> PointCloud:
        with self._lock:
            row = self._conn.execute(
                "SELECT n_points, data FROM frames WHERE frame_index = ? AND kind = 'cloud'",
                (frame_index,),
            ).fetchone()
        if row is None:
            raise KeyError(f"no cloud for frame {frame_index}")
        n_points, blob = row
        return PointCloud(np.frombuffer(blob, dtype=np.float64).reshape(n_points, 3))

    def frame_indices(self) -> list[int]:
        """Sorted indices of every stored frame (dedupe/audit aid)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT frame_index FROM frames ORDER BY frame_index"
            ).fetchall()
        return [row[0] for row in rows]

    def total_payload_bytes(self) -> int:
        """Summed stored blob sizes (audit aid for ingest accounting)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM frames"
            ).fetchone()
        return int(row[0])

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM frames").fetchone()[0]

    def __enter__(self) -> "SqliteFrameStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Idempotent: the first call closes the connection, later ones no-op."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._conn.close()


class ShardedFrameStore:
    """Route frames over N independent stores by ``frame_index % n_shards``.

    The ingest tier's storage fan-out: each shard sits behind its own
    lock, so connection handlers landing on different shards write in
    parallel while a single shard still serializes its own writes.  The
    routing is stateless and deterministic, so a concurrent fleet run and
    a serial replay of the same frames produce byte-identical shards.

    ``replication=R`` writes every frame to the R consecutive shards
    starting at its primary (``frame_index % n_shards``), so losing or
    corrupting one copy is survivable: reads fall back to the next
    healthy replica, and :meth:`scrub` audits all copies against their
    recorded CRCs, repairing a bad copy from a healthy one.
    """

    def __init__(
        self,
        shards: Iterable[FileFrameStore | SqliteFrameStore],
        replication: int = 1,
    ) -> None:
        self.shards = list(shards)
        if not self.shards:
            raise ValueError("need at least one shard")
        if not 1 <= replication <= len(self.shards):
            raise ValueError(
                f"replication must be in [1, {len(self.shards)}], got {replication}"
            )
        self.replication = int(replication)
        self._locks = [threading.Lock() for _ in self.shards]
        self._closed = False

    @classmethod
    def sqlite(
        cls,
        n_shards: int,
        directory: str | Path | None = None,
        replication: int = 1,
        durable: bool = True,
    ) -> "ShardedFrameStore":
        """N SQLite shards — in-memory, or ``shard_K.sqlite`` files under
        ``directory``."""
        if directory is None:
            return cls(
                (SqliteFrameStore(durable=durable) for _ in range(n_shards)),
                replication=replication,
            )
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        return cls(
            (
                SqliteFrameStore(root / f"shard_{k}.sqlite", durable=durable)
                for k in range(n_shards)
            ),
            replication=replication,
        )

    @classmethod
    def files(
        cls,
        n_shards: int,
        root: str | Path,
        replication: int = 1,
        durable: bool = True,
        fsync: bool = False,
    ) -> "ShardedFrameStore":
        """N file-store shards under ``root/shard_K/``."""
        base = Path(root)
        return cls(
            (
                FileFrameStore(base / f"shard_{k}", durable=durable, fsync=fsync)
                for k in range(n_shards)
            ),
            replication=replication,
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, frame_index: int) -> int:
        """The primary shard number that owns ``frame_index``."""
        return frame_index % len(self.shards)

    def replica_shards(self, frame_index: int) -> list[int]:
        """All shard numbers holding a copy of ``frame_index``, primary first."""
        primary = self.shard_for(frame_index)
        return [(primary + r) % len(self.shards) for r in range(self.replication)]

    def recover(self) -> RecoveryReport:
        """Run every shard's recovery pass and merge the reports."""
        report = RecoveryReport()
        for lock, shard in zip(self._locks, self.shards):
            with lock:
                report.merge(shard.recover())
        return report

    def put_payload(self, frame_index: int, payload: bytes):
        result = None
        for k in self.replica_shards(frame_index):
            with self._locks[k]:
                written = self.shards[k].put_payload(frame_index, payload)
            if result is None:
                result = written
        return result

    def get_payload(self, frame_index: int) -> bytes:
        """Read the primary copy, falling back to healthy replicas.

        A copy is skipped when it is missing or when its bytes no longer
        match the CRC recorded at write time (on-disk corruption).
        """
        last_error: Exception | None = None
        for k in self.replica_shards(frame_index):
            shard = self.shards[k]
            with self._locks[k]:
                try:
                    payload = shard.get_payload(frame_index)
                except (KeyError, OSError) as exc:
                    last_error = exc
                    continue
                crc = shard.payload_crc(frame_index)
            if crc is None or zlib.crc32(payload) == crc:
                return payload
            last_error = ValueError(
                f"frame {frame_index}: shard {k} copy fails its CRC"
            )
        if last_error is not None:
            raise last_error
        raise KeyError(f"no payload for frame {frame_index}")

    def put_cloud(self, frame_index: int, cloud: PointCloud):
        result = None
        for k in self.replica_shards(frame_index):
            with self._locks[k]:
                written = self.shards[k].put_cloud(frame_index, cloud)
            if result is None:
                result = written
        return result

    def get_cloud(self, frame_index: int) -> PointCloud:
        last_error: Exception | None = None
        for k in self.replica_shards(frame_index):
            with self._locks[k]:
                try:
                    return self.shards[k].get_cloud(frame_index)
                except (KeyError, OSError) as exc:
                    last_error = exc
        raise last_error if last_error is not None else KeyError(frame_index)

    def frame_indices(self) -> list[int]:
        """Sorted indices over all shards (each frame once, replicas deduped)."""
        indices: set[int] = set()
        for lock, shard in zip(self._locks, self.shards):
            with lock:
                indices.update(shard.frame_indices())
        return sorted(indices)

    def shard_payload_bytes(self) -> list[int]:
        """Stored bytes per shard, in shard order (accounting audits).

        With ``replication > 1`` replica copies count on their shard too
        — the audit is of on-disk bytes, not logical frames.
        """
        totals = []
        for lock, shard in zip(self._locks, self.shards):
            with lock:
                totals.append(shard.total_payload_bytes())
        return totals

    def total_payload_bytes(self) -> int:
        return sum(self.shard_payload_bytes())

    # -- replica audit -------------------------------------------------

    def scrub(self, repair: bool = True) -> ScrubReport:
        """Audit every replica copy's CRC; optionally repair bad copies.

        A copy is *healthy* when its bytes match the CRC recorded at
        write time (or, for copies written without CRCs, when they match
        the byte-majority of that frame's copies).  With ``repair=True``
        a missing or corrupt copy is rewritten from a healthy one —
        the repair goes through the shard's durable put path, so it
        re-records the CRC.  Frames stored as clouds (no payload rows)
        are skipped: the audit covers the compressed-payload tier.
        """
        report = ScrubReport()
        for frame_index in self.frame_indices():
            copies: dict[int, bytes | None] = {}
            crcs: dict[int, int | None] = {}
            for k in self.replica_shards(frame_index):
                shard = self.shards[k]
                with self._locks[k]:
                    try:
                        copies[k] = shard.get_payload(frame_index)
                    except (KeyError, OSError):
                        copies[k] = None
                    crcs[k] = shard.payload_crc(frame_index)
            if all(payload is None for payload in copies.values()):
                continue  # a cloud-kind frame, or outside the payload tier
            report.frames_checked += 1
            # CRC-verified copies, primary first (dict order = replica order).
            healthy = {
                k: payload
                for k, payload in copies.items()
                if payload is not None
                and crcs[k] is not None
                and zlib.crc32(payload) == crcs[k]
            }
            if not healthy:
                # Legacy copies without recorded CRCs: trust the byte
                # majority among them (undecidable with a 1-1 split).
                candidates = [p for p in copies.values() if p is not None]
                counts = {p: candidates.count(p) for p in set(candidates)}
                winner = max(counts, key=lambda p: counts[p])
                if counts[winner] > len(candidates) - counts[winner]:
                    healthy = {
                        k: p for k, p in copies.items() if p == winner
                    }
            # The repair source: the primary-most healthy copy.  Healthy
            # copies that diverge from it (each CRC-consistent, bytes
            # different — a write torn between replicas) converge onto it.
            reference = next(iter(healthy.values()), None)
            for k, payload in copies.items():
                crc_ok = k in healthy or crcs[k] is None
                if payload is not None and payload == reference and crc_ok:
                    report.copies_healthy += 1
                    continue
                kind = "missing" if payload is None else "corrupt"
                repaired = False
                if repair and reference is not None:
                    with self._locks[k]:
                        self.shards[k].put_payload(frame_index, reference)
                    repaired = True
                    _obs.count("store.scrub.repaired")
                _obs.count(f"store.scrub.{kind}")
                report.defects.append(
                    ScrubDefect(frame_index, k, kind, repaired=repaired)
                )
        return report

    def __len__(self) -> int:
        return len(self.frame_indices())

    def __enter__(self) -> "ShardedFrameStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Idempotent: closes every shard once."""
        if self._closed:
            return
        self._closed = True
        for lock, shard in zip(self._locks, self.shards):
            with lock:
                shard.close()
