"""Server-side frame stores.

The paper's server either decompresses and processes frames or stores the
compressed bit sequence directly; storage goes to files or to a relational
database (they use ODBC — we use the stdlib's SQLite, the same access
pattern without a driver dependency).
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

import numpy as np

from repro.geometry.points import PointCloud

__all__ = ["FileFrameStore", "SqliteFrameStore"]


class FileFrameStore:
    """One file per frame under a directory.

    Compressed payloads are stored verbatim (``.dbgc``); decompressed
    clouds as NPZ.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def put_payload(self, frame_index: int, payload: bytes) -> Path:
        path = self.root / f"frame_{frame_index:06d}.dbgc"
        path.write_bytes(payload)
        return path

    def get_payload(self, frame_index: int) -> bytes:
        return (self.root / f"frame_{frame_index:06d}.dbgc").read_bytes()

    def put_cloud(self, frame_index: int, cloud: PointCloud) -> Path:
        path = self.root / f"frame_{frame_index:06d}.npz"
        np.savez_compressed(path, xyz=cloud.xyz)
        return path

    def get_cloud(self, frame_index: int) -> PointCloud:
        with np.load(self.root / f"frame_{frame_index:06d}.npz") as data:
            return PointCloud(data["xyz"])

    def frame_indices(self) -> list[int]:
        """Sorted indices of every stored frame (dedupe/audit aid)."""
        return sorted(int(p.stem.split("_")[1]) for p in self.root.glob("frame_*"))

    def __len__(self) -> int:
        return len(list(self.root.glob("frame_*")))


class SqliteFrameStore:
    """Frames as BLOB rows in a SQLite table."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS frames ("
            " frame_index INTEGER PRIMARY KEY,"
            " kind TEXT NOT NULL,"
            " n_points INTEGER NOT NULL,"
            " data BLOB NOT NULL)"
        )
        self._conn.commit()

    def put_payload(self, frame_index: int, payload: bytes, n_points: int = 0) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO frames VALUES (?, 'payload', ?, ?)",
            (frame_index, n_points, payload),
        )
        self._conn.commit()

    def get_payload(self, frame_index: int) -> bytes:
        row = self._conn.execute(
            "SELECT data FROM frames WHERE frame_index = ? AND kind = 'payload'",
            (frame_index,),
        ).fetchone()
        if row is None:
            raise KeyError(f"no payload for frame {frame_index}")
        return row[0]

    def put_cloud(self, frame_index: int, cloud: PointCloud) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO frames VALUES (?, 'cloud', ?, ?)",
            (frame_index, len(cloud), cloud.xyz.tobytes()),
        )
        self._conn.commit()

    def get_cloud(self, frame_index: int) -> PointCloud:
        row = self._conn.execute(
            "SELECT n_points, data FROM frames WHERE frame_index = ? AND kind = 'cloud'",
            (frame_index,),
        ).fetchone()
        if row is None:
            raise KeyError(f"no cloud for frame {frame_index}")
        n_points, blob = row
        return PointCloud(np.frombuffer(blob, dtype=np.float64).reshape(n_points, 3))

    def frame_indices(self) -> list[int]:
        """Sorted indices of every stored frame (dedupe/audit aid)."""
        rows = self._conn.execute(
            "SELECT frame_index FROM frames ORDER BY frame_index"
        ).fetchall()
        return [row[0] for row in rows]

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM frames").fetchone()[0]

    def __enter__(self) -> "SqliteFrameStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._conn.close()
