"""Server-side frame stores.

The paper's server either decompresses and processes frames or stores the
compressed bit sequence directly; storage goes to files or to a relational
database (they use ODBC — we use the stdlib's SQLite, the same access
pattern without a driver dependency).

With the multi-client ingest tier, several connection handlers write
concurrently: :class:`SqliteFrameStore` serializes all statement/commit
pairs behind an internal lock (``check_same_thread=False`` alone is *not*
thread-safe — interleaved execute/commit from two threads can commit a
half-written row or trip sqlite's shared-cache errors), and
:class:`ShardedFrameStore` spreads the index space over N independent
stores so handlers landing on different shards do not serialize on one
database at all.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.geometry.points import PointCloud

__all__ = ["FileFrameStore", "SqliteFrameStore", "ShardedFrameStore"]


class FileFrameStore:
    """One file per frame under a directory.

    Compressed payloads are stored verbatim (``.dbgc``); decompressed
    clouds as NPZ.  A frame index counts once even when both artifacts
    exist for it.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def put_payload(self, frame_index: int, payload: bytes) -> Path:
        path = self.root / f"frame_{frame_index:06d}.dbgc"
        path.write_bytes(payload)
        return path

    def get_payload(self, frame_index: int) -> bytes:
        return (self.root / f"frame_{frame_index:06d}.dbgc").read_bytes()

    def put_cloud(self, frame_index: int, cloud: PointCloud) -> Path:
        path = self.root / f"frame_{frame_index:06d}.npz"
        np.savez_compressed(path, xyz=cloud.xyz)
        return path

    def get_cloud(self, frame_index: int) -> PointCloud:
        with np.load(self.root / f"frame_{frame_index:06d}.npz") as data:
            return PointCloud(data["xyz"])

    def frame_indices(self) -> list[int]:
        """Sorted indices of every stored frame (dedupe/audit aid).

        Deduplicated by index: ``frame_N.dbgc`` and ``frame_N.npz``
        together are still one frame.
        """
        return sorted({int(p.stem.split("_")[1]) for p in self.root.glob("frame_*")})

    def total_payload_bytes(self) -> int:
        """Summed on-disk bytes of every stored artifact (audit aid)."""
        return sum(p.stat().st_size for p in self.root.glob("frame_*"))

    def __len__(self) -> int:
        return len(self.frame_indices())

    def close(self) -> None:
        """Files need no teardown; present for store-interface symmetry."""

    def __enter__(self) -> "FileFrameStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SqliteFrameStore:
    """Frames as BLOB rows in a SQLite table.

    Safe to share across threads: every statement/commit pair runs under
    an internal lock.  Writing a frame index that already holds the
    *other* kind (payload vs cloud) raises instead of silently replacing
    the row — only a same-kind overwrite (an idempotent retransmission)
    is allowed.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS frames ("
                " frame_index INTEGER PRIMARY KEY,"
                " kind TEXT NOT NULL,"
                " n_points INTEGER NOT NULL,"
                " data BLOB NOT NULL)"
            )
            self._conn.commit()

    def _put(self, frame_index: int, kind: str, n_points: int, data: bytes) -> None:
        with self._lock:
            row = self._conn.execute(
                "SELECT kind FROM frames WHERE frame_index = ?", (frame_index,)
            ).fetchone()
            if row is not None and row[0] != kind:
                raise ValueError(
                    f"frame {frame_index} is already stored as {row[0]!r}; "
                    f"refusing to replace it with a {kind!r}"
                )
            self._conn.execute(
                "INSERT OR REPLACE INTO frames VALUES (?, ?, ?, ?)",
                (frame_index, kind, n_points, data),
            )
            self._conn.commit()

    def put_payload(self, frame_index: int, payload: bytes, n_points: int = 0) -> None:
        self._put(frame_index, "payload", n_points, payload)

    def get_payload(self, frame_index: int) -> bytes:
        with self._lock:
            row = self._conn.execute(
                "SELECT data FROM frames WHERE frame_index = ? AND kind = 'payload'",
                (frame_index,),
            ).fetchone()
        if row is None:
            raise KeyError(f"no payload for frame {frame_index}")
        return row[0]

    def put_cloud(self, frame_index: int, cloud: PointCloud) -> None:
        self._put(frame_index, "cloud", len(cloud), cloud.xyz.tobytes())

    def get_cloud(self, frame_index: int) -> PointCloud:
        with self._lock:
            row = self._conn.execute(
                "SELECT n_points, data FROM frames WHERE frame_index = ? AND kind = 'cloud'",
                (frame_index,),
            ).fetchone()
        if row is None:
            raise KeyError(f"no cloud for frame {frame_index}")
        n_points, blob = row
        return PointCloud(np.frombuffer(blob, dtype=np.float64).reshape(n_points, 3))

    def frame_indices(self) -> list[int]:
        """Sorted indices of every stored frame (dedupe/audit aid)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT frame_index FROM frames ORDER BY frame_index"
            ).fetchall()
        return [row[0] for row in rows]

    def total_payload_bytes(self) -> int:
        """Summed stored blob sizes (audit aid for ingest accounting)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(data)), 0) FROM frames"
            ).fetchone()
        return int(row[0])

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM frames").fetchone()[0]

    def __enter__(self) -> "SqliteFrameStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class ShardedFrameStore:
    """Route frames over N independent stores by ``frame_index % n_shards``.

    The ingest tier's storage fan-out: each shard sits behind its own
    lock, so connection handlers landing on different shards write in
    parallel while a single shard still serializes its own writes.  The
    routing is stateless and deterministic, so a concurrent fleet run and
    a serial replay of the same frames produce byte-identical shards.
    """

    def __init__(self, shards: Iterable[FileFrameStore | SqliteFrameStore]) -> None:
        self.shards = list(shards)
        if not self.shards:
            raise ValueError("need at least one shard")
        self._locks = [threading.Lock() for _ in self.shards]

    @classmethod
    def sqlite(
        cls, n_shards: int, directory: str | Path | None = None
    ) -> "ShardedFrameStore":
        """N SQLite shards — in-memory, or ``shard_K.sqlite`` files under
        ``directory``."""
        if directory is None:
            return cls(SqliteFrameStore() for _ in range(n_shards))
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        return cls(
            SqliteFrameStore(root / f"shard_{k}.sqlite") for k in range(n_shards)
        )

    @classmethod
    def files(cls, n_shards: int, root: str | Path) -> "ShardedFrameStore":
        """N file-store shards under ``root/shard_K/``."""
        base = Path(root)
        return cls(FileFrameStore(base / f"shard_{k}") for k in range(n_shards))

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, frame_index: int) -> int:
        """The shard number that owns ``frame_index``."""
        return frame_index % len(self.shards)

    def put_payload(self, frame_index: int, payload: bytes):
        k = self.shard_for(frame_index)
        with self._locks[k]:
            return self.shards[k].put_payload(frame_index, payload)

    def get_payload(self, frame_index: int) -> bytes:
        k = self.shard_for(frame_index)
        with self._locks[k]:
            return self.shards[k].get_payload(frame_index)

    def put_cloud(self, frame_index: int, cloud: PointCloud):
        k = self.shard_for(frame_index)
        with self._locks[k]:
            return self.shards[k].put_cloud(frame_index, cloud)

    def get_cloud(self, frame_index: int) -> PointCloud:
        k = self.shard_for(frame_index)
        with self._locks[k]:
            return self.shards[k].get_cloud(frame_index)

    def frame_indices(self) -> list[int]:
        """Sorted indices over all shards."""
        indices: list[int] = []
        for lock, shard in zip(self._locks, self.shards):
            with lock:
                indices.extend(shard.frame_indices())
        return sorted(indices)

    def shard_payload_bytes(self) -> list[int]:
        """Stored bytes per shard, in shard order (accounting audits)."""
        totals = []
        for lock, shard in zip(self._locks, self.shards):
            with lock:
                totals.append(shard.total_payload_bytes())
        return totals

    def total_payload_bytes(self) -> int:
        return sum(self.shard_payload_bytes())

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __enter__(self) -> "ShardedFrameStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        for lock, shard in zip(self._locks, self.shards):
            with lock:
                shard.close()
