"""Shared process-pool machinery: sticky routing and zero-copy transfer.

Two subsystems fan CPU-bound codec work out to worker processes: the
client-side :class:`~repro.system.parallel.ParallelFrameCompressor`
(independent frames, any worker will do) and the server-side decode
offload tier (stateful per-stream :class:`~repro.core.temporal.
TemporalDecoder`\\ s, where a stream's frames *must* hit the same worker
in arrival order).  This module holds the machinery they share:

- :class:`StickyWorkerPool` — N single-worker executors ("slots") with
  first-seen sticky key routing.  Because each slot is its own
  one-process executor, routing a stream's frames to its slot makes the
  slot queue a per-stream FIFO: frames submitted in arrival order are
  decoded in arrival order, with no global decode lock and no
  cross-stream head-of-line blocking.  Keyless submissions round-robin
  across slots (the compressor's case).  A ``max_in_flight`` window
  bounds the work queue; :meth:`StickyWorkerPool.depth` exposes its
  depth for backpressure.
- :func:`pack_array` / :func:`unpack_array` — pickle protocol-5
  out-of-band buffer transfer (PEP 574) for numpy arrays.  The worker
  ships the array's data buffer as raw bytes next to a tiny pickle
  header; the receiving side reconstructs the array *over* those bytes
  (``np.frombuffer`` under the hood), so a decoded cloud's ``xyz``
  crosses the process boundary with one copy into the pipe and zero
  copies on arrival — the reconstructed array is read-only and does not
  own its data.

Worker state follows the module-level pattern: the executor's
``initializer`` seeds module globals in the worker process (e.g. a
compressor instance, or a dict of per-stream decoders) and the submitted
function reads them — nothing stateful crosses the pickle boundary per
call.
"""

from __future__ import annotations

import pickle
import threading
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Hashable, Iterable, Iterator

import numpy as np

__all__ = ["StickyWorkerPool", "pack_array", "unpack_array"]


def pack_array(arr: np.ndarray) -> tuple[bytes, list[bytes]]:
    """Split ``arr`` into a pickle-5 header and out-of-band data buffers.

    Returns ``(meta, buffers)`` where ``meta`` is a small pickle of the
    array's dtype/shape bookkeeping and ``buffers`` holds the raw data
    bytes.  Ship both across a process boundary and rebuild with
    :func:`unpack_array`.
    """
    arr = np.ascontiguousarray(arr)
    picked: list[pickle.PickleBuffer] = []
    meta = pickle.dumps(arr, protocol=5, buffer_callback=picked.append)
    return meta, [buf.raw().tobytes() for buf in picked]


def unpack_array(meta: bytes, buffers: list[bytes]) -> np.ndarray:
    """Rebuild a :func:`pack_array` result without copying the data.

    The returned array is backed directly by ``buffers`` (read-only,
    ``OWNDATA`` false) — keep the bytes alive as long as the array.
    """
    return pickle.loads(meta, buffers=buffers)


class StickyWorkerPool:
    """A process pool with per-key worker affinity.

    Parameters
    ----------
    workers:
        Number of worker processes.  Each is wrapped in its own
        single-worker :class:`~concurrent.futures.ProcessPoolExecutor`
        so a key's submissions form a FIFO on its slot.
    initializer, initargs:
        Forwarded to every slot's executor: run once in each worker
        process to seed module-level state.
    max_in_flight:
        Bound on submitted-but-unfinished futures across all slots.
        :meth:`submit` blocks when the window is full — the bounded work
        queue that feeds backpressure.  ``None`` (default) disables the
        bound.
    """

    def __init__(
        self,
        workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        max_in_flight: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.workers = int(workers)
        self._executors = [
            ProcessPoolExecutor(
                max_workers=1, initializer=initializer, initargs=initargs
            )
            for _ in range(self.workers)
        ]
        self._lock = threading.Lock()
        #: First-seen sticky slot per key.
        self._slots: dict[Hashable, int] = {}
        #: Keys pinned per slot — the balance metric for new keys.
        self._keys_per_slot = [0] * self.workers
        #: Lifetime submissions per slot (utilization counters).
        self._submitted_per_slot = [0] * self.workers
        self._in_flight = 0
        self._window = (
            threading.Semaphore(max_in_flight) if max_in_flight is not None else None
        )
        self._round_robin = 0
        self._closed = False

    # -- routing -------------------------------------------------------

    def slot_for(self, key: Hashable) -> int:
        """The slot owning ``key`` (assigned to the least-loaded on first sight)."""
        with self._lock:
            slot = self._slots.get(key)
            if slot is None:
                slot = min(
                    range(self.workers), key=self._keys_per_slot.__getitem__
                )
                self._slots[key] = slot
                self._keys_per_slot[slot] += 1
            return slot

    def submit(self, fn: Callable, *args: Any, key: Hashable | None = None) -> Future:
        """Run ``fn(*args)`` on a worker; same ``key`` → same worker, FIFO.

        Keyless submissions round-robin across slots.  Blocks while
        ``max_in_flight`` futures are unfinished.
        """
        if key is not None:
            slot = self.slot_for(key)
        else:
            with self._lock:
                slot = self._round_robin % self.workers
                self._round_robin += 1
        if self._window is not None:
            self._window.acquire()
        with self._lock:
            if self._closed:
                if self._window is not None:
                    self._window.release()
                raise RuntimeError("pool is shut down")
            self._in_flight += 1
            self._submitted_per_slot[slot] += 1
        try:
            future = self._executors[slot].submit(fn, *args)
        except BaseException:
            with self._lock:
                self._in_flight -= 1
            if self._window is not None:
                self._window.release()
            raise
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, _future: Future) -> None:
        with self._lock:
            self._in_flight -= 1
        if self._window is not None:
            self._window.release()

    def map_stream(
        self,
        fn: Callable,
        argss: Iterable[tuple],
        window: int | None = None,
        key: Hashable | None = None,
    ) -> Iterator[Any]:
        """Yield ``fn(*args)`` results in input order, ``window`` in flight.

        Pulls ``argss`` lazily: at most ``window`` (default ``2 *
        workers``) items are submitted ahead of what has been yielded, so
        an unbounded source streams in constant memory.  If the consumer
        stops early — ``close()`` on the generator, or an exception —
        every still-pending future is cancelled so workers stop grinding
        on results nobody will read.
        """
        window = 2 * self.workers if window is None else max(1, int(window))
        source = iter(argss)
        pending: deque[Future] = deque()

        def submit_next() -> bool:
            try:
                args = next(source)
            except StopIteration:
                return False
            pending.append(self.submit(fn, *args, key=key))
            return True

        try:
            while len(pending) < window and submit_next():
                pass
            while pending:
                result = pending.popleft().result()
                submit_next()
                yield result
        finally:
            # Reached on GeneratorExit (dropped iterator) and consumer
            # errors alike; a normally-exhausted stream has nothing left.
            for future in pending:
                future.cancel()

    # -- introspection -------------------------------------------------

    def depth(self) -> int:
        """Submitted-but-unfinished futures across all slots (queue depth)."""
        with self._lock:
            return self._in_flight

    def submitted_per_slot(self) -> list[int]:
        """Lifetime submission count per slot (worker utilization)."""
        with self._lock:
            return list(self._submitted_per_slot)

    # -- lifecycle -----------------------------------------------------

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Stop the slots (idempotent).  See ``ProcessPoolExecutor.shutdown``."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for executor in self._executors:
            executor.shutdown(wait=wait, cancel_futures=cancel_futures)

    def __enter__(self) -> "StickyWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
