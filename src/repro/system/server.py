"""The DBGC server: receive, decompress (or store raw), persist — and survive.

Frames arrive over TCP as protocol-v2 records (see
:mod:`repro.system.protocol`).  The server either decompresses each bit
sequence and stores the cloud, or bypasses decompression and stores the
payload directly (both modes appear in the paper's Figure 2).

Unlike the v1 prototype (one connection, thread dies on the first bad
byte), this server is built for a lossy uplink *and* a fleet of sensors:

- the accept loop hands every connection to its own handler thread
  (bounded by ``max_clients``), so N clients stream concurrently and a
  disconnect or reconnect of one never stalls the others;
- per-stream state — the dedupe set, ACK ordinals, receipts — is keyed
  by the stream id each connection announces in its HELLO record, so a
  reconnecting client resumes *its* stream and two clients can never
  poison each other's dedupe or ACK accounting;
- a corrupt or undecodable payload is *quarantined* — recorded with its
  bytes and exception — and serving continues;
- in ``decompress`` mode each stream decodes through its own stateful
  :class:`~repro.core.temporal.TemporalDecoder`, so temporal streams
  (format v3 delta frames between keyframes) decode transparently and
  two streams' predictor states can never mix; a delta frame whose
  predictor is missing or mismatched (e.g. the server restarted and
  lost the in-memory state, or its predecessor was quarantined) raises
  and is quarantined like any undecodable payload — the stream heals at
  its next keyframe, which re-seeds the predictor;
- retransmitted frames are deduplicated per stream, making client
  retries idempotent;
- every frame is acknowledged, so the client can detect loss;
- an END record closes *that client's session* (acknowledged at
  :data:`~repro.system.protocol.END_ACK_INDEX`); the accept loop keeps
  running until the driver calls :meth:`DbgcServer.close`.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
import zlib
from concurrent.futures import CancelledError, Future
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.core.container import container_version
from repro.core.temporal import TemporalDecoder
from repro.geometry.points import PointCloud
from repro.observability import recorder as _obs
from repro.system.durability import ReceiptJournal
from repro.system.faults import FaultyChannel
from repro.system.pool import StickyWorkerPool, pack_array, unpack_array
from repro.system.protocol import (
    ACK_DUPLICATE,
    ACK_FLAG_BUSY,
    ACK_QUARANTINED,
    ACK_STORED,
    END_ACK_INDEX,
    TYPE_ACK,
    TYPE_END,
    TYPE_FRAME,
    TYPE_HELLO,
    CorruptPayloadError,
    ProtocolError,
    encode_record,
    read_record,
    recv_exact,
)
from repro.system.storage import FileFrameStore, ShardedFrameStore, SqliteFrameStore

__all__ = [
    "DbgcServer",
    "QuarantinedFrame",
    "RemoteDecodeError",
    "StreamState",
    "recv_exact",
]

#: Smoothing factor of the store-write latency EWMA behind busy hints.
_STORE_EWMA_ALPHA = 0.2

#: Per-stream decode-pipeline cap used when a (pre-v2.2) client's HELLO
#: advertised no window: above this many uncommitted frames the stream's
#: ACKs carry the BUSY congestion hint.
_DEFAULT_STREAM_INFLIGHT = 4


class RemoteDecodeError(ValueError):
    """A decode failure surfaced from a decoder worker process.

    Carries the worker-side exception's ``repr`` as its sole argument
    and *is* that repr, so a quarantine record written through the
    offload path is byte-identical to the inline path's.
    """

    def __repr__(self) -> str:
        return self.args[0]


# -- decode workers (run in decoder worker processes) ------------------
#
# Module-level worker state, seeded by the pool initializer: each worker
# process owns the stateful TemporalDecoder of every *decode chain*
# pinned to its slot.  A chain is one keyframe and the delta frames that
# follow it — the temporal context resets at every keyframe, so chains
# are self-contained.  Sticky routing (StickyWorkerPool) keys work by
# ``(stream_id, chain_no)``: within a chain, frames land on one worker
# in arrival order (the delta-ordering contract), while *different*
# chains of the same stream spread least-loaded across workers — which
# is what lets a single stream's decode throughput scale with
# ``decode_workers`` once the client pipelines (window > 1).

_WORKER_DECODERS: dict[int | str, tuple[int, TemporalDecoder]] = {}


def _init_decode_worker() -> None:
    _WORKER_DECODERS.clear()


def _decode_frame(
    stream_id: int | str, chain_no: int, fresh: bool, payload: bytes
) -> tuple:
    """Decode one frame on its chain's worker; never raises.

    ``fresh`` marks the chain's first frame: the worker starts a new
    :class:`TemporalDecoder` for it (bounded state: one live decoder per
    stream per worker, the previous chain's is dropped).  Returns
    ``("ok", meta, buffers)`` — a :func:`~repro.system.pool.pack_array`
    split of the decoded ``xyz``, shipped out-of-band so the parent
    rebuilds the cloud without copying — or ``("err", repr)`` on
    failure, keeping unpicklable exceptions from wedging the pool.
    """
    entry = _WORKER_DECODERS.get(stream_id)
    if fresh or entry is None or entry[0] != chain_no:
        decoder = TemporalDecoder()
        _WORKER_DECODERS[stream_id] = (chain_no, decoder)
    else:
        decoder = entry[1]
    try:
        cloud = decoder.decode(payload)
    except Exception as exc:
        return ("err", repr(exc))
    meta, buffers = pack_array(cloud.xyz)
    return ("ok", meta, buffers)


@dataclass(frozen=True)
class QuarantinedFrame:
    """A payload the server refused to store, kept for forensics."""

    frame_index: int
    payload: bytes = field(repr=False)
    error: str
    received_at: float
    #: Stream the payload arrived on (int id from HELLO, or the implicit
    #: ``"conn-N"`` key of a connection that never sent one).
    stream_id: int | str = 0

    def __str__(self) -> str:
        return (
            f"frame {self.frame_index} (stream {self.stream_id}): "
            f"{self.error} ({len(self.payload)} bytes kept)"
        )


@dataclass
class _PendingFrame:
    """One frame riding the per-connection decode pipeline (v2.2).

    Created by the handler thread the moment a frame is CRC-validated,
    dedupe-reserved, and submitted to the decode pool; consumed by the
    connection's completion drainer, which commits, journals, and ACKs
    in submission order.
    """

    stream: "StreamState"
    frame_index: int
    payload: bytes = field(repr=False)
    payload_crc: int | None
    received_at: float
    submitted_at: float
    future: Future


class StreamState:
    """Per-stream ingest state, shared by all of that stream's connections.

    Mutated only under the owning server's :attr:`DbgcServer.lock`.
    """

    __slots__ = (
        "stream_id",
        "seen",
        "ack_counts",
        "receipts",
        "ended",
        "decoder",
        "decode_lock",
        "window",
        "chain_no",
        "pending",
    )

    def __init__(self, stream_id: int | str) -> None:
        self.stream_id = stream_id
        #: Frame indices stored (or reserved mid-store) — the dedupe set.
        self.seen: set[int] = set()
        #: ACKs issued per index; feeds the fault channel's drop plan.
        self.ack_counts: dict[int, int] = {}
        #: This stream's slice of the server-wide receipts.
        self.receipts: list[tuple[int, int, float, float]] = []
        #: True once the stream's END record arrived.
        self.ended = False
        #: Sliding window the client advertised in HELLO flags (v2.2);
        #: 0 = unknown (pre-v2.2 client).
        self.window = 0
        #: Decode-chain counter (pipelined offload routing): bumped at
        #: every keyframe; -1 until the stream's first frame arrives.
        self.chain_no = -1
        #: Frames submitted to the decode pipeline but not yet committed
        #: (feeds the per-stream BUSY congestion hint).
        self.pending = 0
        #: Stateful per-stream decoder (decompress mode): carries the
        #: temporal predictor between this stream's frames.  In-memory
        #: only — a restarted server starts blank, so delta frames are
        #: quarantined until the stream's next keyframe re-seeds it.
        self.decoder = TemporalDecoder()
        #: Serializes decodes of this stream: the decoder's predictor
        #: state makes decode order-sensitive, so a reconnect racing the
        #: old connection must not interleave.
        self.decode_lock = threading.Lock()


class DbgcServer:
    """A fault-tolerant multi-client frame sink on background threads.

    Parameters
    ----------
    store:
        Frame store to persist into (file, SQLite, or sharded).
    mode:
        ``"decompress"`` — decompress and store clouds;
        ``"store"`` — store compressed payloads directly.
    host, port:
        Listen address; port 0 picks a free port (see :attr:`address`).
    channel:
        Optional :class:`~repro.system.faults.FaultyChannel` — or a
        mapping of stream id to channel for per-client fault injection;
        the matching ``drop_ack`` plan is consulted before each
        acknowledgement so ACK loss (and the client's retransmit + server
        dedupe path) can be exercised deterministically.
    max_clients:
        Handler-thread cap.  When every slot is busy, new connections
        wait in the TCP backlog until one frees up (backpressure, not
        refusal).
    receipt_journal:
        A :class:`~repro.system.durability.ReceiptJournal` (or a path to
        open one at) making the per-stream dedupe/END state durable: the
        server journals every stored frame and END, and a *restarted*
        server replays the journal on construction — so retransmissions
        of frames stored before a crash are answered with DUPLICATE
        instead of being stored twice.  When a path is given the server
        owns (and closes) the journal; ``journal_rotate_bytes`` is then
        forwarded as its segment-rotation threshold (see
        :class:`~repro.system.durability.ReceiptJournal`), keeping a
        long-lived server's journal from growing without bound.
    busy_threshold_s:
        Backpressure trigger: when the store-write latency EWMA exceeds
        this many seconds (or ``busy_depth`` writes are in flight), ACKs
        carry the protocol-v2 BUSY hint and clients slow down / coarsen.
        ``None`` (default) disables busy hints.
    busy_depth:
        Optional in-flight store-write count that also trips the BUSY
        hint (only consulted when ``busy_threshold_s`` is set).
    max_quarantine:
        Bound on the quarantine list: when full, the oldest entry is
        evicted (counted in :attr:`quarantine_evicted` and the
        ``server.quarantine.evicted`` counter) so a hostile client
        cannot grow server memory without bound.
    max_receipts:
        Bound on :attr:`receipts` (and each stream's receipt slice),
        mirroring ``max_quarantine``: when full, the oldest receipt is
        evicted (counted in :attr:`receipts_evicted` and the
        ``server.receipts.evicted`` counter) so a long-lived server's
        receipt memory stays flat.  ``None`` disables the bound; the
        default (4096) is far above any one batch a client reconciles
        with ``merge_receipts``.
    decode_workers:
        Size of the decode offload tier (``decompress`` mode only;
        rejected in ``store`` mode).  0 (default) decodes inline on the
        handler thread.  N >= 1 fans decoding out to N decoder worker
        *processes* behind a :class:`~repro.system.pool.
        StickyWorkerPool`: the handler thread CRC-validates, dedupes,
        and submits decodes *as frames arrive* (v2.2 pipelined ingest),
        keyed by decode chain — a keyframe and its following deltas pin
        to one worker's stateful :class:`~repro.core.temporal.
        TemporalDecoder` in arrival order, while successive chains
        spread least-loaded across workers; a per-connection completion
        drainer then commits each decoded cloud to the store, journals,
        and ACKs in submission order — so every ordering contract (ACK
        after commit, journal between commit and ACK, quarantine with
        the ``seen`` reservation released) is identical to the inline
        path, and store contents are byte-identical.

    Thread-safety: handler threads append to :attr:`receipts`,
    :attr:`quarantine`, and :attr:`events` while the driver may read
    them; all access goes through :attr:`lock`.  Use :meth:`snapshot` for
    a consistent copy, or read after :meth:`join` returns.
    """

    def __init__(
        self,
        store: FileFrameStore | SqliteFrameStore | ShardedFrameStore,
        mode: str = "decompress",
        host: str = "127.0.0.1",
        port: int = 0,
        channel: FaultyChannel | Mapping[int, FaultyChannel] | None = None,
        max_clients: int = 8,
        receipt_journal: ReceiptJournal | str | Path | None = None,
        busy_threshold_s: float | None = None,
        busy_depth: int | None = None,
        max_quarantine: int = 256,
        max_receipts: int | None = 4096,
        decode_workers: int = 0,
        journal_rotate_bytes: int | None = None,
    ) -> None:
        if mode not in ("decompress", "store"):
            raise ValueError(f"unknown server mode {mode!r}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        if max_quarantine < 1:
            raise ValueError(f"max_quarantine must be >= 1, got {max_quarantine}")
        if max_receipts is not None and max_receipts < 1:
            raise ValueError(f"max_receipts must be >= 1, got {max_receipts}")
        if decode_workers < 0:
            raise ValueError(f"decode_workers must be >= 0, got {decode_workers}")
        if decode_workers and mode != "decompress":
            raise ValueError("decode_workers needs mode='decompress'")
        self.store = store
        self.mode = mode
        self.channel = channel
        self.max_clients = int(max_clients)
        self.busy_threshold_s = busy_threshold_s
        self.busy_depth = busy_depth
        self.max_quarantine = int(max_quarantine)
        self.max_receipts = None if max_receipts is None else int(max_receipts)
        self.decode_workers = int(decode_workers)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen(32)
            # Accept with a short timeout: on Linux, close()ing a listener
            # does not unblock a thread already parked in accept(), so the
            # loop must poll the stop flag to shut down promptly.
            self._listener.settimeout(0.1)
            self._address: tuple[str, int] = self._listener.getsockname()
        except BaseException:
            self._listener.close()
            raise
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self._stop = threading.Event()
        #: Handler-slot semaphore implementing the ``max_clients`` cap.
        self._slots = threading.Semaphore(self.max_clients)
        #: Guards all shared state below (streams, receipts, quarantine,
        #: events, connection counters) against the handler threads.
        self.lock = threading.Lock()
        self._cond = threading.Condition(self.lock)
        self._streams: dict[int | str, StreamState] = {}
        self._conns: set[socket.socket] = set()
        self._active = 0
        self._peak_active = 0
        self._ends_seen = 0
        self._closed = False
        #: Store-write latency EWMA and in-flight write count feeding the
        #: BUSY backpressure hint.
        self._store_ewma_s = 0.0
        self._writes_in_flight = 0
        #: BUSY hints piggybacked on ACKs so far.
        self.busy_hints = 0
        #: Quarantine entries evicted by the ``max_quarantine`` bound.
        self.quarantine_evicted = 0
        #: Receipts evicted by the ``max_receipts`` bound.
        self.receipts_evicted = 0
        #: (frame_index, payload_bytes, received_at, stored_at) per stored frame.
        self.receipts: list[tuple[int, int, float, float]] = []
        #: Payloads rejected with their exception text and bytes (bounded
        #: by ``max_quarantine``, oldest evicted first).
        self.quarantine: list[QuarantinedFrame] = []
        #: Connection-level happenings: ("accept"|"hello"|"disconnect"|
        #: "duplicate"|"resync"|"end"|"recover", detail) in serve order.
        self.events: list[tuple[str, str]] = []
        #: Connections accepted over the server's lifetime.
        self.connections = 0
        #: Durable receipt journal (None = in-memory state only).
        self.journal: ReceiptJournal | None = None
        self._journal_owned = False
        if receipt_journal is not None:
            if isinstance(receipt_journal, (str, Path)):
                # Batched appends keep the journal's write(2) off the ACK
                # hot path (one syscall per 16 receipts).  The widened
                # kill-loss window is safe here — see _ingest.
                self.journal = ReceiptJournal(
                    receipt_journal, batch=16, rotate_bytes=journal_rotate_bytes
                )
                self._journal_owned = True
            else:
                self.journal = receipt_journal
            self._recover_streams()
        #: Decode offload tier: one sticky slot per decoder worker; None
        #: in store mode or with decode_workers=0 (inline decode).  The
        #: in-flight window bounds the decode work queue; its depth
        #: feeds the BUSY hint alongside the store-latency EWMA.
        self._decode_pool: StickyWorkerPool | None = None
        if self.mode == "decompress" and self.decode_workers > 0:
            self._decode_pool = StickyWorkerPool(
                self.decode_workers,
                initializer=_init_decode_worker,
                max_in_flight=4 * self.decode_workers,
            )

    def _recover_streams(self) -> None:
        """Rebuild per-stream dedupe/END state from the receipt journal.

        Runs on construction, before the accept loop starts: a server
        restarted over the same journal answers retransmissions of
        already-stored frames with DUPLICATE instead of double-storing,
        and already-ENDed streams stay ended.
        """
        replay = self.journal.replay()
        recovered_frames = 0
        for stream_id, seen in replay.seen_by_stream().items():
            state = self._streams.setdefault(stream_id, StreamState(stream_id))
            state.seen.update(seen)
            recovered_frames += len(seen)
        for stream_id in replay.ended:
            state = self._streams.setdefault(stream_id, StreamState(stream_id))
            if not state.ended:
                state.ended = True
                self._ends_seen += 1
        if not self._streams and not replay.torn:
            return
        _obs.count("server.recovery.streams", len(self._streams))
        _obs.count("server.recovery.frames", recovered_frames)
        if replay.torn:
            _obs.count("server.recovery.torn_records", replay.torn)
        self.events.append(
            (
                "recover",
                f"{recovered_frames} frame(s) over {len(self._streams)} stream(s), "
                f"{self._ends_seen} ended"
                + (", torn journal tail discarded" if replay.torn else ""),
            )
        )

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    @property
    def active_clients(self) -> int:
        """Connections currently being served."""
        with self.lock:
            return self._active

    @property
    def peak_active_clients(self) -> int:
        """Most connections ever served at once (≤ ``max_clients``)."""
        with self.lock:
            return self._peak_active

    @property
    def streams_ended(self) -> int:
        """Streams whose END record has arrived."""
        with self.lock:
            return self._ends_seen

    def start(self) -> "DbgcServer":
        """Begin accepting client connections in the background."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._serve, daemon=True)
            self._thread.start()
        return self

    def __enter__(self) -> "DbgcServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accept loop ---------------------------------------------------

    def _note(self, kind: str, detail: str = "") -> None:
        with self.lock:
            self.events.append((kind, detail))

    def _serve(self) -> None:
        try:
            while not self._stop.is_set():
                # The slot is taken *before* accept so a full handler pool
                # leaves new clients queued in the TCP backlog.
                if not self._slots.acquire(timeout=0.1):
                    continue
                try:
                    conn, peer = self._listener.accept()
                except socket.timeout:
                    self._slots.release()
                    continue  # re-check the stop flag
                except OSError:
                    self._slots.release()
                    break  # listener closed by close()
                with self.lock:
                    self.connections += 1
                    self._active += 1
                    self._peak_active = max(self._peak_active, self._active)
                    self._conns.add(conn)
                    number = self.connections
                _obs.count("server.clients.total")
                _obs.count("server.clients.active")
                self._note("accept", f"connection {number} from {peer[1]}")
                threading.Thread(
                    target=self._client_thread, args=(conn, number), daemon=True
                ).start()
        except BaseException as exc:  # pragma: no cover - surfaced via join()
            with self._cond:
                self._error = exc
                self._cond.notify_all()
        finally:
            self._listener.close()

    def _client_thread(self, conn: socket.socket, number: int) -> None:
        try:
            self._handle_connection(conn, number)
        except BaseException as exc:  # pragma: no cover - surfaced via join()
            with self._cond:
                if self._error is None:
                    self._error = exc
        finally:
            conn.close()
            with self._cond:
                self._conns.discard(conn)
                self._active -= 1
                self._cond.notify_all()
            _obs.count("server.clients.active", -1)
            self._slots.release()

    # -- per-connection serving ----------------------------------------

    def _stream(self, stream_id: int | str) -> StreamState:
        with self.lock:
            state = self._streams.get(stream_id)
            if state is None:
                state = self._streams[stream_id] = StreamState(stream_id)
        return state

    def stream_state(self, stream_id: int | str) -> StreamState | None:
        """The named stream's state, or ``None`` if it never connected."""
        with self.lock:
            return self._streams.get(stream_id)

    def receipts_for(self, stream_id: int | str) -> list[tuple[int, int, float, float]]:
        """One stream's receipts (feed to that client's ``merge_receipts``)."""
        with self.lock:
            state = self._streams.get(stream_id)
            return list(state.receipts) if state is not None else []

    def _handle_connection(self, conn: socket.socket, number: int) -> None:
        """Serve one connection until its stream ends or the link drops.

        With a decode pool (v2.2 pipelined ingest), the handler thread
        no longer blocks per frame: it CRC-validates, dedupe-reserves,
        and *submits* each decode, while a per-connection completion
        drainer thread commits/journals/ACKs in submission order.  A
        shared send lock serializes the drainer's frame ACKs with the
        handler's own DUPLICATE / CRC-quarantine ACKs on the one socket.
        """
        stream: StreamState | None = None
        send_lock = threading.Lock()
        pipeline: queue.Queue | None = None
        drainer: threading.Thread | None = None

        def ensure_pipeline() -> queue.Queue:
            nonlocal pipeline, drainer
            if pipeline is None:
                pipeline = queue.Queue()
                drainer = threading.Thread(
                    target=self._drain_pipeline,
                    args=(conn, send_lock, pipeline),
                    daemon=True,
                )
                drainer.start()
            return pipeline

        def stop_pipeline() -> None:
            # Drain every submitted frame (commit + ACK), then park the
            # drainer.  Called before the END ACK so end-of-stream is
            # still the last thing the client hears, and on any exit so
            # no pending commit is orphaned by a disconnect.
            nonlocal pipeline, drainer
            if pipeline is not None:
                pipeline.put(None)
                drainer.join()
                pipeline = None
                drainer = None

        try:
            while not self._stop.is_set():
                try:
                    record = read_record(conn)
                except CorruptPayloadError as exc:
                    received_at = time.perf_counter()
                    if stream is None:
                        stream = self._stream(f"conn-{number}")
                    self._quarantine(
                        stream, exc.frame_index, exc.payload, exc, received_at
                    )
                    self._ack(conn, stream, exc.frame_index, ACK_QUARANTINED, send_lock)
                    continue
                except (ConnectionError, TimeoutError, ProtocolError, OSError) as exc:
                    self._note("disconnect", repr(exc))
                    return
                if record.resync_skipped:
                    self._note(
                        "resync", f"skipped {record.resync_skipped} garbage bytes"
                    )
                if record.type == TYPE_HELLO:
                    stream = self._stream(record.frame_index)
                    if record.flags:
                        # v2.2: the flags byte advertises the client's
                        # sliding window (caps the BUSY-hint threshold).
                        with self.lock:
                            stream.window = record.flags
                    self._note(
                        "hello",
                        f"stream {record.frame_index} on connection {number}"
                        + (f" (window {record.flags})" if record.flags else ""),
                    )
                    continue
                if stream is None:
                    # v2.0 compatibility: frames without a HELLO get a stream
                    # scoped to this connection (no dedupe across reconnects).
                    stream = self._stream(f"conn-{number}")
                if record.type == TYPE_END:
                    stop_pipeline()
                    first_end = False
                    with self._cond:
                        if not stream.ended:
                            stream.ended = True
                            self._ends_seen += 1
                            first_end = True
                        self._cond.notify_all()
                    self._note("end", f"stream {stream.stream_id}")
                    if first_end:
                        _obs.count("server.streams.ended")
                    if first_end and self.journal is not None:
                        # Before the ACK (write-ahead ordering); a lost
                        # append only means the client re-ENDs after a
                        # restart, which is idempotent.
                        self.journal.append_end(stream.stream_id)
                    self._ack(conn, stream, END_ACK_INDEX, ACK_STORED, send_lock)
                    return
                if record.type == TYPE_FRAME:
                    if self._decode_pool is not None and self.mode == "decompress":
                        self._ingest_pipelined(
                            conn, send_lock, ensure_pipeline(), stream,
                            record.frame_index, record.payload, record.payload_crc,
                        )
                    else:
                        self._ingest(
                            conn, stream, record.frame_index, record.payload,
                            record.payload_crc, send_lock,
                        )
                # Anything else (stray ACK echoes) is ignored.
        finally:
            stop_pipeline()

    def _reserve(
        self,
        conn: socket.socket,
        stream: StreamState,
        frame_index: int,
        payload: bytes,
        send_lock: threading.Lock | None,
    ) -> bool:
        """Dedupe-reserve one arriving frame; False = duplicate (ACKed).

        The index is reserved before the store write (or decode submit)
        so a concurrent retransmission — on another connection *or*
        arriving behind it in this connection's pipeline — dedupes
        against it.
        """
        _obs.count("server.ingress")
        _obs.add_bytes("server.ingress", len(payload))
        with self.lock:
            if frame_index not in stream.seen:
                stream.seen.add(frame_index)
                return True
        # Retransmission of a frame that already made it: idempotent.
        self._note("duplicate", f"frame {frame_index}")
        _obs.count("server.duplicates")
        self._ack(conn, stream, frame_index, ACK_DUPLICATE, send_lock)
        return False

    def _ingest(
        self,
        conn: socket.socket,
        stream: StreamState,
        frame_index: int,
        payload: bytes,
        payload_crc: int | None = None,
        send_lock: threading.Lock | None = None,
    ) -> None:
        """Serial (store-mode or inline-decode) ingest: one frame, blocking."""
        received_at = time.perf_counter()
        if not self._reserve(conn, stream, frame_index, payload, send_lock):
            return
        cloud: PointCloud | None = None
        if self.mode == "decompress":
            decode_started = time.perf_counter()
            try:
                with stream.decode_lock:
                    cloud = stream.decoder.decode(payload)
            except Exception as exc:
                # Undecodable despite an intact CRC: quarantine, keep
                # serving — and release the dedupe reservation so a
                # later (possibly healthy) retransmission is re-tried.
                with self.lock:
                    stream.seen.discard(frame_index)
                self._quarantine(stream, frame_index, payload, exc, received_at)
                self._ack(conn, stream, frame_index, ACK_QUARANTINED, send_lock)
                return
            _obs.observe("server.decode_s", time.perf_counter() - decode_started)
        self._commit(
            conn, stream, frame_index, payload, payload_crc, received_at, cloud,
            send_lock,
        )

    def _ingest_pipelined(
        self,
        conn: socket.socket,
        send_lock: threading.Lock,
        pipeline: queue.Queue,
        stream: StreamState,
        frame_index: int,
        payload: bytes,
        payload_crc: int | None,
    ) -> None:
        """Pipelined (decode-pool) ingest: validate, reserve, submit — no wait.

        Decode routing is by *chain*: every keyframe (intra container)
        starts a new ``(stream_id, chain_no)`` key, routed least-loaded,
        while delta frames (container v3) stay on the current chain's
        worker — so one pipelining client saturates many decode workers
        without ever decoding a delta out of order.  A payload that
        doesn't sniff as any container stays on the current chain too:
        it will fail decode *there*, leaving that chain's decoder state
        exactly as the inline path would.
        """
        received_at = time.perf_counter()
        if not self._reserve(conn, stream, frame_index, payload, send_lock):
            return
        pool = self._decode_pool
        assert pool is not None
        # Submit under the stream's decode lock: the sticky slot's queue
        # is FIFO, so "submitted in arrival order" becomes "decoded in
        # arrival order" even when a reconnect races the old
        # connection's handler.
        with stream.decode_lock:
            try:
                delta = container_version(payload) == 3
            except Exception:
                delta = True  # undecodable: keep it inside the current chain
            fresh = (not delta) or stream.chain_no < 0
            if fresh:
                stream.chain_no += 1
            chain = (stream.stream_id, stream.chain_no)
            depth = pool.depth()
            submitted_at = time.perf_counter()
            future = pool.submit(
                _decode_frame, stream.stream_id, stream.chain_no, fresh, payload,
                key=chain,
            )
        with self.lock:
            stream.pending += 1
        _obs.observe("server.decode.queue_depth", depth)
        _obs.count(f"server.decode.worker.{pool.slot_for(chain)}")
        pipeline.put(
            _PendingFrame(
                stream, frame_index, payload, payload_crc, received_at,
                submitted_at, future,
            )
        )

    def _drain_pipeline(
        self, conn: socket.socket, send_lock: threading.Lock, pipeline: queue.Queue
    ) -> None:
        """Per-connection completion drainer: commit/journal/ACK in order.

        Runs on its own thread; consumes :class:`_PendingFrame` entries
        in submission order (per chain that equals decode-completion
        order — the sticky slots are FIFO) until the ``None`` sentinel.
        """
        while True:
            entry = pipeline.get()
            if entry is None:
                return
            _obs.observe("server.ack_queue_depth", pipeline.qsize())
            try:
                self._commit_decoded(conn, send_lock, entry)
            finally:
                with self.lock:
                    entry.stream.pending -= 1

    def _commit_decoded(
        self, conn: socket.socket, send_lock: threading.Lock, entry: _PendingFrame
    ) -> None:
        """Settle one pipelined frame once its decode future resolves."""
        stream, frame_index = entry.stream, entry.frame_index
        try:
            result = entry.future.result()
        except CancelledError:
            # kill() cancelled the queued work mid-flight; surface it
            # through the ordinary quarantine path (the ACK goes to a
            # torn-down socket and is swallowed there).
            result = None
        if result is None or result[0] != "ok":
            exc: Exception = (
                RemoteDecodeError("decode cancelled by server shutdown")
                if result is None
                else RemoteDecodeError(result[1])
            )
            with self.lock:
                stream.seen.discard(frame_index)
            self._quarantine(stream, frame_index, entry.payload, exc, entry.received_at)
            self._ack(conn, stream, frame_index, ACK_QUARANTINED, send_lock)
            return
        _obs.observe("server.decode_s", time.perf_counter() - entry.submitted_at)
        cloud = PointCloud._adopt(unpack_array(result[1], result[2]))
        self._commit(
            conn, stream, frame_index, entry.payload, entry.payload_crc,
            entry.received_at, cloud, send_lock,
        )

    def _commit(
        self,
        conn: socket.socket,
        stream: StreamState,
        frame_index: int,
        payload: bytes,
        payload_crc: int | None,
        received_at: float,
        cloud: PointCloud | None,
        send_lock: threading.Lock | None,
    ) -> None:
        """Store-commit, receipt, journal, ACK — in exactly that order."""
        with self.lock:
            self._writes_in_flight += 1
        write_started = time.perf_counter()
        try:
            if cloud is not None:
                self.store.put_cloud(frame_index, cloud)
            else:
                self.store.put_payload(frame_index, payload)
        except Exception as exc:
            # Store refused the frame: quarantine, keep serving.
            with self.lock:
                stream.seen.discard(frame_index)
            self._quarantine(stream, frame_index, payload, exc, received_at)
            self._ack(conn, stream, frame_index, ACK_QUARANTINED, send_lock)
            return
        finally:
            elapsed = time.perf_counter() - write_started
            with self.lock:
                self._writes_in_flight -= 1
                self._store_ewma_s = (
                    elapsed
                    if self._store_ewma_s == 0.0
                    else (1.0 - _STORE_EWMA_ALPHA) * self._store_ewma_s
                    + _STORE_EWMA_ALPHA * elapsed
                )
            _obs.observe("server.store_write_s", elapsed)
        receipt = (frame_index, len(payload), received_at, time.perf_counter())
        evicted = 0
        with self.lock:
            stream.receipts.append(receipt)
            self.receipts.append(receipt)
            if self.max_receipts is not None:
                while len(self.receipts) > self.max_receipts:
                    self.receipts.pop(0)
                    evicted += 1
                while len(stream.receipts) > self.max_receipts:
                    stream.receipts.pop(0)
                self.receipts_evicted += evicted
        if evicted:
            _obs.count("server.receipts.evicted", evicted)
        _obs.count("server.stored")
        if self.journal is not None:
            # Journal between the store commit and the ACK — textbook
            # write-ahead ordering: any frame the client saw STORED has a
            # receipt at least accepted by the journal.  Batched appends
            # keep this off the syscall path (~one write per 16 frames),
            # and doing it *before* the ACK runs it while the client is
            # still blocked awaiting the ACK, so it never preempts the
            # client's next send.  A kill can still drop up to one
            # batch of un-drained receipts; that loses nothing the
            # client can observe — a retransmission of such a frame is
            # re-committed idempotently (same index, same payload)
            # instead of being answered DUPLICATE.
            if payload_crc is None:
                payload_crc = zlib.crc32(payload)
            self.journal.append_frame(stream.stream_id, frame_index, payload_crc)
        self._ack(conn, stream, frame_index, ACK_STORED, send_lock)

    def _quarantine(
        self,
        stream: StreamState,
        frame_index: int,
        payload: bytes,
        exc: BaseException,
        received_at: float,
    ) -> None:
        evicted = False
        with self.lock:
            self.quarantine.append(
                QuarantinedFrame(
                    frame_index, payload, repr(exc), received_at, stream.stream_id
                )
            )
            if len(self.quarantine) > self.max_quarantine:
                # Bounded forensics: a hostile client spraying garbage
                # cannot grow server memory without limit.
                self.quarantine.pop(0)
                self.quarantine_evicted += 1
                evicted = True
        _obs.count("server.quarantined")
        if evicted:
            _obs.count("server.quarantine.evicted")

    def _channel_for(self, stream_id: int | str) -> FaultyChannel | None:
        channel = self.channel
        if channel is None or isinstance(channel, FaultyChannel):
            return channel
        return channel.get(stream_id)

    def _busy_now(self, stream: StreamState | None = None) -> bool:
        """Is the server falling behind?  (Feeds the ACK BUSY hint.)

        Trips on the store-latency EWMA, on ``busy_depth`` store writes
        in flight, or — with a decode offload tier — on ``busy_depth``
        frames deep in the decode work queue.  With a pipelined stream
        (v2.2) it additionally trips when that stream's uncommitted
        in-flight count exceeds its advertised window — the per-stream
        congestion signal the client's AIMD halves on — independent of
        ``busy_threshold_s``.
        """
        if (
            stream is not None
            and self._decode_pool is not None
        ):
            cap = stream.window or _DEFAULT_STREAM_INFLIGHT
            with self.lock:
                if stream.pending > cap:
                    return True
        if self.busy_threshold_s is None:
            return False
        if (
            self.busy_depth is not None
            and self._decode_pool is not None
            and self._decode_pool.depth() > self.busy_depth
        ):
            return True
        with self.lock:
            if self._store_ewma_s > self.busy_threshold_s:
                return True
            return (
                self.busy_depth is not None
                and self._writes_in_flight > self.busy_depth
            )

    def _ack(
        self,
        conn: socket.socket,
        stream: StreamState,
        frame_index: int,
        status: int,
        send_lock: threading.Lock | None = None,
    ) -> None:
        channel = self._channel_for(stream.stream_id)
        if channel is not None:
            with self.lock:
                ordinal = stream.ack_counts.get(frame_index, 0)
                stream.ack_counts[frame_index] = ordinal + 1
            if channel.drop_ack(frame_index, ordinal):
                return  # injected ACK loss; the client will retransmit
        flags = status
        if self._busy_now(stream):
            flags |= ACK_FLAG_BUSY
            with self.lock:
                self.busy_hints += 1
            _obs.count("server.busy_hints")
        data = encode_record(TYPE_ACK, frame_index, flags=flags)
        try:
            # The drainer and the handler share one socket (v2.2): the
            # send lock keeps their ACK records from interleaving.
            if send_lock is not None:
                with send_lock:
                    conn.sendall(data)
            else:
                conn.sendall(data)
        except OSError:
            pass  # client already gone; it will retransmit on reconnect

    # -- driver-side API ----------------------------------------------

    def snapshot(self) -> tuple[list, list, list]:
        """A consistent (receipts, quarantine, events) copy under the lock."""
        with self.lock:
            return list(self.receipts), list(self.quarantine), list(self.events)

    def wait_for_streams(self, n_streams: int, timeout: float = 30.0) -> None:
        """Block until ``n_streams`` streams have ENDed and no client is active.

        Raises any fatal server error, or :class:`TimeoutError` if the
        condition is not reached in time.  The accept loop keeps running —
        shutdown stays explicit via :meth:`close`.
        """
        with self._cond:
            done = self._cond.wait_for(
                lambda: self._error is not None
                or (self._ends_seen >= n_streams and self._active == 0),
                timeout,
            )
            error = self._error
        if error is not None:
            raise error
        if not done:
            raise TimeoutError(
                f"{n_streams} stream(s) did not end within {timeout:.0f}s"
            )

    def join(self, timeout: float = 30.0) -> None:
        """Wait until at least one stream ended and the server is idle."""
        self.wait_for_streams(1, timeout)

    def kill(self) -> None:
        """SIGKILL-equivalent stop: drop everything on the floor, now.

        Unlike :meth:`close` this neither drains handler threads nor
        waits for in-flight writes — connections are torn down and the
        method returns immediately, modelling a process kill for the
        restart drill.  In-memory state (dedupe sets, receipts) is
        abandoned; only what reached the store and the receipt journal
        survives.  A handler thread mid-``put`` may still complete its
        (idempotent, index-keyed) store write and journal append after
        this returns — exactly the torn timeline a real crash leaves.
        """
        self._stop.set()
        self._listener.close()
        with self.lock:
            self._closed = True  # later close() is a no-op
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._decode_pool is not None:
            # No draining: queued decodes are cancelled (their handlers
            # quarantine into the dead server object) and the workers are
            # told to exit without being joined — kill() must not block.
            self._decode_pool.shutdown(wait=False, cancel_futures=True)
        _obs.count("server.killed")

    def close(self) -> None:
        """Stop serving: unblock the accept/recv loops and join the threads.

        Idempotent — a second call (or a call after :meth:`kill`)
        returns immediately.
        """
        with self.lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        self._listener.close()
        with self.lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._thread is not None:
            self._thread.join(5.0)
        with self._cond:
            self._cond.wait_for(lambda: self._active == 0, timeout=5.0)
        if self._decode_pool is not None:
            # Handlers have drained, so no decode is in flight by now.
            self._decode_pool.shutdown(wait=True)
        if self._journal_owned and self.journal is not None:
            self.journal.close()
