"""The DBGC server: receive, decompress (or store raw), persist.

Frames arrive over TCP as length-prefixed messages.  The server either
decompresses each bit sequence and stores the cloud, or bypasses
decompression and stores the payload directly (both modes appear in the
paper's Figure 2).
"""

from __future__ import annotations

import socket
import struct
import threading
import time

from repro.core.pipeline import DBGCDecompressor
from repro.system.storage import FileFrameStore, SqliteFrameStore

__all__ = ["DbgcServer", "recv_exact"]

_FRAME_HEADER = struct.Struct("<II")
_END_MARKER = 0xFFFFFFFF


def recv_exact(conn: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError``."""
    chunks = []
    remaining = n
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class DbgcServer:
    """A one-connection frame sink running on a background thread.

    Parameters
    ----------
    store:
        Frame store to persist into.
    mode:
        ``"decompress"`` — decompress and store clouds;
        ``"store"`` — store compressed payloads directly.
    host, port:
        Listen address; port 0 picks a free port (see :attr:`address`).
    """

    def __init__(
        self,
        store: FileFrameStore | SqliteFrameStore,
        mode: str = "decompress",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if mode not in ("decompress", "store"):
            raise ValueError(f"unknown server mode {mode!r}")
        self.store = store
        self.mode = mode
        self._decompressor = DBGCDecompressor()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        #: (frame_index, payload_bytes, received_at, stored_at) per frame.
        self.receipts: list[tuple[int, int, float, float]] = []

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    def start(self) -> "DbgcServer":
        """Begin accepting one client connection in the background."""
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        return self

    def _serve(self) -> None:
        try:
            conn, _ = self._listener.accept()
            with conn:
                while True:
                    header = recv_exact(conn, _FRAME_HEADER.size)
                    frame_index, size = _FRAME_HEADER.unpack(header)
                    if frame_index == _END_MARKER:
                        break
                    payload = recv_exact(conn, size)
                    received_at = time.perf_counter()
                    if self.mode == "decompress":
                        cloud = self._decompressor.decompress(payload)
                        self.store.put_cloud(frame_index, cloud)
                    else:
                        self.store.put_payload(frame_index, payload)
                    self.receipts.append(
                        (frame_index, size, received_at, time.perf_counter())
                    )
        except BaseException as exc:  # surfaced via join()
            self._error = exc
        finally:
            self._listener.close()

    def join(self, timeout: float = 30.0) -> None:
        """Wait for the client to disconnect; re-raise any server error."""
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError("server did not finish in time")
        if self._error is not None:
            raise self._error
