"""The DBGC server: receive, decompress (or store raw), persist — and survive.

Frames arrive over TCP as protocol-v2 records (see
:mod:`repro.system.protocol`).  The server either decompresses each bit
sequence and stores the cloud, or bypasses decompression and stores the
payload directly (both modes appear in the paper's Figure 2).

Unlike the v1 prototype (one connection, thread dies on the first bad
byte), this server is built for a lossy uplink:

- the accept loop survives client disconnects and reconnects;
- a corrupt or undecodable payload is *quarantined* — recorded with its
  bytes and exception — and serving continues;
- retransmitted frames are deduplicated by frame index, making client
  retries idempotent;
- every frame is acknowledged, so the client can detect loss.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field

from repro.core.pipeline import DBGCDecompressor
from repro.observability import recorder as _obs
from repro.system.faults import FaultyChannel
from repro.system.protocol import (
    ACK_DUPLICATE,
    ACK_QUARANTINED,
    ACK_STORED,
    TYPE_ACK,
    TYPE_END,
    TYPE_FRAME,
    CorruptPayloadError,
    ProtocolError,
    encode_record,
    read_record,
    recv_exact,
)
from repro.system.storage import FileFrameStore, SqliteFrameStore

__all__ = ["DbgcServer", "QuarantinedFrame", "recv_exact"]


@dataclass(frozen=True)
class QuarantinedFrame:
    """A payload the server refused to store, kept for forensics."""

    frame_index: int
    payload: bytes = field(repr=False)
    error: str
    received_at: float

    def __str__(self) -> str:
        return f"frame {self.frame_index}: {self.error} ({len(self.payload)} bytes kept)"


class DbgcServer:
    """A fault-tolerant frame sink running on a background thread.

    Parameters
    ----------
    store:
        Frame store to persist into.
    mode:
        ``"decompress"`` — decompress and store clouds;
        ``"store"`` — store compressed payloads directly.
    host, port:
        Listen address; port 0 picks a free port (see :attr:`address`).
    channel:
        Optional :class:`~repro.system.faults.FaultyChannel`; when given,
        its ``drop_ack`` plan is consulted before each acknowledgement so
        ACK loss (and the client's retransmit + server dedupe path) can
        be exercised deterministically.

    Thread-safety: the serve thread appends to :attr:`receipts`,
    :attr:`quarantine`, and :attr:`events` while the driver may read them;
    all access goes through :attr:`lock`.  Use :meth:`snapshot` for a
    consistent copy, or read after :meth:`join` returns.
    """

    def __init__(
        self,
        store: FileFrameStore | SqliteFrameStore,
        mode: str = "decompress",
        host: str = "127.0.0.1",
        port: int = 0,
        channel: FaultyChannel | None = None,
    ) -> None:
        if mode not in ("decompress", "store"):
            raise ValueError(f"unknown server mode {mode!r}")
        self.store = store
        self.mode = mode
        self.channel = channel
        self._decompressor = DBGCDecompressor()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
            self._listener.listen(8)
            self._address: tuple[str, int] = self._listener.getsockname()
        except BaseException:
            self._listener.close()
            raise
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self._stop = threading.Event()
        self._conn: socket.socket | None = None
        self._seen: set[int] = set()
        self._ack_counts: dict[int, int] = {}
        #: Guards receipts / quarantine / events against the serve thread.
        self.lock = threading.Lock()
        #: (frame_index, payload_bytes, received_at, stored_at) per stored frame.
        self.receipts: list[tuple[int, int, float, float]] = []
        #: Payloads rejected with their exception text and bytes.
        self.quarantine: list[QuarantinedFrame] = []
        #: Connection-level happenings: ("accept"|"disconnect"|"duplicate"|
        #: "resync"|"end", detail) in serve order.
        self.events: list[tuple[str, str]] = []
        #: Connections accepted over the server's lifetime.
        self.connections = 0

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    def start(self) -> "DbgcServer":
        """Begin accepting client connections in the background."""
        if self._thread is None:
            self._thread = threading.Thread(target=self._serve, daemon=True)
            self._thread.start()
        return self

    def __enter__(self) -> "DbgcServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- serve loop ----------------------------------------------------

    def _note(self, kind: str, detail: str = "") -> None:
        with self.lock:
            self.events.append((kind, detail))

    def _serve(self) -> None:
        try:
            while not self._stop.is_set():
                try:
                    conn, peer = self._listener.accept()
                except OSError:
                    break  # listener closed by close()
                self._conn = conn
                self.connections += 1
                self._note("accept", f"connection {self.connections} from {peer[1]}")
                try:
                    if self._handle_connection(conn):
                        break  # END record: stream complete
                finally:
                    self._conn = None
                    conn.close()
        except BaseException as exc:  # pragma: no cover - surfaced via join()
            self._error = exc
        finally:
            self._listener.close()

    def _handle_connection(self, conn: socket.socket) -> bool:
        """Serve one connection; True when the stream ended cleanly."""
        while not self._stop.is_set():
            try:
                record = read_record(conn)
            except CorruptPayloadError as exc:
                received_at = time.perf_counter()
                self._quarantine(exc.frame_index, exc.payload, exc, received_at)
                self._ack(conn, exc.frame_index, ACK_QUARANTINED)
                continue
            except (ConnectionError, TimeoutError, ProtocolError, OSError) as exc:
                self._note("disconnect", repr(exc))
                return False
            if record.resync_skipped:
                self._note("resync", f"skipped {record.resync_skipped} garbage bytes")
            if record.type == TYPE_END:
                self._note("end", "")
                self._ack(conn, record.frame_index, ACK_STORED)
                return True
            if record.type == TYPE_FRAME:
                self._ingest(conn, record.frame_index, record.payload)
            # Anything else (stray ACK echoes) is ignored.
        return True

    def _ingest(self, conn: socket.socket, frame_index: int, payload: bytes) -> None:
        received_at = time.perf_counter()
        _obs.count("server.ingress")
        _obs.add_bytes("server.ingress", len(payload))
        if frame_index in self._seen:
            # Retransmission of a frame that already made it: idempotent.
            self._note("duplicate", f"frame {frame_index}")
            _obs.count("server.duplicates")
            self._ack(conn, frame_index, ACK_DUPLICATE)
            return
        try:
            if self.mode == "decompress":
                cloud = self._decompressor.decompress(payload)
                self.store.put_cloud(frame_index, cloud)
            else:
                self.store.put_payload(frame_index, payload)
        except Exception as exc:
            # Undecodable despite an intact CRC: quarantine, keep serving.
            self._quarantine(frame_index, payload, exc, received_at)
            self._ack(conn, frame_index, ACK_QUARANTINED)
            return
        self._seen.add(frame_index)
        with self.lock:
            self.receipts.append(
                (frame_index, len(payload), received_at, time.perf_counter())
            )
        _obs.count("server.stored")
        self._ack(conn, frame_index, ACK_STORED)

    def _quarantine(
        self, frame_index: int, payload: bytes, exc: BaseException, received_at: float
    ) -> None:
        with self.lock:
            self.quarantine.append(
                QuarantinedFrame(frame_index, payload, repr(exc), received_at)
            )
        _obs.count("server.quarantined")

    def _ack(self, conn: socket.socket, frame_index: int, status: int) -> None:
        if self.channel is not None:
            ordinal = self._ack_counts.get(frame_index, 0)
            self._ack_counts[frame_index] = ordinal + 1
            if self.channel.drop_ack(frame_index, ordinal):
                return  # injected ACK loss; the client will retransmit
        try:
            conn.sendall(encode_record(TYPE_ACK, frame_index, flags=status))
        except OSError:
            pass  # client already gone; it will retransmit on reconnect

    # -- driver-side API ----------------------------------------------

    def snapshot(self) -> tuple[list, list, list]:
        """A consistent (receipts, quarantine, events) copy under the lock."""
        with self.lock:
            return list(self.receipts), list(self.quarantine), list(self.events)

    def join(self, timeout: float = 30.0) -> None:
        """Wait for the stream to end; re-raise any fatal server error."""
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError("server did not finish in time")
        if self._error is not None:
            raise self._error

    def close(self) -> None:
        """Stop serving: unblock the accept/recv loops and join the thread."""
        self._stop.set()
        self._listener.close()
        conn = self._conn
        if conn is not None:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        if self._thread is not None:
            self._thread.join(5.0)
