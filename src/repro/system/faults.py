"""Deterministic fault injection for the transport layer.

The paper ships frames over a lossy 4G uplink; to *prove* the transport
survives drops, corruption, reconnects, and congestion we need faults
that are reproducible.  :class:`FaultyChannel` wraps a
:class:`~repro.system.channel.BandwidthShaper` and derives every
injection decision from ``(seed, frame_index, attempt)`` with a keyed
hash, so a given run replays bit-for-bit regardless of thread timing,
and a *retransmission* of the same frame sees fresh (independent but
equally deterministic) link conditions.

Fault kinds:

- **bit flips** — a few payload bits are inverted on the wire; the
  receiver's payload CRC catches them and quarantines the bytes.
- **truncation / mid-frame disconnect** — the connection dies after a
  prefix of the record; the client reconnects with backoff and
  retransmits, and the server's accept loop picks the new connection up.
- **ACK drops** — the server's acknowledgement is lost; the client
  retransmits and the server dedupes by frame index.
- **bandwidth jitter** — each transmission's pacing is scaled by a
  random factor around 1, modelling a fluctuating link.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass

from repro.system.channel import BandwidthShaper

__all__ = ["FaultSpec", "FaultPlan", "FaultyChannel", "ServerKillSwitch"]

#: Sentinel distinguishing "not given" from an explicit ``shaper=None``.
_UNSET = object()


@dataclass(frozen=True)
class FaultSpec:
    """Fault probabilities and forced events for one run.

    All rates are per *transmission attempt*, so a frame that is
    retransmitted after a disconnect rolls new dice.
    """

    #: Probability of flipping 1..8 payload bits in flight.
    corrupt_rate: float = 0.0
    #: Probability the payload is truncated (link dies inside the payload).
    truncate_rate: float = 0.0
    #: Probability the connection dies anywhere inside the record.
    disconnect_rate: float = 0.0
    #: Probability a server ACK is lost on its way back.
    ack_drop_rate: float = 0.0
    #: Bandwidth jitter amplitude: pacing is scaled by ``1 ± jitter``.
    jitter: float = 0.0
    #: Frame indices whose *first* transmission always dies mid-record.
    force_disconnect_frames: frozenset[int] = frozenset()
    #: ACK indices whose *first* acknowledgement is always lost (use
    #: :data:`~repro.system.protocol.END_ACK_INDEX` to force an END
    #: retransmission deterministically).
    force_ack_drop_first: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        for name in ("corrupt_rate", "truncate_rate", "disconnect_rate", "ack_drop_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        # Accept any iterable of ints for convenience.
        object.__setattr__(
            self, "force_disconnect_frames", frozenset(self.force_disconnect_frames)
        )
        object.__setattr__(
            self, "force_ack_drop_first", frozenset(self.force_ack_drop_first)
        )


@dataclass(frozen=True)
class FaultPlan:
    """What happens to one transmission attempt."""

    #: Bit offsets (relative to the payload) to invert on the wire.
    flip_bits: tuple[int, ...] = ()
    #: Close the connection after sending this many bytes of the record.
    cut_after: int | None = None
    #: Multiplier on the shaper's transfer time for this attempt.
    jitter_factor: float = 1.0

    @property
    def clean(self) -> bool:
        return not self.flip_bits and self.cut_after is None


class ServerKillSwitch:
    """Process-level fault injection: kill a server after N stored frames.

    The channel faults above model a lossy *link*; this models a dying
    *endpoint*.  :meth:`arm` starts a watcher thread that polls the
    server's receipt count and calls
    :meth:`~repro.system.server.DbgcServer.kill` — the SIGKILL-equivalent
    stop — the moment it reaches ``kill_after_frames``, then invokes
    ``on_kill`` (the restart hook).  The kill point is deterministic in
    *what* survives — exactly the frames the store and receipt journal
    committed — even though which frame is the N-th depends on thread
    timing; drills therefore assert on recovered state, not on the kill
    instant.
    """

    def __init__(self, kill_after_frames: int, poll_interval_s: float = 0.002) -> None:
        if kill_after_frames < 1:
            raise ValueError(
                f"kill_after_frames must be >= 1, got {kill_after_frames}"
            )
        self.kill_after_frames = int(kill_after_frames)
        self.poll_interval_s = float(poll_interval_s)
        #: Set once the server has been killed.
        self.fired = threading.Event()
        self._cancel = threading.Event()
        self._thread: threading.Thread | None = None

    def arm(self, server, on_kill=None) -> "ServerKillSwitch":
        """Watch ``server`` and kill it at the threshold (background)."""

        def watch() -> None:
            while not self._cancel.is_set():
                with server.lock:
                    stored = len(server.receipts)
                if stored >= self.kill_after_frames:
                    server.kill()
                    self.fired.set()
                    if on_kill is not None:
                        on_kill()
                    return
                self._cancel.wait(self.poll_interval_s)

        self._thread = threading.Thread(target=watch, daemon=True)
        self._thread.start()
        return self

    def cancel(self) -> None:
        """Stand down (the run finished below the threshold); idempotent."""
        self._cancel.set()
        if self._thread is not None:
            self._thread.join(5.0)


class FaultyChannel:
    """A seeded, fault-injecting wrapper around a bandwidth shaper.

    Drop-in for :class:`BandwidthShaper` wherever a client or server
    accepts a ``channel``: it delegates ``transfer_seconds`` /
    ``supports`` / ``pace`` to the wrapped shaper (identity link when
    ``shaper`` is ``None``) and additionally plans faults.

    Parameters
    ----------
    shaper:
        The underlying link model, or ``None`` for an unshaped link.
    seed:
        Root of every injection decision; two channels with equal seed
        and spec plan identical faults.
    spec:
        Fault probabilities and forced events.
    """

    def __init__(
        self,
        shaper: BandwidthShaper | None = None,
        seed: int = 0,
        spec: FaultSpec | None = None,
    ) -> None:
        self.shaper = shaper
        self.seed = int(seed)
        self.spec = spec if spec is not None else FaultSpec()
        #: Injection log: ``(kind, frame_index, attempt)`` tuples, in plan
        #: order.  Inspection aid for tests and reports.
        self.log: list[tuple[str, int, int]] = []

    # -- deterministic randomness -------------------------------------

    def _rng(self, *key: object) -> random.Random:
        digest = hashlib.blake2b(
            repr((self.seed,) + key).encode(), digest_size=8
        ).digest()
        return random.Random(int.from_bytes(digest, "little"))

    # -- fault planning ------------------------------------------------

    def plan(self, frame_index: int, attempt: int, record_bytes: int) -> FaultPlan:
        """Plan faults for one transmission of a ``record_bytes``-long record.

        Pure in ``(seed, spec, frame_index, attempt, record_bytes)``.
        """
        spec = self.spec
        rng = self._rng("frame", frame_index, attempt, record_bytes)
        cut_after: int | None = None
        forced = frame_index in spec.force_disconnect_frames and attempt == 0
        if forced or rng.random() < spec.disconnect_rate:
            # Die anywhere inside the record, header included.
            cut_after = rng.randrange(0, max(1, record_bytes))
            self.log.append(("disconnect", frame_index, attempt))
        elif rng.random() < spec.truncate_rate:
            # Die inside the payload region specifically.
            from repro.system.protocol import PAYLOAD_OFFSET

            lo = min(PAYLOAD_OFFSET, record_bytes)
            cut_after = rng.randrange(lo, max(lo + 1, record_bytes))
            self.log.append(("truncate", frame_index, attempt))
        flip_bits: tuple[int, ...] = ()
        payload_bits = 8 * max(0, record_bytes - self._payload_overhead())
        if payload_bits and rng.random() < spec.corrupt_rate:
            n_flips = rng.randint(1, min(8, payload_bits))
            flip_bits = tuple(
                sorted(rng.sample(range(payload_bits), n_flips))
            )
            self.log.append(("corrupt", frame_index, attempt))
        jitter_factor = 1.0
        if spec.jitter:
            jitter_factor = 1.0 + spec.jitter * (2.0 * rng.random() - 1.0)
        return FaultPlan(flip_bits, cut_after, jitter_factor)

    @staticmethod
    def _payload_overhead() -> int:
        from repro.system.protocol import PAYLOAD_OFFSET

        return PAYLOAD_OFFSET + 4  # header + header CRC + trailing payload CRC

    def drop_ack(self, frame_index: int, ack_ordinal: int) -> bool:
        """Should the server's ``ack_ordinal``-th ACK for this frame be lost?"""
        if frame_index in self.spec.force_ack_drop_first and ack_ordinal == 0:
            self.log.append(("ack-drop", frame_index, ack_ordinal))
            return True
        if self.spec.ack_drop_rate <= 0.0:
            return False
        rng = self._rng("ack", frame_index, ack_ordinal)
        dropped = rng.random() < self.spec.ack_drop_rate
        if dropped:
            self.log.append(("ack-drop", frame_index, ack_ordinal))
        return dropped

    # -- fleet derivation ----------------------------------------------

    def for_stream(
        self,
        stream_id: int,
        spec: FaultSpec | None = None,
        shaper: BandwidthShaper | None | object = _UNSET,
    ) -> "FaultyChannel":
        """A channel whose faults are independently derived for one stream.

        Every client in a fleet gets its own channel so fault decisions
        stay pure in ``(root seed, stream_id, frame, attempt)`` no matter
        how the clients' threads interleave.  ``spec`` overrides the fault
        spec (e.g. per-client forced disconnects); ``shaper`` overrides
        the link model — pass a fresh shaper per client when pacing, the
        default shares this channel's.
        """
        digest = hashlib.blake2b(
            repr((self.seed, "stream", stream_id)).encode(), digest_size=8
        ).digest()
        return FaultyChannel(
            self.shaper if shaper is _UNSET else shaper,
            seed=int.from_bytes(digest, "little"),
            spec=self.spec if spec is None else spec,
        )

    # -- BandwidthShaper delegation -----------------------------------

    @property
    def latency_s(self) -> float:
        """The wrapped shaper's one-way latency (0 on an unshaped link)."""
        return 0.0 if self.shaper is None else self.shaper.latency_s

    def transfer_seconds(self, n_bytes: int) -> float:
        return 0.0 if self.shaper is None else self.shaper.transfer_seconds(n_bytes)

    def sustainable_fps(self, n_bytes: int) -> float:
        return (
            float("inf")
            if self.shaper is None
            else self.shaper.sustainable_fps(n_bytes)
        )

    def supports(self, n_bytes: int, frames_per_second: float) -> bool:
        return self.shaper is None or self.shaper.supports(n_bytes, frames_per_second)

    def pace(self, n_bytes: int, started_at: float, scale: float = 1.0) -> None:
        if self.shaper is not None:
            self.shaper.pace(n_bytes, started_at, scale=scale)
