"""Crash-safety primitives: receipt journal, recovery and scrub reports.

The ingest tier's correctness story ("zero lost frames") only holds if it
survives *process* faults, not just channel faults: a server killed
mid-ingest loses its in-memory dedupe/ACK state, and a store killed
mid-write can leave a torn frame on disk.  This module holds the pieces
the stores and the server share to close that gap:

- :func:`atomic_write_bytes` — the tmp-file + (optional) fsync + rename
  commit path used by :class:`~repro.system.storage.FileFrameStore`;
  a reader never observes a half-written frame, and a crash leaves only
  a ``*.tmp`` orphan that :meth:`recover` deletes on the next open.
- :class:`ReceiptJournal` — an append-only, CRC-framed journal of
  per-stream store receipts.  The server appends one record per stored
  frame (after the store write, before the ACK) and one per END, and a
  restarted server replays the journal to rebuild each stream's dedupe
  set — so a retransmission of a frame stored before the crash is
  answered with DUPLICATE instead of being stored twice.
- :class:`RecoveryReport` / :class:`ScrubReport` — what ``recover()``
  and ``scrub()`` found and fixed, for tests, counters, and the CLI.

Record layout (see docs/FORMAT.md, "Durability journals"): one JSON
object per line, ``{"t": "frame"|"end", "sid": <stream id>, "idx": ...,
"crc": ..., "c": <crc32>}`` where ``c`` is the CRC-32 of the line's
canonical JSON without the ``c`` field itself.  A torn tail (partial
line, bad JSON, bad CRC) terminates replay — everything before it is
trusted, everything after is discarded.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ReceiptJournal",
    "JournalReplay",
    "RecoveryReport",
    "ScrubDefect",
    "ScrubReport",
    "atomic_write_bytes",
]


def atomic_write_bytes(path: Path, data: bytes, fsync: bool = False) -> Path:
    """Write ``data`` to ``path`` atomically via a same-directory tmp file.

    The rename is the commit point: a crash before it leaves only a
    ``*.tmp`` orphan, never a torn ``path``.  ``fsync=True`` additionally
    flushes the file (and its directory entry) to stable storage before
    the rename — power-loss durability at the cost of one fsync per
    write.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    return path


@dataclass
class RecoveryReport:
    """What a store's ``recover()`` pass found on open."""

    #: Torn writes rolled back (journal intents without a committed row,
    #: tmp-file orphans).
    rolled_back: int = 0
    #: Journal intents whose write had in fact completed (cleared as
    #: committed instead of rolled back).
    replayed: int = 0
    #: Stray artifacts removed (orphan CRC sidecars, stale tmp files).
    orphans_removed: int = 0

    @property
    def clean(self) -> bool:
        return self.rolled_back == 0 and self.replayed == 0 and self.orphans_removed == 0

    def merge(self, other: "RecoveryReport") -> "RecoveryReport":
        self.rolled_back += other.rolled_back
        self.replayed += other.replayed
        self.orphans_removed += other.orphans_removed
        return self

    def __str__(self) -> str:
        return (
            f"recovery: {self.replayed} replayed, {self.rolled_back} rolled back, "
            f"{self.orphans_removed} orphan(s) removed"
        )


@dataclass(frozen=True)
class ScrubDefect:
    """One unhealthy replica copy found by a scrub pass."""

    frame_index: int
    shard: int
    #: ``"missing"`` (no copy on the shard) or ``"corrupt"`` (bytes do
    #: not match the stored CRC / the healthy majority).
    kind: str
    repaired: bool = False

    def __str__(self) -> str:
        fate = "repaired" if self.repaired else "NOT repaired"
        return f"frame {self.frame_index} shard {self.shard}: {self.kind}, {fate}"


@dataclass
class ScrubReport:
    """Outcome of a replica audit over a (sharded) store."""

    #: Frame indices examined.
    frames_checked: int = 0
    #: Replica copies whose bytes verified against their stored CRC.
    copies_healthy: int = 0
    defects: list[ScrubDefect] = field(default_factory=list)

    @property
    def n_missing(self) -> int:
        return sum(d.kind == "missing" for d in self.defects)

    @property
    def n_corrupt(self) -> int:
        return sum(d.kind == "corrupt" for d in self.defects)

    @property
    def n_repaired(self) -> int:
        return sum(d.repaired for d in self.defects)

    @property
    def n_unrepaired(self) -> int:
        return sum(not d.repaired for d in self.defects)

    @property
    def clean(self) -> bool:
        """True when every replica of every frame verified healthy."""
        return not self.defects

    def __str__(self) -> str:
        return (
            f"scrub: {self.frames_checked} frame(s), {self.copies_healthy} healthy "
            f"cop(ies), {self.n_corrupt} corrupt, {self.n_missing} missing, "
            f"{self.n_repaired} repaired"
        )


@dataclass(frozen=True)
class JournalReplay:
    """Everything a :class:`ReceiptJournal` replay recovered."""

    #: ``(stream_id, frame_index, payload_crc)`` per stored frame, in
    #: journal order (retransmission dedupe means each index appears once
    #: per stream).
    frames: tuple[tuple[int | str, int, int], ...] = ()
    #: Stream ids whose END record was journaled.
    ended: tuple[int | str, ...] = ()
    #: 1 if replay stopped at a torn tail record, else 0.
    torn: int = 0

    def seen_by_stream(self) -> dict[int | str, set[int]]:
        """Per-stream dedupe sets, ready to seed server stream state."""
        seen: dict[int | str, set[int]] = {}
        for stream_id, frame_index, _ in self.frames:
            seen.setdefault(stream_id, set()).add(frame_index)
        return seen


def _line_crc(entry: dict) -> int:
    canonical = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def _encode_line(entry: dict) -> bytes:
    """One CRC-framed journal line for ``entry`` (without a ``c`` field)."""
    payload = json.dumps(entry, sort_keys=True, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload)
    # "c" sorts before every other journal key, so splicing it in front
    # keeps the line identical to a sorted re-dump (replay verifies
    # exactly that).
    return b'{"c":%d,%s\n' % (crc, payload[1:])


def _parse_segment(text: str) -> tuple[list[dict], int]:
    """Parse one segment's intact entries; stop at (and flag) a torn record."""
    entries: list[dict] = []
    torn = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            crc = entry.pop("c")
        except (ValueError, KeyError):
            torn = 1
            break
        if _line_crc(entry) != crc:
            torn = 1
            break
        entries.append(entry)
    return entries, torn


class ReceiptJournal:
    """Append-only, CRC-framed journal of per-stream store receipts.

    Thread-safe: handler threads append concurrently under an internal
    lock.  Each record is one unbuffered write of one line, so a crash
    can tear at most the final record — replay detects the torn tail
    (bad JSON or bad line CRC) and stops there.

    ``fsync=True`` forces every record to stable storage (power-loss
    durability); the default stops at the OS, which survives a process
    kill — the fault model the restart drill exercises.

    ``batch=N`` (N > 1) amortizes the write(2): records accumulate in
    memory and every Nth append — or any END record, or an explicit
    :meth:`drain` — flushes them as one syscall.  This widens the
    kill-loss window from "the torn final record" to "up to N-1 tail
    records" — safe for the ingest server, because losing a receipt only
    means a retransmitted frame is re-stored idempotently instead of
    answered DUPLICATE — and takes the syscall off the ACK hot path.

    ``rotate_bytes=N`` bounds the *active* file: once a flush pushes it
    past N bytes it is sealed as a numbered segment
    (``<path>.0001``, ``.0002``, …) and a fresh active file is opened.
    Sealing triggers compaction: all sealed segments are merged into
    one, dropping the frame records of fully-ENDed streams (their
    clients finished and will never retransmit — only the END line
    itself is kept, so recovered stream/END accounting survives).  A
    long-lived server's journal therefore grows with its *live* streams,
    not its lifetime.  :meth:`replay` reads sealed segments oldest-first
    and the active file last, so recovery spans rotations transparently.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: bool = False,
        batch: int = 1,
        rotate_bytes: int | None = None,
    ) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if rotate_bytes is not None and rotate_bytes < 1:
            raise ValueError(f"rotate_bytes must be >= 1, got {rotate_bytes}")
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.batch = int(batch)
        self.rotate_bytes = None if rotate_bytes is None else int(rotate_bytes)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: Rotations performed by this journal instance.
        self.rotations = 0
        #: Frame records of ENDed streams dropped by compaction.
        self.compacted_frames = 0
        #: Next sealed-segment number (resumes past existing segments).
        self._seq = 1 + max(
            (int(seg.name.rsplit(".", 1)[1]) for seg in self.segments()),
            default=0,
        )
        # Unbuffered binary append: each flush is one write(2) syscall,
        # so its lines are OS-visible the moment ``write`` returns — no
        # userspace buffer beyond the explicit batch to lose on a
        # process kill, and no separate ``flush`` round-trip per record.
        self._handle = open(self.path, "ab", buffering=0)
        self._active_bytes = self.path.stat().st_size
        self._closed = False
        self._pending: list[bytes] = []

    def segments(self) -> list[Path]:
        """Sealed segment paths in replay order (oldest first)."""
        return sorted(
            seg
            for seg in self.path.parent.glob(self.path.name + ".*")
            if seg.name.rsplit(".", 1)[1].isdigit()
        )

    # -- appending -----------------------------------------------------

    def _append(self, entry: dict) -> None:
        line = _encode_line(entry)
        with self._lock:
            if self._closed:
                raise ValueError("journal is closed")
            self._pending.append(line)
            # ENDs flush eagerly: they are rare (one per stream) and the
            # recovered-END count feeds wait_for_streams after a restart.
            if len(self._pending) >= self.batch or entry.get("t") == "end":
                self._flush_pending_locked()

    def _flush_pending_locked(self) -> None:
        lines, self._pending = self._pending, []
        if not lines:
            return
        data = b"".join(lines)
        self._handle.write(data)
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._active_bytes += len(data)
        if self.rotate_bytes is not None and self._active_bytes >= self.rotate_bytes:
            self._rotate_locked()

    def _rotate_locked(self) -> None:
        """Seal the active file as the next numbered segment and compact."""
        self._handle.close()
        os.replace(self.path, self.path.with_name(f"{self.path.name}.{self._seq:04d}"))
        self._seq += 1
        self._compact_locked()
        self._handle = open(self.path, "ab", buffering=0)
        self._active_bytes = 0
        self.rotations += 1

    def _compact_locked(self) -> None:
        """Merge all sealed segments into one, dropping ENDed streams' frames.

        Safe because an ENDed stream's client got its END ACK and is
        done: nothing will ever be retransmitted on that stream, so its
        dedupe set need not survive a restart.  The END line itself is
        kept (once) — recovered-stream and END accounting still work.
        A torn record inside a sealed segment stops that segment's parse
        (matching replay), so compaction never resurrects garbage.
        """
        segs = self.segments()
        entries: list[dict] = []
        for seg in segs:
            parsed, _torn = _parse_segment(seg.read_text(encoding="utf-8"))
            entries.extend(parsed)
        ended = {e["sid"] for e in entries if e.get("t") == "end"}
        kept: list[bytes] = []
        ends_written: set = set()
        dropped = 0
        for entry in entries:
            if entry.get("t") == "frame" and entry["sid"] in ended:
                dropped += 1
                continue
            if entry.get("t") == "end":
                if entry["sid"] in ends_written:
                    continue
                ends_written.add(entry["sid"])
            kept.append(_encode_line(entry))
        atomic_write_bytes(segs[0], b"".join(kept), fsync=self.fsync)
        for seg in segs[1:]:
            seg.unlink()
        self.compacted_frames += dropped

    def drain(self) -> None:
        """Flush batched appends to the OS.

        A no-op with ``batch=1``; with batching, this is the barrier
        tests (and ``close``) use before reading the journal back.
        """
        with self._lock:
            if not self._closed:
                self._flush_pending_locked()

    def append_frame(
        self, stream_id: int | str, frame_index: int, payload_crc: int
    ) -> None:
        """Journal one stored frame (call after the store write commits)."""
        self._append(
            {"t": "frame", "sid": stream_id, "idx": frame_index, "crc": payload_crc}
        )

    def append_end(self, stream_id: int | str) -> None:
        """Journal one stream's END record."""
        self._append({"t": "end", "sid": stream_id})

    # -- replay --------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Read back every intact record; stop at (and count) a torn tail.

        Sealed segments are replayed oldest-first, then the active file —
        one logical journal regardless of how many rotations happened.
        The first torn record stops the whole replay: everything before
        it is trusted, everything after is discarded.
        """
        frames: list[tuple[int | str, int, int]] = []
        ended: list[int | str] = []
        torn = 0
        for part in [*self.segments(), self.path]:
            try:
                text = part.read_text(encoding="utf-8")
            except OSError:
                continue
            entries, torn = _parse_segment(text)
            for entry in entries:
                if entry.get("t") == "frame":
                    frames.append((entry["sid"], entry["idx"], entry["crc"]))
                elif entry.get("t") == "end":
                    ended.append(entry["sid"])
            if torn:
                break
        return JournalReplay(tuple(frames), tuple(ended), torn)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Idempotent: flush batched appends and release the file handle."""
        with self._lock:
            if self._closed:
                return
            self._flush_pending_locked()
            self._closed = True
            self._handle.close()

    def __enter__(self) -> "ReceiptJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
