"""Transport protocol v2: integrity-checked, typed records.

Protocol v1 framed every frame as ``<u32 frame_index, u32 size>`` +
payload and signalled end-of-stream with the in-band marker
``frame_index == 0xFFFFFFFF`` — a legitimate frame index could collide
with it, and a single flipped bit anywhere silently corrupted the stored
stream.  v2 records are self-describing and checksummed::

    magic         b"DBG2"                                  (4 bytes)
    type          u8    1 = FRAME, 2 = END, 3 = ACK, 4 = HELLO
    flags         u8    FRAME: bit 0 = degraded payload
                        ACK:   low nibble = status (0 = stored,
                        1 = quarantined, 2 = duplicate); bit 7 = BUSY
                        (server backpressure hint, see below)
                        HELLO: the sender's sliding window (v2.2; 0 =
                        stop-and-wait / pre-v2.2 client)
    frame_index   u32   HELLO: the stream id; END/END-ACK: END_ACK_INDEX
    payload_len   u32
    header_crc32  u32   CRC-32 over the 14 bytes above
    payload       payload_len bytes                        (FRAME only)
    payload_crc32 u32   CRC-32 over the payload            (iff payload_len > 0)

The explicit record type removes the end-marker collision; the header CRC
lets a receiver detect a corrupted header and *resynchronize* by scanning
for the next magic instead of mis-framing the rest of the stream; the
payload CRC turns silent corruption into a :class:`CorruptPayloadError`
that carries the damaged bytes for quarantine.

Stream scoping (multi-client ingest).  A client opens every connection —
the first one and each reconnect — with a ``HELLO`` record whose
``frame_index`` field carries its **stream id**.  The server keys all
per-stream state (dedupe sets, ACK ordinals, receipts) by that id, so a
reconnecting client resumes its own stream and two clients sending the
same frame index never collide in each other's dedupe state.  A
connection that sends frames without a HELLO gets an implicit
connection-scoped stream (v2.0 compatibility), losing only
dedupe-across-reconnect.

END/ACK addressing.  ``END`` records and their acknowledgement both carry
:data:`END_ACK_INDEX` in ``frame_index``, giving the end-of-stream
handshake a well-defined address: the client waits for an ACK with that
exact index (a stale frame ACK cannot complete the handshake) and
retransmits END if the ACK is lost.  Frame indices are still free to use
the full u32 range — only the END *handshake* reserves the sentinel, and
a FRAME record with index ``0xFFFFFFFF`` round-trips unchanged.

BUSY backpressure hint.  A server whose store writes are falling behind
(latency EWMA above its threshold, or too many writes in flight) sets
:data:`ACK_FLAG_BUSY` — the high bit of the ACK ``flags`` byte — on the
acknowledgements it sends while overloaded.  The status stays in the low
nibble (:data:`ACK_STATUS_MASK`), so a v2.1 receiver that masks flags
reads v2.2 ACKs unchanged, and a v2.1 *sender* simply never sets the
bit.  The client consumes the hint through its existing degradation
machinery: it pauses its sender briefly (slow down) and treats the link
as congested so the ``"coarsen"`` policy recompresses at a coarser error
bound (see :class:`~repro.system.client.DbgcClient`).

Sliding window (v2.2).  The wire layout is unchanged; v2.2 gives two
existing fields pipelining semantics.  A client's ``HELLO`` advertises
its send window in the ``flags`` byte (``min(window, 255)``; 0 from
pre-v2.2 clients means stop-and-wait) and may then keep up to *window*
FRAME records in flight before waiting for acknowledgements.  ACKs are
**demultiplexed, not ordered**: each ACK's ``frame_index`` names the
frame it settles, the client matches it against its in-flight table, and
ACKs may arrive in any order relative to the sends (the server still
commits and acknowledges each connection's frames in arrival order).  An
ACK for a frame no longer in flight — a duplicate from a retransmission
race — is ignored.  The BUSY bit becomes a *congestion signal* driving
AIMD: on a BUSY ACK the client halves its congestion window, on a clean
ACK it grows it by one frame, clamped to ``[1, window]``; servers set
BUSY both on store pressure (as in v2.1) and when a stream's decode
pipeline holds more than its advertised window of undrained frames.
Loss recovery is selective repeat: each in-flight frame carries its own
retransmit deadline, an expired frame is re-sent alone while the link is
live, and after a reconnect the client replays *all* unacknowledged
frames oldest-first (the server dedupes by frame index, so replays of
already-committed frames are acknowledged ``DUPLICATE``).  With
``window=1`` every rule above reduces exactly to the v2.1 stop-and-wait
behaviour.
"""

from __future__ import annotations

import socket
import struct
import zlib
from dataclasses import dataclass, field

__all__ = [
    "MAGIC",
    "TYPE_FRAME",
    "TYPE_END",
    "TYPE_ACK",
    "TYPE_HELLO",
    "ACK_STORED",
    "ACK_QUARANTINED",
    "ACK_DUPLICATE",
    "ACK_STATUS_MASK",
    "ACK_FLAG_BUSY",
    "END_ACK_INDEX",
    "FLAG_DEGRADED",
    "Record",
    "ProtocolError",
    "CorruptPayloadError",
    "encode_record",
    "read_record",
    "recv_exact",
]

MAGIC = b"DBG2"

TYPE_FRAME = 1
TYPE_END = 2
TYPE_ACK = 3
TYPE_HELLO = 4
_KNOWN_TYPES = frozenset((TYPE_FRAME, TYPE_END, TYPE_ACK, TYPE_HELLO))

#: The frame_index carried by END records and their acknowledgement.  The
#: END handshake is addressed by this sentinel so a stale frame ACK can
#: never complete it; FRAME records may still use the index themselves.
END_ACK_INDEX = 0xFFFFFFFF

#: ACK status codes (carried in the low nibble of ``flags``).
ACK_STORED = 0
ACK_QUARANTINED = 1
ACK_DUPLICATE = 2

#: Mask selecting the ACK status from ``flags`` (high bits are hints).
ACK_STATUS_MASK = 0x0F

#: ACK flag bit: the server is overloaded (store latency / queue depth);
#: the client should slow down or coarsen.  Orthogonal to the status.
ACK_FLAG_BUSY = 0x80

#: FRAME flag: the payload was recompressed at a coarser error bound.
FLAG_DEGRADED = 1

_HEADER = struct.Struct("<4sBBII")  # magic, type, flags, frame_index, payload_len
_CRC = struct.Struct("<I")

#: Largest payload a receiver will allocate for (a full HDL-64E frame is
#: ~1.2 MB raw; compressed payloads are far smaller).
MAX_PAYLOAD = 64 * 1024 * 1024

#: Give up resynchronizing after skipping this much garbage.
_MAX_RESYNC = 16 * 1024 * 1024


class ProtocolError(Exception):
    """The byte stream is not a valid v2 record stream."""


class CorruptPayloadError(ProtocolError):
    """A record's payload failed its CRC check.

    Framing is intact (the header CRC passed), so the caller can
    quarantine :attr:`payload` and keep reading the stream.
    """

    def __init__(self, frame_index: int, payload: bytes, expected: int, got: int):
        super().__init__(
            f"frame {frame_index}: payload CRC mismatch "
            f"(expected {expected:#010x}, got {got:#010x})"
        )
        self.frame_index = frame_index
        self.payload = payload
        self.expected = expected
        self.got = got


@dataclass
class Record:
    """One decoded wire record."""

    type: int
    frame_index: int
    flags: int = 0
    payload: bytes = b""
    #: Garbage bytes skipped before this record's magic was found (> 0
    #: means the previous record's framing was corrupted in flight).
    resync_skipped: int = field(default=0, compare=False)
    #: CRC-32 of ``payload``, as verified on the wire — receivers can
    #: reuse it (journal receipts, store audits) without recomputing.
    payload_crc: int = field(default=0, compare=False)


def recv_exact(conn: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError``."""
    chunks = []
    remaining = n
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_record(
    rtype: int, frame_index: int, payload: bytes = b"", flags: int = 0
) -> bytes:
    """Serialize one record, computing both CRCs."""
    if rtype not in _KNOWN_TYPES:
        raise ValueError(f"unknown record type {rtype}")
    if not 0 <= frame_index <= 0xFFFFFFFF:
        raise ValueError(f"frame index {frame_index} out of u32 range")
    header = _HEADER.pack(MAGIC, rtype, flags, frame_index, len(payload))
    parts = [header, _CRC.pack(zlib.crc32(header))]
    if payload:
        parts.append(payload)
        parts.append(_CRC.pack(zlib.crc32(payload)))
    return b"".join(parts)


#: Offset of the payload within an encoded FRAME record (after header + CRC).
PAYLOAD_OFFSET = _HEADER.size + _CRC.size


def read_record(conn: socket.socket) -> Record:
    """Read the next record, resynchronizing past corrupted headers.

    Raises
    ------
    CorruptPayloadError
        The header was valid but the payload failed its CRC; the stream
        stays framed and the next call returns the following record.
    ProtocolError
        Resynchronization failed (no valid header within the scan limit).
    ConnectionError
        The peer closed the connection mid-record.
    """
    prefix = recv_exact(conn, _HEADER.size + _CRC.size)
    skipped = 0
    while True:
        header, crc_bytes = prefix[: _HEADER.size], prefix[_HEADER.size :]
        if header[:4] == MAGIC:
            magic, rtype, flags, frame_index, payload_len = _HEADER.unpack(header)
            (header_crc,) = _CRC.unpack(crc_bytes)
            if (
                zlib.crc32(header) == header_crc
                and rtype in _KNOWN_TYPES
                and payload_len <= MAX_PAYLOAD
            ):
                break
        # Corrupted header: slide one byte and scan for the next magic.
        skipped += 1
        if skipped > _MAX_RESYNC:
            raise ProtocolError("no valid record header found while resynchronizing")
        prefix = prefix[1:] + recv_exact(conn, 1)
    payload = b""
    actual = 0
    if payload_len:
        payload = recv_exact(conn, payload_len)
        (payload_crc,) = _CRC.unpack(recv_exact(conn, _CRC.size))
        actual = zlib.crc32(payload)
        if actual != payload_crc:
            raise CorruptPayloadError(frame_index, payload, payload_crc, actual)
    return Record(
        rtype, frame_index, flags, payload, resync_skipped=skipped, payload_crc=actual
    )
