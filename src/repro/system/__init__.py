"""The end-to-end DBGC system (paper Figure 2).

A :class:`~repro.system.client.DbgcClient` pulls frames from a (simulated)
sensor, compresses them, and ships the bit sequences over a TCP connection
shaped to a mobile-network bandwidth
(:class:`~repro.system.channel.BandwidthShaper`).  A
:class:`~repro.system.server.DbgcServer` receives, decompresses (or stores
the raw stream), and writes frames into a
:class:`~repro.system.storage.FileFrameStore` or
:class:`~repro.system.storage.SqliteFrameStore`.  Per-frame stage
timestamps support the Section 4.4 throughput / latency evaluation.
"""

from repro.system.channel import BandwidthShaper
from repro.system.client import DbgcClient
from repro.system.metrics import FrameTrace, PipelineReport
from repro.system.server import DbgcServer
from repro.system.storage import FileFrameStore, SqliteFrameStore

__all__ = [
    "BandwidthShaper",
    "DbgcClient",
    "DbgcServer",
    "FileFrameStore",
    "FrameTrace",
    "PipelineReport",
    "SqliteFrameStore",
]
