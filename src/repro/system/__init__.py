"""The end-to-end DBGC system (paper Figure 2), hardened for a lossy link.

A :class:`~repro.system.client.DbgcClient` pulls frames from a (simulated)
sensor, compresses them, and ships the bit sequences over a TCP connection
shaped to a mobile-network bandwidth
(:class:`~repro.system.channel.BandwidthShaper`).  A
:class:`~repro.system.server.DbgcServer` receives, decompresses (or stores
the raw stream), and writes frames into a
:class:`~repro.system.storage.FileFrameStore` or
:class:`~repro.system.storage.SqliteFrameStore`.  Per-frame stage
timestamps support the Section 4.4 throughput / latency evaluation.

Transport protocol v2 (:mod:`repro.system.protocol`) makes delivery
fault-tolerant: CRC-checked typed records, client retransmission with
capped exponential backoff, server-side quarantine and dedupe, and
bounded-queue degradation policies for congested links.  A seeded
:class:`~repro.system.faults.FaultyChannel` injects deterministic bit
flips, truncations, disconnects, and bandwidth jitter to prove it.

The ingest tier is multi-client: the server runs a handler thread per
connection (capped by ``max_clients``), keys all per-stream state by the
stream id each client announces in its HELLO record, and can fan storage
out over a :class:`~repro.system.storage.ShardedFrameStore`.  The load
generator (:mod:`repro.system.loadgen`) drives N concurrent clients over
independently seeded fault channels for the `bench_fleet` throughput
table and the fleet acceptance tests.

The durability tier (:mod:`repro.system.durability`) survives *process*
faults on top of the channel faults: every store commits writes
atomically and recovers torn ones on open, the server journals receipts
(:class:`~repro.system.durability.ReceiptJournal`) so a restart rebuilds
its dedupe state, :class:`~repro.system.storage.ShardedFrameStore` can
replicate frames across shards and ``scrub()`` them back to health, and
an overloaded server piggybacks a BUSY hint on its ACKs that clients
answer by slowing down or coarsening.
:class:`~repro.system.faults.ServerKillSwitch` injects the process fault
deterministically for the kill-and-restart drills.

The decode offload tier (``DbgcServer(decode_workers=N)``) moves
``decompress``-mode decoding off the GIL-bound handler threads onto a
:class:`~repro.system.pool.StickyWorkerPool` of decoder worker
processes with per-stream affinity: each worker owns its streams'
stateful temporal decoders, frames decode in arrival order, and decoded
clouds return through pickle-protocol-5 out-of-band buffers — so
decompress-mode fleet throughput scales with cores while every ingest
contract (ACK after commit, journaling, quarantine, dedupe, byte-
identical store contents) stays exactly the inline path's.

The pipelined transport (protocol v2.2, ``DbgcClient(window=W)``)
overlaps send, decode, and commit *within* a stream: a selective-repeat
sliding window keeps up to ``W`` unACKed frames in flight with
out-of-order ACK matching and AIMD adaptation on BUSY hints, while a
windowed decompress server submits decodes as frames arrive and a
per-connection drainer commits and ACKs them in arrival order.
``window=1`` reduces exactly to the classic stop-and-wait behaviour.
"""

from repro.system.channel import BandwidthShaper
from repro.system.client import OVERFLOW_POLICIES, DbgcClient
from repro.system.durability import (
    JournalReplay,
    ReceiptJournal,
    RecoveryReport,
    ScrubDefect,
    ScrubReport,
    atomic_write_bytes,
)
from repro.system.faults import FaultPlan, FaultSpec, FaultyChannel, ServerKillSwitch
from repro.system.loadgen import (
    FleetResult,
    FleetSpec,
    cloud_contents,
    compressed_fleet_payloads,
    run_fleet,
)
from repro.system.metrics import FrameTrace, PipelineReport, TransportEvent
from repro.system.pool import StickyWorkerPool, pack_array, unpack_array
from repro.system.server import (
    DbgcServer,
    QuarantinedFrame,
    RemoteDecodeError,
    StreamState,
)
from repro.system.storage import FileFrameStore, ShardedFrameStore, SqliteFrameStore

__all__ = [
    "BandwidthShaper",
    "DbgcClient",
    "DbgcServer",
    "FaultPlan",
    "FaultSpec",
    "FaultyChannel",
    "FileFrameStore",
    "FleetResult",
    "FleetSpec",
    "FrameTrace",
    "JournalReplay",
    "OVERFLOW_POLICIES",
    "PipelineReport",
    "QuarantinedFrame",
    "ReceiptJournal",
    "RecoveryReport",
    "RemoteDecodeError",
    "ScrubDefect",
    "ScrubReport",
    "ServerKillSwitch",
    "ShardedFrameStore",
    "SqliteFrameStore",
    "StickyWorkerPool",
    "StreamState",
    "TransportEvent",
    "atomic_write_bytes",
    "cloud_contents",
    "compressed_fleet_payloads",
    "pack_array",
    "run_fleet",
    "unpack_array",
]
