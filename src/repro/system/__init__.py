"""The end-to-end DBGC system (paper Figure 2), hardened for a lossy link.

A :class:`~repro.system.client.DbgcClient` pulls frames from a (simulated)
sensor, compresses them, and ships the bit sequences over a TCP connection
shaped to a mobile-network bandwidth
(:class:`~repro.system.channel.BandwidthShaper`).  A
:class:`~repro.system.server.DbgcServer` receives, decompresses (or stores
the raw stream), and writes frames into a
:class:`~repro.system.storage.FileFrameStore` or
:class:`~repro.system.storage.SqliteFrameStore`.  Per-frame stage
timestamps support the Section 4.4 throughput / latency evaluation.

Transport protocol v2 (:mod:`repro.system.protocol`) makes delivery
fault-tolerant: CRC-checked typed records, client retransmission with
capped exponential backoff, server-side quarantine and dedupe, and
bounded-queue degradation policies for congested links.  A seeded
:class:`~repro.system.faults.FaultyChannel` injects deterministic bit
flips, truncations, disconnects, and bandwidth jitter to prove it.

The ingest tier is multi-client: the server runs a handler thread per
connection (capped by ``max_clients``), keys all per-stream state by the
stream id each client announces in its HELLO record, and can fan storage
out over a :class:`~repro.system.storage.ShardedFrameStore`.  The load
generator (:mod:`repro.system.loadgen`) drives N concurrent clients over
independently seeded fault channels for the `bench_fleet` throughput
table and the fleet acceptance tests.
"""

from repro.system.channel import BandwidthShaper
from repro.system.client import OVERFLOW_POLICIES, DbgcClient
from repro.system.faults import FaultPlan, FaultSpec, FaultyChannel
from repro.system.loadgen import FleetResult, FleetSpec, run_fleet
from repro.system.metrics import FrameTrace, PipelineReport, TransportEvent
from repro.system.server import DbgcServer, QuarantinedFrame, StreamState
from repro.system.storage import FileFrameStore, ShardedFrameStore, SqliteFrameStore

__all__ = [
    "BandwidthShaper",
    "DbgcClient",
    "DbgcServer",
    "FaultPlan",
    "FaultSpec",
    "FaultyChannel",
    "FileFrameStore",
    "FleetResult",
    "FleetSpec",
    "FrameTrace",
    "OVERFLOW_POLICIES",
    "PipelineReport",
    "QuarantinedFrame",
    "ShardedFrameStore",
    "SqliteFrameStore",
    "StreamState",
    "TransportEvent",
    "run_fleet",
]
