"""Per-frame pipeline instrumentation for the Section 4.4 evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FrameTrace", "PipelineReport"]


@dataclass
class FrameTrace:
    """Stage timestamps of one frame's trip through the system.

    All fields are ``time.perf_counter()`` readings on the producing host
    (client and server run on one machine in this prototype, so the clock
    is shared).
    """

    frame_index: int
    n_points: int
    payload_bytes: int
    captured_at: float
    compressed_at: float = 0.0
    sent_at: float = 0.0
    received_at: float = 0.0
    stored_at: float = 0.0

    @property
    def compress_latency(self) -> float:
        return self.compressed_at - self.captured_at

    @property
    def transfer_latency(self) -> float:
        return self.received_at - self.sent_at

    @property
    def server_latency(self) -> float:
        return self.stored_at - self.received_at

    @property
    def total_latency(self) -> float:
        return self.stored_at - self.captured_at


@dataclass
class PipelineReport:
    """Aggregate over many frame traces."""

    traces: list[FrameTrace] = field(default_factory=list)

    def add(self, trace: FrameTrace) -> None:
        self.traces.append(trace)

    @property
    def n_frames(self) -> int:
        return len(self.traces)

    def _mean(self, values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_total_latency(self) -> float:
        return self._mean([t.total_latency for t in self.traces])

    @property
    def mean_compress_latency(self) -> float:
        return self._mean([t.compress_latency for t in self.traces])

    @property
    def mean_transfer_latency(self) -> float:
        return self._mean([t.transfer_latency for t in self.traces])

    @property
    def mean_payload_bytes(self) -> float:
        return self._mean([float(t.payload_bytes) for t in self.traces])

    def throughput_fps(self) -> float:
        """Frames stored per second over the observed window."""
        if len(self.traces) < 2:
            return 0.0
        span = self.traces[-1].stored_at - self.traces[0].captured_at
        return self.n_frames / span if span > 0 else 0.0

    def bandwidth_mbps(self, frames_per_second: float) -> float:
        """Average link bandwidth needed at the sensor's frame rate."""
        return 8.0 * frames_per_second * self.mean_payload_bytes / 1e6
