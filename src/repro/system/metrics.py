"""Per-frame pipeline instrumentation for the Section 4.4 evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.observability import recorder as _obs

__all__ = ["FrameTrace", "PipelineReport", "TransportEvent"]


@dataclass
class FrameTrace:
    """Stage timestamps of one frame's trip through the system.

    All fields are ``time.perf_counter()`` readings on the producing host
    (client and server run on one machine in this prototype, so the clock
    is shared).
    """

    frame_index: int
    n_points: int
    payload_bytes: int
    captured_at: float
    compressed_at: float = 0.0
    sent_at: float = 0.0
    received_at: float = 0.0
    stored_at: float = 0.0
    #: Transmission attempts (1 = delivered first try; 0 = never sent).
    attempts: int = 1
    #: Final fate: ``"pending"`` (still queued), ``"stored"``,
    #: ``"quarantined"`` (server rejected the bytes), or ``"dropped"``
    #: (evicted under congestion or retries exhausted).  A trace starts
    #: ``"pending"`` and becomes ``"stored"`` only once the server ACK
    #: confirms the frame landed — never by default.
    status: str = "pending"
    #: True when the payload was recompressed at a coarser error bound
    #: because the link could not sustain the sensor rate.
    degraded: bool = False

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    @property
    def compress_latency(self) -> float:
        return self.compressed_at - self.captured_at

    @property
    def transfer_latency(self) -> float:
        return self.received_at - self.sent_at

    @property
    def server_latency(self) -> float:
        return self.stored_at - self.received_at

    @property
    def total_latency(self) -> float:
        return self.stored_at - self.captured_at


@dataclass(frozen=True)
class TransportEvent:
    """One fault-tolerance action taken by the transport.

    Kinds: ``retry`` (a transmission failed and will be re-attempted),
    ``reconnect`` (the client re-established the connection),
    ``quarantine`` (the server rejected a payload), ``drop`` (a frame was
    evicted under congestion or gave up after retries), ``degrade`` (a
    frame was recompressed at a coarser error bound), ``duplicate`` (the
    server deduplicated a retransmission).
    """

    kind: str
    frame_index: int
    attempt: int = 0
    detail: str = ""


@dataclass
class PipelineReport:
    """Aggregate over many frame traces and transport events."""

    traces: list[FrameTrace] = field(default_factory=list)
    events: list[TransportEvent] = field(default_factory=list)
    #: Server BUSY hints received on ACKs.  A plain counter, not an
    #: event: hint timing depends on store latency, so it must stay out
    #: of the deterministic ``accounting_key()`` fingerprint.
    busy_hints: int = 0
    #: Per-frame ACK round-trip latencies (seconds), one sample per
    #: matched ACK.  Wall-clock measurements, so — like ``busy_hints`` —
    #: excluded from ``accounting_key()``.
    ack_latencies: list[float] = field(default_factory=list)

    def add(self, trace: FrameTrace) -> None:
        self.traces.append(trace)

    def record(
        self, kind: str, frame_index: int, attempt: int = 0, detail: str = ""
    ) -> None:
        """Log one transport event (retry, drop, quarantine, degrade...)."""
        self.events.append(TransportEvent(kind, frame_index, attempt, detail))
        _obs.count("transport." + kind)

    @classmethod
    def merged(cls, reports: "Iterable[PipelineReport]") -> "PipelineReport":
        """One aggregate report over a fleet of clients' reports.

        Traces and events are aliased, not copied, and no observability
        counters are re-emitted; the per-client reports stay authoritative
        for per-stream accounting (``accounting_key()`` of the merge is
        only meaningful when the clients' frame-index ranges are
        disjoint, as the load generator guarantees).
        """
        merged = cls()
        for report in reports:
            merged.traces.extend(report.traces)
            merged.events.extend(report.events)
            merged.busy_hints += report.busy_hints
            merged.ack_latencies.extend(report.ack_latencies)
        return merged

    @property
    def n_frames(self) -> int:
        return len(self.traces)

    # -- fault-tolerance accounting -----------------------------------

    @property
    def stored_traces(self) -> list[FrameTrace]:
        """Traces of frames that made it into the store."""
        return [t for t in self.traces if t.status == "stored"]

    @property
    def n_stored(self) -> int:
        return len(self.stored_traces)

    @property
    def n_quarantined(self) -> int:
        return sum(t.status == "quarantined" for t in self.traces)

    @property
    def n_dropped(self) -> int:
        return sum(t.status == "dropped" for t in self.traces)

    @property
    def n_degraded(self) -> int:
        return sum(t.degraded for t in self.traces)

    @property
    def total_retries(self) -> int:
        return sum(t.retries for t in self.traces)

    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def accounting_key(self) -> tuple:
        """A deterministic fingerprint of this run's fault handling.

        Two runs with the same seed/faults must produce equal keys; event
        ordering across threads is normalized by sorting.
        """
        return (
            tuple(sorted(t.frame_index for t in self.stored_traces)),
            tuple(sorted(t.frame_index for t in self.traces if t.status == "quarantined")),
            tuple(sorted(t.frame_index for t in self.traces if t.status == "dropped")),
            tuple(sorted((t.frame_index, t.attempts) for t in self.traces)),
            tuple(sorted((e.kind, e.frame_index, e.attempt) for e in self.events)),
        )

    # -- latency / bandwidth aggregates (stored frames only) ----------

    def _mean(self, values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_total_latency(self) -> float:
        return self._mean([t.total_latency for t in self.stored_traces])

    @property
    def mean_compress_latency(self) -> float:
        return self._mean([t.compress_latency for t in self.stored_traces])

    @property
    def mean_transfer_latency(self) -> float:
        return self._mean([t.transfer_latency for t in self.stored_traces])

    @property
    def mean_payload_bytes(self) -> float:
        return self._mean([float(t.payload_bytes) for t in self.stored_traces])

    def throughput_fps(self) -> float:
        """Frames stored per second over the observed window.

        Traces are sorted by ``stored_at`` first: with retries and
        parallel senders, frames complete out of capture order, and the
        window must span the earliest capture to the *latest* store.
        """
        stored = sorted(self.stored_traces, key=lambda t: t.stored_at)
        if len(stored) < 2:
            return 0.0
        first_captured = min(t.captured_at for t in stored)
        span = stored[-1].stored_at - first_captured
        return len(stored) / span if span > 0 else 0.0

    def bandwidth_mbps(self, frames_per_second: float) -> float:
        """Average link bandwidth needed at the sensor's frame rate."""
        return 8.0 * frames_per_second * self.mean_payload_bytes / 1e6

    def ack_latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of ACK round-trip latency.

        Nearest-rank over the collected samples; ``0.0`` when no ACK
        latency was recorded (e.g. every frame dropped).
        """
        if not self.ack_latencies:
            return 0.0
        ordered = sorted(self.ack_latencies)
        rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]
