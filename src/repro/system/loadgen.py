"""Fleet load generation: N concurrent clients over seeded fault channels.

Drives the multi-client ingest tier for the `bench_fleet` throughput
table, the fault-injection acceptance tests, and ``dbgc fleet``.  Every
client of the fleet gets

- its own **stream id** (= client id), so server-side dedupe, ACK
  ordinals, and receipts are scoped per client;
- a disjoint global frame-index range — client *k* owns
  ``[k * index_stride, k * index_stride + frames_per_client)`` — so the
  shared (sharded) store never sees two writers on one index;
- an independent, deterministically derived
  :class:`~repro.system.faults.FaultyChannel`
  (:meth:`~repro.system.faults.FaultyChannel.for_stream` of the root
  seed), so a concurrent run and a serial replay of the same spec plan
  identical faults per client regardless of thread interleaving.

Payloads are seeded random bytes: the ingest tier's cost is framing,
CRCs, ACK round-trips, store writes, and fault recovery — compression
itself is benchmarked elsewhere.  Decompress-mode fleets instead need
payloads that actually decode: :func:`compressed_fleet_payloads` builds
real DBGC frame sequences (intra or temporal) and ``run_fleet`` accepts
them via its ``payloads`` override, together with a ``decode_workers``
knob for the server's decode offload tier.
"""

from __future__ import annotations

import errno
import random
import threading
import time
from dataclasses import dataclass, field, replace

from pathlib import Path

from repro.system.channel import BandwidthShaper
from repro.system.durability import ReceiptJournal
from repro.system.faults import FaultSpec, FaultyChannel, ServerKillSwitch
from repro.system.client import DbgcClient
from repro.system.metrics import PipelineReport
from repro.system.server import DbgcServer

__all__ = [
    "FleetSpec",
    "FleetResult",
    "client_payloads",
    "cloud_contents",
    "compressed_fleet_payloads",
    "payload_contents",
    "run_fleet",
]


@dataclass(frozen=True)
class FleetSpec:
    """One fleet run: client count, per-client load, faults, link shape."""

    n_clients: int = 4
    frames_per_client: int = 25
    #: Root of payload generation and every client's fault derivation.
    seed: int = 0
    #: Base fault probabilities applied to every client.
    fault_spec: FaultSpec = field(default_factory=FaultSpec)
    #: *Local* frame numbers whose first transmission is forced to die
    #: mid-record, applied to every client (translated to each client's
    #: global index range).
    force_disconnect_local: frozenset[int] = frozenset()
    #: Client k owns global indices [k * stride, k * stride + frames).
    index_stride: int = 1_000_000
    #: Inclusive payload-size range in bytes.
    payload_bytes: tuple[int, int] = (180, 300)
    #: Per-client uplink bandwidth (each client gets its own shaper), or
    #: None for an unshaped loopback link.
    bandwidth_mbps: float | None = None
    #: Simulated one-way link latency in seconds (charged on the ACK
    #: path as a full round trip — see ``BandwidthShaper.pace``).  A
    #: non-zero latency with ``bandwidth_mbps=None`` gets an effectively
    #: unconstrained 10 Gbps serialization model.
    latency_s: float = 0.0
    # Client transport knobs (see DbgcClient).
    ack_timeout: float = 2.0
    backoff_base: float = 0.01
    max_retries: int = 5
    queue_capacity: int = 8
    #: Sliding-window size per client (protocol v2.2 selective repeat);
    #: 1 = classic stop-and-wait.
    window: int = 1

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError(f"need at least one client, got {self.n_clients}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.frames_per_client > self.index_stride:
            raise ValueError(
                f"frames_per_client {self.frames_per_client} overflows the "
                f"index stride {self.index_stride}"
            )
        object.__setattr__(
            self, "force_disconnect_local", frozenset(self.force_disconnect_local)
        )

    def global_index(self, client_id: int, local_index: int) -> int:
        """The fleet-wide frame index of one client's local frame number."""
        return client_id * self.index_stride + local_index

    def client_indices(self, client_id: int) -> list[int]:
        """All global indices client ``client_id`` will send, in order."""
        return [
            self.global_index(client_id, i) for i in range(self.frames_per_client)
        ]

    def client_fault_spec(self, client_id: int) -> FaultSpec:
        """The base spec with forced disconnects mapped into the client's range."""
        if not self.force_disconnect_local:
            return self.fault_spec
        forced = frozenset(
            self.global_index(client_id, i) for i in self.force_disconnect_local
        )
        return replace(self.fault_spec, force_disconnect_frames=forced)


def client_payloads(spec: FleetSpec, client_id: int) -> dict[int, bytes]:
    """One client's seeded payloads, keyed by global frame index.

    Pure in ``(spec.seed, client_id)`` — integers only, so the derivation
    is stable across processes (no string hashing involved).
    """
    rng = random.Random(spec.seed * 1_000_003 + client_id)
    lo, hi = spec.payload_bytes
    return {
        index: rng.randbytes(rng.randint(lo, hi))
        for index in spec.client_indices(client_id)
    }


def payload_contents(store) -> dict[int, bytes]:
    """Every stored payload keyed by index (byte-identity comparisons)."""
    return {index: store.get_payload(index) for index in store.frame_indices()}


def cloud_contents(store) -> dict[int, bytes]:
    """Every stored cloud's raw ``xyz`` bytes keyed by index.

    The decompress-mode twin of :func:`payload_contents`: decoded
    geometry is deterministic per payload, so two runs that stored the
    same frames must compare equal byte for byte.
    """
    return {
        index: store.get_cloud(index).xyz.tobytes()
        for index in store.frame_indices()
    }


def compressed_fleet_payloads(
    spec: FleetSpec,
    sensor_scale: float = 0.3,
    temporal: bool = False,
    keyframe_interval: int = 4,
    scene: str = "kitti-road",
    q_xyz: float = 0.02,
) -> dict[int, dict[int, bytes]]:
    """Real compressed frame payloads for a decompress-mode fleet.

    One short drive (``spec.frames_per_client`` frames, seeded by
    ``spec.seed``) is compressed *once* — as independent intra frames,
    or as a temporal stream with format-v3 deltas between keyframes —
    and every client sends the same blobs on its own global index range.
    Per-client decode work is therefore identical, each client's local
    send order is the stream's decode order, and a serial replay decodes
    the exact same byte sequences as the concurrent fleet.

    Feed the result to :func:`run_fleet`'s ``payloads`` override.
    """
    # Local imports: the codec stack is heavy and only decompress-mode
    # fleets need it.
    from repro.core.params import DBGCParams
    from repro.core.pipeline import DBGCCompressor
    from repro.core.temporal import TemporalContext
    from repro.datasets.sensors import SensorModel
    from repro.datasets.trajectories import generate_sequence, straight

    sensor = SensorModel.benchmark_default().scaled(sensor_scale)
    trajectory = straight(spec.frames_per_client)
    frames = list(
        generate_sequence(scene, trajectory, sensor=sensor, seed=spec.seed + 1)
    )
    if temporal:
        params = DBGCParams(
            q_xyz=q_xyz, temporal=True, keyframe_interval=keyframe_interval
        )
        compressor = DBGCCompressor(params, sensor=sensor)
        context = TemporalContext()
        blobs = []
        for i, cloud in enumerate(frames):
            if i == 0:
                ego_delta = (0.0, 0.0, 0.0)
            else:
                prev, cur = trajectory[i - 1], trajectory[i]
                ego_delta = (cur[0] - prev[0], cur[1] - prev[1], 0.0)
            blobs.append(
                compressor.compress_temporal(
                    cloud, context, ego_delta=ego_delta
                ).payload
            )
    else:
        compressor = DBGCCompressor(DBGCParams(q_xyz=q_xyz), sensor=sensor)
        blobs = [compressor.compress(cloud) for cloud in frames]
    return {
        cid: dict(zip(spec.client_indices(cid), blobs))
        for cid in range(spec.n_clients)
    }


@dataclass
class FleetResult:
    """Outcome of one fleet run (the server object stays inspectable)."""

    spec: FleetSpec
    reports: dict[int, PipelineReport]
    payloads: dict[int, dict[int, bytes]]
    #: The final server — after a kill-and-restart drill, the restarted one.
    server: DbgcServer
    wall_s: float
    #: Server restarts performed by the kill switch (0 = no process fault).
    restarts: int = 0

    @property
    def merged(self) -> PipelineReport:
        """All clients' traces/events as one report (disjoint index ranges)."""
        return PipelineReport.merged(
            self.reports[cid] for cid in sorted(self.reports)
        )

    @property
    def n_stored(self) -> int:
        return sum(r.n_stored for r in self.reports.values())

    @property
    def n_quarantined(self) -> int:
        return sum(r.n_quarantined for r in self.reports.values())

    @property
    def n_dropped(self) -> int:
        return sum(r.n_dropped for r in self.reports.values())

    @property
    def frames_per_second(self) -> float:
        """Aggregate ingest throughput: frames stored / fleet wall time."""
        return self.n_stored / self.wall_s if self.wall_s > 0 else 0.0

    def accounting_keys(self) -> dict[int, tuple]:
        """Per-client deterministic fault-handling fingerprints."""
        return {cid: report.accounting_key() for cid, report in self.reports.items()}


def run_fleet(
    spec: FleetSpec,
    store,
    mode: str = "store",
    max_clients: int | None = None,
    concurrent: bool = True,
    receipt_journal: ReceiptJournal | str | Path | None = None,
    kill_after_frames: int | None = None,
    decode_workers: int = 0,
    payloads: dict[int, dict[int, bytes]] | None = None,
) -> FleetResult:
    """Drive ``spec.n_clients`` clients against one server over ``store``.

    ``concurrent=False`` replays the exact same per-client work one
    client at a time — the serial oracle: because faults, payloads, and
    stream scoping are all keyed per client, the resulting store contents
    and per-client accounting must match the concurrent run byte for
    byte.

    ``kill_after_frames=N`` turns the run into a kill-and-restart drill:
    a :class:`~repro.system.faults.ServerKillSwitch` SIGKILL-equivalently
    stops the server once N frames have been stored and immediately
    restarts it on the *same port* over the same store and
    ``receipt_journal`` (required — recovery needs durable receipts).
    The clients ride their normal reconnect/retransmit path across the
    outage; the restarted server recovers its dedupe state from the
    journal and answers retransmissions of pre-kill frames with
    DUPLICATE.

    ``decode_workers=N`` sizes the server's decode offload tier
    (``mode="decompress"`` only); after a kill, the restarted server
    gets a fresh pool — and fresh decoder state, so mid-stream delta
    frames quarantine until their stream's next keyframe.  ``payloads``
    overrides the default seeded-random bytes with real frames (see
    :func:`compressed_fleet_payloads`), keyed client id → {global frame
    index: payload} — required for decompress mode, where random bytes
    would only exercise the quarantine path.
    """
    if kill_after_frames is not None and receipt_journal is None:
        raise ValueError(
            "kill_after_frames requires a receipt_journal: without durable "
            "receipts the restarted server would double-ACK duplicates"
        )
    if payloads is None:
        payloads = {
            cid: client_payloads(spec, cid) for cid in range(spec.n_clients)
        }
    root = FaultyChannel(None, seed=spec.seed, spec=spec.fault_spec)

    def make_shaper() -> BandwidthShaper | None:
        if spec.bandwidth_mbps is None and spec.latency_s == 0.0:
            return None
        # Latency-only links get an effectively unconstrained pipe so the
        # round trip, not serialization, dominates.
        return BandwidthShaper(
            spec.bandwidth_mbps if spec.bandwidth_mbps is not None else 10_000.0,
            latency_s=spec.latency_s,
        )

    channels = {
        cid: root.for_stream(
            cid,
            spec=spec.client_fault_spec(cid),
            shaper=make_shaper(),
        )
        for cid in range(spec.n_clients)
    }
    reports: dict[int, PipelineReport] = {}
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def make_server(host: str = "127.0.0.1", port: int = 0) -> DbgcServer:
        return DbgcServer(
            store,
            mode=mode,
            host=host,
            port=port,
            channel=channels,
            max_clients=max_clients if max_clients is not None else spec.n_clients,
            receipt_journal=receipt_journal,
            decode_workers=decode_workers,
        ).start()

    server = make_server()
    servers = [server]
    switch: ServerKillSwitch | None = None
    if kill_after_frames is not None:
        host, port = server.address

        def restart() -> None:
            # kill() closed the old listener object, but CPython defers
            # the real fd close while the accept loop is parked inside
            # accept() — the port can stay bound for up to that loop's
            # 0.1s poll timeout.  Retry the rebind briefly instead of
            # racing it; clients meanwhile reconnect with backoff and
            # retransmit into the recovered server.
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    servers.append(make_server(host, port))
                    return
                except OSError as exc:
                    if (
                        exc.errno != errno.EADDRINUSE
                        or time.monotonic() >= deadline
                    ):
                        with errors_lock:
                            errors.append(exc)
                        return
                    time.sleep(0.02)
                except BaseException as exc:  # pragma: no cover - surfaced below
                    with errors_lock:
                        errors.append(exc)
                    return

        switch = ServerKillSwitch(kill_after_frames).arm(server, on_kill=restart)

    def drive(cid: int) -> None:
        try:
            with DbgcClient(
                server.address,
                stream_id=cid,
                channel=channels[cid],
                ack_timeout=spec.ack_timeout,
                backoff_base=spec.backoff_base,
                max_retries=spec.max_retries,
                queue_capacity=spec.queue_capacity,
                retry_seed=cid,
                window=spec.window,
            ) as client:
                for index, payload in payloads[cid].items():
                    client.send_payload(index, payload)
            reports[cid] = client.report
        except BaseException as exc:
            with errors_lock:
                errors.append(exc)

    started = time.perf_counter()
    try:
        if concurrent:
            threads = [
                threading.Thread(target=drive, args=(cid,), daemon=True)
                for cid in range(spec.n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        else:
            for cid in range(spec.n_clients):
                drive(cid)
        if switch is not None:
            switch.cancel()  # joins the watcher, so any restart is complete
        if errors:
            raise errors[0]
        # After a restart the journal-recovered ENDs of pre-kill streams
        # count toward the final server's tally, so waiting on it covers
        # the whole fleet.
        servers[-1].wait_for_streams(spec.n_clients, timeout=120.0)
        wall = time.perf_counter() - started
    finally:
        if switch is not None:
            switch.cancel()
        for srv in servers:
            srv.close()
    return FleetResult(
        spec=spec,
        reports=reports,
        payloads=payloads,
        server=servers[-1],
        wall_s=wall,
        restarts=len(servers) - 1,
    )
