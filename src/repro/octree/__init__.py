"""Tree-based geometry coders.

- :mod:`~repro.octree.morton` — bit-interleaving utilities shared by all
  tree coders.
- :class:`~repro.octree.codec.OctreeCodec` — the breadth-first
  occupancy-code octree coder of Botsch et al. [7], used by DBGC for dense
  points and by the Octree / Octree_i / G-PCC baselines.
- :class:`~repro.octree.quadtree.QuadtreeCodec` — the 2D analogue used by
  DBGC's optimized outlier compressor (x, y in the tree; z as an attribute).
"""

from repro.octree.codec import OctreeCodec
from repro.octree.morton import (
    deinterleave2,
    deinterleave3,
    interleave2,
    interleave3,
)
from repro.octree.octree import OctreeStructure, build_octree_structure
from repro.octree.quadtree import QuadtreeCodec

__all__ = [
    "OctreeCodec",
    "OctreeStructure",
    "QuadtreeCodec",
    "build_octree_structure",
    "deinterleave2",
    "deinterleave3",
    "interleave2",
    "interleave3",
]
