"""Linear octree construction over Morton-coded leaf cells.

An octree node is identified by its Morton prefix: the parent of node ``c``
is ``c >> 3`` and its child octant is ``c & 7``.  Building the tree is then
pure array work on sorted leaf codes, which is what makes the pure-Python
implementation fast enough for full frames.

The breadth-first occupancy serialization (Botsch et al. [7]) emits, level by
level and in sorted node order, one byte per non-leaf node whose ``i``-th bit
says whether child octant ``i`` is occupied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["OctreeStructure", "build_octree_structure", "expand_occupancy_level"]


@dataclass
class OctreeStructure:
    """Levelized view of an octree built from Morton leaf codes.

    Attributes
    ----------
    depth:
        Number of subdivision levels (0 means the root is a leaf).
    leaf_codes:
        Sorted unique Morton codes of occupied leaf cells.
    leaf_counts:
        Number of points per leaf, aligned with ``leaf_codes``.
    node_codes:
        ``node_codes[l]`` are the sorted codes of occupied nodes at level
        ``l`` (level 0 is the root); length ``depth + 1`` with the last
        entry equal to ``leaf_codes``.
    occupancy:
        ``occupancy[l]`` is the byte array of occupancy codes for the nodes
        at level ``l``; length ``depth`` (leaves have no occupancy byte).
    """

    depth: int
    leaf_codes: np.ndarray
    leaf_counts: np.ndarray
    node_codes: list[np.ndarray] = field(default_factory=list)
    occupancy: list[np.ndarray] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return int(self.leaf_counts.sum()) if self.leaf_counts.size else 0

    @property
    def n_leaves(self) -> int:
        return int(self.leaf_codes.size)

    def occupancy_stream(self) -> np.ndarray:
        """All occupancy bytes in breadth-first order as one array."""
        if not self.occupancy:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(self.occupancy)


def build_octree_structure(point_codes: np.ndarray, depth: int) -> OctreeStructure:
    """Build the levelized octree for (possibly duplicated) leaf codes.

    Parameters
    ----------
    point_codes:
        One Morton leaf code per point; duplicates mean several points share
        a leaf cell.
    depth:
        Subdivision depth; codes must fit in ``3 * depth`` bits.
    """
    point_codes = np.asarray(point_codes, dtype=np.int64)
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    if point_codes.size:
        if point_codes.min() < 0 or point_codes.max() >= (1 << (3 * depth)):
            raise ValueError("leaf code exceeds 3*depth bits")
    leaf_codes, leaf_counts = np.unique(point_codes, return_counts=True)
    structure = OctreeStructure(depth, leaf_codes, leaf_counts)
    if leaf_codes.size == 0:
        structure.node_codes = [np.empty(0, dtype=np.int64) for _ in range(depth + 1)]
        structure.occupancy = [np.empty(0, dtype=np.uint8) for _ in range(depth)]
        return structure
    # Walk bottom-up: level l nodes are unique (codes >> 3*(depth-l)).
    levels: list[np.ndarray] = [leaf_codes]
    for _ in range(depth):
        levels.append(np.unique(levels[-1] >> 3))
    levels.reverse()  # levels[0] == root
    structure.node_codes = levels
    occupancy: list[np.ndarray] = []
    for level in range(depth):
        children = levels[level + 1]
        parents = children >> 3
        bits = (np.uint8(1) << (children & 7).astype(np.uint8)).astype(np.uint8)
        # Children are sorted, so equal parents are adjacent.
        boundaries = np.concatenate([[0], np.flatnonzero(np.diff(parents)) + 1])
        occupancy.append(np.bitwise_or.reduceat(bits, boundaries))
    structure.occupancy = occupancy
    return structure


def expand_occupancy_level(node_codes: np.ndarray, occupancy: np.ndarray) -> np.ndarray:
    """Children codes (sorted) from one level's nodes + occupancy bytes."""
    if node_codes.size != occupancy.size:
        raise ValueError("one occupancy byte per node required")
    if node_codes.size == 0:
        return np.empty(0, dtype=np.int64)
    bits = np.unpackbits(occupancy.astype(np.uint8)[:, None], axis=1, bitorder="little")
    rows, child_index = np.nonzero(bits)
    return (node_codes[rows] << 3) | child_index.astype(np.int64)
