"""Morton (Z-order) bit interleaving for octree and quadtree cell keys.

Child-octant numbering follows :meth:`repro.geometry.bbox.BoundingCube.child`:
bit 0 selects the x half, bit 1 the y half, bit 2 the z half.  A Morton code
built this way makes "parent of node" a 3-bit shift and keeps sibling order
equal to child-index order, which the breadth-first codecs rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_DEPTH_3D",
    "MAX_DEPTH_2D",
    "interleave3",
    "deinterleave3",
    "interleave2",
    "deinterleave2",
]

# int64 Morton keys: 3 bits/level in 3D, 2 bits/level in 2D.
MAX_DEPTH_3D = 20
MAX_DEPTH_2D = 31


def _spread3(v: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each bit of ``v`` (20-bit inputs)."""
    v = v.astype(np.uint64)
    v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def _compact3(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread3`."""
    v = v.astype(np.uint64) & np.uint64(0x1249249249249249)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v >> np.uint64(32))) & np.uint64(0xFFFFF)
    return v


def _spread2(v: np.ndarray) -> np.ndarray:
    """Insert one zero bit between each bit of ``v`` (31-bit inputs)."""
    v = v.astype(np.uint64)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def _compact2(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread2`."""
    v = v.astype(np.uint64) & np.uint64(0x5555555555555555)
    v = (v | (v >> np.uint64(1))) & np.uint64(0x3333333333333333)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return v


def interleave3(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
    """Morton keys for integer cell coordinates (x least significant)."""
    for name, arr in (("ix", ix), ("iy", iy), ("iz", iz)):
        arr = np.asarray(arr)
        if arr.size and (arr.min() < 0 or arr.max() >= (1 << MAX_DEPTH_3D)):
            raise ValueError(f"{name} out of range for {MAX_DEPTH_3D}-level Morton keys")
    code = (
        _spread3(np.asarray(ix, dtype=np.uint64))
        | (_spread3(np.asarray(iy, dtype=np.uint64)) << np.uint64(1))
        | (_spread3(np.asarray(iz, dtype=np.uint64)) << np.uint64(2))
    )
    return code.astype(np.int64)


def deinterleave3(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`interleave3`."""
    c = np.asarray(codes, dtype=np.int64).astype(np.uint64)
    ix = _compact3(c)
    iy = _compact3(c >> np.uint64(1))
    iz = _compact3(c >> np.uint64(2))
    return ix.astype(np.int64), iy.astype(np.int64), iz.astype(np.int64)


def interleave2(ix: np.ndarray, iy: np.ndarray) -> np.ndarray:
    """2D Morton keys (x least significant)."""
    for name, arr in (("ix", ix), ("iy", iy)):
        arr = np.asarray(arr)
        if arr.size and (arr.min() < 0 or arr.max() >= (1 << MAX_DEPTH_2D)):
            raise ValueError(f"{name} out of range for {MAX_DEPTH_2D}-level Morton keys")
    code = _spread2(np.asarray(ix, dtype=np.uint64)) | (
        _spread2(np.asarray(iy, dtype=np.uint64)) << np.uint64(1)
    )
    return code.astype(np.int64)


def deinterleave2(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`interleave2`."""
    c = np.asarray(codes, dtype=np.int64).astype(np.uint64)
    return _compact2(c).astype(np.int64), _compact2(c >> np.uint64(1)).astype(np.int64)
