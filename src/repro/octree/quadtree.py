"""2D quadtree codec for DBGC's optimized outlier compressor.

The paper (Section 3.6) compresses outlier ``(x, y)`` with a quadtree and
keeps ``z`` as a per-point attribute, because LiDAR scenes are wide and flat:
an octree would waste most of its z extent.  This module handles the 2D
part; :mod:`repro.core.outlier` adds the z stream.

Stream layout mirrors :class:`repro.octree.codec.OctreeCodec` with 4-way
occupancy nibbles (stored as bytes, alphabet 16).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.entropy.arithmetic import (
    AdaptiveModel,
    ArithmeticDecoder,
    decode_int_sequence,
)
from repro.entropy.backend import (
    AdaptiveArithmeticBackend,
    EntropyBackend,
    decode_tagged_ints,
    decode_tagged_symbols,
    encode_tagged_ints,
    encode_tagged_symbols,
    get_backend,
)
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.geometry.bbox import pow2_cover
from repro.octree.morton import MAX_DEPTH_2D, deinterleave2, interleave2

__all__ = ["QuadtreeCodec"]

_HEADER = struct.Struct("<3d")


def _expand_level(node_codes: np.ndarray, occupancy: np.ndarray) -> np.ndarray:
    bits = np.unpackbits(occupancy.astype(np.uint8)[:, None], axis=1, bitorder="little")
    rows, child_index = np.nonzero(bits[:, :4])
    return (node_codes[rows] << 2) | child_index.astype(np.int64)


class QuadtreeCodec:
    """Quadtree codec over ``(x, y)`` with fixed leaf cell side."""

    def __init__(
        self,
        leaf_side: float,
        increment: int = 32,
        max_total: int = 1 << 16,
        backend: str | EntropyBackend = "adaptive-arith",
    ):
        if leaf_side <= 0:
            raise ValueError(f"leaf_side must be positive, got {leaf_side}")
        self.leaf_side = float(leaf_side)
        self.increment = increment
        self.max_total = max_total
        if backend == "adaptive-arith":
            self.backend: EntropyBackend = AdaptiveArithmeticBackend(
                increment=increment, max_total=max_total
            )
        else:
            self.backend = get_backend(backend)

    def _quantize(self, xy: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        lo = xy.min(axis=0)
        extent = float(max(xy.max(axis=0) - lo)) if len(xy) else 0.0
        _side, depth = pow2_cover(extent, self.leaf_side)
        if depth > MAX_DEPTH_2D:
            raise ValueError(f"quadtree depth {depth} exceeds Morton capacity")
        cells = np.floor((xy - lo) / self.leaf_side).astype(np.int64)
        np.clip(cells, 0, (1 << depth) - 1, out=cells)
        return interleave2(cells[:, 0], cells[:, 1]), lo, depth

    def encode(self, xy: np.ndarray) -> bytes:
        """Compress an ``(n, 2)`` coordinate array."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) array, got {xy.shape}")
        out = bytearray()
        encode_uvarint(len(xy), out)
        if len(xy) == 0:
            return bytes(out)
        codes, lo, depth = self._quantize(xy)
        out += _HEADER.pack(lo[0], lo[1], self.leaf_side)
        encode_uvarint(depth, out)
        leaf_codes, counts = np.unique(codes, return_counts=True)
        # Build per-level occupancy bottom-up.
        levels = [leaf_codes]
        for _ in range(depth):
            levels.append(np.unique(levels[-1] >> 2))
        levels.reverse()
        occupancy_chunks = []
        for level in range(depth):
            children = levels[level + 1]
            parents = children >> 2
            bits = (np.uint8(1) << (children & 3).astype(np.uint8)).astype(np.uint8)
            boundaries = np.concatenate([[0], np.flatnonzero(np.diff(parents)) + 1])
            occupancy_chunks.append(np.bitwise_or.reduceat(bits, boundaries))
        occupancy = (
            np.concatenate(occupancy_chunks) if occupancy_chunks else np.empty(0, np.uint8)
        )
        encode_uvarint(occupancy.size, out)
        if occupancy.size:
            payload = encode_tagged_symbols(occupancy, 16, self.backend)
            encode_uvarint(len(payload), out)
            out += payload
        out += encode_tagged_ints(counts - 1, self.backend)
        return bytes(out)

    def decode(self, data: bytes, version: int = 2) -> np.ndarray:
        """Decompress to leaf-center ``(x, y)`` (sorted Morton order).

        ``version=1`` reads the legacy layout (raw sequential adaptive
        arithmetic occupancy, checksum-less count sequence).
        """
        n_points, pos = decode_uvarint(data, 0)
        if n_points == 0:
            return np.empty((0, 2), dtype=np.float64)
        ox, oy, leaf_side = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        depth, pos = decode_uvarint(data, pos)
        if version == 1:
            payload_len, pos = decode_uvarint(data, pos)
            nodes = np.zeros(1, dtype=np.int64)
            if depth > 0:
                model = AdaptiveModel(
                    16, increment=self.increment, max_total=self.max_total
                )
                decoder = ArithmeticDecoder(data[pos : pos + payload_len])
                for _ in range(depth):
                    occupancy = np.fromiter(
                        (decoder.decode_symbol(model) for _ in range(len(nodes))),
                        dtype=np.uint8,
                        count=len(nodes),
                    )
                    nodes = _expand_level(nodes, occupancy)
            pos += payload_len
            counts = decode_int_sequence(data[pos:], checksum=False) + 1
            if counts.size != nodes.size:
                raise ValueError("leaf count stream does not match quadtree")
            ix, iy = deinterleave2(nodes)
            centers = np.column_stack(
                [ox + (ix + 0.5) * leaf_side, oy + (iy + 0.5) * leaf_side]
            )
            return np.repeat(centers, counts, axis=0)
        n_occupancy, pos = decode_uvarint(data, pos)
        if n_occupancy:
            payload_len, pos = decode_uvarint(data, pos)
            occupancy = decode_tagged_symbols(
                data[pos : pos + payload_len], n_occupancy, 16, self.backend
            )
            pos += payload_len
        else:
            occupancy = np.empty(0, dtype=np.int64)
        nodes = np.zeros(1, dtype=np.int64)
        offset = 0
        for _ in range(depth):
            level = occupancy[offset : offset + len(nodes)]
            if level.size != len(nodes):
                raise ValueError("occupancy stream shorter than the tree")
            offset += len(nodes)
            nodes = _expand_level(nodes, level.astype(np.uint8))
        if offset != occupancy.size:
            raise ValueError("occupancy stream longer than the tree")
        counts = decode_tagged_ints(data[pos:], self.backend) + 1
        if counts.size != nodes.size:
            raise ValueError("leaf count stream does not match quadtree")
        ix, iy = deinterleave2(nodes)
        centers = np.column_stack(
            [ox + (ix + 0.5) * leaf_side, oy + (iy + 0.5) * leaf_side]
        )
        return np.repeat(centers, counts, axis=0)

    def mapping(self, xy: np.ndarray) -> np.ndarray:
        """Original-order -> decoded-order permutation (stable Morton sort)."""
        xy = np.asarray(xy, dtype=np.float64)
        if len(xy) == 0:
            return np.empty(0, dtype=np.int64)
        codes, _, _ = self._quantize(xy)
        order = np.argsort(codes, kind="stable")
        mapping = np.empty(len(xy), dtype=np.int64)
        mapping[order] = np.arange(len(xy))
        return mapping
