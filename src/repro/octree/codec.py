"""Breadth-first occupancy-code octree compressor (Botsch et al. [7]).

DBGC uses this coder for the dense subset of the cloud; the plain Octree
baseline applies it to whole clouds.  The leaf cell side is ``2 * q_xyz`` so
snapping every point to its leaf center keeps the per-dimension error within
the bound (Section 4.2 of the paper).

Stream layout (format version 2)::

    uvarint n_points
    [if n_points > 0]
      float64 origin_x, origin_y, origin_z, leaf_side   (little-endian)
      uvarint depth
      uvarint n_occupancy                               (total occupancy bytes)
      uvarint len(occupancy_stream); occupancy_stream   (tagged, alphabet 256)
      counts_stream (tagged int sequence of per-leaf counts - 1)

The occupancy bytes of all levels travel as one flat entropy stream
(breadth-first, level after level), so the decoder can batch-decode them
with whichever backend the tag names before expanding the tree —
the property the vectorized rANS backend needs to pay off.

Per-leaf point counts preserve the one-to-one mapping the problem statement
requires (duplicated points are not merged — the analogue of disabling
``mergeDuplicatedPoints`` in TMC13).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.entropy.arithmetic import (
    AdaptiveModel,
    ArithmeticDecoder,
    decode_int_sequence,
)
from repro.entropy.backend import (
    AdaptiveArithmeticBackend,
    EntropyBackend,
    decode_tagged_ints,
    decode_tagged_symbols,
    encode_tagged_ints,
    encode_tagged_symbols,
    get_backend,
)
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.geometry.bbox import BoundingCube
from repro.octree.morton import MAX_DEPTH_3D, deinterleave3, interleave3
from repro.octree.octree import build_octree_structure, expand_occupancy_level

__all__ = ["OctreeCodec"]

_HEADER = struct.Struct("<4d")


class OctreeCodec:
    """Octree geometry codec with a fixed leaf cell side.

    Parameters
    ----------
    leaf_side:
        Side length of leaf cells; ``2 * q_xyz`` meets an error bound of
        ``q_xyz`` per dimension.
    increment, max_total:
        Adaptivity parameters of the occupancy-byte arithmetic model (used
        when the adaptive backend is selected).
    backend:
        Entropy backend (registry name or instance) for the occupancy and
        count streams.  Decoding follows the stream tags, so any codec
        instance decodes payloads from any backend.
    """

    def __init__(
        self,
        leaf_side: float,
        increment: int = 32,
        max_total: int = 1 << 16,
        backend: str | EntropyBackend = "adaptive-arith",
    ):
        if leaf_side <= 0:
            raise ValueError(f"leaf_side must be positive, got {leaf_side}")
        self.leaf_side = float(leaf_side)
        self.increment = increment
        self.max_total = max_total
        if backend == "adaptive-arith":
            self.backend: EntropyBackend = AdaptiveArithmeticBackend(
                increment=increment, max_total=max_total
            )
        else:
            self.backend = get_backend(backend)

    # -- helpers ---------------------------------------------------------------

    def _quantize(self, xyz: np.ndarray) -> tuple[np.ndarray, BoundingCube, int]:
        cube, depth = BoundingCube.for_leaf_size(xyz, self.leaf_side)
        if depth > MAX_DEPTH_3D:
            raise ValueError(
                f"octree depth {depth} exceeds Morton key capacity "
                f"({MAX_DEPTH_3D}); increase leaf_side or shrink the scene"
            )
        origin = np.asarray(cube.origin)
        cells = np.floor((xyz - origin) / self.leaf_side).astype(np.int64)
        np.clip(cells, 0, (1 << depth) - 1, out=cells)
        codes = interleave3(cells[:, 0], cells[:, 1], cells[:, 2])
        return codes, cube, depth

    # -- encoding ----------------------------------------------------------------

    def encode(self, xyz: np.ndarray) -> bytes:
        """Compress an ``(n, 3)`` coordinate array."""
        xyz = np.asarray(xyz, dtype=np.float64)
        out = bytearray()
        encode_uvarint(len(xyz), out)
        if len(xyz) == 0:
            return bytes(out)
        codes, cube, depth = self._quantize(xyz)
        structure = build_octree_structure(codes, depth)
        out += _HEADER.pack(*cube.origin, self.leaf_side)
        encode_uvarint(depth, out)
        occupancy = structure.occupancy_stream()
        encode_uvarint(occupancy.size, out)
        if occupancy.size:
            payload = encode_tagged_symbols(occupancy, 256, self.backend)
            encode_uvarint(len(payload), out)
            out += payload
        out += encode_tagged_ints(structure.leaf_counts - 1, self.backend)
        return bytes(out)

    # -- decoding ----------------------------------------------------------------

    def decode(self, data: bytes, version: int = 2) -> np.ndarray:
        """Decompress to leaf-center coordinates (sorted Morton order).

        ``version=1`` reads the legacy stream layout (raw sequential
        adaptive-arithmetic occupancy, checksum-less count sequence), so
        v1 DBGC containers keep decoding bit-identically.
        """
        n_points, pos = decode_uvarint(data, 0)
        if n_points == 0:
            return np.empty((0, 3), dtype=np.float64)
        ox, oy, oz, leaf_side = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        depth, pos = decode_uvarint(data, pos)
        if version == 1:
            payload_len, pos = decode_uvarint(data, pos)
            leaf_codes = self._decode_occupancy_v1(data[pos : pos + payload_len], depth)
            pos += payload_len
            counts = decode_int_sequence(data[pos:], checksum=False) + 1
        else:
            n_occupancy, pos = decode_uvarint(data, pos)
            if n_occupancy:
                payload_len, pos = decode_uvarint(data, pos)
                occupancy = decode_tagged_symbols(
                    data[pos : pos + payload_len], n_occupancy, 256, self.backend
                )
                pos += payload_len
            else:
                occupancy = np.empty(0, dtype=np.int64)
            leaf_codes = self._expand_occupancy(occupancy, depth)
            counts = decode_tagged_ints(data[pos:], self.backend) + 1
        if counts.size != leaf_codes.size:
            raise ValueError("leaf count stream does not match occupancy tree")
        ix, iy, iz = deinterleave3(leaf_codes)
        centers = np.column_stack(
            [
                ox + (ix + 0.5) * leaf_side,
                oy + (iy + 0.5) * leaf_side,
                oz + (iz + 0.5) * leaf_side,
            ]
        )
        return np.repeat(centers, counts, axis=0)

    def _decode_occupancy_v1(self, payload: bytes, depth: int) -> np.ndarray:
        """Legacy v1 occupancy: one sequential adaptive model, no tag byte."""
        nodes = np.zeros(1, dtype=np.int64)
        if depth == 0:
            return nodes
        model = AdaptiveModel(256, increment=self.increment, max_total=self.max_total)
        decoder = ArithmeticDecoder(payload)
        decode_one = decoder.decode_symbol
        for _ in range(depth):
            occupancy = np.fromiter(
                (decode_one(model) for _ in range(len(nodes))),
                dtype=np.uint8,
                count=len(nodes),
            )
            nodes = expand_occupancy_level(nodes, occupancy)
        return nodes

    @staticmethod
    def _expand_occupancy(occupancy: np.ndarray, depth: int) -> np.ndarray:
        """Rebuild the leaf Morton codes from the flat occupancy stream."""
        nodes = np.zeros(1, dtype=np.int64)
        offset = 0
        for _ in range(depth):
            level = occupancy[offset : offset + len(nodes)]
            if level.size != len(nodes):
                raise ValueError("occupancy stream shorter than the tree")
            offset += len(nodes)
            nodes = expand_occupancy_level(nodes, level.astype(np.uint8))
        if offset != occupancy.size:
            raise ValueError("occupancy stream longer than the tree")
        return nodes

    # -- correspondence -----------------------------------------------------------

    def mapping(self, xyz: np.ndarray) -> np.ndarray:
        """Permutation taking original point order to decoded order.

        ``decoded[mapping[i]]`` is the reconstruction of ``xyz[i]``.  The
        mapping is recomputable from the input alone (stable sort by Morton
        code), so it costs no bits in the stream.
        """
        xyz = np.asarray(xyz, dtype=np.float64)
        if len(xyz) == 0:
            return np.empty(0, dtype=np.int64)
        codes, _, _ = self._quantize(xyz)
        order = np.argsort(codes, kind="stable")
        mapping = np.empty(len(xyz), dtype=np.int64)
        mapping[order] = np.arange(len(xyz))
        return mapping
