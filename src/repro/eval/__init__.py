"""Evaluation harness: metrics, experiment runners, report rendering.

This subpackage turns the codecs into the paper's experiments: it knows how
to build every compressor at a given error bound
(:func:`~repro.eval.harness.make_compressors`), run ratio / timing sweeps
over scenes and error bounds, verify the error-bound contract on every run,
and render the resulting tables and figure series as text.
"""

from repro.eval.analysis import (
    classification_summary,
    density_profile,
    polyline_statistics,
    stream_entropy_report,
)
from repro.eval.ascii_plot import theta_phi_scatter, xoy_web
from repro.eval.experiments import list_experiments, reproduce
from repro.eval.harness import (
    DbgcGeometryCompressor,
    RatioResult,
    make_compressors,
    run_ratio_sweep,
    run_timing_sweep,
)
from repro.eval.metrics import (
    bandwidth_mbps,
    compression_ratio,
    peak_rss_bytes,
    reconstruction_errors,
    verify_one_to_one,
)
from repro.eval.reporting import render_series, render_table

__all__ = [
    "DbgcGeometryCompressor",
    "classification_summary",
    "density_profile",
    "list_experiments",
    "polyline_statistics",
    "reproduce",
    "stream_entropy_report",
    "theta_phi_scatter",
    "xoy_web",
    "RatioResult",
    "bandwidth_mbps",
    "compression_ratio",
    "make_compressors",
    "peak_rss_bytes",
    "reconstruction_errors",
    "render_series",
    "render_table",
    "run_ratio_sweep",
    "run_timing_sweep",
    "verify_one_to_one",
]
