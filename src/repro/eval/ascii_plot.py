"""Terminal visualizations of point cloud structure.

Text renderings of the paper's two motivating pictures: the xoy "spider
web" projection (Figure 1) and the (theta, phi) plane scatter (Figure 5).
Density maps use a character ramp, so the structure DBGC exploits is
visible in a terminal or a log file.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import PointCloud
from repro.geometry.spherical import cartesian_to_spherical

__all__ = ["density_map", "xoy_web", "theta_phi_scatter", "bar_chart"]

_RAMP = " .:-=+*#%@"


def bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Render labelled horizontal bars (the observability breakdown view).

    Bars scale to the largest value; each row shows the label, the bar,
    the value, and its share of the total.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title or ""
    top = max(max(values), 1e-12)
    total = sum(values) or 1e-12
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(value / top * width)), 1 if value > 0 else 0)
        shown = f"{value:.3f}{unit}" if unit != "B" else f"{int(value)}{unit}"
        lines.append(
            f"  {label:<{label_width}} {bar:<{width}} {shown:>12} {value / total:>5.0%}"
        )
    return "\n".join(lines)


def density_map(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 72,
    height: int = 28,
    x_range: tuple[float, float] | None = None,
    y_range: tuple[float, float] | None = None,
) -> str:
    """Render a 2D histogram of (x, y) as an ASCII density map."""
    if width < 2 or height < 2:
        raise ValueError("plot must be at least 2x2 characters")
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0:
        return "\n".join(" " * width for _ in range(height))
    x_lo, x_hi = x_range if x_range else (float(x.min()), float(x.max()))
    y_lo, y_hi = y_range if y_range else (float(y.min()), float(y.max()))
    x_hi = x_hi if x_hi > x_lo else x_lo + 1.0
    y_hi = y_hi if y_hi > y_lo else y_lo + 1.0
    cols = np.clip(((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(
        ((y - y_lo) / (y_hi - y_lo) * (height - 1)).astype(int), 0, height - 1
    )
    grid = np.zeros((height, width), dtype=np.int64)
    np.add.at(grid, (rows, cols), 1)
    # Log scale: LiDAR density spans orders of magnitude.
    levels = np.zeros_like(grid)
    occupied = grid > 0
    if occupied.any():
        logs = np.log1p(grid[occupied])
        top = float(logs.max()) or 1.0
        levels[occupied] = 1 + np.minimum(
            (logs / top * (len(_RAMP) - 2)).astype(np.int64), len(_RAMP) - 2
        )
    lines = [
        "".join(_RAMP[level] for level in row) for row in levels[::-1]
    ]  # y grows upward
    return "\n".join(lines)


def xoy_web(cloud: PointCloud, width: int = 72, height: int = 30) -> str:
    """The paper's Figure 1: the xoy projection's dense-to-sparse web."""
    extent = float(np.percentile(cloud.radii(), 98)) if len(cloud) else 1.0
    return density_map(
        cloud.x,
        cloud.y,
        width=width,
        height=height,
        x_range=(-extent, extent),
        y_range=(-extent, extent),
    )


def theta_phi_scatter(cloud: PointCloud, width: int = 72, height: int = 24) -> str:
    """The paper's Figure 5: points in the (theta, phi) plane.

    Horizontal banding = scan rings; the regular-but-not-grid structure is
    what the polyline organization exploits.
    """
    tpr = cartesian_to_spherical(cloud.xyz)
    return density_map(
        tpr[:, 0],
        -tpr[:, 1],  # phi grows downward from +z; flip so 'up' reads up
        width=width,
        height=height,
    )
