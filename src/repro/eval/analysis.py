"""Frame diagnostics: the measurements behind the paper's motivation.

Tools to inspect *why* DBGC behaves as it does on a given frame:

- :func:`density_profile` — points/density per concentric radius
  (Figure 3b's falloff).
- :func:`classification_summary` — dense / sparse / outlier split and the
  resolved clustering parameters (the Section 4.3 percentages).
- :func:`polyline_statistics` — per-group polyline counts and length
  distribution (how much structure Algorithm 1 recovers).
- :func:`stream_entropy_report` — empirical entropy vs coded bits per
  stream (how close the entropy stages run to their floor).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.clustering import cluster_approx
from repro.core.grouping import split_into_groups
from repro.core.params import DBGCParams
from repro.core.polyline import organize_polylines
from repro.core.sparse_codec import encode_sparse_group
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud
from repro.geometry.spherical import cartesian_to_spherical, spherical_error_bounds

__all__ = [
    "density_profile",
    "classification_summary",
    "polyline_statistics",
    "stream_entropy_report",
    "empirical_entropy",
]


def empirical_entropy(values: np.ndarray) -> float:
    """Order-0 entropy of a discrete value sequence, bits/symbol."""
    values = np.asarray(values)
    n = values.size
    if n == 0:
        return 0.0
    counts = Counter(values.tolist())
    return -sum((c / n) * math.log2(c / n) for c in counts.values())


def density_profile(
    cloud: PointCloud, radii: list[float] | None = None
) -> list[dict[str, float]]:
    """Point count and volumetric density per concentric radius."""
    if radii is None:
        radii = [5.0, 10.0, 20.0, 40.0, 80.0]
    distances = cloud.radii()
    profile = []
    for radius in radii:
        count = int((distances <= radius).sum())
        volume = 4.0 / 3.0 * np.pi * radius**3
        profile.append(
            {"radius": float(radius), "count": count, "density": count / volume}
        )
    return profile


@dataclass
class ClassificationSummary:
    """Dense/sparse/outlier split of one frame."""

    n_points: int
    n_dense: int
    n_sparse: int
    n_outliers: int
    eps: float
    min_pts: int

    @property
    def dense_fraction(self) -> float:
        return self.n_dense / self.n_points if self.n_points else 0.0

    @property
    def sparse_fraction(self) -> float:
        return self.n_sparse / self.n_points if self.n_points else 0.0

    @property
    def outlier_fraction(self) -> float:
        return self.n_outliers / self.n_points if self.n_points else 0.0


def classification_summary(
    cloud: PointCloud,
    params: DBGCParams | None = None,
    sensor: SensorModel | None = None,
) -> ClassificationSummary:
    """Run clustering + organization and report the three-way point split."""
    params = params if params is not None else DBGCParams()
    sensor = sensor if sensor is not None else SensorModel.benchmark_default()
    min_pts = params.min_pts_for_sensor(sensor.u_theta, sensor.u_phi)
    dense_mask = cluster_approx(cloud.xyz, params.eps, min_pts)
    sparse_xyz = cloud.xyz[~dense_mask]
    n_outliers = 0
    n_sparse = 0
    if len(sparse_xyz):
        groups = split_into_groups(
            np.linalg.norm(sparse_xyz, axis=1), params.effective_n_groups
        )
        for group in groups:
            xyz = sparse_xyz[group]
            tpr = cartesian_to_spherical(xyz)
            lines = organize_polylines(
                tpr[:, 0], tpr[:, 1], xyz, sensor.u_theta, sensor.u_phi
            )
            for line in lines:
                if len(line) >= 2:
                    n_sparse += len(line)
                else:
                    n_outliers += 1
    return ClassificationSummary(
        n_points=len(cloud),
        n_dense=int(dense_mask.sum()),
        n_sparse=n_sparse,
        n_outliers=n_outliers,
        eps=params.eps,
        min_pts=min_pts,
    )


@dataclass
class PolylineStats:
    """Length distribution of the polylines of one radial group."""

    group: int
    n_points: int
    n_lines: int
    n_outliers: int
    length_percentiles: dict[int, float] = field(default_factory=dict)

    @property
    def mean_length(self) -> float:
        return self.n_points / self.n_lines if self.n_lines else 0.0


def polyline_statistics(
    cloud: PointCloud,
    params: DBGCParams | None = None,
    sensor: SensorModel | None = None,
) -> list[PolylineStats]:
    """Per-group polyline structure of the sparse points."""
    params = params if params is not None else DBGCParams()
    sensor = sensor if sensor is not None else SensorModel.benchmark_default()
    min_pts = params.min_pts_for_sensor(sensor.u_theta, sensor.u_phi)
    dense_mask = cluster_approx(cloud.xyz, params.eps, min_pts)
    sparse_xyz = cloud.xyz[~dense_mask]
    if not len(sparse_xyz):
        return []
    groups = split_into_groups(
        np.linalg.norm(sparse_xyz, axis=1), params.effective_n_groups
    )
    stats = []
    for gi, group in enumerate(groups):
        xyz = sparse_xyz[group]
        tpr = cartesian_to_spherical(xyz)
        lines = organize_polylines(
            tpr[:, 0], tpr[:, 1], xyz, sensor.u_theta, sensor.u_phi
        )
        real_lines = [line for line in lines if len(line) >= 2]
        lengths = np.array([len(line) for line in real_lines] or [0])
        stats.append(
            PolylineStats(
                group=gi,
                n_points=int(sum(len(line) for line in real_lines)),
                n_lines=len(real_lines),
                n_outliers=sum(1 for line in lines if len(line) < 2),
                length_percentiles={
                    p: float(np.percentile(lengths, p)) for p in (10, 50, 90)
                },
            )
        )
    return stats


def stream_entropy_report(
    cloud: PointCloud,
    params: DBGCParams | None = None,
    sensor: SensorModel | None = None,
) -> list[dict[str, float]]:
    """Per-group: within-line delta entropies vs actually coded bits/point.

    The gap between ``H(...)`` and the coded rate is the entropy stage's
    overhead; the gap between streams shows where a frame's bits go.
    """
    params = params if params is not None else DBGCParams()
    sensor = sensor if sensor is not None else SensorModel.benchmark_default()
    min_pts = params.min_pts_for_sensor(sensor.u_theta, sensor.u_phi)
    dense_mask = cluster_approx(cloud.xyz, params.eps, min_pts)
    sparse_xyz = cloud.xyz[~dense_mask]
    if not len(sparse_xyz):
        return []
    groups = split_into_groups(
        np.linalg.norm(sparse_xyz, axis=1), params.effective_n_groups
    )
    report = []
    for gi, group in enumerate(groups):
        xyz = sparse_xyz[group]
        tpr = cartesian_to_spherical(xyz)
        lines = [
            line
            for line in organize_polylines(
                tpr[:, 0], tpr[:, 1], xyz, sensor.u_theta, sensor.u_phi
            )
            if len(line) >= 2
        ]
        if not lines:
            continue
        r_max = max(float(tpr[line, 2].max()) for line in lines)
        q_theta, q_phi, q_r = spherical_error_bounds(
            params.q_xyz, r_max, strict_cartesian=params.strict_cartesian
        )
        tq = np.round(tpr[:, 0] / (2 * q_theta)).astype(np.int64)
        pq = np.round(tpr[:, 1] / (2 * q_phi)).astype(np.int64)
        rq = np.round(tpr[:, 2] / (2 * q_r)).astype(np.int64)
        n_points = sum(len(line) for line in lines)
        encoding = encode_sparse_group(xyz, params, sensor.u_theta, sensor.u_phi)
        coded_bits = {
            name: 8.0 * size / n_points for name, size in encoding.stream_sizes.items()
        }
        report.append(
            {
                "group": gi,
                "n_points": n_points,
                "H_dtheta": empirical_entropy(
                    np.concatenate([np.diff(tq[line]) for line in lines])
                ),
                "H_dphi": empirical_entropy(
                    np.concatenate([np.diff(pq[line]) for line in lines])
                ),
                "H_dr": empirical_entropy(
                    np.concatenate([np.diff(rq[line]) for line in lines])
                ),
                "coded_bits_per_point": coded_bits,
                "total_bits_per_point": sum(coded_bits.values()),
            }
        )
    return report
