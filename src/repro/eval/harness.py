"""Experiment runners for the paper's evaluation.

``make_compressors(q)`` builds the five compared schemes at an error bound;
``run_ratio_sweep`` reproduces the Figure 9 grid (scene x error bound x
method -> compression ratio and bandwidth), and ``run_timing_sweep``
reproduces Figure 12 (compression / decompression wall-clock).  Every run
also checks the error-bound contract, so the harness doubles as an
integration test of all codecs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    GeometryCompressor,
    GpccCompressor,
    KdTreeCompressor,
    OctreeCompressor,
    OctreeICompressor,
)
from repro.core.params import DBGCParams
from repro.core.pipeline import CompressionResult, DBGCCompressor, DBGCDecompressor
from repro.datasets.frames import generate_frame
from repro.datasets.sensors import SensorModel
from repro.eval.metrics import reconstruction_errors
from repro.geometry.points import PointCloud

__all__ = [
    "DbgcGeometryCompressor",
    "make_compressors",
    "RatioResult",
    "run_ratio_sweep",
    "TimingResult",
    "run_timing_sweep",
]


class DbgcGeometryCompressor(GeometryCompressor):
    """DBGC wrapped in the common whole-cloud compressor interface."""

    name = "DBGC"

    def __init__(
        self,
        q_xyz: float,
        params: DBGCParams | None = None,
        sensor: SensorModel | None = None,
    ) -> None:
        super().__init__(q_xyz)
        base = params if params is not None else DBGCParams()
        self.params = base.with_updates(q_xyz=q_xyz)
        self._compressor = DBGCCompressor(self.params, sensor=sensor)
        self._decompressor = DBGCDecompressor()
        self._last: tuple[int, CompressionResult] | None = None

    def _result_for(self, cloud: PointCloud) -> CompressionResult:
        if self._last is not None and self._last[0] == id(cloud):
            return self._last[1]
        result = self._compressor.compress_detailed(cloud)
        self._last = (id(cloud), result)
        return result

    def compress(self, cloud: PointCloud) -> bytes:
        return self._result_for(cloud).payload

    def compress_detailed(self, cloud: PointCloud) -> CompressionResult:
        return self._result_for(cloud)

    def decompress(self, data: bytes) -> PointCloud:
        return self._decompressor.decompress(data)

    def mapping(self, cloud: PointCloud) -> np.ndarray:
        return self._result_for(cloud).mapping


def make_compressors(
    q_xyz: float,
    sensor: SensorModel | None = None,
    dbgc_params: DBGCParams | None = None,
) -> list[GeometryCompressor]:
    """The five schemes of Figure 9 at one error bound."""
    return [
        DbgcGeometryCompressor(q_xyz, params=dbgc_params, sensor=sensor),
        GpccCompressor(q_xyz),
        OctreeCompressor(q_xyz),
        OctreeICompressor(q_xyz),
        KdTreeCompressor(q_xyz),
    ]


@dataclass
class RatioResult:
    """One (scene, q, method) measurement."""

    scene: str
    q_xyz: float
    method: str
    ratio: float
    payload_bytes: int
    n_points: int
    max_euclidean_error: float

    def bandwidth_mbps(self, frames_per_second: float = 10.0) -> float:
        return 8.0 * frames_per_second * self.payload_bytes / 1e6


def run_ratio_sweep(
    scenes: list[str],
    q_values: list[float],
    n_frames: int = 1,
    sensor: SensorModel | None = None,
    dbgc_params: DBGCParams | None = None,
    verify_errors: bool = True,
) -> list[RatioResult]:
    """Figure 9: ratio per (scene, error bound, method), frame-averaged."""
    sensor = sensor if sensor is not None else SensorModel.benchmark_default()
    results: list[RatioResult] = []
    for scene in scenes:
        frames = [
            generate_frame(scene, index, sensor=sensor) for index in range(n_frames)
        ]
        for q_xyz in q_values:
            for compressor in make_compressors(q_xyz, sensor, dbgc_params):
                total_raw = 0
                total_compressed = 0
                total_points = 0
                worst_error = 0.0
                for frame in frames:
                    payload = compressor.compress(frame)
                    total_raw += frame.nbytes_raw()
                    total_compressed += len(payload)
                    total_points += len(frame)
                    if verify_errors:
                        decoded = compressor.decompress(payload)
                        report = reconstruction_errors(
                            frame, decoded, compressor.mapping(frame)
                        )
                        worst_error = max(worst_error, report.max_euclidean)
                        bound = np.sqrt(3.0) * q_xyz * (1 + 1e-6)
                        if report.max_euclidean > bound:
                            raise AssertionError(
                                f"{compressor.name} violated the error bound "
                                f"on {scene} at q={q_xyz}"
                            )
                results.append(
                    RatioResult(
                        scene=scene,
                        q_xyz=q_xyz,
                        method=compressor.name,
                        ratio=total_raw / total_compressed,
                        payload_bytes=total_compressed // max(len(frames), 1),
                        n_points=total_points,
                        max_euclidean_error=worst_error,
                    )
                )
    return results


@dataclass
class TimingResult:
    """One (q, method) timing measurement (Figure 12)."""

    q_xyz: float
    method: str
    compress_seconds: float
    decompress_seconds: float
    n_points: int
    stage_seconds: dict[str, float] = field(default_factory=dict)


def run_timing_sweep(
    scene: str,
    q_values: list[float],
    sensor: SensorModel | None = None,
    repeats: int = 1,
) -> list[TimingResult]:
    """Figure 12: compression/decompression time per method and bound."""
    sensor = sensor if sensor is not None else SensorModel.benchmark_default()
    frame = generate_frame(scene, 0, sensor=sensor)
    results: list[TimingResult] = []
    for q_xyz in q_values:
        for compressor in make_compressors(q_xyz, sensor):
            compress_time = 0.0
            decompress_time = 0.0
            stages: dict[str, float] = {}
            for _ in range(repeats):
                start = time.perf_counter()
                payload = compressor.compress(frame)
                compress_time += time.perf_counter() - start
                if isinstance(compressor, DbgcGeometryCompressor):
                    result = compressor.compress_detailed(frame)
                    for stage, seconds in result.timings.items():
                        stages[stage] = stages.get(stage, 0.0) + seconds
                start = time.perf_counter()
                compressor.decompress(payload)
                decompress_time += time.perf_counter() - start
                # Invalidate DBGC's cache so repeats measure real work.
                if isinstance(compressor, DbgcGeometryCompressor):
                    compressor._last = None
            results.append(
                TimingResult(
                    q_xyz=q_xyz,
                    method=compressor.name,
                    compress_seconds=compress_time / repeats,
                    decompress_seconds=decompress_time / repeats,
                    n_points=len(frame),
                    stage_seconds={k: v / repeats for k, v in stages.items()},
                )
            )
    return results
