"""Evaluation metrics (paper Section 4.1, "Metrics").

- *Compression ratio*: raw cloud size (32-bit float per coordinate, the
  paper's accounting) divided by ``|B|``.
- *Bandwidth requirement*: ``8 * f * |B|`` bits per second for ``f`` frames
  per second.
- *Reconstruction errors*: per-dimension and Euclidean errors under the
  codec's original->decoded mapping (Definition 2.2).
- *One-to-one mapping check*: the problem statement's condition (2).
- *Peak RSS*: the paper reads ``VmHWM`` from procfs; so do we.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.points import PointCloud

__all__ = [
    "compression_ratio",
    "bandwidth_mbps",
    "ErrorReport",
    "reconstruction_errors",
    "verify_one_to_one",
    "peak_rss_bytes",
]


def compression_ratio(
    cloud: PointCloud, payload: bytes, bits_per_coordinate: int = 32
) -> float:
    """Raw size / compressed size (paper's definition)."""
    if not payload:
        raise ValueError("empty payload")
    return cloud.nbytes_raw(bits_per_coordinate) / len(payload)


def bandwidth_mbps(payload_size: int, frames_per_second: float) -> float:
    """Megabits per second needed to ship one such payload per frame."""
    return 8.0 * frames_per_second * payload_size / 1e6


@dataclass(frozen=True)
class ErrorReport:
    """Reconstruction error summary under a point correspondence."""

    max_abs: float
    max_euclidean: float
    mean_euclidean: float

    def within_bound(self, q_xyz: float, spherical: bool = True) -> bool:
        """Check the paper's guarantee.

        ``spherical=True`` uses the Lemma 3.2 Euclidean bound
        ``sqrt(3) * q_xyz`` (DBGC polyline points); otherwise the strict
        per-dimension bound ``q_xyz``.
        """
        tolerance = 1.0 + 1e-6
        if spherical:
            return self.max_euclidean <= float(np.sqrt(3.0)) * q_xyz * tolerance
        return self.max_abs <= q_xyz * tolerance


def reconstruction_errors(
    original: PointCloud, decoded: PointCloud, mapping: np.ndarray
) -> ErrorReport:
    """Errors between ``original[i]`` and ``decoded[mapping[i]]``."""
    if len(original) != len(decoded):
        raise ValueError("clouds must have equal point counts")
    if len(original) == 0:
        return ErrorReport(0.0, 0.0, 0.0)
    diff = decoded.xyz[mapping] - original.xyz
    euclidean = np.linalg.norm(diff, axis=1)
    return ErrorReport(
        max_abs=float(np.abs(diff).max()),
        max_euclidean=float(euclidean.max()),
        mean_euclidean=float(euclidean.mean()),
    )


def verify_one_to_one(original: PointCloud, decoded: PointCloud, mapping: np.ndarray) -> bool:
    """Problem statement condition (2): the mapping is a bijection."""
    if len(original) != len(decoded) or len(mapping) != len(original):
        return False
    seen = np.zeros(len(decoded), dtype=bool)
    seen[mapping] = True
    return bool(seen.all())


def peak_rss_bytes() -> int:
    """Peak resident set size of this process (VmHWM), in bytes.

    Matches the paper's Section 4.4 measurement method.  Returns 0 when
    procfs is unavailable (non-Linux).
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as f:
            for line in f:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0
