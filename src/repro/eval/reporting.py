"""Text rendering of benchmark tables and figure series."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table (the benchmark harness output format)."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(divider)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render figure-style data as a table with one column per x value.

    The paper's figures plot a metric against a swept parameter with one
    line per method; this renders the same data textually so benchmark
    output can be diffed against EXPERIMENTS.md.
    """
    headers = [x_label] + [str(x) for x in x_values]
    rows = []
    for name in series:
        values = series[name]
        if len(values) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
        rows.append([name] + [f"{v:.2f}" for v in values])
    return render_table(headers, rows, title=title)
