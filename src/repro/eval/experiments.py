"""Programmatic runners for every paper experiment.

Each function reproduces one table or figure and returns an
:class:`ExperimentResult` holding the rendered text plus the raw data, so
callers can assert on shapes (the benchmark suite), print to a terminal
(``dbgc reproduce``), or post-process.  The benchmarks in ``benchmarks/``
layer pytest-benchmark timing and shape assertions on top of these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines import OctreeCompressor
from repro.core.params import DBGCParams
from repro.core.pipeline import DBGCDecompressor
from repro.datasets.frames import generate_frame
from repro.datasets.sensors import SensorModel
from repro.eval.harness import DbgcGeometryCompressor, make_compressors
from repro.eval.metrics import peak_rss_bytes
from repro.eval.reporting import render_series, render_table
from repro.observability import recording, report_dict, stage_totals

__all__ = ["ExperimentResult", "EXPERIMENTS", "reproduce", "list_experiments"]

#: The q sweep of the paper's Figure 9 (0.06 cm .. 2 cm).
Q_SWEEP = [0.0006, 0.002, 0.005, 0.01, 0.02]
HEADLINE_Q = 0.02


@dataclass
class ExperimentResult:
    """Rendered text + raw data of one reproduced experiment."""

    experiment: str
    text: str
    data: dict = field(default_factory=dict)


def _frame(scene: str, sensor: SensorModel | None):
    return generate_frame(
        scene, 0, sensor=sensor if sensor is not None else SensorModel.benchmark_default()
    )


def fig3_radius(sensor: SensorModel | None = None) -> ExperimentResult:
    """Figure 3: octree ratio and density over concentric subset radius."""
    cloud = _frame("kitti-city", sensor)
    radii = [5.0, 10.0, 20.0, 40.0, 80.0]
    distances = cloud.radii()
    codec = OctreeCompressor(HEADLINE_Q)
    ratios, densities = [], []
    for radius in radii:
        subset = cloud.select(distances <= radius)
        ratios.append(subset.nbytes_raw() / len(codec.compress(subset)))
        densities.append(len(subset) / (4.0 / 3.0 * np.pi * radius**3))
    text = render_series(
        "radius (m)",
        [int(r) for r in radii],
        {"octree ratio (3a)": ratios, "density pts/m^3 (3b)": densities},
        title=f"Figure 3: octree on concentric city subsets, q = {HEADLINE_Q} m",
    )
    return ExperimentResult(
        "fig3", text, {"radii": radii, "ratios": ratios, "densities": densities}
    )


def fig9_ratio(
    scene: str = "kitti-city", sensor: SensorModel | None = None
) -> ExperimentResult:
    """Figure 9: ratio vs error bound for all methods on one scene."""
    cloud = _frame(scene, sensor)
    series: dict[str, list[float]] = {}
    for q_xyz in Q_SWEEP:
        for compressor in make_compressors(q_xyz, sensor):
            payload = compressor.compress(cloud)
            series.setdefault(compressor.name, []).append(
                cloud.nbytes_raw() / len(payload)
            )
    text = render_series(
        "q (cm)",
        [q * 100 for q in Q_SWEEP],
        series,
        title=f"Figure 9: compression ratio, {scene} ({len(cloud)} pts)",
    )
    return ExperimentResult("fig9", text, {"scene": scene, "series": series})


def fig10_split(sensor: SensorModel | None = None) -> ExperimentResult:
    """Figure 10: ratio vs the fraction of points octree-coded."""
    cloud = _frame("kitti-city", sensor)
    fractions = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    ratios = []
    for fraction in fractions:
        codec = DbgcGeometryCompressor(
            HEADLINE_Q, params=DBGCParams(dense_fraction=fraction), sensor=sensor
        )
        ratios.append(cloud.nbytes_raw() / len(codec.compress(cloud)))
    clustered = DbgcGeometryCompressor(HEADLINE_Q, sensor=sensor)
    result = clustered.compress_detailed(cloud)
    clustered_ratio = cloud.nbytes_raw() / result.size
    n = len(cloud)
    text = render_series(
        "% octree",
        [int(f * 100) for f in fractions],
        {"manual split ratio": ratios},
        title=f"Figure 10: octree fraction sweep, kitti-city, q = {HEADLINE_Q} m",
    )
    text += (
        f"\ndensity-based clustering: ratio {clustered_ratio:.2f} with "
        f"{result.n_dense / n:.1%} dense / {result.n_sparse / n:.1%} sparse / "
        f"{result.n_outliers / n:.1%} outliers (paper: 39.4% / 60.6% / 1.2%)"
    )
    return ExperimentResult(
        "fig10",
        text,
        {
            "fractions": fractions,
            "ratios": ratios,
            "clustered_ratio": clustered_ratio,
            "dense_fraction": result.n_dense / n,
            "outlier_fraction": result.n_outliers / n,
        },
    )


def fig11_ablation(sensor: SensorModel | None = None) -> ExperimentResult:
    """Figure 11: the -Radial / -Group / -Conversion ablations."""
    cloud = _frame("kitti-campus", sensor)
    q_values = [0.002, 0.005, 0.01, 0.02]
    variants = {
        "DBGC": DBGCParams(),
        "-Radial": DBGCParams(radial_reference=False),
        "-Group": DBGCParams(grouping=False),
        "-Conversion": DBGCParams(spherical_conversion=False),
    }
    series: dict[str, list[float]] = {name: [] for name in variants}
    for q_xyz in q_values:
        for name, params in variants.items():
            codec = DbgcGeometryCompressor(q_xyz, params=params, sensor=sensor)
            series[name].append(cloud.nbytes_raw() / len(codec.compress(cloud)))
    relative = {
        name: sum(v / f for v, f in zip(values, series["DBGC"])) / len(values)
        for name, values in series.items()
        if name != "DBGC"
    }
    text = render_series(
        "q (cm)",
        [q * 100 for q in q_values],
        series,
        title="Figure 11: ablation ratios, kitti-campus",
    )
    text += "\naverage ratio relative to DBGC: " + ", ".join(
        f"{name} {rel:.0%}" for name, rel in relative.items()
    )
    text += "\n(paper: -Radial 88%, -Group 85%, -Conversion 29%)"
    return ExperimentResult(
        "fig11", text, {"series": series, "relative": relative}
    )


def table2_outliers(sensor: SensorModel | None = None) -> ExperimentResult:
    """Table 2: outlier scheme comparison across the KITTI scenes."""
    scenes = ["kitti-campus", "kitti-city", "kitti-residential", "kitti-road"]
    modes = {"Outlier": "quadtree", "Octree": "octree", "None": "none"}
    ratios: dict[str, list[float]] = {name: [] for name in modes}
    for scene in scenes:
        cloud = _frame(scene, sensor)
        for name, mode in modes.items():
            codec = DbgcGeometryCompressor(
                HEADLINE_Q, params=DBGCParams(outlier_mode=mode), sensor=sensor
            )
            ratios[name].append(cloud.nbytes_raw() / len(codec.compress(cloud)))
    rows = [[name] + values for name, values in ratios.items()]
    text = render_table(
        ["scheme"] + [s.removeprefix("kitti-") for s in scenes],
        rows,
        title=f"Table 2: compression ratios by outlier scheme, q = {HEADLINE_Q} m",
    )
    return ExperimentResult("table2", text, {"scenes": scenes, "ratios": ratios})


#: Span name -> Figure 13 stage label, per pipeline root.
_FIG13_COMPRESS_SPANS = {
    "dbgc.den": "den",
    "dbgc.oct": "oct",
    "sparse.cor": "cor",
    "sparse.org": "org",
    "sparse.spa": "spa",
    "dbgc.out": "out",
}
_FIG13_DECOMPRESS_SPANS = {"dbgc.oct": "oct", "dbgc.spa": "spa", "dbgc.out": "out"}


def _stage_table(report: dict, root: str, span_to_stage: dict, title: str) -> tuple:
    """One Figure 13 table, queried from an observability report."""
    totals = stage_totals(report, root)
    timings = {
        stage: totals.get(span, 0.0) for span, stage in span_to_stage.items()
    }
    total = sum(timings.values()) or 1e-12
    text = render_table(
        ["stage", "seconds", "fraction"],
        [
            [stage.upper(), f"{seconds:.3f}", f"{seconds / total:.0%}"]
            for stage, seconds in sorted(timings.items())
        ],
        title=title,
    )
    return text, timings


def fig13_breakdown(sensor: SensorModel | None = None) -> ExperimentResult:
    """Figure 13: DBGC stage time breakdown plus memory.

    The stage seconds are a query over the observability span tree (one
    recording covers compression and decompression), so this figure, the
    ``--metrics`` report, and ``CompressionResult.timings`` all read from
    the same clock.
    """
    cloud = _frame("kitti-city", sensor)
    codec = DbgcGeometryCompressor(HEADLINE_Q, sensor=sensor)
    with recording() as recorder:
        result = codec.compress_detailed(cloud)
        DBGCDecompressor().decompress_detailed(result.payload)
    report = report_dict(recorder)
    text, timings = _stage_table(
        report,
        "dbgc.compress",
        _FIG13_COMPRESS_SPANS,
        f"Figure 13 (compression): DBGC stage breakdown, q = {HEADLINE_Q} m",
    )
    dec_text, dec_timings = _stage_table(
        report,
        "dbgc.decompress",
        _FIG13_DECOMPRESS_SPANS,
        "Figure 13 (decompression): component breakdown",
    )
    text += "\n\n" + dec_text
    text += f"\n\npeak RSS of this process: {peak_rss_bytes() / 1e6:.0f} MB"
    return ExperimentResult(
        "fig13",
        text,
        {
            "compress_timings": timings,
            "decompress_timings": dec_timings,
            "report": report,
        },
    )


EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3_radius,
    "fig9": fig9_ratio,
    "fig10": fig10_split,
    "fig11": fig11_ablation,
    "table2": table2_outliers,
    "fig13": fig13_breakdown,
}


def list_experiments() -> list[str]:
    """Names accepted by :func:`reproduce`."""
    return sorted(EXPERIMENTS)


def reproduce(name: str, **kwargs) -> ExperimentResult:
    """Run one named experiment (``fig3``, ``fig9``, ..., ``table2``)."""
    runner = EXPERIMENTS.get(name)
    if runner is None:
        raise KeyError(f"unknown experiment {name!r}; choose from {list_experiments()}")
    return runner(**kwargs)
