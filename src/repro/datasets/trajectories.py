"""Drive trajectories for multi-frame capture sequences.

The paper's datasets are captured from moving vehicles; a trajectory maps a
frame index to the sensor's (x, y) position so consecutive simulated frames
overlap the way a real drive does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.datasets.frames import SCENE_BUILDERS
from repro.datasets.sensors import SensorModel
from repro.datasets.simulator import simulate_frame
from repro.geometry.points import PointCloud

__all__ = ["Trajectory", "straight", "curve", "loop", "generate_sequence"]


@dataclass(frozen=True)
class Trajectory:
    """A sampled drive path: per-frame sensor positions."""

    name: str
    positions: np.ndarray  # (n_frames, 2)

    def __len__(self) -> int:
        return len(self.positions)

    def __getitem__(self, index: int) -> tuple[float, float]:
        x, y = self.positions[index]
        return float(x), float(y)

    def total_distance(self) -> float:
        """Path length in meters."""
        if len(self.positions) < 2:
            return 0.0
        return float(np.sum(np.linalg.norm(np.diff(self.positions, axis=0), axis=1)))


def straight(
    n_frames: int, speed_mps: float = 10.0, fps: float = 10.0, heading_deg: float = 0.0
) -> Trajectory:
    """Constant-velocity straight drive."""
    step = speed_mps / fps
    heading = np.deg2rad(heading_deg)
    t = np.arange(n_frames) * step
    positions = np.column_stack([t * np.cos(heading), t * np.sin(heading)])
    return Trajectory("straight", positions)


def curve(
    n_frames: int,
    speed_mps: float = 10.0,
    fps: float = 10.0,
    turn_radius_m: float = 30.0,
) -> Trajectory:
    """Constant-radius turn (e.g. an intersection)."""
    step = speed_mps / fps
    angles = np.arange(n_frames) * step / turn_radius_m
    positions = np.column_stack(
        [turn_radius_m * np.sin(angles), turn_radius_m * (1.0 - np.cos(angles))]
    )
    return Trajectory("curve", positions)


def loop(n_frames: int, radius_m: float = 40.0) -> Trajectory:
    """A closed loop returning to the start (loop-closure workloads)."""
    angles = np.linspace(0.0, 2.0 * np.pi, n_frames, endpoint=False)
    positions = np.column_stack(
        [radius_m * np.cos(angles) - radius_m, radius_m * np.sin(angles)]
    )
    return Trajectory("loop", positions)


def generate_sequence(
    scene_name: str,
    trajectory: Trajectory,
    sensor: SensorModel | None = None,
    seed: int = 0,
) -> Iterator[PointCloud]:
    """Yield one frame per trajectory position (sensor-centered coords).

    The drive shares one calibration seed (derived from ``seed``) across
    all of its frames: beam offsets and the missed-return field stay
    fixed along the trajectory the way a real capture's do, which is
    what makes consecutive frames temporally redundant (see
    :mod:`repro.core.temporal`).  Frame-local noise still varies.
    """
    if scene_name not in SCENE_BUILDERS:
        raise KeyError(
            f"unknown scene {scene_name!r}; available: {sorted(SCENE_BUILDERS)}"
        )
    if sensor is None:
        sensor = SensorModel.benchmark_default()
    scene = SCENE_BUILDERS[scene_name](seed)
    for index in range(len(trajectory)):
        yield simulate_frame(
            scene,
            sensor,
            seed=seed * 100003 + index,
            sensor_xy=trajectory[index],
            calibration_seed=(seed + 1) * 100003 - 1,
        )
