"""On-disk dataset archives in a KITTI-like layout.

A dataset directory holds one ``.bin`` per frame (the KITTI velodyne
format) plus a ``metadata.json`` describing the scene, trajectory, and
sensor — enough to regenerate or extend the archive deterministically.
This is the bridge between the simulator and benchmarks that want to read
frames the way the paper's experiments read KITTI: from files.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterator

from repro.datasets.frames import SCENE_BUILDERS, generate_frame
from repro.datasets.io import load_kitti_bin, save_kitti_bin
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud

__all__ = ["write_archive", "read_archive", "archive_info"]

_METADATA_NAME = "metadata.json"


def _frame_path(root: Path, index: int) -> Path:
    return root / f"{index:06d}.bin"


def write_archive(
    root: str | Path,
    scene: str,
    n_frames: int,
    sensor: SensorModel | None = None,
    seed: int = 0,
) -> Path:
    """Generate and store ``n_frames`` of a scene; returns the directory.

    The directory is self-describing: ``metadata.json`` records everything
    needed to regenerate the identical frames.
    """
    if scene not in SCENE_BUILDERS:
        raise KeyError(f"unknown scene {scene!r}; available: {sorted(SCENE_BUILDERS)}")
    if n_frames < 1:
        raise ValueError(f"need at least one frame, got {n_frames}")
    sensor = sensor if sensor is not None else SensorModel.benchmark_default()
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    counts = []
    for index in range(n_frames):
        cloud = generate_frame(scene, index, sensor=sensor, seed=seed)
        save_kitti_bin(cloud, _frame_path(root, index))
        counts.append(len(cloud))
    metadata = {
        "format": "dbgc-dataset-v1",
        "scene": scene,
        "n_frames": n_frames,
        "seed": seed,
        "point_counts": counts,
        "sensor": dataclasses.asdict(sensor),
    }
    (root / _METADATA_NAME).write_text(json.dumps(metadata, indent=2))
    return root


def archive_info(root: str | Path) -> dict:
    """Read and validate an archive's metadata."""
    root = Path(root)
    meta_path = root / _METADATA_NAME
    if not meta_path.exists():
        raise FileNotFoundError(f"{root} is not a dataset archive (no metadata.json)")
    metadata = json.loads(meta_path.read_text())
    if metadata.get("format") != "dbgc-dataset-v1":
        raise ValueError(f"unsupported archive format {metadata.get('format')!r}")
    missing = [
        index
        for index in range(metadata["n_frames"])
        if not _frame_path(root, index).exists()
    ]
    if missing:
        raise ValueError(f"archive is missing frames: {missing[:5]}...")
    return metadata


def read_archive(root: str | Path) -> Iterator[PointCloud]:
    """Yield the archive's frames in order."""
    metadata = archive_info(root)
    root = Path(root)
    for index in range(metadata["n_frames"]):
        cloud, _ = load_kitti_bin(_frame_path(root, index))
        yield cloud
