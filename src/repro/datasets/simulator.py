"""Vectorized ray-cast LiDAR simulator.

Fires one ray per (beam, azimuth step) of a :class:`SensorModel` into a
:class:`Scene` and keeps the nearest hit among the ground plane, boxes and
cylinders.  Calibration jitter perturbs each ray's angles so the output is a
*calibrated*-style cloud — positioned with regularity but not on an exact
grid — matching the paper's Figure 5 observation.  Gaussian range noise and
random dropout complete the sensor model.

Returned coordinates are sensor-centered (the sensor sits at the origin,
the ground at ``z = -sensor.height``), matching the KITTI convention.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.scenes import Scene
from repro.datasets.sensors import SensorModel
from repro.geometry.points import PointCloud

__all__ = ["simulate_frame"]


def _ray_directions(
    sensor: SensorModel,
    rng: np.random.Generator,
    calibration_rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Unit direction per ray, (n_beams * azimuth_steps, 3), with jitter.

    Calibration offsets (``beam_jitter``) are drawn once per beam and applied
    to the whole ring: this reproduces the structure of calibrated clouds,
    which are regular along a ring but do not form an exact global grid.
    Per-ray noise (``angle_jitter``) is small and white.

    ``calibration_rng`` (when given) supplies the beam offsets instead of
    ``rng``: a real device's calibration is a property of the unit, fixed
    across the frames of a drive, so multi-frame captures should draw it
    from a per-drive generator rather than re-calibrating every frame.
    """
    theta_grid = np.linspace(
        0.0, 2.0 * np.pi, sensor.azimuth_steps, endpoint=False
    )
    phi_grid = sensor.phi_angles
    theta = np.repeat(theta_grid[None, :], sensor.n_beams, axis=0)
    phi = np.repeat(phi_grid[:, None], sensor.azimuth_steps, axis=1)
    if sensor.beam_jitter > 0.0:
        beam_rng = calibration_rng if calibration_rng is not None else rng
        theta = theta + beam_rng.normal(
            0.0, sensor.beam_jitter * sensor.u_theta, (sensor.n_beams, 1)
        )
        phi = phi + beam_rng.normal(
            0.0, sensor.beam_jitter * sensor.u_phi, (sensor.n_beams, 1)
        )
    if sensor.angle_jitter > 0.0:
        theta = theta + rng.normal(0.0, sensor.angle_jitter * sensor.u_theta, theta.shape)
        phi = phi + rng.normal(0.0, sensor.angle_jitter * sensor.u_phi, phi.shape)
    theta = theta.ravel()
    phi = np.clip(phi.ravel(), 1e-6, np.pi - 1e-6)
    sin_phi = np.sin(phi)
    return np.column_stack(
        [sin_phi * np.cos(theta), sin_phi * np.sin(theta), np.cos(phi)]
    )


def _intersect_ground(dirs: np.ndarray, ground_z: float) -> np.ndarray:
    """Ray parameter of the ground-plane hit (inf when looking up)."""
    dz = dirs[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(dz < -1e-12, ground_z / dz, np.inf)
    return np.where(t > 0.0, t, np.inf)


def _intersect_boxes(dirs: np.ndarray, boxes: np.ndarray, z_shift: float) -> np.ndarray:
    """Nearest box hit per ray via the slab method (inf when none)."""
    best = np.full(len(dirs), np.inf)
    inv = np.where(np.abs(dirs) > 1e-12, 1.0 / np.where(dirs == 0, 1.0, dirs), np.inf)
    sign = np.signbit(dirs)
    for box in boxes:
        lo = np.array([box[0], box[1], box[2] + z_shift])
        hi = np.array([box[3], box[4], box[5] + z_shift])
        # Per-dimension entry/exit parameters; rays start at the origin.
        t_lo = lo * inv
        t_hi = hi * inv
        near = np.where(sign, t_hi, t_lo)
        far = np.where(sign, t_lo, t_hi)
        # Parallel rays outside the slab never hit.
        parallel_miss = (np.abs(dirs) <= 1e-12) & ((lo > 0.0) | (hi < 0.0))
        near = np.where(np.abs(dirs) <= 1e-12, -np.inf, near)
        far = np.where(np.abs(dirs) <= 1e-12, np.inf, far)
        t_enter = near.max(axis=1)
        t_exit = far.min(axis=1)
        hit = (t_exit >= t_enter) & (t_exit > 0.0) & ~parallel_miss.any(axis=1)
        t = np.where(t_enter > 0.0, t_enter, t_exit)
        best = np.where(hit & (t < best), t, best)
    return best


def _intersect_cylinders(
    dirs: np.ndarray, cylinders: np.ndarray, z_shift: float
) -> np.ndarray:
    """Nearest vertical-cylinder hit per ray (inf when none)."""
    best = np.full(len(dirs), np.inf)
    dx, dy, dz = dirs[:, 0], dirs[:, 1], dirs[:, 2]
    a = dx * dx + dy * dy
    for cx, cy, radius, z0, z1 in cylinders:
        b = -2.0 * (cx * dx + cy * dy)
        c = cx * cx + cy * cy - radius * radius
        disc = b * b - 4.0 * a * c
        valid = (disc >= 0.0) & (a > 1e-12)
        sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            t = np.where(valid, (-b - sqrt_disc) / (2.0 * a), np.inf)
        z_at = t * dz
        hit = valid & (t > 0.0) & (z_at >= z0 + z_shift) & (z_at <= z1 + z_shift)
        best = np.where(hit & (t < best), t, best)
    return best


def _correlated_keep_mask(sensor: SensorModel, rng: np.random.Generator) -> np.ndarray:
    """Per-ray keep mask with *clustered* dropout.

    Real missed returns cluster along the scan (dark vehicles, glass,
    max-range sky), they are not white noise: a smoothed random field per
    beam is thresholded at the dropout quantile, so misses come in runs and
    the surviving stretches stay long — the structure the polyline
    organization sees in real captures.
    """
    window = max(sensor.azimuth_steps // 80, 3)
    noise = rng.random((sensor.n_beams, sensor.azimuth_steps + window))
    kernel_sums = np.cumsum(noise, axis=1)
    smooth = kernel_sums[:, window:] - kernel_sums[:, :-window]
    threshold = np.quantile(smooth, sensor.dropout, axis=1, keepdims=True)
    return (smooth >= threshold).ravel()


def simulate_frame(
    scene: Scene,
    sensor: SensorModel,
    seed: int = 0,
    sensor_xy: tuple[float, float] = (0.0, 0.0),
    calibration_seed: int | None = None,
) -> PointCloud:
    """Simulate one revolution of the sensor inside ``scene``.

    Parameters
    ----------
    scene:
        The static scene to scan.
    sensor:
        Sensor model (beam layout, noise, dropout).
    seed:
        Seed for jitter, noise and dropout; a different seed gives a
        different frame of the same scene.
    sensor_xy:
        Sensor position on the ground plane; moving it between frames
        emulates a driving capture.
    calibration_seed:
        When given, the *drive-stable* randomness — the per-beam
        calibration offsets and the clustered missed-return field — is
        drawn from this seed instead of the frame seed, so every frame
        of a drive shares them (a real unit is calibrated once, and
        return loss is bound to scene materials, not re-rolled per
        revolution).  Frame-local noise (per-ray angle jitter, range
        noise, surface roughness) still follows ``seed``.  ``None``
        keeps the legacy fully-per-frame behavior, byte-identical.

    Returns
    -------
    PointCloud
        Sensor-centered Cartesian points (one per surviving ray).
    """
    rng = np.random.default_rng(seed)
    calibration_rng = (
        np.random.default_rng(calibration_seed)
        if calibration_seed is not None
        else None
    )
    dirs = _ray_directions(sensor, rng, calibration_rng)
    z_shift = scene.ground_z - sensor.height
    # Shift object footprints so the sensor sits at (0, 0).
    boxes = scene.boxes.copy()
    if len(boxes):
        boxes[:, [0, 3]] -= sensor_xy[0]
        boxes[:, [1, 4]] -= sensor_xy[1]
    cylinders = scene.cylinders.copy()
    if len(cylinders):
        cylinders[:, 0] -= sensor_xy[0]
        cylinders[:, 1] -= sensor_xy[1]

    t = _intersect_ground(dirs, z_shift)
    if len(boxes):
        t = np.minimum(t, _intersect_boxes(dirs, boxes, z_shift))
    if len(cylinders):
        t_cyl = _intersect_cylinders(dirs, cylinders, z_shift)
        from_cylinder = t_cyl < t
        t = np.where(from_cylinder, t_cyl, t)
        if scene.cylinder_roughness > 0.0:
            # Vegetation-style depth texture: only on cylinder returns.
            rough = rng.normal(0.0, scene.cylinder_roughness, len(t))
            t = np.where(from_cylinder, np.maximum(t + rough, 0.1), t)

    in_range = (t >= sensor.r_min) & (t <= sensor.r_max)
    if sensor.dropout > 0.0:
        mask_rng = calibration_rng if calibration_rng is not None else rng
        in_range &= _correlated_keep_mask(sensor, mask_rng)
    t = t[in_range]
    dirs = dirs[in_range]
    if sensor.range_noise_sigma > 0.0:
        t = t + rng.normal(0.0, sensor.range_noise_sigma, len(t))
    return PointCloud(dirs * t[:, None])
