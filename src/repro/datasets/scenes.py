"""Procedural outdoor scenes for the LiDAR simulator.

Each builder reproduces the object mix of one of the paper's evaluation
scenes (KITTI campus / city / residential / road, Apollo urban, Ford
campus).  Scenes are collections of analytic primitives — a ground plane,
axis-aligned boxes (buildings, cars, fences) and vertical cylinders (trees,
poles) — so the simulator can intersect a whole frame of rays with a few
vectorized passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Scene",
    "campus_scene",
    "city_scene",
    "residential_scene",
    "road_scene",
    "urban_scene",
    "ford_campus_scene",
]


@dataclass
class Scene:
    """A static scene assembled from analytic primitives.

    Attributes
    ----------
    name:
        Scene label (also the dataset-scene identifier).
    ground_z:
        Height of the ground plane.
    boxes:
        ``(m, 6)`` array of AABBs: ``xmin, ymin, zmin, xmax, ymax, zmax``.
    cylinders:
        ``(k, 5)`` array of vertical cylinders: ``cx, cy, radius, z0, z1``.
    extent:
        Half-width of the scene square, meters (rays are clipped to range
        anyway; the extent bounds object placement).
    """

    name: str
    ground_z: float = 0.0
    boxes: np.ndarray = field(default_factory=lambda: np.empty((0, 6)))
    cylinders: np.ndarray = field(default_factory=lambda: np.empty((0, 5)))
    extent: float = 100.0
    #: Extra radial std-dev (m) applied to cylinder hits: vegetation and
    #: other volumetric clutter return from a band of depths, not from a
    #: clean analytic surface.  This radial texture is what the paper's
    #: Step-8 reference machinery digests in real scans.
    cylinder_roughness: float = 0.35

    def __post_init__(self) -> None:
        self.boxes = np.asarray(self.boxes, dtype=np.float64).reshape(-1, 6)
        self.cylinders = np.asarray(self.cylinders, dtype=np.float64).reshape(-1, 5)

    @property
    def n_objects(self) -> int:
        return len(self.boxes) + len(self.cylinders)


def _box(cx, cy, w, d, h, z0=0.0):
    """AABB centered at (cx, cy) with footprint w x d and height h."""
    return [cx - w / 2, cy - d / 2, z0, cx + w / 2, cy + d / 2, z0 + h]


#: No object footprint may come closer than this to the sensor.
_SENSOR_CLEARANCE = 3.0


def _ring_positions(rng, count, r_lo, r_hi, footprint_radius=0.0):
    """Random (x, y) centers in an annulus, clear of the sensor.

    ``footprint_radius`` is the circumradius of the object placed at each
    center; the annulus inner radius grows by it so no object covers the
    sensor at the origin.
    """
    inner = max(r_lo, _SENSOR_CLEARANCE + footprint_radius)
    outer = max(r_hi, inner + 1.0)
    radii = rng.uniform(inner, outer, size=count)
    angles = rng.uniform(0.0, 2.0 * np.pi, size=count)
    return np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])


def _cars(rng, count, r_lo, r_hi):
    boxes = []
    for _ in range(count):
        width = rng.uniform(1.6, 2.0)
        length = rng.uniform(3.8, 5.2)
        height = rng.uniform(1.4, 1.9)
        if rng.random() < 0.5:
            width, length = length, width
        footprint = 0.5 * float(np.hypot(width, length))
        (cx, cy), = _ring_positions(rng, 1, r_lo, r_hi, footprint)
        boxes.append(_box(cx, cy, width, length, height))
    return boxes


def _buildings(rng, count, r_lo, r_hi, size_lo, size_hi, height_lo, height_hi):
    boxes = []
    for _ in range(count):
        w = rng.uniform(size_lo, size_hi)
        d = rng.uniform(size_lo, size_hi)
        footprint = 0.5 * float(np.hypot(w, d))
        (cx, cy), = _ring_positions(rng, 1, r_lo, r_hi, footprint)
        boxes.append(_box(cx, cy, w, d, rng.uniform(height_lo, height_hi)))
    return boxes


def _trees(rng, count, r_lo, r_hi):
    cylinders = []
    for cx, cy in _ring_positions(rng, count, r_lo, r_hi):
        radius = rng.uniform(0.6, 1.8)  # canopy-ish blob as a thick cylinder
        height = rng.uniform(3.0, 9.0)
        cylinders.append([cx, cy, radius, 0.0, height])
    return cylinders


def _poles(rng, count, r_lo, r_hi):
    cylinders = []
    for cx, cy in _ring_positions(rng, count, r_lo, r_hi):
        cylinders.append([cx, cy, rng.uniform(0.08, 0.2), 0.0, rng.uniform(4.0, 8.0)])
    return cylinders


def _bushes(rng, count, r_lo, r_hi):
    """Low roadside clutter: the radial texture real scans are full of."""
    cylinders = []
    for cx, cy in _ring_positions(rng, count, r_lo, r_hi):
        cylinders.append([cx, cy, rng.uniform(0.3, 1.0), 0.0, rng.uniform(0.4, 1.5)])
    return cylinders


def campus_scene(seed: int = 0) -> Scene:
    """KITTI campus: mid-size buildings, many trees, some cars."""
    rng = np.random.default_rng(seed)
    boxes = _buildings(rng, 10, 15, 70, 10, 28, 6, 16) + _cars(rng, 14, 5, 40)
    cylinders = (
        _trees(rng, 36, 6, 60) + _poles(rng, 12, 5, 45) + _bushes(rng, 30, 5, 50)
    )
    return Scene("campus", boxes=np.array(boxes), cylinders=np.array(cylinders))


def city_scene(seed: int = 0) -> Scene:
    """KITTI city: a street corridor with tall facades and traffic."""
    rng = np.random.default_rng(seed)
    boxes = []
    # Facade walls along a street on the x axis.
    street_half_width = rng.uniform(7.0, 10.0)
    for side in (-1.0, 1.0):
        offset = 0.0
        x = -90.0
        while x < 90.0:
            length = rng.uniform(12.0, 30.0)
            depth = rng.uniform(8.0, 15.0)
            height = rng.uniform(9.0, 30.0)
            gap = rng.uniform(0.0, 6.0)
            cy = side * (street_half_width + depth / 2 + offset)
            boxes.append(_box(x + length / 2, cy, length, depth, height))
            x += length + gap
    boxes += _cars(rng, 24, 4, 45)
    cylinders = (
        _poles(rng, 22, 4, 60) + _trees(rng, 10, 10, 50) + _bushes(rng, 24, 4, 55)
    )
    return Scene("city", boxes=np.array(boxes), cylinders=np.array(cylinders))


def residential_scene(seed: int = 0) -> Scene:
    """KITTI residential: small houses, fences, many trees."""
    rng = np.random.default_rng(seed)
    boxes = _buildings(rng, 16, 10, 60, 6, 14, 3, 9) + _cars(rng, 6, 4, 35)
    # Fences: long thin boxes.
    for _ in range(8):
        length = rng.uniform(8.0, 25.0)
        (cx, cy), = _ring_positions(rng, 1, 8, 50, footprint_radius=length / 2)
        if rng.random() < 0.5:
            boxes.append(_box(cx, cy, length, 0.2, rng.uniform(1.0, 2.0)))
        else:
            boxes.append(_box(cx, cy, 0.2, length, rng.uniform(1.0, 2.0)))
    cylinders = (
        _trees(rng, 44, 5, 55) + _poles(rng, 14, 5, 45) + _bushes(rng, 36, 4, 50)
    )
    return Scene("residential", boxes=np.array(boxes), cylinders=np.array(cylinders))


def road_scene(seed: int = 0) -> Scene:
    """KITTI road: open highway, guard rails, sparse distant objects."""
    rng = np.random.default_rng(seed)
    boxes = []
    # Guard rails parallel to the x axis.
    for side in (-1.0, 1.0):
        boxes.append(_box(0.0, side * rng.uniform(8.0, 11.0), 180.0, 0.3, 0.8))
    boxes += _cars(rng, 10, 6, 70)
    boxes += _buildings(rng, 3, 50, 95, 10, 25, 4, 10)
    cylinders = (
        _poles(rng, 12, 10, 80) + _trees(rng, 12, 20, 90) + _bushes(rng, 16, 8, 70)
    )
    return Scene("road", boxes=np.array(boxes), cylinders=np.array(cylinders))


def urban_scene(seed: int = 0) -> Scene:
    """Apollo urban: dense tall blocks and heavy traffic."""
    rng = np.random.default_rng(seed)
    boxes = _buildings(rng, 16, 12, 80, 15, 40, 12, 45) + _cars(rng, 20, 4, 50)
    boxes += _cars(rng, 8, 4, 30)
    cylinders = (
        _poles(rng, 24, 4, 60) + _trees(rng, 14, 8, 55) + _bushes(rng, 26, 4, 50)
    )
    return Scene("urban", boxes=np.array(boxes), cylinders=np.array(cylinders))


def ford_campus_scene(seed: int = 0) -> Scene:
    """Ford campus: large open lots, a few big buildings, light traffic."""
    rng = np.random.default_rng(seed)
    boxes = _buildings(rng, 6, 25, 85, 20, 50, 8, 20) + _cars(rng, 12, 5, 55)
    cylinders = (
        _trees(rng, 20, 10, 70) + _poles(rng, 14, 8, 60) + _bushes(rng, 20, 6, 60)
    )
    return Scene("ford-campus", boxes=np.array(boxes), cylinders=np.array(cylinders))
