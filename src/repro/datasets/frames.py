"""Dataset registry: named scene builders and frame generation.

Maps the paper's dataset/scene identifiers to procedural scene builders and
wraps the simulator into "give me frame k of scene s" calls, so benchmarks
and examples can ask for data the way the paper's experiments do.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.datasets.scenes import (
    Scene,
    campus_scene,
    city_scene,
    ford_campus_scene,
    residential_scene,
    road_scene,
    urban_scene,
)
from repro.datasets.sensors import SensorModel
from repro.datasets.simulator import simulate_frame
from repro.geometry.points import PointCloud

__all__ = ["SCENE_BUILDERS", "generate_frame", "generate_frames"]

#: Scene identifiers used throughout the benchmarks, mirroring the paper:
#: four KITTI scenes, the Apollo urban scene, and the Ford campus scene.
SCENE_BUILDERS: dict[str, Callable[[int], Scene]] = {
    "kitti-campus": campus_scene,
    "kitti-city": city_scene,
    "kitti-residential": residential_scene,
    "kitti-road": road_scene,
    "apollo-urban": urban_scene,
    "ford-campus": ford_campus_scene,
}

# Per-frame sensor drift emulating a ~10 m/s capture vehicle at 10 fps.
_DRIVE_STEP_M = 1.0


def generate_frame(
    scene_name: str,
    frame_index: int = 0,
    sensor: SensorModel | None = None,
    seed: int = 0,
) -> PointCloud:
    """Generate frame ``frame_index`` of the named scene.

    The scene geometry is fixed by ``seed``; the frame index moves the
    sensor along a straight drive path and reseeds the per-ray noise, so
    consecutive frames look like consecutive captures.
    """
    if scene_name not in SCENE_BUILDERS:
        raise KeyError(
            f"unknown scene {scene_name!r}; available: {sorted(SCENE_BUILDERS)}"
        )
    if sensor is None:
        sensor = SensorModel.benchmark_default()
    scene = SCENE_BUILDERS[scene_name](seed)
    return simulate_frame(
        scene,
        sensor,
        seed=seed * 100003 + frame_index,
        sensor_xy=(_DRIVE_STEP_M * frame_index, 0.0),
    )


def generate_frames(
    scene_name: str,
    n_frames: int,
    sensor: SensorModel | None = None,
    seed: int = 0,
) -> Iterator[PointCloud]:
    """Yield ``n_frames`` consecutive frames of the named scene."""
    for index in range(n_frames):
        yield generate_frame(scene_name, index, sensor=sensor, seed=seed)
