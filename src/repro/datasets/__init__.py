"""Data substrate: sensor models, procedural scenes, LiDAR simulation, I/O.

The paper evaluates on KITTI, Apollo and Ford captures.  Those datasets are
not available offline, so this subpackage generates synthetic equivalents:
a Velodyne HDL-64E sensor model fires rays into procedurally generated
scenes (ground, buildings, cars, trees, walls), reproducing the structural
properties DBGC exploits — the dense "spider web" near the sensor, sparse
far field, near-regular spherical sampling with calibration jitter, and
per-scene object mixes.  See DESIGN.md §4 for the substitution rationale.
"""

from repro.datasets.frames import SCENE_BUILDERS, generate_frame, generate_frames
from repro.datasets.io import (
    load_kitti_bin,
    load_npz,
    load_ply,
    save_kitti_bin,
    save_npz,
    save_ply,
)
from repro.datasets.scenes import (
    Scene,
    campus_scene,
    city_scene,
    ford_campus_scene,
    residential_scene,
    road_scene,
    urban_scene,
)
from repro.datasets.sensors import SensorModel
from repro.datasets.simulator import simulate_frame

__all__ = [
    "SCENE_BUILDERS",
    "Scene",
    "SensorModel",
    "campus_scene",
    "city_scene",
    "ford_campus_scene",
    "generate_frame",
    "generate_frames",
    "load_kitti_bin",
    "load_npz",
    "load_ply",
    "residential_scene",
    "road_scene",
    "save_kitti_bin",
    "save_npz",
    "save_ply",
    "simulate_frame",
    "urban_scene",
]
