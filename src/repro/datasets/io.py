"""Point cloud file I/O.

Supports the formats the paper's datasets ship in — KITTI/Apollo ``.bin``
(float32 ``x, y, z, intensity`` records) — plus ASCII PLY and compressed NPZ
for interchange, so real captures can be dropped into the benchmarks in
place of the simulator.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.geometry.points import PointCloud

__all__ = [
    "save_kitti_bin",
    "load_kitti_bin",
    "save_ply",
    "load_ply",
    "save_npz",
    "load_npz",
]


def save_kitti_bin(
    cloud: PointCloud, path: str | Path, intensity: np.ndarray | None = None
) -> None:
    """Write the KITTI velodyne binary format (float32 x, y, z, intensity)."""
    n = len(cloud)
    if intensity is None:
        intensity = np.zeros(n, dtype=np.float32)
    elif len(intensity) != n:
        raise ValueError("intensity length must match the cloud")
    record = np.empty((n, 4), dtype=np.float32)
    record[:, :3] = cloud.xyz.astype(np.float32)
    record[:, 3] = np.asarray(intensity, dtype=np.float32)
    record.tofile(str(path))


def load_kitti_bin(path: str | Path) -> tuple[PointCloud, np.ndarray]:
    """Read a KITTI ``.bin`` file; returns (cloud, intensity)."""
    raw = np.fromfile(str(path), dtype=np.float32)
    if raw.size % 4 != 0:
        raise ValueError(f"{path}: size is not a multiple of 4 float32 fields")
    record = raw.reshape(-1, 4)
    return PointCloud(record[:, :3].astype(np.float64)), record[:, 3].copy()


def save_ply(cloud: PointCloud, path: str | Path) -> None:
    """Write an ASCII PLY file with vertex positions only."""
    lines = [
        "ply",
        "format ascii 1.0",
        f"element vertex {len(cloud)}",
        "property double x",
        "property double y",
        "property double z",
        "end_header",
    ]
    with open(path, "w", encoding="ascii") as f:
        f.write("\n".join(lines) + "\n")
        np.savetxt(f, cloud.xyz, fmt="%.9g")


def load_ply(path: str | Path) -> PointCloud:
    """Read an ASCII PLY file written by :func:`save_ply` (or compatible)."""
    with open(path, "r", encoding="ascii") as f:
        line = f.readline().strip()
        if line != "ply":
            raise ValueError(f"{path}: not a PLY file")
        n_vertices = None
        while True:
            line = f.readline()
            if not line:
                raise ValueError(f"{path}: missing end_header")
            line = line.strip()
            if line.startswith("format") and "ascii" not in line:
                raise ValueError(f"{path}: only ASCII PLY is supported")
            if line.startswith("element vertex"):
                n_vertices = int(line.split()[-1])
            if line == "end_header":
                break
        if n_vertices is None:
            raise ValueError(f"{path}: no vertex element")
        if n_vertices == 0:
            return PointCloud.empty()
        data = np.loadtxt(f, dtype=np.float64, max_rows=n_vertices, ndmin=2)
    if data.shape[0] != n_vertices:
        raise ValueError(f"{path}: expected {n_vertices} vertices, got {data.shape[0]}")
    return PointCloud(data[:, :3])


def save_npz(cloud: PointCloud, path: str | Path) -> None:
    """Write a compressed NPZ with the coordinate array."""
    np.savez_compressed(str(path), xyz=cloud.xyz)


def load_npz(path: str | Path) -> PointCloud:
    """Read an NPZ written by :func:`save_npz`."""
    with np.load(str(path)) as data:
        return PointCloud(data["xyz"])
