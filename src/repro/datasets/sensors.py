"""Spinning LiDAR sensor models.

The paper's datasets were captured with a Velodyne HDL-64E [9]: 64 laser
beams spanning elevations +2 deg to -24.8 deg, ~0.09 deg azimuthal
resolution, 10 revolutions per second, ~120 m range.  The sensor metadata
(Section 3.3) — angle ranges, sample counts H and W — drives both the
simulator and DBGC's polyline organization, which needs the average angular
steps ``u_theta`` and ``u_phi``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["SensorModel"]


@dataclass(frozen=True)
class SensorModel:
    """Geometry and noise model of a spinning LiDAR sensor.

    Attributes
    ----------
    name:
        Human-readable sensor name.
    n_beams:
        Number of laser rows (vertical samples, the paper's ``W``).
    azimuth_steps:
        Samples per revolution (the paper's ``H``).
    elevation_max_deg / elevation_min_deg:
        Beam elevations relative to the horizon, degrees (top / bottom).
    r_min / r_max:
        Valid radial range in meters.
    frames_per_second:
        Revolutions (frames) per second.
    range_noise_sigma:
        Std-dev of Gaussian radial measurement noise, meters.
    angle_jitter:
        Std-dev of *per-ray* angular noise as a fraction of the angular
        step (encoder timing noise; small).
    beam_jitter:
        Std-dev of *per-beam* systematic calibration offsets as a fraction
        of the angular step.  Calibration moves whole lasers, so offsets
        are constant along a ring — this is what makes a calibrated cloud
        "positioned with regularity but not on a grid" (paper Figure 5).
    dropout:
        Probability that a ray returns nothing (absorbed / out of range).
    height:
        Sensor mounting height above the ground plane, meters.
    """

    name: str = "velodyne-hdl64e"
    n_beams: int = 64
    azimuth_steps: int = 2083
    elevation_max_deg: float = 2.0
    elevation_min_deg: float = -24.8
    r_min: float = 0.9
    r_max: float = 120.0
    frames_per_second: float = 10.0
    range_noise_sigma: float = 0.018
    angle_jitter: float = 0.005
    beam_jitter: float = 0.4
    dropout: float = 0.12
    height: float = 1.73

    def __post_init__(self) -> None:
        if self.n_beams < 1 or self.azimuth_steps < 1:
            raise ValueError("sensor needs at least one beam and azimuth step")
        if self.elevation_min_deg >= self.elevation_max_deg:
            raise ValueError("elevation_min_deg must be below elevation_max_deg")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.r_min <= 0 or self.r_max <= self.r_min:
            raise ValueError("need 0 < r_min < r_max")

    # -- derived metadata (paper Section 3.3) ------------------------------------

    @property
    def phi_angles(self) -> np.ndarray:
        """Polar angles (from +z) of the beams, ascending."""
        elevations = np.linspace(
            self.elevation_max_deg, self.elevation_min_deg, self.n_beams
        )
        return np.deg2rad(90.0 - elevations)

    @property
    def theta_range(self) -> tuple[float, float]:
        """(theta_min, theta_max) over a revolution."""
        return 0.0, 2.0 * np.pi

    @property
    def phi_range(self) -> tuple[float, float]:
        """(phi_min, phi_max) across the beams."""
        angles = self.phi_angles
        return float(angles.min()), float(angles.max())

    @property
    def u_theta(self) -> float:
        """Average azimuthal step between adjacent samples (paper u_theta)."""
        return 2.0 * np.pi / self.azimuth_steps

    @property
    def u_phi(self) -> float:
        """Average polar step between adjacent beams (paper u_phi)."""
        lo, hi = self.phi_range
        return (hi - lo) / max(self.n_beams - 1, 1)

    @property
    def rays_per_frame(self) -> int:
        return self.n_beams * self.azimuth_steps

    def raw_frame_bits(self, bits_per_coordinate: int = 32) -> float:
        """Raw data rate accounting of Section 4.4 (bits per frame)."""
        return self.rays_per_frame * 3 * bits_per_coordinate

    # -- scaling ------------------------------------------------------------------

    def scaled(self, factor: float) -> "SensorModel":
        """A sensor with both angular resolutions scaled by ``factor``.

        Scaling beams and azimuth steps together preserves the
        ``u_theta : u_phi`` aspect ratio, which the polyline organization
        depends on (a lopsided scale makes adjacent beams spuriously close
        and the extension step weaves between rings).  Used to generate
        smaller frames that pure-Python codecs can chew through while
        keeping the angular structure intact.
        """
        steps = max(int(round(self.azimuth_steps * factor)), 8)
        beams = max(int(round(self.n_beams * factor)), 2)
        return replace(self, azimuth_steps=steps, n_beams=beams)

    @classmethod
    def velodyne_hdl64e(cls) -> "SensorModel":
        """The paper's sensor at full resolution."""
        return cls()

    @classmethod
    def benchmark_default(cls) -> "SensorModel":
        """Half-resolution HDL-64E producing ~25-35 K points per frame."""
        return cls().scaled(0.5)
