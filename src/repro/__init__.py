"""DBGC: Density-Based Geometry Compression for LiDAR Point Clouds.

A from-scratch Python reproduction of Sun & Luo, EDBT 2023.  The package
compresses single-frame LiDAR point clouds under a per-dimension error
bound by splitting them into dense points (octree-coded), sparse points
(polyline-organized spherical coordinate streams), and outliers
(quadtree + z attribute).

Quick start::

    from repro import DBGCCompressor, DBGCDecompressor, DBGCParams
    from repro.datasets import generate_frame

    cloud = generate_frame("kitti-city", 0)
    result = DBGCCompressor(DBGCParams(q_xyz=0.02)).compress_detailed(cloud)
    restored = DBGCDecompressor().decompress(result.payload)

Subpackages: :mod:`repro.core` (the scheme), :mod:`repro.baselines`
(Octree / Octree_i / kd-tree / G-PCC re-implementations),
:mod:`repro.entropy` (arithmetic / Huffman / LZ77 / deflate-style coders),
:mod:`repro.octree` (tree codecs), :mod:`repro.geometry` (spatial
substrate), :mod:`repro.datasets` (sensor simulator and I/O),
:mod:`repro.system` (client/server pipeline), :mod:`repro.eval`
(experiment harness).
"""

from repro.core import (
    CompressionResult,
    DBGCCompressor,
    DBGCDecompressor,
    DBGCParams,
)
from repro.geometry import PointCloud

__version__ = "1.0.0"

__all__ = [
    "CompressionResult",
    "DBGCCompressor",
    "DBGCDecompressor",
    "DBGCParams",
    "PointCloud",
    "__version__",
]
