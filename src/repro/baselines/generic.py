"""General-purpose compression baseline: quantize + Deflate.

A database-style lightweight pipeline (quantize to the error grid, pack as
varints, Deflate the byte stream) with no geometric modelling at all.  It
sets the floor the tree-based coders must beat and answers "what would a
generic column compressor do?" (paper Section 2.2, Compression in
Databases / General-purpose Compressors).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines.base import GeometryCompressor
from repro.entropy.deflate import deflate_compress, deflate_decompress
from repro.entropy.varint import (
    decode_uvarint,
    decode_varints,
    encode_uvarint,
    encode_varints,
)
from repro.geometry.points import PointCloud

__all__ = ["DeflateCompressor"]

_HEADER = struct.Struct("<4d")


class DeflateCompressor(GeometryCompressor):
    """Quantized coordinates, delta-coded per column, Deflate per column."""

    name = "Deflate"

    def compress(self, cloud: PointCloud) -> bytes:
        xyz = cloud.xyz
        out = bytearray()
        encode_uvarint(len(xyz), out)
        if len(xyz) == 0:
            return bytes(out)
        lo = xyz.min(axis=0)
        cells = np.round((xyz - lo) / self.leaf_side).astype(np.int64)
        out += _HEADER.pack(lo[0], lo[1], lo[2], self.leaf_side)
        for d in range(3):
            column = np.diff(cells[:, d], prepend=np.int64(0))
            payload = deflate_compress(encode_varints(column, signed=True))
            encode_uvarint(len(payload), out)
            out += payload
        return bytes(out)

    def decompress(self, data: bytes) -> PointCloud:
        n, pos = decode_uvarint(data, 0)
        if n == 0:
            return PointCloud.empty()
        lx, ly, lz, step = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        columns = []
        for _ in range(3):
            size, pos = decode_uvarint(data, pos)
            deltas = decode_varints(deflate_decompress(data[pos : pos + size]), n)
            pos += size
            columns.append(np.cumsum(deltas))
        cells = np.column_stack(columns).astype(np.float64)
        return PointCloud(cells * step + np.array([lx, ly, lz]))

    def mapping(self, cloud: PointCloud) -> np.ndarray:
        """Order-preserving codec: identity permutation."""
        return np.arange(len(cloud), dtype=np.int64)
