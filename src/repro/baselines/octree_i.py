"""Octree_i: occupancy codes grouped by parent occupancy (Garcia et al. [21]).

The improvement groups octree nodes by the occupancy code of their parent
node and *compresses each group separately* — the intuition being that a
parent's child pattern predicts its children's patterns.  We follow the
original construction literally: one arithmetic stream per non-empty group,
each with its own adaptive model, plus a directory of (context, count,
length) entries.

The paper observes Octree_i often underperforms plain Octree on LiDAR
scenes, and the literal construction shows why: a sparse cloud spreads its
occupancy bytes over many parent contexts, so each group is short — its
model barely adapts, and the per-stream flush and directory overhead is
paid up to 255 times.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines.base import GeometryCompressor
from repro.entropy.backend import (
    AdaptiveArithmeticBackend,
    decode_tagged_ints,
    decode_tagged_symbols,
    encode_tagged_ints,
    encode_tagged_symbols,
    get_backend,
)
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.geometry.bbox import BoundingCube
from repro.geometry.points import PointCloud
from repro.octree.codec import OctreeCodec
from repro.octree.morton import MAX_DEPTH_3D, deinterleave3, interleave3
from repro.octree.octree import build_octree_structure, expand_occupancy_level

__all__ = ["OctreeICompressor"]

_HEADER = struct.Struct("<4d")


def _child_contexts(occupancy: np.ndarray) -> np.ndarray:
    """Context (parent occupancy byte) for each child of this level."""
    counts = (
        np.unpackbits(occupancy[:, None], axis=1, bitorder="little")
        .sum(axis=1)
        .astype(np.int64)
    )
    return np.repeat(occupancy.astype(np.int64), counts)


class OctreeICompressor(GeometryCompressor):
    """Octree with per-parent-occupancy occupancy-code groups ("Octree_i")."""

    name = "Octree_i"

    def __init__(
        self,
        q_xyz: float,
        increment: int = 32,
        backend: str = "adaptive-arith",
    ) -> None:
        super().__init__(q_xyz)
        self.increment = increment
        self.backend = (
            AdaptiveArithmeticBackend(increment)
            if backend == "adaptive-arith"
            else get_backend(backend)
        )
        self._plain = OctreeCodec(self.leaf_side)

    def compress(self, cloud: PointCloud) -> bytes:
        xyz = cloud.xyz
        out = bytearray()
        encode_uvarint(len(xyz), out)
        if len(xyz) == 0:
            return bytes(out)
        cube, depth = BoundingCube.for_leaf_size(xyz, self.leaf_side)
        if depth > MAX_DEPTH_3D:
            raise ValueError("octree depth exceeds Morton key capacity")
        origin = np.asarray(cube.origin)
        cells = np.floor((xyz - origin) / self.leaf_side).astype(np.int64)
        np.clip(cells, 0, (1 << depth) - 1, out=cells)
        codes = interleave3(cells[:, 0], cells[:, 1], cells[:, 2])
        structure = build_octree_structure(codes, depth)
        out += _HEADER.pack(*cube.origin, self.leaf_side)
        encode_uvarint(depth, out)

        # Gather each node's occupancy byte into the group of its parent's
        # occupancy code (root -> context 0), preserving BFS order per group.
        groups: dict[int, list[int]] = {}
        parent_contexts = np.zeros(1, dtype=np.int64)
        for level in range(depth):
            occupancy = structure.occupancy[level]
            for context, byte in zip(parent_contexts.tolist(), occupancy.tolist()):
                groups.setdefault(context, []).append(byte)
            parent_contexts = _child_contexts(occupancy)
        # Directory + one separately-compressed stream per group.
        encode_uvarint(len(groups), out)
        for context in sorted(groups):
            symbols = groups[context]
            payload = encode_tagged_symbols(
                np.asarray(symbols, dtype=np.int64), 256, self.backend
            )
            encode_uvarint(context, out)
            encode_uvarint(len(symbols), out)
            encode_uvarint(len(payload), out)
            out += payload
        out += encode_tagged_ints(structure.leaf_counts - 1, self.backend)
        return bytes(out)

    def decompress(self, data: bytes) -> PointCloud:
        n_points, pos = decode_uvarint(data, 0)
        if n_points == 0:
            return PointCloud.empty()
        ox, oy, oz, leaf_side = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        depth, pos = decode_uvarint(data, pos)
        n_groups, pos = decode_uvarint(data, pos)
        # Each group is a self-contained tagged stream, so it decodes fully
        # upfront; the traversal below consumes it through a cursor.  This
        # also lets group streams use the vectorized backend.
        group_symbols: dict[int, np.ndarray] = {}
        cursors: dict[int, int] = {}
        for _ in range(n_groups):
            context, pos = decode_uvarint(data, pos)
            count, pos = decode_uvarint(data, pos)
            size, pos = decode_uvarint(data, pos)
            group_symbols[context] = decode_tagged_symbols(
                data[pos : pos + size], count, 256, self.backend
            )
            cursors[context] = 0
            pos += size
        nodes = np.zeros(1, dtype=np.int64)
        parent_contexts = np.zeros(1, dtype=np.int64)
        for _ in range(depth):
            occupancy = np.empty(len(nodes), dtype=np.uint8)
            # Equal contexts take consecutive symbols from their group, in
            # BFS order — exactly how the encoder appended them.
            for context in np.unique(parent_contexts):
                ctx = int(context)
                idx = np.flatnonzero(parent_contexts == context)
                cur = cursors[ctx]
                chunk = group_symbols[ctx][cur : cur + idx.size]
                if chunk.size != idx.size:
                    raise ValueError("occupancy group stream exhausted")
                occupancy[idx] = chunk
                cursors[ctx] = cur + idx.size
            nodes = expand_occupancy_level(nodes, occupancy)
            parent_contexts = _child_contexts(occupancy)
        counts = decode_tagged_ints(data[pos:], self.backend) + 1
        if counts.size != nodes.size:
            raise ValueError("leaf counts do not match tree")
        ix, iy, iz = deinterleave3(nodes)
        centers = np.column_stack(
            [
                ox + (ix + 0.5) * leaf_side,
                oy + (iy + 0.5) * leaf_side,
                oz + (iz + 0.5) * leaf_side,
            ]
        )
        return PointCloud(np.repeat(centers, counts, axis=0))

    def mapping(self, cloud: PointCloud) -> np.ndarray:
        return self._plain.mapping(cloud.xyz)
