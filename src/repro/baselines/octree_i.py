"""Octree_i: occupancy codes grouped by parent occupancy (Garcia et al. [21]).

The improvement groups octree nodes by the occupancy code of their parent
node and *compresses each group separately* — the intuition being that a
parent's child pattern predicts its children's patterns.  We follow the
original construction literally: one arithmetic stream per non-empty group,
each with its own adaptive model, plus a directory of (context, count,
length) entries.

The paper observes Octree_i often underperforms plain Octree on LiDAR
scenes, and the literal construction shows why: a sparse cloud spreads its
occupancy bytes over many parent contexts, so each group is short — its
model barely adapts, and the per-stream flush and directory overhead is
paid up to 255 times.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines.base import GeometryCompressor
from repro.entropy.arithmetic import (
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
    decode_int_sequence,
    encode_int_sequence,
)
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.geometry.bbox import BoundingCube
from repro.geometry.points import PointCloud
from repro.octree.codec import OctreeCodec
from repro.octree.morton import MAX_DEPTH_3D, deinterleave3, interleave3
from repro.octree.octree import build_octree_structure, expand_occupancy_level

__all__ = ["OctreeICompressor"]

_HEADER = struct.Struct("<4d")


def _child_contexts(occupancy: np.ndarray) -> np.ndarray:
    """Context (parent occupancy byte) for each child of this level."""
    counts = (
        np.unpackbits(occupancy[:, None], axis=1, bitorder="little")
        .sum(axis=1)
        .astype(np.int64)
    )
    return np.repeat(occupancy.astype(np.int64), counts)


class OctreeICompressor(GeometryCompressor):
    """Octree with per-parent-occupancy occupancy-code groups ("Octree_i")."""

    name = "Octree_i"

    def __init__(self, q_xyz: float, increment: int = 32) -> None:
        super().__init__(q_xyz)
        self.increment = increment
        self._plain = OctreeCodec(self.leaf_side)

    def compress(self, cloud: PointCloud) -> bytes:
        xyz = cloud.xyz
        out = bytearray()
        encode_uvarint(len(xyz), out)
        if len(xyz) == 0:
            return bytes(out)
        cube, depth = BoundingCube.for_leaf_size(xyz, self.leaf_side)
        if depth > MAX_DEPTH_3D:
            raise ValueError("octree depth exceeds Morton key capacity")
        origin = np.asarray(cube.origin)
        cells = np.floor((xyz - origin) / self.leaf_side).astype(np.int64)
        np.clip(cells, 0, (1 << depth) - 1, out=cells)
        codes = interleave3(cells[:, 0], cells[:, 1], cells[:, 2])
        structure = build_octree_structure(codes, depth)
        out += _HEADER.pack(*cube.origin, self.leaf_side)
        encode_uvarint(depth, out)

        # Gather each node's occupancy byte into the group of its parent's
        # occupancy code (root -> context 0), preserving BFS order per group.
        groups: dict[int, list[int]] = {}
        parent_contexts = np.zeros(1, dtype=np.int64)
        for level in range(depth):
            occupancy = structure.occupancy[level]
            for context, byte in zip(parent_contexts.tolist(), occupancy.tolist()):
                groups.setdefault(context, []).append(byte)
            parent_contexts = _child_contexts(occupancy)
        # Directory + one separately-compressed stream per group.
        encode_uvarint(len(groups), out)
        for context in sorted(groups):
            symbols = groups[context]
            model = AdaptiveModel(256, increment=self.increment)
            encoder = ArithmeticEncoder()
            for byte in symbols:
                encoder.encode_symbol(model, byte)
            payload = encoder.finish()
            encode_uvarint(context, out)
            encode_uvarint(len(symbols), out)
            encode_uvarint(len(payload), out)
            out += payload
        out += encode_int_sequence(structure.leaf_counts - 1)
        return bytes(out)

    def decompress(self, data: bytes) -> PointCloud:
        n_points, pos = decode_uvarint(data, 0)
        if n_points == 0:
            return PointCloud.empty()
        ox, oy, oz, leaf_side = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        depth, pos = decode_uvarint(data, pos)
        n_groups, pos = decode_uvarint(data, pos)
        decoders: dict[int, tuple[ArithmeticDecoder, AdaptiveModel, int]] = {}
        for _ in range(n_groups):
            context, pos = decode_uvarint(data, pos)
            count, pos = decode_uvarint(data, pos)
            size, pos = decode_uvarint(data, pos)
            decoders[context] = (
                ArithmeticDecoder(data[pos : pos + size]),
                AdaptiveModel(256, increment=self.increment),
                count,
            )
            pos += size
        nodes = np.zeros(1, dtype=np.int64)
        parent_contexts = np.zeros(1, dtype=np.int64)
        for _ in range(depth):
            occupancy = np.empty(len(nodes), dtype=np.uint8)
            for i, context in enumerate(parent_contexts.tolist()):
                decoder, model, _ = decoders[context]
                occupancy[i] = decoder.decode_symbol(model)
            nodes = expand_occupancy_level(nodes, occupancy)
            parent_contexts = _child_contexts(occupancy)
        counts = decode_int_sequence(data[pos:]) + 1
        if counts.size != nodes.size:
            raise ValueError("leaf counts do not match tree")
        ix, iy, iz = deinterleave3(nodes)
        centers = np.column_stack(
            [
                ox + (ix + 0.5) * leaf_side,
                oy + (iy + 0.5) * leaf_side,
                oz + (iz + 0.5) * leaf_side,
            ]
        )
        return PointCloud(np.repeat(centers, counts, axis=0))

    def mapping(self, cloud: PointCloud) -> np.ndarray:
        return self._plain.mapping(cloud.xyz)
