"""Kd-tree geometry coder (Devillers–Gandoin), the algorithm behind Draco.

The coder quantizes coordinates onto a ``2 * q_xyz`` grid and recursively
halves the bounding cell along its widest dimension, transmitting at each
split only *how many* points fall in the left half — a number the decoder
bounds by the node's total, so a uniform arithmetic model spends
``log2(n + 1)`` bits per split.  When a subtree holds a single point its
remaining coordinate bits are written directly (the decoder knows ``n == 1``
and switches modes without a flag), which is what keeps the coder usable on
sparse LiDAR clouds.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines.base import GeometryCompressor
from repro.entropy.arithmetic import ArithmeticDecoder, ArithmeticEncoder
from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.geometry.points import PointCloud

__all__ = ["KdTreeCompressor"]

_HEADER = struct.Struct("<4d")


class KdTreeCompressor(GeometryCompressor):
    """Draco-style kd-tree point-count coder (the "Draco(kd)" line)."""

    name = "Draco(kd)"

    def _quantize(self, xyz: np.ndarray) -> tuple[np.ndarray, np.ndarray, list[int]]:
        lo = xyz.min(axis=0)
        cells = np.floor((xyz - lo) / self.leaf_side).astype(np.int64)
        bits = [int(cells[:, d].max()).bit_length() for d in range(3)]
        return cells, lo, bits

    def compress(self, cloud: PointCloud) -> bytes:
        xyz = cloud.xyz
        out = bytearray()
        encode_uvarint(len(xyz), out)
        if len(xyz) == 0:
            return bytes(out)
        cells, lo, bits = self._quantize(xyz)
        out += _HEADER.pack(lo[0], lo[1], lo[2], self.leaf_side)
        for b in bits:
            encode_uvarint(b, out)
        encoder = ArithmeticEncoder()
        direct = BitWriter()
        pts = cells.copy()
        # Explicit stack: (lo_idx, hi_idx, cell_lo, remaining_bits).
        stack = [(0, len(pts), (0, 0, 0), tuple(bits))]
        while stack:
            i0, i1, cell_lo, rem = stack.pop()
            n = i1 - i0
            if max(rem) == 0:
                continue  # fully resolved cell: n duplicates, nothing to send
            if n == 1:
                # Direct mode: emit the remaining bits of this point.
                for d in range(3):
                    if rem[d]:
                        offset = int(pts[i0, d]) - cell_lo[d] * (1 << rem[d])
                        direct.write_bits(offset, rem[d])
                continue
            d = int(np.argmax(rem))
            half = 1 << (rem[d] - 1)
            mid = cell_lo[d] * (1 << rem[d]) + half
            sub = pts[i0:i1]
            left_mask = sub[:, d] < mid
            n_left = int(left_mask.sum())
            encoder.encode(n_left, n_left + 1, n + 1)
            # Stable partition keeps the replayed order deterministic.
            pts[i0:i1] = np.concatenate([sub[left_mask], sub[~left_mask]])
            new_rem_l = list(rem)
            new_rem_l[d] -= 1
            new_rem = tuple(new_rem_l)
            left_cell = tuple(
                cell_lo[k] * 2 if k == d else cell_lo[k] for k in range(3)
            )
            right_cell = tuple(
                cell_lo[k] * 2 + 1 if k == d else cell_lo[k] for k in range(3)
            )
            # Process left first: push right, then left; skip empty halves.
            if n - n_left:
                stack.append((i0 + n_left, i1, right_cell, new_rem))
            if n_left:
                stack.append((i0, i0 + n_left, left_cell, new_rem))
        payload = encoder.finish()
        encode_uvarint(len(payload), out)
        out += payload
        out += direct.getvalue()
        return bytes(out)

    def decompress(self, data: bytes) -> PointCloud:
        n_points, pos = decode_uvarint(data, 0)
        if n_points == 0:
            return PointCloud.empty()
        lx, ly, lz, step = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        bits = []
        for _ in range(3):
            b, pos = decode_uvarint(data, pos)
            bits.append(b)
        payload_len, pos = decode_uvarint(data, pos)
        decoder = ArithmeticDecoder(data[pos : pos + payload_len])
        direct = BitReader(data[pos + payload_len :])
        out_cells: list[tuple[int, int, int, int]] = []  # (x, y, z, count)
        stack = [(n_points, (0, 0, 0), tuple(bits))]
        while stack:
            n, cell_lo, rem = stack.pop()
            if max(rem) == 0:
                out_cells.append((cell_lo[0], cell_lo[1], cell_lo[2], n))
                continue
            if n == 1:
                coords = []
                for d in range(3):
                    low = cell_lo[d] * (1 << rem[d])
                    coords.append(low + (direct.read_bits(rem[d]) if rem[d] else 0))
                out_cells.append((coords[0], coords[1], coords[2], 1))
                continue
            d = int(np.argmax(rem))
            target = decoder.decode_target(n + 1)
            decoder.consume(target, target + 1, n + 1)
            n_left = target
            new_rem_l = list(rem)
            new_rem_l[d] -= 1
            new_rem = tuple(new_rem_l)
            left_cell = tuple(
                cell_lo[k] * 2 if k == d else cell_lo[k] for k in range(3)
            )
            right_cell = tuple(
                cell_lo[k] * 2 + 1 if k == d else cell_lo[k] for k in range(3)
            )
            if n - n_left:
                stack.append((n - n_left, right_cell, new_rem))
            if n_left:
                stack.append((n_left, left_cell, new_rem))
        cells = np.array([c[:3] for c in out_cells], dtype=np.float64)
        counts = np.array([c[3] for c in out_cells], dtype=np.int64)
        centers = (cells + 0.5) * step + np.array([lx, ly, lz])
        return PointCloud(np.repeat(centers, counts, axis=0))

    def mapping(self, cloud: PointCloud) -> np.ndarray:
        """Replay the partition to recover the decode-order permutation."""
        xyz = cloud.xyz
        if len(xyz) == 0:
            return np.empty(0, dtype=np.int64)
        cells, _, bits = self._quantize(xyz)
        pts = cells.copy()
        order = np.arange(len(pts), dtype=np.int64)
        emitted: list[np.ndarray] = []
        stack = [(0, len(pts), tuple(bits), (0, 0, 0))]
        while stack:
            i0, i1, rem, cell_lo = stack.pop()
            n = i1 - i0
            if max(rem) == 0 or n == 1:
                emitted.append(order[i0:i1].copy())
                continue
            d = int(np.argmax(rem))
            half = 1 << (rem[d] - 1)
            mid = cell_lo[d] * (1 << rem[d]) + half
            sub = pts[i0:i1]
            sub_order = order[i0:i1]
            left_mask = sub[:, d] < mid
            n_left = int(left_mask.sum())
            pts[i0:i1] = np.concatenate([sub[left_mask], sub[~left_mask]])
            order[i0:i1] = np.concatenate([sub_order[left_mask], sub_order[~left_mask]])
            new_rem_l = list(rem)
            new_rem_l[d] -= 1
            new_rem = tuple(new_rem_l)
            left_cell = tuple(
                cell_lo[k] * 2 if k == d else cell_lo[k] for k in range(3)
            )
            right_cell = tuple(
                cell_lo[k] * 2 + 1 if k == d else cell_lo[k] for k in range(3)
            )
            if n - n_left:
                stack.append((i0 + n_left, i1, new_rem, right_cell))
            if n_left:
                stack.append((i0, i0 + n_left, new_rem, left_cell))
        mapping = np.empty(len(pts), dtype=np.int64)
        position = 0
        for chunk in emitted:
            for original in chunk.tolist():
                mapping[original] = position
                position += 1
        return mapping
