"""Plain octree baseline (Botsch et al. [7]) over whole clouds."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GeometryCompressor
from repro.geometry.points import PointCloud
from repro.octree.codec import OctreeCodec

__all__ = ["OctreeCompressor"]


class OctreeCompressor(GeometryCompressor):
    """The baseline breadth-first occupancy octree coder.

    This is the "Octree" line of Figure 9 and the coder whose ratio decay
    over radius motivates DBGC (Figure 3a).
    """

    name = "Octree"

    def __init__(self, q_xyz: float) -> None:
        super().__init__(q_xyz)
        self._codec = OctreeCodec(self.leaf_side)

    def compress(self, cloud: PointCloud) -> bytes:
        return self._codec.encode(cloud.xyz)

    def decompress(self, data: bytes) -> PointCloud:
        return PointCloud(self._codec.decode(data))

    def mapping(self, cloud: PointCloud) -> np.ndarray:
        return self._codec.mapping(cloud.xyz)
