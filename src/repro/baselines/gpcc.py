"""Simplified MPEG G-PCC geometry coder (the "G-PCC" baseline line).

Reproduces the two optimizations the paper credits for G-PCC's relative
strength on LiDAR clouds (Section 2.2 / 4.2):

- *neighbour-dependent entropy coding* — occupancy bytes are coded under a
  context chosen from the parent node's occupancy byte, so sparse chains
  and dense blocks use different statistics;
- *direct point coding* (IDCM) — once a subtree holds a single point, a
  flag is sent and the point's remaining coordinate bits are written
  directly, instead of paying per-level occupancy bytes down to the leaf.

Duplicate points are preserved via leaf counts (the paper disables
``mergeDuplicatedPoints`` so the mapping stays one-to-one).
"""

from __future__ import annotations

import struct
from collections import deque

import numpy as np

from repro.baselines.base import GeometryCompressor
from repro.entropy.arithmetic import (
    AdaptiveModel,
    ArithmeticDecoder,
    ArithmeticEncoder,
)
from repro.entropy.backend import (
    AdaptiveArithmeticBackend,
    decode_tagged_ints,
    encode_tagged_ints,
    get_backend,
)
from repro.entropy.bitio import BitReader, BitWriter
from repro.entropy.varint import decode_uvarint, encode_uvarint
from repro.geometry.bbox import BoundingCube
from repro.geometry.points import PointCloud
from repro.octree.morton import MAX_DEPTH_3D, deinterleave3, interleave3

__all__ = ["GpccCompressor"]

_HEADER = struct.Struct("<4d")

#: IDCM requires at least this many unresolved levels to pay off.
_IDCM_MIN_LEVELS = 2


class GpccCompressor(GeometryCompressor):
    """Octree + parent-popcount contexts + direct point coding."""

    name = "G-PCC"

    def __init__(
        self,
        q_xyz: float,
        increment: int = 32,
        backend: str = "adaptive-arith",
    ) -> None:
        super().__init__(q_xyz)
        self.increment = increment
        # The occupancy and IDCM-flag streams are context-interleaved and
        # adapt symbol-by-symbol, which is incompatible with a two-pass
        # table-building coder — they always use adaptive arithmetic.  The
        # backend only switches the self-contained leaf-count stream.
        self.backend = (
            AdaptiveArithmeticBackend(increment)
            if backend == "adaptive-arith"
            else get_backend(backend)
        )

    def _occupancy_models(self) -> dict[int, AdaptiveModel]:
        # Lazily built: context = the parent's occupancy byte (0 at the root),
        # the "neighbour-dependent" conditioning of G-PCC's entropy stage.
        return {}

    def _occupancy_model(
        self, models: dict[int, AdaptiveModel], context: int
    ) -> AdaptiveModel:
        model = models.get(context)
        if model is None:
            model = AdaptiveModel(256, increment=self.increment)
            models[context] = model
        return model

    def _flag_models(self) -> list[AdaptiveModel]:
        # Context = min(remaining levels, 8).
        return [AdaptiveModel(2, increment=self.increment) for _ in range(9)]

    def _codes(self, xyz: np.ndarray) -> tuple[np.ndarray, BoundingCube, int]:
        cube, depth = BoundingCube.for_leaf_size(xyz, self.leaf_side)
        if depth > MAX_DEPTH_3D:
            raise ValueError("octree depth exceeds Morton key capacity")
        origin = np.asarray(cube.origin)
        cells = np.floor((xyz - origin) / self.leaf_side).astype(np.int64)
        np.clip(cells, 0, (1 << depth) - 1, out=cells)
        return interleave3(cells[:, 0], cells[:, 1], cells[:, 2]), cube, depth

    def compress(self, cloud: PointCloud) -> bytes:
        xyz = cloud.xyz
        out = bytearray()
        encode_uvarint(len(xyz), out)
        if len(xyz) == 0:
            return bytes(out)
        codes, cube, depth = self._codes(xyz)
        codes = np.sort(codes)
        out += _HEADER.pack(*cube.origin, self.leaf_side)
        encode_uvarint(depth, out)

        occ_models = self._occupancy_models()
        flag_models = self._flag_models()
        encoder = ArithmeticEncoder()
        direct = BitWriter()
        leaf_counts: list[int] = []
        codes_list = codes  # sorted array; nodes are contiguous slices
        # Breadth-first: (lo, hi, level, parent_ctx).  BFS keeps each
        # context's symbol stream level-stratified, which the adaptive
        # models track far better than a depth-first interleaving.
        queue = deque([(0, len(codes_list), 0, 0)])
        while queue:
            lo, hi, level, parent_ctx = queue.popleft()
            n = hi - lo
            remaining = depth - level
            if remaining == 0:
                leaf_counts.append(n)
                continue
            if level > 0 and remaining >= _IDCM_MIN_LEVELS:
                flag = 1 if n == 1 else 0
                encoder.encode_symbol(flag_models[min(remaining, 8)], flag)
                if flag:
                    mask = (1 << (3 * remaining)) - 1
                    direct.write_bits(int(codes_list[lo]) & mask, 3 * remaining)
                    continue
            shift = 3 * (remaining - 1)
            child_ids = (codes_list[lo:hi] >> shift) & 7
            present, starts = np.unique(child_ids, return_index=True)
            occupancy = int(np.bitwise_or.reduce(1 << present))
            encoder.encode_symbol(
                self._occupancy_model(occ_models, parent_ctx), occupancy
            )
            child_ctx = occupancy
            bounds = np.append(starts, n)
            for i in range(len(present)):
                queue.append(
                    (lo + int(bounds[i]), lo + int(bounds[i + 1]), level + 1, child_ctx)
                )
        payload = encoder.finish()
        encode_uvarint(len(payload), out)
        out += payload
        direct_payload = direct.getvalue()
        encode_uvarint(len(direct_payload), out)
        out += direct_payload
        out += encode_tagged_ints(
            np.asarray(leaf_counts, dtype=np.int64) - 1, self.backend
        )
        return bytes(out)

    def decompress(self, data: bytes) -> PointCloud:
        n_points, pos = decode_uvarint(data, 0)
        if n_points == 0:
            return PointCloud.empty()
        ox, oy, oz, leaf_side = _HEADER.unpack_from(data, pos)
        pos += _HEADER.size
        depth, pos = decode_uvarint(data, pos)
        payload_len, pos = decode_uvarint(data, pos)
        decoder = ArithmeticDecoder(data[pos : pos + payload_len])
        pos += payload_len
        direct_len, pos = decode_uvarint(data, pos)
        direct = BitReader(data[pos : pos + direct_len])
        pos += direct_len
        counts_stream = data[pos:]

        occ_models = self._occupancy_models()
        flag_models = self._flag_models()
        leaves: list[int] = []  # leaf codes in traversal order
        tree_leaf_slots: list[int] = []  # indices into `leaves` needing counts
        queue = deque([(0, 0, 0)])  # (prefix, level, parent_ctx)
        while queue:
            prefix, level, parent_ctx = queue.popleft()
            remaining = depth - level
            if remaining == 0:
                tree_leaf_slots.append(len(leaves))
                leaves.append(prefix)
                continue
            if level > 0 and remaining >= _IDCM_MIN_LEVELS:
                flag = decoder.decode_symbol(flag_models[min(remaining, 8)])
                if flag:
                    suffix = direct.read_bits(3 * remaining)
                    leaves.append((prefix << (3 * remaining)) | suffix)
                    continue
            occupancy = decoder.decode_symbol(
                self._occupancy_model(occ_models, parent_ctx)
            )
            present = [i for i in range(8) if occupancy & (1 << i)]
            child_ctx = occupancy
            for i in present:
                queue.append(((prefix << 3) | i, level + 1, child_ctx))
        tree_counts = decode_tagged_ints(counts_stream, self.backend) + 1
        if tree_counts.size != len(tree_leaf_slots):
            raise ValueError("leaf count stream does not match tree")
        counts = np.ones(len(leaves), dtype=np.int64)
        counts[tree_leaf_slots] = tree_counts
        leaf_codes = np.asarray(leaves, dtype=np.int64)
        ix, iy, iz = deinterleave3(leaf_codes)
        centers = np.column_stack(
            [
                ox + (ix + 0.5) * leaf_side,
                oy + (iy + 0.5) * leaf_side,
                oz + (iz + 0.5) * leaf_side,
            ]
        )
        return PointCloud(np.repeat(centers, counts, axis=0))

    def mapping(self, cloud: PointCloud) -> np.ndarray:
        """Original-index -> decoded-index permutation.

        Decoded points are emitted when their node leaves the BFS queue
        (IDCM leaves surface earlier than fully-expanded ones), so the
        order is recovered by replaying the traversal over the sorted
        codes — no entropy coding needed.
        """
        xyz = cloud.xyz
        if len(xyz) == 0:
            return np.empty(0, dtype=np.int64)
        codes, _, depth = self._codes(xyz)
        sorted_to_original = np.argsort(codes, kind="stable")
        sorted_codes = codes[sorted_to_original]
        emitted: list[tuple[int, int]] = []
        queue = deque([(0, len(sorted_codes), 0)])
        while queue:
            lo, hi, level = queue.popleft()
            n = hi - lo
            remaining = depth - level
            if remaining == 0:
                emitted.append((lo, hi))
                continue
            if level > 0 and remaining >= _IDCM_MIN_LEVELS and n == 1:
                emitted.append((lo, hi))
                continue
            shift = 3 * (remaining - 1)
            child_ids = (sorted_codes[lo:hi] >> shift) & 7
            _, starts = np.unique(child_ids, return_index=True)
            bounds = np.append(starts, n)
            for i in range(len(bounds) - 1):
                queue.append((lo + int(bounds[i]), lo + int(bounds[i + 1]), level + 1))
        mapping = np.empty(len(xyz), dtype=np.int64)
        position = 0
        for lo, hi in emitted:
            for slot in range(lo, hi):
                mapping[sorted_to_original[slot]] = position
                position += 1
        return mapping
