"""Common interface for whole-cloud geometry compressors."""

from __future__ import annotations

import abc

import numpy as np

from repro.geometry.points import PointCloud

__all__ = ["GeometryCompressor"]


class GeometryCompressor(abc.ABC):
    """A point cloud geometry codec honoring a per-dimension error bound.

    Implementations guarantee: ``decompress(compress(pc))`` has the same
    number of points as ``pc`` and there is a permutation (``mapping``)
    under which every point's per-dimension error is at most ``q_xyz``
    (spherical-coded DBGC points instead bound the Euclidean error by
    ``sqrt(3) * q_xyz``; see DESIGN.md §4).
    """

    #: Display name used by benchmark tables.
    name: str = "base"

    def __init__(self, q_xyz: float) -> None:
        if q_xyz <= 0:
            raise ValueError(f"q_xyz must be positive, got {q_xyz}")
        self.q_xyz = float(q_xyz)

    @property
    def leaf_side(self) -> float:
        """Quantization cell side: twice the error bound."""
        return 2.0 * self.q_xyz

    @abc.abstractmethod
    def compress(self, cloud: PointCloud) -> bytes:
        """Compress the cloud into a self-contained byte string."""

    @abc.abstractmethod
    def decompress(self, data: bytes) -> PointCloud:
        """Decompress to the codec's canonical point order."""

    @abc.abstractmethod
    def mapping(self, cloud: PointCloud) -> np.ndarray:
        """Original-index -> decoded-index permutation for ``cloud``."""

    def compression_ratio(self, cloud: PointCloud, bits_per_coordinate: int = 32) -> float:
        """Convenience: raw size / compressed size for one cloud."""
        compressed = self.compress(cloud)
        return cloud.nbytes_raw(bits_per_coordinate) / max(len(compressed), 1)
