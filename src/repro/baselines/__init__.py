"""Re-implemented baseline compressors (paper Section 4.1).

The paper compares DBGC against four schemes; each is rebuilt here from its
original description:

- :class:`~repro.baselines.octree_baseline.OctreeCompressor` — the
  breadth-first occupancy octree coder of Botsch et al. [7].
- :class:`~repro.baselines.octree_i.OctreeICompressor` — Garcia et al.'s
  improvement [21]: occupancy codes grouped (context-modeled) by the parent
  node's occupancy code.
- :class:`~repro.baselines.kdtree.KdTreeCompressor` — the kd-tree
  point-count coder of Devillers & Gandoin, the geometry algorithm inside
  Draco [23].
- :class:`~repro.baselines.gpcc.GpccCompressor` — a simplified MPEG G-PCC
  [33]: octree with neighbor-dependent entropy contexts and direct point
  coding (IDCM) for isolated points.
- :class:`~repro.baselines.generic.DeflateCompressor` — a general-purpose
  quantize+Deflate baseline.
- :class:`~repro.baselines.range_image.RangeImageCompressor` — the
  image-based family (Tu et al. [54]): excellent on raw grid output, but
  its tangential error on calibrated clouds is bounded by the grid pitch,
  not by ``q_xyz`` — the paper's Section 1 accuracy critique.

All share the :class:`~repro.baselines.base.GeometryCompressor` interface
and the per-dimension error-bound contract.
"""

from repro.baselines.base import GeometryCompressor
from repro.baselines.generic import DeflateCompressor
from repro.baselines.gpcc import GpccCompressor
from repro.baselines.kdtree import KdTreeCompressor
from repro.baselines.octree_baseline import OctreeCompressor
from repro.baselines.octree_i import OctreeICompressor
from repro.baselines.range_image import RangeImageCompressor

__all__ = [
    "DeflateCompressor",
    "GeometryCompressor",
    "GpccCompressor",
    "KdTreeCompressor",
    "OctreeCompressor",
    "OctreeICompressor",
    "RangeImageCompressor",
]
